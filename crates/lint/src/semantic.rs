//! The cross-file semantic rules: `nondet-taint`,
//! `fingerprint-completeness` and `float-cast-on-reward-path`.
//!
//! All three walk the [`crate::graph::WorkspaceIndex`]; none of them can
//! be expressed per file, which is exactly why they exist (DESIGN.md,
//! "static-analysis contract, v2"). Pragmas participate the same way as
//! for token rules — `// h2o-lint: allow(<rule>) -- <reason>` on or above
//! the flagged line — and for `nondet-taint` a pragma on a *source* line
//! is additionally a sanitizer: it stops taint from propagating out of
//! that function, so one justified source does not light up every caller.

use crate::findings::{Finding, Rule};
use crate::graph::WorkspaceIndex;
use crate::lexer::Token;
use crate::rules::{
    path_sep, Pragmas, AMBIENT_RNG_IDENTS, NONDET_CONTRACT_CRATES, ORDERED_OUTPUT_CRATES,
    WALLCLOCK_ALLOWED_CRATES,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Identifiers that iterate a collection; together with a `HashMap` /
/// `HashSet` mention in the same body they signal hash-order-dependent
/// iteration.
const ITER_IDENTS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Method/assoc-fn names whose impl type feeds the scenario handshake.
const FINGERPRINT_FNS: &[&str] = &["fingerprint", "value_fingerprint", "value_descriptor"];

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum TaintKind {
    Wallclock,
    AmbientRng,
    UnorderedIter,
    ThreadId,
}

/// Where one function's taint ultimately comes from, with the call chain
/// that carried it (origin first).
#[derive(Clone)]
struct Witness {
    what: String,
    file: usize,
    line: u32,
    chain: Vec<usize>,
}

/// Runs all three semantic rules, appending findings per file and
/// marking the pragmas they consume.
pub(crate) fn run(
    index: &WorkspaceIndex,
    code_per_file: &[Vec<&Token>],
    pragmas: &mut [Pragmas],
    findings: &mut [Vec<Finding>],
) {
    nondet_taint(index, code_per_file, pragmas, findings);
    fingerprint_completeness(index, code_per_file, pragmas, findings);
    float_cast_on_reward_path(index, code_per_file, pragmas, findings);
}

// ---------------------------------------------------------------------------
// Rule: nondet-taint
// ---------------------------------------------------------------------------

fn nondet_taint(
    index: &WorkspaceIndex,
    code_per_file: &[Vec<&Token>],
    pragmas: &mut [Pragmas],
    findings: &mut [Vec<Finding>],
) {
    // 1. Collect per-fn nondeterminism sources, letting a pragma on the
    //    source line sanitize (and be marked used).
    let mut tainted: BTreeMap<(usize, TaintKind), Witness> = BTreeMap::new();
    let mut queue: VecDeque<(usize, TaintKind)> = VecDeque::new();
    for (f, node) in index.fns.iter().enumerate() {
        let Some(body) = node.item.body else { continue };
        let crate_name = index.crate_of(f);
        for src in taint_sources(crate_name, &code_per_file[node.file], body) {
            if pragmas[node.file].allows(Rule::NondetTaint, src.line) {
                continue;
            }
            let key = (f, src.kind);
            if let std::collections::btree_map::Entry::Vacant(e) = tainted.entry(key) {
                e.insert(Witness {
                    what: src.what,
                    file: node.file,
                    line: src.line,
                    chain: vec![f],
                });
                queue.push_back(key);
            }
        }
    }

    // 2. Propagate through reverse call edges: a caller of a tainted fn
    //    is tainted with the same kind and an extended witness chain.
    while let Some((f, kind)) = queue.pop_front() {
        let witness = tainted[&(f, kind)].clone();
        for &caller in &index.callers[f] {
            let key = (caller, kind);
            if let std::collections::btree_map::Entry::Vacant(e) = tainted.entry(key) {
                let mut w = witness.clone();
                w.chain.push(caller);
                e.insert(w);
                queue.push_back(key);
            }
        }
    }

    // 3a. Direct findings in contract crates, only for the source kinds
    //     no per-file rule already covers there: thread identity
    //     (nowhere covered) and unordered iteration (covered by
    //     `no-unordered-collections` except in `exec`). Wall-clock and
    //     ambient-RNG sources are per-file findings wherever they sit.
    for (&(f, kind), w) in &tainted {
        if w.chain.len() != 1 {
            continue; // propagated, not direct — handled at the frontier
        }
        let crate_name = index.crate_of(f);
        if !NONDET_CONTRACT_CRATES.contains(&crate_name) {
            continue;
        }
        let report = match kind {
            TaintKind::ThreadId => true,
            TaintKind::UnorderedIter => !ORDERED_OUTPUT_CRATES.contains(&crate_name),
            TaintKind::Wallclock | TaintKind::AmbientRng => false,
        };
        if !report {
            continue;
        }
        let node = &index.fns[f];
        findings[node.file].push(Finding {
            rule: Rule::NondetTaint,
            file: index.files[node.file].1.clone(),
            line: w.line,
            col: 1,
            message: format!(
                "{} in `{}`: `{}` is a determinism-contract crate, and this value can \
                 vary across runs, hosts, or schedules — derive it from config/seeds, \
                 or justify that it never reaches output with a pragma",
                w.what,
                index.qualified_name(f),
                crate_name
            ),
        });
    }

    // 3b. Frontier findings: a call site inside a contract crate whose
    //     (possibly transitive) callee outside the contract crates is
    //     tainted. Reporting at the frontier — not along the whole chain
    //     — keeps one laundering path to one finding.
    let mut reported: BTreeSet<(usize, u32, u32, TaintKind)> = BTreeSet::new();
    for (f, node) in index.fns.iter().enumerate() {
        let crate_name = index.crate_of(f);
        if !NONDET_CONTRACT_CRATES.contains(&crate_name) {
            continue;
        }
        for (site, targets) in &node.calls {
            for &g in targets {
                if NONDET_CONTRACT_CRATES.contains(&index.crate_of(g)) {
                    continue; // the callee's own crate is policed directly
                }
                for kind in [
                    TaintKind::Wallclock,
                    TaintKind::AmbientRng,
                    TaintKind::UnorderedIter,
                    TaintKind::ThreadId,
                ] {
                    let Some(w) = tainted.get(&(g, kind)) else {
                        continue;
                    };
                    if !reported.insert((f, site.line, site.col, kind)) {
                        continue;
                    }
                    if pragmas[node.file].allows(Rule::NondetTaint, site.line) {
                        continue;
                    }
                    let mut route: Vec<String> = w
                        .chain
                        .iter()
                        .rev()
                        .skip_while(|&&c| c != g)
                        .map(|&c| format!("`{}`", index.qualified_name(c)))
                        .collect();
                    if route.len() > 6 {
                        let skipped = route.len() - 6;
                        route.truncate(6);
                        route.push(format!("… ({skipped} more)"));
                    }
                    findings[node.file].push(Finding {
                        rule: Rule::NondetTaint,
                        file: index.files[node.file].1.clone(),
                        line: site.line,
                        col: site.col,
                        message: format!(
                            "call to `{}` reaches {} ({} at {}:{}): nondeterminism \
                             laundered into determinism-contract crate `{}` — route it \
                             through a seeded/ordered API, or justify with a pragma",
                            route.join(" → "),
                            w.what,
                            kind_phrase(kind),
                            index.files[w.file].1,
                            w.line,
                            crate_name
                        ),
                    });
                }
            }
        }
    }
}

fn kind_phrase(kind: TaintKind) -> &'static str {
    match kind {
        TaintKind::Wallclock => "a wall-clock read",
        TaintKind::AmbientRng => "ambient OS entropy",
        TaintKind::UnorderedIter => "hash-order-dependent iteration",
        TaintKind::ThreadId => "thread identity",
    }
}

struct TaintSource {
    kind: TaintKind,
    line: u32,
    what: String,
}

/// Scans one fn body for nondeterminism sources. `obs`/`bench` are
/// wall-clock *barriers*: the sanctioned timing path lives there, so a
/// clock read inside them is not a source (every other kind still is).
fn taint_sources(crate_name: &str, code: &[&Token], body: (usize, usize)) -> Vec<TaintSource> {
    let (open, close) = body;
    let mut out = Vec::new();
    let mut hash_tok: Option<&Token> = None;
    let mut iter_tok: Option<&Token> = None;
    for j in open + 1..close {
        let t = code[j];
        if !t.is_ident_like() {
            continue;
        }
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && path_sep(code, j + 1)
            && code.get(j + 3).is_some_and(|n| n.is_ident("now"))
            && !WALLCLOCK_ALLOWED_CRATES.contains(&crate_name)
        {
            out.push(TaintSource {
                kind: TaintKind::Wallclock,
                line: t.line,
                what: format!("a wall-clock read (`{}::now`)", t.text),
            });
        } else if AMBIENT_RNG_IDENTS.contains(&t.text.as_str()) {
            out.push(TaintSource {
                kind: TaintKind::AmbientRng,
                line: t.line,
                what: format!("ambient OS entropy (`{}`)", t.text),
            });
        } else if t.is_ident("thread")
            && path_sep(code, j + 1)
            && code.get(j + 3).is_some_and(|n| n.is_ident("current"))
        {
            out.push(TaintSource {
                kind: TaintKind::ThreadId,
                line: t.line,
                what: "a thread-identity read (`thread::current`)".to_string(),
            });
        } else if t.is_ident("available_parallelism") {
            out.push(TaintSource {
                kind: TaintKind::ThreadId,
                line: t.line,
                what: "a host-shape read (`available_parallelism`)".to_string(),
            });
        } else {
            if (t.is_ident("HashMap") || t.is_ident("HashSet")) && hash_tok.is_none() {
                hash_tok = Some(t);
            }
            if t.is_any_ident(ITER_IDENTS) && iter_tok.is_none() {
                // Only method-position iteration (`x.iter()`) counts; a
                // bare ident named `keys` is just a variable.
                if j > open && code[j - 1].is_punct('.') {
                    iter_tok = Some(t);
                }
            }
        }
    }
    if let (Some(hash), Some(iter)) = (hash_tok, iter_tok) {
        out.push(TaintSource {
            kind: TaintKind::UnorderedIter,
            line: iter.line,
            what: format!(
                "hash-order iteration (`{}` + `.{}()`)",
                hash.text, iter.text
            ),
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: fingerprint-completeness
// ---------------------------------------------------------------------------

/// A fingerprint fn that merely returns a stored hash (`self.fingerprint`)
/// computes nothing, so it constrains no fields: skip bodies at or below
/// this many tokens.
const ACCESSOR_BODY_TOKENS: usize = 4;

fn fingerprint_completeness(
    index: &WorkspaceIndex,
    code_per_file: &[Vec<&Token>],
    pragmas: &mut [Pragmas],
    findings: &mut [Vec<Finding>],
) {
    // Group the fingerprint family by (alias-resolved) impl type.
    let mut family: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (f, node) in index.fns.iter().enumerate() {
        if !FINGERPRINT_FNS.contains(&node.item.name.as_str()) {
            continue;
        }
        let Some(impl_type) = &node.item.impl_type else {
            continue;
        };
        let Some((open, close)) = node.item.body else {
            continue;
        };
        if close - open <= ACCESSOR_BODY_TOKENS + 1 {
            continue;
        }
        let resolved = index.resolve_alias(impl_type).to_string();
        family.entry(resolved).or_default().push(f);
    }

    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    for (type_name, fns) in &family {
        let Some((type_file, ty)) = index.types.get(type_name) else {
            continue; // external or tuple-only type: nothing checkable
        };
        // The hashed surface: every identifier mentioned by the family's
        // bodies or by any workspace fn transitively called from them.
        let mut surface: BTreeSet<String> = BTreeSet::new();
        for &f in fns {
            for g in index.reachable_from(&[f]) {
                let node = &index.fns[g];
                if let Some((open, close)) = node.item.body {
                    for t in &code_per_file[node.file][open + 1..close] {
                        if t.is_ident_like() {
                            surface.insert(t.text.clone());
                        }
                    }
                }
            }
        }
        let mut fn_names: Vec<String> = fns
            .iter()
            .map(|&f| format!("`{}`", index.fns[f].item.name))
            .collect();
        fn_names.sort();
        fn_names.dedup();
        let family_desc = fn_names.join("/");

        // Check the type itself, then descend one level into fields whose
        // own type is a workspace struct mentioned by the surface.
        check_fields(
            index,
            ty,
            *type_file,
            type_name,
            None,
            &surface,
            &family_desc,
            &mut reported,
            pragmas,
            findings,
        );
        for field in &ty.fields {
            if !surface.contains(&field.name) {
                continue; // the field itself is unhashed; already reported
            }
            for ty_ident in &field.type_idents {
                let nested_name = index.resolve_alias(ty_ident);
                if nested_name == type_name {
                    continue;
                }
                if let Some((nested_file, nested)) = index.types.get(nested_name) {
                    check_fields(
                        index,
                        nested,
                        *nested_file,
                        nested_name,
                        Some((type_name.as_str(), field.name.as_str())),
                        &surface,
                        &family_desc,
                        &mut reported,
                        pragmas,
                        findings,
                    );
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_fields(
    index: &WorkspaceIndex,
    ty: &crate::parser::TypeItem,
    type_file: usize,
    type_name: &str,
    via: Option<(&str, &str)>,
    surface: &BTreeSet<String>,
    family_desc: &str,
    reported: &mut BTreeSet<(String, String)>,
    pragmas: &mut [Pragmas],
    findings: &mut [Vec<Finding>],
) {
    for field in &ty.fields {
        if surface.contains(&field.name) {
            continue;
        }
        if !reported.insert((type_name.to_string(), field.name.clone())) {
            continue;
        }
        if pragmas[type_file].allows(Rule::FingerprintCompleteness, field.line) {
            continue;
        }
        let reach = match via {
            Some((outer, outer_field)) => {
                format!(" (feeds the handshake via `{outer}.{outer_field}`)")
            }
            None => String::new(),
        };
        findings[type_file].push(Finding {
            rule: Rule::FingerprintCompleteness,
            file: index.files[type_file].1.clone(),
            line: field.line,
            col: field.col,
            message: format!(
                "field `{}` of `{}`{} is never hashed by its fingerprint family \
                 ({family_desc}): a value-affecting field missing from the handshake \
                 lets two processes agree on a fingerprint while computing different \
                 numbers — hash it, or justify that it is value-invisible with a pragma",
                field.name, type_name, reach
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule: float-cast-on-reward-path
// ---------------------------------------------------------------------------

/// The reward computation's entry points: the method combining quality
/// and perf values into the scalar the controller optimizes, and the
/// shared clamp the baselines route every reward through.
const REWARD_ROOT_METHODS: &[(&str, &str)] = &[("RewardFn", "reward")];
const REWARD_ROOT_FREE_FNS: &[&str] = &["clamp_reward"];

fn float_cast_on_reward_path(
    index: &WorkspaceIndex,
    code_per_file: &[Vec<&Token>],
    pragmas: &mut [Pragmas],
    findings: &mut [Vec<Finding>],
) {
    let mut roots: Vec<usize> = Vec::new();
    for (f, node) in index.fns.iter().enumerate() {
        let is_root = match &node.item.impl_type {
            Some(t) => REWARD_ROOT_METHODS
                .iter()
                .any(|&(ty, name)| index.resolve_alias(t) == ty && node.item.name == name),
            None => REWARD_ROOT_FREE_FNS.contains(&node.item.name.as_str()),
        };
        if is_root {
            roots.push(f);
        }
    }
    if roots.is_empty() {
        return;
    }

    // The path: roots, the helpers they transitively call *within the
    // roots' own crates* (the reward-combination math itself), and their
    // direct callers (the code handling the returned reward). Callees in
    // other crates are the quality/perf *producers* — a whole pipeline
    // policed by the determinism rules, whose inclusion here would
    // re-create the noisy whole-crate cast ban this rule replaces.
    let root_crates: BTreeSet<&str> = roots.iter().map(|&r| index.crate_of(r)).collect();
    let mut role: BTreeMap<usize, &'static str> = BTreeMap::new();
    {
        let mut work: Vec<usize> = roots.clone();
        let mut seen: BTreeSet<usize> = roots.iter().copied().collect();
        while let Some(f) = work.pop() {
            for (_, targets) in &index.fns[f].calls {
                for &t in targets {
                    if root_crates.contains(index.crate_of(t)) && seen.insert(t) {
                        work.push(t);
                    }
                }
            }
        }
        for f in seen {
            role.insert(f, "reachable from the reward computation");
        }
    }
    for &r in &roots {
        for &caller in &index.callers[r] {
            role.entry(caller)
                .or_insert("a direct caller of the reward computation");
        }
        role.insert(r, "a reward root");
    }

    for (&f, &why) in &role {
        let node = &index.fns[f];
        let Some((open, close)) = node.item.body else {
            continue;
        };
        let code = &code_per_file[node.file];
        for j in open + 1..close {
            let t = code[j];
            if !t.is_ident("as") {
                continue;
            }
            let Some(target) = code.get(j + 1).filter(|n| n.is_any_ident(&["f64", "f32"])) else {
                continue;
            };
            if pragmas[node.file].allows(Rule::FloatCastOnRewardPath, t.line) {
                continue;
            }
            findings[node.file].push(Finding {
                rule: Rule::FloatCastOnRewardPath,
                file: index.files[node.file].1.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`as {}` inside `{}` ({why}): an inexact integer→float conversion \
                     here silently rounds a value that feeds rewards, and therefore \
                     search decisions — use an exact conversion, or state why this \
                     one cannot lose precision in a pragma",
                    target.text,
                    index.qualified_name(f)
                ),
            });
        }
    }
}
