//! Finding and rule-identity types shared by the rules engine and the CLI.

use std::fmt;

/// The nine contracts h2o-lint enforces. Rule ids (`as_str`) are what
/// the allow-pragma names: `// h2o-lint: allow(no-wallclock) -- reason`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// `Instant::now` / `SystemTime::now` outside the observability crate
    /// and bench binaries: a wall-clock read on a search/sim path breaks
    /// kill/resume determinism.
    NoWallclock,
    /// `thread_rng` / `from_entropy` / OS entropy: all randomness must
    /// flow through the seeded SplitMix64 `shard_seed` stream helpers.
    NoAmbientRng,
    /// `HashMap` / `HashSet` in crates that produce user-visible or
    /// checkpointed output: iteration order is unspecified, so ordered
    /// (`BTreeMap`/`BTreeSet`) containers are required.
    NoUnorderedCollections,
    /// `partial_cmp(..).unwrap()/.expect()` (NaN panics at comparison
    /// time) and `partial_cmp(..).unwrap_or(..)` (a NaN-swallowing
    /// fallback makes the comparator non-transitive, silently
    /// mis-sorting): `total_cmp` orders every float.
    FloatOrdering,
    /// `.unwrap()` / `.expect()` / `panic!` in non-test code of crates on
    /// the search hot path: typed errors (or a justified pragma) instead.
    PanicHygiene,
    /// `println!` / `eprintln!` / `dbg!` in library code (anything
    /// outside a `main.rs` / `src/bin/` entry point): libraries return
    /// data or go through `h2o_obs`; only binaries own the terminal.
    NoPrintlnInLibs,
    /// `unreachable!` / `todo!` in non-test code: a branch the author
    /// believed impossible is a panic waiting for the first input that
    /// disproves the belief — return a typed error (or justify the
    /// structural invariant with a pragma) instead.
    NoUnreachable,
    /// `std::process::exit` in library code: it skips every destructor on
    /// the stack — checkpoint sinks never flush, worker sockets never
    /// send Shutdown, temp dirs leak — and it makes the library unusable
    /// from a host that needs to survive the error. Return a typed error
    /// and let the binary entry point decide the exit code.
    NoProcessExit,
    /// A well-formed `allow` pragma that suppresses no finding: stale
    /// escape hatches must be deleted, or they silently license a future
    /// violation at the same site.
    UnusedPragma,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 9] = [
        Rule::NoWallclock,
        Rule::NoAmbientRng,
        Rule::NoUnorderedCollections,
        Rule::FloatOrdering,
        Rule::PanicHygiene,
        Rule::NoPrintlnInLibs,
        Rule::NoUnreachable,
        Rule::NoProcessExit,
        Rule::UnusedPragma,
    ];

    /// The stable id used in pragmas and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::NoWallclock => "no-wallclock",
            Rule::NoAmbientRng => "no-ambient-rng",
            Rule::NoUnorderedCollections => "no-unordered-collections",
            Rule::FloatOrdering => "float-ordering",
            Rule::PanicHygiene => "panic-hygiene",
            Rule::NoPrintlnInLibs => "no-println-in-libs",
            Rule::NoUnreachable => "no-unreachable",
            Rule::NoProcessExit => "no-process-exit",
            Rule::UnusedPragma => "unused-pragma",
        }
    }

    /// Parses a pragma rule id.
    pub fn parse(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.as_str() == s)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// What was found and what to do instead.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Escapes a string for inclusion in a JSON document (the tool is
/// dependency-free, so no serde here).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON array (stable field order, one object per
/// finding) for machine consumption in CI.
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}{}\n",
            f.rule,
            json_escape(&f.file),
            f.line,
            f.col,
            json_escape(&f.message),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::parse(rule.as_str()), Some(rule));
        }
        assert_eq!(Rule::parse("no-such-rule"), None);
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_array_shape() {
        let findings = vec![Finding {
            rule: Rule::NoWallclock,
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 7,
            message: "m".into(),
        }];
        let json = to_json(&findings);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"rule\": \"no-wallclock\""));
        assert!(json.contains("\"line\": 3"));
    }
}
