//! Finding and rule-identity types shared by the rules engine and the CLI.

use std::fmt;

/// The twelve contracts h2o-lint enforces. Rule ids (`as_str`) are what
/// the allow-pragma names: `// h2o-lint: allow(no-wallclock) -- reason`.
///
/// The first eight are per-file token-pattern rules; `nondet-taint`,
/// `fingerprint-completeness` and `float-cast-on-reward-path` are
/// *semantic* rules that run over the workspace symbol index and call
/// graph (see [`crate::graph`]); `unused-pragma` is the post-pass that
/// polices the escape hatch itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// `Instant::now` / `SystemTime::now` outside the observability crate
    /// and bench binaries: a wall-clock read on a search/sim path breaks
    /// kill/resume determinism.
    NoWallclock,
    /// `thread_rng` / `from_entropy` / OS entropy: all randomness must
    /// flow through the seeded SplitMix64 `shard_seed` stream helpers.
    NoAmbientRng,
    /// `HashMap` / `HashSet` in crates that produce user-visible or
    /// checkpointed output: iteration order is unspecified, so ordered
    /// (`BTreeMap`/`BTreeSet`) containers are required.
    NoUnorderedCollections,
    /// `partial_cmp(..).unwrap()/.expect()` (NaN panics at comparison
    /// time) and `partial_cmp(..).unwrap_or(..)` (a NaN-swallowing
    /// fallback makes the comparator non-transitive, silently
    /// mis-sorting): `total_cmp` orders every float.
    FloatOrdering,
    /// `.unwrap()` / `.expect()` / `panic!` in non-test code of crates on
    /// the search hot path: typed errors (or a justified pragma) instead.
    PanicHygiene,
    /// `println!` / `eprintln!` / `dbg!` in library code (anything
    /// outside a `main.rs` / `src/bin/` entry point): libraries return
    /// data or go through `h2o_obs`; only binaries own the terminal.
    NoPrintlnInLibs,
    /// `unreachable!` / `todo!` in non-test code: a branch the author
    /// believed impossible is a panic waiting for the first input that
    /// disproves the belief — return a typed error (or justify the
    /// structural invariant with a pragma) instead.
    NoUnreachable,
    /// `std::process::exit` in library code: it skips every destructor on
    /// the stack — checkpoint sinks never flush, worker sockets never
    /// send Shutdown, temp dirs leak — and it makes the library unusable
    /// from a host that needs to survive the error. Return a typed error
    /// and let the binary entry point decide the exit code.
    NoProcessExit,
    /// Cross-file taint: a function in a determinism-contract crate
    /// (`core`, `exec`, `eval`, `hwsim`, `ckpt`) calls — possibly through
    /// helpers in other crates — a function that reads a nondeterminism
    /// source (wall clock, ambient RNG, unordered-collection iteration,
    /// thread identity). The per-file rules see the source; this rule sees
    /// the *laundering path* that smuggles its value into contract code.
    NondetTaint,
    /// Every field of a struct feeding `fingerprint` /
    /// `value_fingerprint` / `value_descriptor` must be hashed by that
    /// fingerprint family (or justified value-invisible with a pragma):
    /// a behavior-affecting field missing from the handshake lets two
    /// processes agree on a fingerprint while computing different values.
    FingerprintCompleteness,
    /// `as f64` / `as f32` in functions call-graph-reachable from the
    /// reward computation (`RewardFn::reward`, `clamp_reward`, their
    /// callers and transitive callees): a silent rounding there changes
    /// rewards and therefore search decisions. Off-path casts are fine.
    FloatCastOnRewardPath,
    /// A well-formed `allow` pragma that suppresses no finding: stale
    /// escape hatches must be deleted, or they silently license a future
    /// violation at the same site.
    UnusedPragma,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 12] = [
        Rule::NoWallclock,
        Rule::NoAmbientRng,
        Rule::NoUnorderedCollections,
        Rule::FloatOrdering,
        Rule::PanicHygiene,
        Rule::NoPrintlnInLibs,
        Rule::NoUnreachable,
        Rule::NoProcessExit,
        Rule::NondetTaint,
        Rule::FingerprintCompleteness,
        Rule::FloatCastOnRewardPath,
        Rule::UnusedPragma,
    ];

    /// The stable id used in pragmas and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::NoWallclock => "no-wallclock",
            Rule::NoAmbientRng => "no-ambient-rng",
            Rule::NoUnorderedCollections => "no-unordered-collections",
            Rule::FloatOrdering => "float-ordering",
            Rule::PanicHygiene => "panic-hygiene",
            Rule::NoPrintlnInLibs => "no-println-in-libs",
            Rule::NoUnreachable => "no-unreachable",
            Rule::NoProcessExit => "no-process-exit",
            Rule::NondetTaint => "nondet-taint",
            Rule::FingerprintCompleteness => "fingerprint-completeness",
            Rule::FloatCastOnRewardPath => "float-cast-on-reward-path",
            Rule::UnusedPragma => "unused-pragma",
        }
    }

    /// Parses a pragma rule id.
    pub fn parse(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.as_str() == s)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// What was found and what to do instead.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Escapes a string for inclusion in a JSON document (the tool is
/// dependency-free, so no serde here).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON array (stable field order, one object per
/// finding) for machine consumption in CI.
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}{}\n",
            f.rule,
            json_escape(&f.file),
            f.line,
            f.col,
            json_escape(&f.message),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::parse(rule.as_str()), Some(rule));
        }
        assert_eq!(Rule::parse("no-such-rule"), None);
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_array_shape() {
        let findings = vec![Finding {
            rule: Rule::NoWallclock,
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 7,
            message: "m".into(),
        }];
        let json = to_json(&findings);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"rule\": \"no-wallclock\""));
        assert!(json.contains("\"line\": 3"));
    }
}
