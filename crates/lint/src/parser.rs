//! A lightweight item parser over the token stream: functions, structs,
//! enums, impl/trait blocks, type aliases, `use … as` renames, and module
//! nesting — just enough structure for the workspace symbol index in
//! [`crate::graph`].
//!
//! This is deliberately *not* a Rust grammar. It walks the non-trivia
//! token stream recognising item heads, pairs delimiters to find bodies,
//! and records spans as indices into that token slice. Everything it
//! cannot classify it skips; the cross-file rules built on top are
//! conservative, so an unrecognised construct degrades to "no edge in the
//! call graph", never to a crash or a false finding on unrelated code.

use crate::lexer::Token;
use std::collections::BTreeMap;

/// One `fn` item (free function, inherent/trait method, or trait default
/// method).
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// The `impl`/`trait` block's self type, if the fn is a method.
    pub impl_type: Option<String>,
    /// 1-based position of the fn's name token.
    pub line: u32,
    pub col: u32,
    /// `[open_brace, close_brace]` indices into the non-trivia token
    /// slice, or `None` for a body-less declaration (trait signature).
    pub body: Option<(usize, usize)>,
    /// Whether the fn sits inside a `#[cfg(test)]` / `#[test]` item.
    pub is_test: bool,
}

/// One named field of a struct (or of an enum's struct-like variant).
#[derive(Debug, Clone)]
pub struct FieldItem {
    pub name: String,
    /// 1-based position of the field's name token.
    pub line: u32,
    pub col: u32,
    /// Every identifier appearing in the field's type (for one-level
    /// descent into workspace-defined field types).
    pub type_idents: Vec<String>,
}

/// One `struct` or `enum` with its named fields (tuple/unit shapes have
/// no named fields and contribute an empty list).
#[derive(Debug, Clone)]
pub struct TypeItem {
    pub name: String,
    pub fields: Vec<FieldItem>,
    pub is_test: bool,
}

/// Everything the parser extracted from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    pub fns: Vec<FnItem>,
    pub types: Vec<TypeItem>,
    /// `type A = B;` and `use path::B as A;` renames, as `A → B`.
    pub aliases: Vec<(String, String)>,
}

/// One call expression inside a fn body: `name(…)`, `recv.name(…)`, or
/// `Qual::name(…)` (turbofish tolerated).
#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    /// `Q` in `Q::name(…)` — the last path segment before the `::`.
    pub qualifier: Option<String>,
    /// Whether the call is `.name(…)` on a receiver.
    pub is_method: bool,
    /// 1-based position of the called name's token.
    pub line: u32,
    pub col: u32,
}

/// Keywords that look like `ident (` in expression position but are not
/// calls, plus binding forms a call can never be named after.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "fn", "let",
    "move", "unsafe", "as", "in", "where", "impl", "dyn", "ref", "mut", "pub", "use", "mod",
    "struct", "enum", "trait", "type", "const", "static", "true", "false", "async", "await", "box",
    "yield",
];

/// Parses the non-trivia token slice of one file. `test_ranges` is the
/// `#[cfg(test)]`/`#[test]` item map from `rules::test_item_ranges`,
/// used to mark items as test code.
pub fn parse_items(code: &[&Token], test_ranges: &BTreeMap<usize, usize>) -> FileItems {
    let mut items = FileItems::default();
    parse_range(code, 0, code.len(), None, test_ranges, &mut items);
    items
}

fn in_test_range(test_ranges: &BTreeMap<usize, usize>, i: usize) -> bool {
    test_ranges.range(..=i).any(|(&s, &e)| s <= i && i < e)
}

fn parse_range(
    code: &[&Token],
    start: usize,
    end: usize,
    impl_type: Option<&str>,
    test_ranges: &BTreeMap<usize, usize>,
    items: &mut FileItems,
) {
    let mut i = start;
    while i < end {
        let t = code[i];
        if t.is_punct('#') && code.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            // Attribute: skip it (test-ness comes from `test_ranges`).
            match matching_close_within(code, i + 1, end, '[', ']') {
                Some(close) => i = close + 1,
                None => return,
            }
            continue;
        }
        if t.is_ident("fn") {
            i = parse_fn(code, i, end, impl_type, test_ranges, items);
        } else if t.is_ident("struct") || t.is_ident("enum") {
            i = parse_type(code, i, end, test_ranges, items);
        } else if t.is_ident("type") {
            i = parse_type_alias(code, i, end, items);
        } else if t.is_ident("use") {
            i = parse_use(code, i, end, items);
        } else if t.is_ident("impl") || t.is_ident("trait") {
            i = parse_impl_like(code, i, end, test_ranges, items);
        } else if t.is_ident("mod")
            && code.get(i + 1).is_some_and(|n| n.is_ident_like())
            && code.get(i + 2).is_some_and(|n| n.is_punct('{'))
        {
            match matching_close_within(code, i + 2, end, '{', '}') {
                Some(close) => {
                    parse_range(code, i + 3, close, None, test_ranges, items);
                    i = close + 1;
                }
                None => return,
            }
        } else {
            i += 1;
        }
    }
}

/// Parses `fn name …` at `i`; returns the index one past the item.
fn parse_fn(
    code: &[&Token],
    i: usize,
    end: usize,
    impl_type: Option<&str>,
    test_ranges: &BTreeMap<usize, usize>,
    items: &mut FileItems,
) -> usize {
    let Some(name_tok) = code.get(i + 1).filter(|t| t.is_ident_like()) else {
        return i + 1; // `fn` inside a type position (`impl Fn(…)`), not an item head
    };
    // Scan past the signature (generics, params, return type, where
    // clause) to the body `{` or a terminating `;` at delimiter depth 0.
    let (mut parens, mut brackets) = (0i64, 0i64);
    let mut j = i + 2;
    let mut body = None;
    while j < end {
        let t = code[j];
        if t.is_punct('(') {
            parens += 1;
        } else if t.is_punct(')') {
            parens -= 1;
        } else if t.is_punct('[') {
            brackets += 1;
        } else if t.is_punct(']') {
            brackets -= 1;
        } else if t.is_punct('{') && parens == 0 && brackets == 0 {
            match matching_close_within(code, j, end, '{', '}') {
                Some(close) => {
                    body = Some((j, close));
                    j = close + 1;
                }
                None => j = end,
            }
            break;
        } else if t.is_punct(';') && parens == 0 && brackets == 0 {
            j += 1;
            break;
        }
        j += 1;
    }
    items.fns.push(FnItem {
        name: name_tok.text.clone(),
        impl_type: impl_type.map(str::to_string),
        line: name_tok.line,
        col: name_tok.col,
        body,
        is_test: in_test_range(test_ranges, i),
    });
    j
}

/// Parses `struct Name {…}` / `struct Name(…);` / `struct Name;` /
/// `enum Name {…}` at `i`.
fn parse_type(
    code: &[&Token],
    i: usize,
    end: usize,
    test_ranges: &BTreeMap<usize, usize>,
    items: &mut FileItems,
) -> usize {
    let is_enum = code[i].is_ident("enum");
    let Some(name_tok) = code.get(i + 1).filter(|t| t.is_ident_like()) else {
        return i + 1;
    };
    let mut item = TypeItem {
        name: name_tok.text.clone(),
        fields: Vec::new(),
        is_test: in_test_range(test_ranges, i),
    };
    let mut j = i + 2;
    // Skip generics / bounds / where clause up to the defining `{`, `(`
    // (tuple struct) or `;` (unit struct) at angle depth 0.
    let mut angle = 0i64;
    while j < end {
        let t = code[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !prev_is_dash(code, j) {
            angle -= 1;
        } else if angle == 0 {
            if t.is_punct('{') {
                match matching_close_within(code, j, end, '{', '}') {
                    Some(close) => {
                        if is_enum {
                            parse_enum_variants(code, j + 1, close, &mut item);
                        } else {
                            parse_fields(code, j + 1, close, &mut item);
                        }
                        j = close + 1;
                    }
                    None => j = end,
                }
                break;
            }
            if t.is_punct('(') {
                match matching_close_within(code, j, end, '(', ')') {
                    Some(close) => j = close + 1,
                    None => j = end,
                }
                continue;
            }
            if t.is_punct(';') {
                j += 1;
                break;
            }
        }
        j += 1;
    }
    items.types.push(item);
    j
}

/// Parses the named fields between `{` and `}` of a struct body (or a
/// struct-like enum variant).
fn parse_fields(code: &[&Token], start: usize, end: usize, item: &mut TypeItem) {
    let mut i = start;
    while i < end {
        let t = code[i];
        if t.is_punct('#') && code.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            match matching_close_within(code, i + 1, end, '[', ']') {
                Some(close) => i = close + 1,
                None => return,
            }
            continue;
        }
        if t.is_ident("pub") {
            // `pub` or `pub(crate)` / `pub(super)`.
            if code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                match matching_close_within(code, i + 1, end, '(', ')') {
                    Some(close) => i = close + 1,
                    None => return,
                }
            } else {
                i += 1;
            }
            continue;
        }
        if t.is_ident_like() && code.get(i + 1).is_some_and(|n| n.is_punct(':')) {
            let mut field = FieldItem {
                name: t.text.clone(),
                line: t.line,
                col: t.col,
                type_idents: Vec::new(),
            };
            // Type runs to the `,` at delimiter depth 0 or to `end`.
            let mut j = i + 2;
            let (mut angle, mut parens, mut brackets) = (0i64, 0i64, 0i64);
            while j < end {
                let ty = code[j];
                if ty.is_punct('<') {
                    angle += 1;
                } else if ty.is_punct('>') && !prev_is_dash(code, j) {
                    angle -= 1;
                } else if ty.is_punct('(') {
                    parens += 1;
                } else if ty.is_punct(')') {
                    parens -= 1;
                } else if ty.is_punct('[') {
                    brackets += 1;
                } else if ty.is_punct(']') {
                    brackets -= 1;
                } else if ty.is_punct(',') && angle == 0 && parens == 0 && brackets == 0 {
                    break;
                } else if ty.is_ident_like() {
                    field.type_idents.push(ty.text.clone());
                }
                j += 1;
            }
            item.fields.push(field);
            i = j + 1;
            continue;
        }
        i += 1;
    }
}

/// Parses enum variants between `{` and `}`: struct-like variants
/// contribute their named fields; tuple/unit/discriminant variants are
/// skipped.
fn parse_enum_variants(code: &[&Token], start: usize, end: usize, item: &mut TypeItem) {
    let mut i = start;
    while i < end {
        let t = code[i];
        if t.is_punct('#') && code.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            match matching_close_within(code, i + 1, end, '[', ']') {
                Some(close) => i = close + 1,
                None => return,
            }
            continue;
        }
        if t.is_ident_like() {
            match code.get(i + 1) {
                Some(n) if n.is_punct('{') => {
                    match matching_close_within(code, i + 1, end, '{', '}') {
                        Some(close) => {
                            parse_fields(code, i + 2, close, item);
                            i = close + 1;
                        }
                        None => return,
                    }
                    continue;
                }
                Some(n) if n.is_punct('(') => {
                    match matching_close_within(code, i + 1, end, '(', ')') {
                        Some(close) => i = close + 1,
                        None => return,
                    }
                    continue;
                }
                _ => {}
            }
        }
        i += 1;
    }
}

/// Parses `type A = …::B;` into an `A → B` alias (B = the last
/// depth-0 identifier of the right-hand side).
fn parse_type_alias(code: &[&Token], i: usize, end: usize, items: &mut FileItems) -> usize {
    let Some(name_tok) = code.get(i + 1).filter(|t| t.is_ident_like()) else {
        return i + 1;
    };
    let mut j = i + 2;
    while j < end && !code[j].is_punct('=') && !code[j].is_punct(';') {
        j += 1;
    }
    if j >= end || code[j].is_punct(';') {
        return j.saturating_add(1).min(end); // associated type declaration
    }
    let mut target: Option<String> = None;
    let mut angle = 0i64;
    j += 1;
    while j < end && !code[j].is_punct(';') {
        let t = code[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !prev_is_dash(code, j) {
            angle -= 1;
        } else if t.is_ident_like() && angle == 0 {
            target = Some(t.text.clone());
        }
        j += 1;
    }
    if let Some(target) = target {
        if target != name_tok.text {
            items.aliases.push((name_tok.text.clone(), target));
        }
    }
    j + 1
}

/// Parses `use path::B as A;` renames (only the `as` form introduces an
/// alias worth recording; plain `use` imports keep their own name).
fn parse_use(code: &[&Token], i: usize, end: usize, items: &mut FileItems) -> usize {
    let mut j = i + 1;
    let mut last_ident: Option<String> = None;
    while j < end && !code[j].is_punct(';') && !code[j].is_punct('{') {
        let t = code[j];
        if t.is_ident("as") {
            if let (Some(orig), Some(alias)) = (
                last_ident.take(),
                code.get(j + 1).filter(|t| t.is_ident_like()),
            ) {
                if alias.text != orig {
                    items.aliases.push((alias.text.clone(), orig));
                }
                j += 2;
                continue;
            }
        } else if t.is_ident_like() {
            last_ident = Some(t.text.clone());
        }
        j += 1;
    }
    // Grouped imports (`use x::{a, b as c}`) are skipped wholesale: the
    // group's renames are rare and the rules stay conservative without
    // them.
    if j < end && code[j].is_punct('{') {
        if let Some(close) = matching_close_within(code, j, end, '{', '}') {
            return close + 1;
        }
        return end;
    }
    j + 1
}

/// Parses `impl …` / `trait …` at `i`: finds the self-type name and
/// recurses into the block body with it.
fn parse_impl_like(
    code: &[&Token],
    i: usize,
    end: usize,
    test_ranges: &BTreeMap<usize, usize>,
    items: &mut FileItems,
) -> usize {
    // The self type is the first depth-0 identifier of the last path
    // segment before the block — after `for` when present (`impl Trait
    // for Type`), otherwise the first type mentioned (`impl Type`,
    // `trait Name`).
    let mut candidate: Option<String> = None;
    let mut angle = 0i64;
    let mut j = i + 1;
    while j < end {
        let t = code[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !prev_is_dash(code, j) {
            angle -= 1;
        } else if angle == 0 {
            if t.is_punct('{') {
                break;
            }
            if t.is_punct(';') {
                return j + 1; // `impl Trait for Type;`-style marker impls
            }
            if t.is_ident("for") {
                candidate = None;
            } else if t.is_ident_like() && candidate.is_none() && !t.is_ident("dyn") {
                candidate = Some(t.text.clone());
            }
        }
        j += 1;
    }
    if j >= end {
        return end;
    }
    match matching_close_within(code, j, end, '{', '}') {
        Some(close) => {
            parse_range(code, j + 1, close, candidate.as_deref(), test_ranges, items);
            close + 1
        }
        None => end,
    }
}

/// Extracts every call expression from the body span `[open, close]`.
/// `impl_type` resolves `Self::helper(…)` qualifiers.
pub fn call_sites(code: &[&Token], body: (usize, usize), impl_type: Option<&str>) -> Vec<CallSite> {
    let mut out = Vec::new();
    let (open, close) = body;
    let mut j = open + 1;
    while j < close {
        let t = code[j];
        if !t.is_ident_like() || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            j += 1;
            continue;
        }
        // `name(…)` directly, or `name::<T>(…)` through a turbofish.
        let paren_at = if code.get(j + 1).is_some_and(|n| n.is_punct('(')) {
            Some(j + 1)
        } else if code.get(j + 1).is_some_and(|n| n.is_punct(':'))
            && code.get(j + 2).is_some_and(|n| n.is_punct(':'))
            && code.get(j + 3).is_some_and(|n| n.is_punct('<'))
        {
            matching_angle_close(code, j + 3, close)
                .filter(|&g| code.get(g + 1).is_some_and(|n| n.is_punct('(')))
                .map(|g| g + 1)
        } else {
            None
        };
        if paren_at.is_none() {
            j += 1;
            continue;
        }
        let is_method = j > open && code[j - 1].is_punct('.');
        let qualifier = if j >= open + 4
            && code[j - 1].is_punct(':')
            && code[j - 2].is_punct(':')
            && code[j - 3].is_ident_like()
        {
            let q = &code[j - 3].text;
            if q == "Self" {
                impl_type.map(str::to_string)
            } else {
                Some(q.clone())
            }
        } else {
            None
        };
        // A macro invocation (`name!(…)`) never reaches here: the `!`
        // sits between the name and the paren, failing the pattern.
        out.push(CallSite {
            name: t.text.clone(),
            qualifier,
            is_method,
            line: t.line,
            col: t.col,
        });
        j += 1;
    }
    out
}

/// `matching_close` bounded to `[open_idx, end)`.
fn matching_close_within(
    code: &[&Token],
    open_idx: usize,
    end: usize,
    open: char,
    close: char,
) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in code.iter().enumerate().take(end).skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth = depth.checked_sub(1)?;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Index of the `>` closing the `<` at `open_idx` (turbofish args),
/// ignoring `->` arrows inside fn-pointer type arguments.
fn matching_angle_close(code: &[&Token], open_idx: usize, end: usize) -> Option<usize> {
    let mut depth = 0i64;
    for j in open_idx..end {
        let t = code[j];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !prev_is_dash(code, j) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Whether the token before `j` is `-` — i.e. this `>` is half of a `->`
/// arrow, not a closing angle bracket.
fn prev_is_dash(code: &[&Token], j: usize) -> bool {
    j > 0 && code[j - 1].is_punct('-')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> FileItems {
        let tokens = lex(src);
        let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_trivia()).collect();
        let ranges = crate::rules::test_item_ranges(&code);
        parse_items(&code, &ranges)
    }

    #[test]
    fn free_fn_and_method_are_distinguished() {
        let items = parsed(
            "fn free() {}\nimpl Widget { fn method(&self) -> u32 { 1 } }\n\
             impl std::fmt::Display for Gadget { fn fmt(&self) {} }\n",
        );
        let names: Vec<(String, Option<String>)> = items
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.impl_type.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None),
                ("method".into(), Some("Widget".into())),
                ("fmt".into(), Some("Gadget".into())),
            ]
        );
        assert!(items.fns[0].body.is_some());
    }

    #[test]
    fn generic_impl_resolves_the_base_type_not_its_arguments() {
        let items = parsed("impl<'a, T: Clone> Holder<'a, T> { fn get(&self) {} }\n");
        assert_eq!(items.fns[0].impl_type.as_deref(), Some("Holder"));
    }

    #[test]
    fn struct_fields_and_types_are_recorded() {
        let items = parsed(
            "pub struct Config {\n    pub steps: usize,\n    pub lr: f64,\n    inner: Box<Nested>,\n}\n",
        );
        let t = &items.types[0];
        assert_eq!(t.name, "Config");
        let names: Vec<&str> = t.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["steps", "lr", "inner"]);
        assert_eq!(t.fields[0].line, 2);
        assert!(t.fields[2].type_idents.contains(&"Nested".to_string()));
    }

    #[test]
    fn enum_struct_variants_contribute_named_fields() {
        let items = parsed(
            "pub enum Spec {\n    Simple,\n    Tuple(u32),\n    Cached { capacity: usize },\n}\n",
        );
        let t = &items.types[0];
        assert_eq!(t.name, "Spec");
        assert_eq!(t.fields.len(), 1);
        assert_eq!(t.fields[0].name, "capacity");
    }

    #[test]
    fn fn_pointer_field_types_do_not_derail_the_field_scan() {
        let items =
            parsed("struct S {\n    hook: Box<dyn Fn(&u32) -> bool + Send>,\n    after: u64,\n}\n");
        let names: Vec<&str> = items.types[0]
            .fields
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, vec!["hook", "after"]);
    }

    #[test]
    fn type_alias_and_use_as_register() {
        let items =
            parsed("pub type Short = crate::driver::LongName;\nuse x::y::Orig as Renamed;\n");
        assert!(items
            .aliases
            .contains(&("Short".to_string(), "LongName".to_string())));
        assert!(items
            .aliases
            .contains(&("Renamed".to_string(), "Orig".to_string())));
    }

    #[test]
    fn test_items_are_marked() {
        let items = parsed(
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    struct Fixture { x: u32 }\n}\n",
        );
        assert!(!items.fns[0].is_test);
        assert!(items.fns[1].is_test, "helper inside #[cfg(test)] mod");
        assert!(items.types[0].is_test);
    }

    #[test]
    fn call_sites_classify_free_method_and_qualified() {
        let items = parsed(
            "impl W {\n    fn go(&self) {\n        helper();\n        self.step(1);\n        Other::build();\n        Self::local();\n        mac!(ignored());\n        sum::<f64>();\n    }\n}\n",
        );
        let f = &items.fns[0];
        let tokens = lex(
            "impl W {\n    fn go(&self) {\n        helper();\n        self.step(1);\n        Other::build();\n        Self::local();\n        mac!(ignored());\n        sum::<f64>();\n    }\n}\n",
        );
        let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_trivia()).collect();
        let calls = call_sites(&code, f.body.unwrap(), f.impl_type.as_deref());
        let shapes: Vec<(String, Option<String>, bool)> = calls
            .iter()
            .map(|c| (c.name.clone(), c.qualifier.clone(), c.is_method))
            .collect();
        assert_eq!(
            shapes,
            vec![
                ("helper".into(), None, false),
                ("step".into(), None, true),
                ("build".into(), Some("Other".into()), false),
                ("local".into(), Some("W".into()), false),
                ("ignored".into(), None, false),
                ("sum".into(), None, false),
            ]
        );
    }

    #[test]
    fn keywords_and_macros_are_not_calls() {
        let items =
            parsed("fn f(x: u32) { if (x > 0) { } match (x) { _ => {} } println!(\"{}\", x); }\n");
        let tokens =
            lex("fn f(x: u32) { if (x > 0) { } match (x) { _ => {} } println!(\"{}\", x); }\n");
        let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_trivia()).collect();
        let calls = call_sites(&code, items.fns[0].body.unwrap(), None);
        assert!(calls.is_empty(), "got {calls:?}");
    }
}
