//! A hand-rolled Rust lexer — just enough of the language to walk token
//! streams reliably.
//!
//! The workspace vendors its dependencies as offline stubs, so no external
//! parser (`syn`, `proc-macro2`, …) is available; and the rules in
//! [`crate::rules`] only need a faithful *token* stream, not a syntax
//! tree. The tricky parts a naive regex scan gets wrong — and this lexer
//! gets right — are exactly the ones that would cause false findings:
//!
//! - string literals (`"thread_rng"` is data, not a call), including raw
//!   strings `r#"…"#` with arbitrary `#` runs and byte strings `b"…"`;
//! - comments, line and nested block, which are *kept* as trivia tokens so
//!   the pragma scanner in [`crate::rules`] can read them;
//! - `'a` lifetimes vs `'a'` char literals (`'\''` included);
//! - float literals (`1.max(2)` must not swallow the method dot).

/// What a token is. Trivia (comments) is preserved — the allow-pragma
/// grammar lives in comments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the rules don't care which).
    Ident,
    /// `'a`, `'static` — a lifetime, *not* a char literal.
    Lifetime,
    /// `'x'`, `'\n'`, `'\''`.
    CharLit,
    /// `"…"` or `b"…"` with escapes.
    StrLit,
    /// `r"…"`, `r#"…"#`, `br##"…"##` — no escapes, hash-delimited.
    RawStrLit,
    /// Integer or float literal (one coarse kind is enough here).
    NumLit,
    /// `// …` (text includes the slashes).
    LineComment,
    /// `/* … */`, nesting respected (text includes delimiters).
    BlockComment,
    /// Any single punctuation/operator character.
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// The token's verbatim source text.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Whether this token is an identifier equal to any of `names`.
    pub fn is_any_ident(&self, names: &[&str]) -> bool {
        self.kind == TokenKind::Ident && names.contains(&self.text.as_str())
    }

    /// Whether this token is any identifier or keyword.
    pub fn is_ident_like(&self) -> bool {
        self.kind == TokenKind::Ident
    }

    /// Whether this token is trivia (a comment).
    pub fn is_trivia(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.src.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            // Count characters, not UTF-8 continuation bytes.
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a full-fidelity token stream (comments included).
///
/// The lexer never fails: bytes it cannot classify become one-character
/// [`TokenKind::Punct`] tokens, so a file with exotic syntax degrades to
/// noise rather than a crash or a skipped file.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();
    while let Some(b) = cur.peek() {
        let (line, col, start) = (cur.line, cur.col, cur.pos);
        let kind = match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
                continue;
            }
            b'/' => match cur.peek_at(1) {
                Some(b'/') => {
                    while let Some(c) = cur.peek() {
                        if c == b'\n' {
                            break;
                        }
                        cur.bump();
                    }
                    TokenKind::LineComment
                }
                Some(b'*') => {
                    cur.bump();
                    cur.bump();
                    let mut depth = 1usize;
                    while depth > 0 {
                        match (cur.peek(), cur.peek_at(1)) {
                            (Some(b'/'), Some(b'*')) => {
                                depth += 1;
                                cur.bump();
                                cur.bump();
                            }
                            (Some(b'*'), Some(b'/')) => {
                                depth -= 1;
                                cur.bump();
                                cur.bump();
                            }
                            (Some(_), _) => {
                                cur.bump();
                            }
                            (None, _) => break, // unterminated: EOF closes
                        }
                    }
                    TokenKind::BlockComment
                }
                _ => {
                    cur.bump();
                    TokenKind::Punct
                }
            },
            b'"' => {
                lex_string(&mut cur);
                TokenKind::StrLit
            }
            b'\'' => lex_quote(&mut cur),
            b'0'..=b'9' => {
                lex_number(&mut cur);
                TokenKind::NumLit
            }
            _ if is_ident_start(b) => {
                // Raw/byte string prefixes are idents up to the quote:
                // r"…", r#"…"#, b"…", br#"…"#, b'…'.
                if let Some(kind) = try_lex_prefixed_literal(&mut cur) {
                    kind
                } else {
                    while cur.peek().is_some_and(is_ident_continue) {
                        cur.bump();
                    }
                    TokenKind::Ident
                }
            }
            _ => {
                cur.bump();
                TokenKind::Punct
            }
        };
        tokens.push(Token {
            kind,
            text: src[start..cur.pos].to_string(),
            line,
            col,
        });
    }
    tokens
}

/// Consumes `"…"` with backslash escapes; the opening quote is at the
/// cursor. Unterminated strings end at EOF.
fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(b) = cur.bump() {
        match b {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// Consumes `r#*"…"#*` where the cursor sits on `r` (or the first `#` /
/// quote when called after a `b` prefix was consumed). Returns after the
/// closing delimiter.
fn lex_raw_string(cur: &mut Cursor<'_>) {
    if cur.peek() == Some(b'r') {
        cur.bump();
    }
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    'outer: while let Some(b) = cur.bump() {
        if b == b'"' {
            for i in 0..hashes {
                if cur.peek_at(i) != Some(b'#') {
                    continue 'outer;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
    }
}

/// Detects and consumes `r"…"`/`r#"…"#`/`b"…"`/`br"…"`/`b'…'` when the
/// cursor sits on the `r`/`b` prefix; returns `None` (consuming nothing)
/// for plain identifiers like `rng` or `batch`.
fn try_lex_prefixed_literal(cur: &mut Cursor<'_>) -> Option<TokenKind> {
    let b0 = cur.peek()?;
    let b1 = cur.peek_at(1);
    match (b0, b1) {
        (b'r', Some(b'"')) | (b'r', Some(b'#')) => {
            // r#ident is a raw identifier, not a raw string.
            if b1 == Some(b'#') && !raw_hashes_open_string(cur, 1) {
                return None;
            }
            lex_raw_string(cur);
            Some(TokenKind::RawStrLit)
        }
        (b'b', Some(b'"')) => {
            cur.bump();
            lex_string(cur);
            Some(TokenKind::StrLit)
        }
        (b'b', Some(b'\'')) => {
            cur.bump();
            cur.bump(); // opening quote
            if cur.peek() == Some(b'\\') {
                cur.bump();
            }
            cur.bump(); // the byte
            if cur.peek() == Some(b'\'') {
                cur.bump();
            }
            Some(TokenKind::CharLit)
        }
        (b'b', Some(b'r')) if matches!(cur.peek_at(2), Some(b'"') | Some(b'#')) => {
            if cur.peek_at(2) == Some(b'#') && !raw_hashes_open_string(cur, 2) {
                return None;
            }
            cur.bump();
            lex_raw_string(cur);
            Some(TokenKind::RawStrLit)
        }
        _ => None,
    }
}

/// Whether the run of `#`s starting at `offset` is followed by `"` —
/// distinguishing the raw string `r#"…"#` from the raw identifier
/// `r#match`.
fn raw_hashes_open_string(cur: &Cursor<'_>, mut offset: usize) -> bool {
    while cur.peek_at(offset) == Some(b'#') {
        offset += 1;
    }
    cur.peek_at(offset) == Some(b'"')
}

/// `'` starts either a lifetime (`'a`, `'static`) or a char literal
/// (`'x'`, `'\n'`). Disambiguation: after the ident run, a closing `'`
/// makes it a char literal; otherwise it was a lifetime.
fn lex_quote(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // opening quote
    match cur.peek() {
        Some(b'\\') => {
            // Escaped char literal: the escape is one char (`\n`, `\'`,
            // `\\`) or a braced unicode escape (`\u{1F600}`).
            cur.bump(); // backslash
            if cur.bump() == Some(b'u') && cur.peek() == Some(b'{') {
                while let Some(b) = cur.bump() {
                    if b == b'}' {
                        break;
                    }
                }
            }
            if cur.peek() == Some(b'\'') {
                cur.bump();
            }
            TokenKind::CharLit
        }
        Some(b) if is_ident_start(b) => {
            while cur.peek().is_some_and(is_ident_continue) {
                cur.bump();
            }
            if cur.peek() == Some(b'\'') {
                cur.bump();
                TokenKind::CharLit
            } else {
                TokenKind::Lifetime
            }
        }
        _ => {
            // Something like '3' or '(' — a one-char literal.
            cur.bump();
            if cur.peek() == Some(b'\'') {
                cur.bump();
            }
            TokenKind::CharLit
        }
    }
}

/// Consumes a numeric literal. The dot joins the literal only when a
/// digit follows (`1.5`), so `1.max(2)` and `0..n` keep their dots as
/// punctuation.
fn lex_number(cur: &mut Cursor<'_>) {
    while cur.peek().is_some_and(is_ident_continue) {
        let prev = cur.bump();
        // Exponent sign: 1e-3 / 2.5E+7.
        if matches!(prev, Some(b'e') | Some(b'E'))
            && matches!(cur.peek(), Some(b'+') | Some(b'-'))
            && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit())
        {
            cur.bump();
        }
    }
    if cur.peek() == Some(b'.') && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
        cur.bump();
        while cur.peek().is_some_and(is_ident_continue) {
            let prev = cur.bump();
            if matches!(prev, Some(b'e') | Some(b'E'))
                && matches!(cur.peek(), Some(b'+') | Some(b'-'))
                && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit())
            {
                cur.bump();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = foo::bar();");
        assert_eq!(toks[0], (TokenKind::Ident, "let".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "x".into()));
        assert_eq!(toks[2], (TokenKind::Punct, "=".into()));
        assert_eq!(toks[3], (TokenKind::Ident, "foo".into()));
        assert_eq!(toks[4], (TokenKind::Punct, ":".into()));
    }

    #[test]
    fn strings_swallow_their_contents() {
        let toks = kinds(r#"let s = "thread_rng() \" escaped"; x"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::StrLit && t.contains("thread_rng")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "thread_rng"));
        assert_eq!(toks.last().unwrap(), &(TokenKind::Ident, "x".into()));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r#\"a \" b\"#; let t = r\"plain\"; end";
        let toks = kinds(src);
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::RawStrLit)
                .count(),
            2
        );
        assert_eq!(toks.last().unwrap(), &(TokenKind::Ident, "end".into()));
    }

    #[test]
    fn byte_and_byte_raw_strings() {
        let toks = kinds("let a = b\"bytes\"; let c = br#\"raw \" bytes\"#; done");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::StrLit && t == "b\"bytes\""));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStrLit && t.starts_with("br#")));
        assert_eq!(toks.last().unwrap(), &(TokenKind::Ident, "done".into()));
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let toks = kinds("let r#match = 1; tail");
        assert!(toks.iter().all(|(k, _)| *k != TokenKind::RawStrLit));
        assert_eq!(toks.last().unwrap(), &(TokenKind::Ident, "tail".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds(
            "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let q = '\\''; let b = '\\\\'; }",
        );
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2,
            "two 'a lifetimes"
        );
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::CharLit)
                .count(),
            4,
            "'x', '\\n', '\\'' and '\\\\' are char literals"
        );
        assert_eq!(toks.last().unwrap(), &(TokenKind::Punct, "}".into()));
    }

    #[test]
    fn static_lifetime_is_a_lifetime() {
        let toks = kinds("x: &'static str");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'static"));
    }

    #[test]
    fn line_comments_are_trivia_with_text() {
        let toks = kinds("code(); // h2o-lint: allow(x) -- why\nmore();");
        let comment = toks
            .iter()
            .find(|(k, _)| *k == TokenKind::LineComment)
            .unwrap();
        assert!(comment.1.contains("h2o-lint: allow(x)"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "more"));
    }

    #[test]
    fn block_comments_nest() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::BlockComment)
                .count(),
            1
        );
        assert_eq!(toks.first().unwrap(), &(TokenKind::Ident, "a".into()));
        assert_eq!(toks.last().unwrap(), &(TokenKind::Ident, "b".into()));
    }

    #[test]
    fn numbers_do_not_eat_method_dots() {
        let toks = kinds("1.max(2) + 1.5e-3 + 0..n");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "max"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::NumLit && t == "1.5e-3"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::NumLit && t == "0"));
    }

    #[test]
    fn line_and_column_positions() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_string_reaches_eof_without_panic() {
        let toks = kinds("let s = \"never closed");
        assert_eq!(toks.last().unwrap().0, TokenKind::StrLit);
    }
}
