//! Workspace-level orchestration: per-file token rules → symbol index →
//! call graph → semantic rules → escape-hatch post-pass.
//!
//! [`lint_files`] is the one entry point every mode funnels through:
//! `lint_workspace` hands it the whole tree, `lint_source` hands it a
//! single file (which makes the token rules behave exactly as in v1,
//! while the semantic rules see a one-file call graph). The ordering
//! matters: the `unused-pragma` pass must run *after* both the token and
//! the semantic rules, because either may be what a pragma suppresses.

use crate::findings::Finding;
use crate::graph::WorkspaceIndex;
use crate::lexer::{lex, Token};
use crate::parser::parse_items;
use crate::rules;
use crate::semantic;

/// One source file presented to the analyzer.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// The owning crate's directory name (`core`, …, or `h2o-nas`).
    pub crate_name: String,
    /// Workspace-relative path, as reported in findings.
    pub rel_path: String,
    pub source: String,
}

/// Lints a set of files as one workspace, returning findings in
/// `(file, line, col, rule)` order.
pub fn lint_files(files: &[SourceFile]) -> Vec<Finding> {
    // Per-file analysis: lex, pragma table, test ranges, token rules.
    let tokens_per_file: Vec<Vec<Token>> = files.iter().map(|f| lex(&f.source)).collect();
    let code_per_file: Vec<Vec<&Token>> = tokens_per_file
        .iter()
        .map(|tokens| tokens.iter().filter(|t| !t.is_trivia()).collect())
        .collect();
    let mut pragmas: Vec<rules::Pragmas> = tokens_per_file
        .iter()
        .map(|tokens| rules::collect_pragmas(tokens))
        .collect();
    let test_ranges: Vec<_> = code_per_file
        .iter()
        .map(|code| rules::test_item_ranges(code))
        .collect();
    let mut findings: Vec<Vec<Finding>> = files
        .iter()
        .enumerate()
        .map(|(i, f)| {
            rules::token_pass(
                &f.crate_name,
                &f.rel_path,
                &code_per_file[i],
                &test_ranges[i],
                &mut pragmas[i],
            )
        })
        .collect();

    // Workspace pass: parse items, build the symbol index + call graph,
    // run the semantic rules.
    let metas: Vec<(String, String)> = files
        .iter()
        .map(|f| (f.crate_name.clone(), f.rel_path.clone()))
        .collect();
    let items_per_file: Vec<_> = code_per_file
        .iter()
        .zip(&test_ranges)
        .map(|(code, ranges)| parse_items(code, ranges))
        .collect();
    let index = WorkspaceIndex::build(&metas, &items_per_file, &code_per_file);
    semantic::run(&index, &code_per_file, &mut pragmas, &mut findings);

    // Escape-hatch post-pass, then a stable global order.
    let mut all: Vec<Finding> = Vec::new();
    for (i, f) in files.iter().enumerate() {
        all.append(&mut findings[i]);
        all.extend(rules::unused_pragma_pass(
            &f.rel_path,
            &code_per_file[i],
            &test_ranges[i],
            &mut pragmas[i],
        ));
    }
    all.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    all
}
