//! The `h2o-lint` binary: lints the workspace, prints findings, exits
//! non-zero when any contract is violated.
//!
//! ```text
//! h2o-lint [--json] [--root <path>]
//! ```
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root requires a path"),
            },
            "-h" | "--help" => {
                println!(
                    "h2o-lint: workspace invariant checker\n\n\
                     USAGE: h2o-lint [--json] [--root <path>]\n\n\
                     Enforces the determinism/panic-safety/reproducibility contracts\n\
                     (see DESIGN.md, \"static-analysis contract\"). Rules:"
                );
                for rule in h2o_lint::Rule::ALL {
                    println!("  - {rule}");
                }
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| h2o_lint::find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => return usage("could not locate the workspace root; pass --root"),
    };

    let report = match h2o_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("h2o-lint: error: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", h2o_lint::to_json(&report.findings));
    } else {
        for finding in &report.findings {
            println!("{finding}");
        }
        if report.is_clean() {
            println!(
                "h2o-lint: workspace clean ({} files checked)",
                report.files_checked
            );
        } else {
            println!(
                "h2o-lint: {} finding(s) in {} files checked",
                report.findings.len(),
                report.files_checked
            );
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("h2o-lint: {msg}\nUSAGE: h2o-lint [--json] [--root <path>]");
    ExitCode::from(2)
}
