//! The invariant rules, their crate scopes, and the allow-pragma
//! machinery.
//!
//! Rules run over the token stream from [`crate::lexer`] — no syntax tree
//! and no type information, which bounds what they can express (see
//! DESIGN.md, "static-analysis contract"). Each rule is a token-pattern
//! matcher plus a *crate scope*: the set of workspace crates whose output
//! contracts the rule protects.
//!
//! Code under `#[cfg(test)]` / `#[test]` items is exempt from every rule
//! (a test may unwrap freely), as are the `tests/`, `examples/` and
//! `benches/` directories, which the workspace walker never visits.
//!
//! # Escape hatch
//!
//! A finding is suppressed by a pragma **with a justification**:
//!
//! ```text
//! // h2o-lint: allow(panic-hygiene) -- slots are filled exactly once by construction
//! ```
//!
//! on the same line as the finding or on the comment line(s) directly
//! above it. A pragma without a non-empty reason after `--` does not
//! suppress anything.
//!
//! The escape hatch polices itself: a well-formed pragma that suppresses
//! **no** finding (the code it justified was refactored away, or the rule
//! never fires in that crate) is reported as `unused-pragma` — stale
//! pragmas must be deleted, not left to license a future violation.

use crate::findings::{Finding, Rule};
use crate::lexer::{Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// Where a rule applies, expressed over crate directory names (`core`,
/// `hwsim`, …; the root `h2o-nas` package participates as `h2o-nas`).
pub(crate) enum Scope {
    /// Every workspace crate except the listed ones.
    AllExcept(&'static [&'static str]),
    /// Only the listed crates.
    Only(&'static [&'static str]),
}

impl Scope {
    pub(crate) fn contains(&self, crate_name: &str) -> bool {
        match self {
            Scope::AllExcept(excluded) => !excluded.contains(&crate_name),
            Scope::Only(included) => included.contains(&crate_name),
        }
    }
}

/// The crates whose CSV/console/checkpoint output must be reproducible:
/// unordered iteration anywhere here can leak schedule- or hash-order
/// noise into user-visible bytes.
pub(crate) const ORDERED_OUTPUT_CRATES: &[&str] =
    &["core", "data", "hwsim", "tensor", "ckpt", "eval"];

/// The crates bound by the determinism contract end to end: controller,
/// executor, evaluation backends, hardware simulator, checkpoints. The
/// `nondet-taint` rule flags any call path that carries a nondeterminism
/// source's value into these crates.
pub(crate) const NONDET_CONTRACT_CRATES: &[&str] = &["ckpt", "core", "eval", "exec", "hwsim"];

/// The crates on the search hot path, where a panic kills a multi-hour
/// run: errors must be typed (or the panic justified by a pragma). `obs`
/// is included because every hot-path step crosses it, and `bench`
/// because a panicking harness scenario loses the whole baseline run.
/// `tensor`/`graph`/`models`/`space` carry the decode → build-graph →
/// train path every shard evaluator (and every worker node) runs per
/// candidate, so a panic there takes down a distributed run too; `eval`
/// is the backend layer every one of those evaluations flows through.
const PANIC_SCOPED_CRATES: &[&str] = &[
    "core",
    "exec",
    "hwsim",
    "data",
    "ckpt",
    "perfmodel",
    "obs",
    "bench",
    "tensor",
    "space",
    "models",
    "graph",
    "eval",
];

/// Crates allowed to read the wall clock: the observability crate (spans,
/// histograms — the `step_time_ms` sink measures through it) and the
/// bench harness binaries, which exist to measure wall time.
pub(crate) const WALLCLOCK_ALLOWED_CRATES: &[&str] = &["obs", "bench"];

pub(crate) fn scope_of(rule: Rule) -> Scope {
    match rule {
        Rule::NoWallclock => Scope::AllExcept(WALLCLOCK_ALLOWED_CRATES),
        Rule::NoAmbientRng => Scope::AllExcept(&[]),
        Rule::NoUnorderedCollections => Scope::Only(ORDERED_OUTPUT_CRATES),
        Rule::FloatOrdering => Scope::AllExcept(&[]),
        Rule::PanicHygiene => Scope::Only(PANIC_SCOPED_CRATES),
        Rule::NoPrintlnInLibs => Scope::AllExcept(&[]),
        Rule::NoUnreachable => Scope::AllExcept(&[]),
        Rule::NoProcessExit => Scope::AllExcept(&[]),
        Rule::NondetTaint => Scope::Only(NONDET_CONTRACT_CRATES),
        Rule::FingerprintCompleteness => Scope::AllExcept(&[]),
        Rule::FloatCastOnRewardPath => Scope::AllExcept(&[]),
        Rule::UnusedPragma => Scope::AllExcept(&[]),
    }
}

/// Whether a workspace-relative path is a binary entry point — the only
/// code that owns the terminal and may print. Everything else is library
/// code, where `no-println-in-libs` applies.
fn is_binary_entry(rel_path: &str) -> bool {
    rel_path == "main.rs"
        || rel_path.ends_with("/main.rs")
        || rel_path.contains("/bin/")
        || rel_path.starts_with("bin/")
}

/// Macros that write to the process's stdout/stderr directly.
const PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// RNG constructors that bypass the seeded SplitMix64 stream discipline.
pub(crate) const AMBIENT_RNG_IDENTS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "ThreadRng",
    "getrandom",
];

/// Lints one source file in isolation, as a one-file workspace: the
/// token-pattern rules see everything they ever did, and the semantic
/// rules see whatever call graph the single file carries. `crate_name`
/// is the crate's directory name (`core`, `data`, …, or `h2o-nas` for
/// the root package); `rel_path` is the workspace-relative path reported
/// in findings.
pub fn lint_source(crate_name: &str, rel_path: &str, src: &str) -> Vec<Finding> {
    crate::analysis::lint_files(&[crate::analysis::SourceFile {
        crate_name: crate_name.to_string(),
        rel_path: rel_path.to_string(),
        source: src.to_string(),
    }])
}

/// Runs every in-scope token-pattern rule over one file's non-trivia
/// token slice, suppressing pragma'd findings (and marking those pragmas
/// used). The `unused-pragma` post-pass runs later, in
/// [`crate::analysis::lint_files`], after the semantic rules have had
/// their chance to consume pragmas too.
pub(crate) fn token_pass(
    crate_name: &str,
    rel_path: &str,
    code: &[&Token],
    test_ranges: &BTreeMap<usize, usize>,
    pragmas: &mut Pragmas,
) -> Vec<Finding> {
    let active: Vec<Rule> = Rule::ALL
        .into_iter()
        .filter(|&r| {
            !matches!(
                r,
                Rule::UnusedPragma
                    | Rule::NondetTaint
                    | Rule::FingerprintCompleteness
                    | Rule::FloatCastOnRewardPath
            ) && scope_of(r).contains(crate_name)
        })
        .filter(|&r| {
            !(matches!(r, Rule::NoPrintlnInLibs | Rule::NoProcessExit) && is_binary_entry(rel_path))
        })
        .collect();

    let mut findings = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if let Some(&end) = test_ranges.get(&i) {
            i = end;
            continue;
        }
        for &rule in &active {
            if let Some(finding) = match_rule(rule, code, i, rel_path) {
                if !pragmas.allows(rule, finding.line) {
                    findings.push(finding);
                }
            }
        }
        i += 1;
    }
    findings
}

/// The escape-hatch post-pass: every well-formed pragma that suppressed
/// nothing is a stale escape hatch. Pragmas inside test items are exempt
/// — test code is outside every rule, so theirs can never suppress
/// anything.
pub(crate) fn unused_pragma_pass(
    rel_path: &str,
    code: &[&Token],
    test_ranges: &BTreeMap<usize, usize>,
    pragmas: &mut Pragmas,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let test_line_spans: Vec<(u32, u32)> = test_ranges
        .iter()
        .map(|(&start, &end)| (code[start].line, code[end - 1].line))
        .collect();
    for (line, rule, col) in pragmas.unused() {
        if test_line_spans
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
        {
            continue;
        }
        if pragmas.allows(Rule::UnusedPragma, line) {
            continue;
        }
        findings.push(Finding {
            rule: Rule::UnusedPragma,
            file: rel_path.to_string(),
            line,
            col,
            message: format!(
                "`allow({rule})` suppresses nothing here — the finding it justified \
                 is gone (or the rule never fires in this crate); delete the stale \
                 pragma"
            ),
        });
    }
    findings
}

/// Tries every rule pattern anchored at token `i`; at most one finding
/// per (rule, token) anchor.
fn match_rule(rule: Rule, code: &[&Token], i: usize, rel_path: &str) -> Option<Finding> {
    let t = code[i];
    let finding = |message: String| {
        Some(Finding {
            rule,
            file: rel_path.to_string(),
            line: t.line,
            col: t.col,
            message,
        })
    };
    match rule {
        Rule::NoWallclock => {
            if (t.is_ident("Instant") || t.is_ident("SystemTime"))
                && path_sep(code, i + 1)
                && code.get(i + 3).is_some_and(|n| n.is_ident("now"))
            {
                return finding(format!(
                    "{}::now() reads the wall clock; search/simulator paths must stay \
                     deterministic across kill/resume — time through `h2o_obs` spans or \
                     histograms instead",
                    t.text
                ));
            }
            None
        }
        Rule::NoAmbientRng => {
            if t.kind == TokenKind::Ident && AMBIENT_RNG_IDENTS.contains(&t.text.as_str()) {
                return finding(format!(
                    "`{}` draws OS/ambient entropy; derive every RNG from the SplitMix64 \
                     `shard_seed`/stream helpers so runs replay bit-identically",
                    t.text
                ));
            }
            None
        }
        Rule::NoUnorderedCollections => {
            if t.is_ident("HashMap") || t.is_ident("HashSet") {
                return finding(format!(
                    "`{}` has unspecified iteration order; this crate produces \
                     user-visible or checkpointed output — use BTreeMap/BTreeSet (or \
                     justify with a pragma that order never escapes)",
                    t.text
                ));
            }
            None
        }
        Rule::FloatOrdering => {
            if t.is_ident("partial_cmp") && code.get(i + 1).is_some_and(|p| p.is_punct('(')) {
                let close = matching_close(code, i + 1, '(', ')')?;
                if code.get(close + 1).is_some_and(|d| d.is_punct('.')) {
                    if let Some(next) = code.get(close + 2) {
                        if next.is_ident("unwrap") || next.is_ident("expect") {
                            return finding(
                                "partial_cmp().unwrap()/.expect() panics on NaN (rewards \
                                 can be NaN under diverged training) — use total_cmp"
                                    .to_string(),
                            );
                        }
                        if next.is_ident("unwrap_or")
                            || next.is_ident("unwrap_or_else")
                            || next.is_ident("unwrap_or_default")
                        {
                            return finding(format!(
                                "partial_cmp().{}() swallows the NaN case: \"NaN compares \
                                 equal to everything\" is not transitive, so a sort using \
                                 this comparator silently mis-orders — use total_cmp",
                                next.text
                            ));
                        }
                    }
                }
            }
            None
        }
        Rule::PanicHygiene => {
            let panicking_method = (t.is_ident("unwrap")
                || t.is_ident("expect")
                || t.is_ident("unwrap_err")
                || t.is_ident("expect_err"))
                && i > 0
                && (code[i - 1].is_punct('.') || path_sep_back(code, i))
                && code.get(i + 1).is_some_and(|p| p.is_punct('('));
            if panicking_method {
                return finding(format!(
                    "`.{}()` can panic on a search-reachable path; return a typed error \
                     (or justify the invariant with a pragma)",
                    t.text
                ));
            }
            if t.is_ident("panic") && code.get(i + 1).is_some_and(|p| p.is_punct('!')) {
                return finding(
                    "`panic!` on a search-reachable path; return a typed error (or \
                     justify the invariant with a pragma)"
                        .to_string(),
                );
            }
            None
        }
        Rule::NoPrintlnInLibs => {
            if t.kind == TokenKind::Ident
                && PRINT_MACROS.contains(&t.text.as_str())
                && code.get(i + 1).is_some_and(|p| p.is_punct('!'))
            {
                return finding(format!(
                    "`{}!` writes to the terminal from library code; return the text to \
                     the caller or record it through `h2o_obs` — only binary entry \
                     points (`main.rs`, `src/bin/`) own stdout/stderr",
                    t.text
                ));
            }
            None
        }
        Rule::NoUnreachable => {
            if (t.is_ident("unreachable") || t.is_ident("todo"))
                && code.get(i + 1).is_some_and(|p| p.is_punct('!'))
            {
                return finding(format!(
                    "`{}!` in non-test code: the first input that disproves the \
                     \"impossible\" branch panics the run — return a typed error, or \
                     justify the structural invariant with a pragma",
                    t.text
                ));
            }
            None
        }
        Rule::NoProcessExit => {
            if t.is_ident("process")
                && path_sep(code, i + 1)
                && code.get(i + 3).is_some_and(|n| n.is_ident("exit"))
                && code.get(i + 4).is_some_and(|p| p.is_punct('('))
            {
                return finding(
                    "`process::exit` in library code skips every destructor on the \
                     stack — checkpoint sinks never flush, worker sockets never say \
                     goodbye; return a typed error and let the binary entry point \
                     pick the exit code"
                        .to_string(),
                );
            }
            None
        }
        // Semantic rules run over the workspace call graph in
        // `crate::semantic`; `unused-pragma` is the post-pass above.
        Rule::NondetTaint
        | Rule::FingerprintCompleteness
        | Rule::FloatCastOnRewardPath
        | Rule::UnusedPragma => None,
    }
}

/// Whether tokens `i`, `i+1` are the `::` path separator.
pub(crate) fn path_sep(code: &[&Token], i: usize) -> bool {
    code.get(i).is_some_and(|a| a.is_punct(':')) && code.get(i + 1).is_some_and(|b| b.is_punct(':'))
}

/// Whether the two tokens before `i` are `::` (e.g. `Option::unwrap`).
fn path_sep_back(code: &[&Token], i: usize) -> bool {
    i >= 2 && code[i - 1].is_punct(':') && code[i - 2].is_punct(':')
}

/// Index of the token closing the group opened at `open_idx`, honouring
/// nesting of the same delimiter pair.
fn matching_close(code: &[&Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in code.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Test-item detection
// ---------------------------------------------------------------------------

/// Maps the index of each token starting a `#[cfg(test)]`/`#[test]` item
/// to the index one past that item's end. The walker jumps the whole
/// item, so nothing inside test modules or test functions is linted.
pub(crate) fn test_item_ranges(code: &[&Token]) -> BTreeMap<usize, usize> {
    let mut ranges = BTreeMap::new();
    let mut i = 0usize;
    while i < code.len() {
        if code[i].is_punct('#') && code.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let Some(attr_end) = matching_close(code, i + 1, '[', ']') else {
                break;
            };
            let attr = &code[i + 2..attr_end];
            // `test` present without `not`: matches #[test], #[cfg(test)],
            // #[cfg(all(test, …))] — and deliberately not #[cfg(not(test))].
            let is_test =
                attr.iter().any(|t| t.is_ident("test")) && !attr.iter().any(|t| t.is_ident("not"));
            if is_test {
                let end = skip_item(code, attr_end + 1);
                ranges.insert(i, end);
                i = end;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Returns the index one past the item starting at `start`: consumes any
/// further attributes, then either a `{…}` body (functions, modules,
/// impls) or a `;`-terminated declaration, tracking delimiter depth so a
/// `;` inside a signature's generics or a nested block never ends the
/// scan early.
fn skip_item(code: &[&Token], start: usize) -> usize {
    let mut i = start;
    // Further attributes on the same item.
    while i < code.len()
        && code[i].is_punct('#')
        && code.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        match matching_close(code, i + 1, '[', ']') {
            Some(end) => i = end + 1,
            None => return code.len(),
        }
    }
    let (mut parens, mut brackets, mut braces) = (0i64, 0i64, 0i64);
    let mut entered_braces = false;
    while i < code.len() {
        let t = code[i];
        if t.is_punct('(') {
            parens += 1;
        } else if t.is_punct(')') {
            parens -= 1;
        } else if t.is_punct('[') {
            brackets += 1;
        } else if t.is_punct(']') {
            brackets -= 1;
        } else if t.is_punct('{') {
            braces += 1;
            entered_braces = true;
        } else if t.is_punct('}') {
            braces -= 1;
            if entered_braces && braces == 0 {
                return i + 1;
            }
        } else if t.is_punct(';') && parens == 0 && brackets == 0 && braces == 0 {
            return i + 1;
        }
        i += 1;
    }
    code.len()
}

// ---------------------------------------------------------------------------
// Pragmas
// ---------------------------------------------------------------------------

pub(crate) struct Pragmas {
    /// Line → (rule allowed with a valid justification → pragma column).
    by_line: BTreeMap<u32, BTreeMap<Rule, u32>>,
    /// `(line, rule)` pragmas that suppressed at least one finding.
    used: BTreeSet<(u32, Rule)>,
    /// Lines carrying at least one non-trivia token.
    code_lines: BTreeSet<u32>,
    /// Lines carrying at least one comment token.
    comment_lines: BTreeSet<u32>,
}

impl Pragmas {
    /// Whether `rule` is allowed at `line`: a pragma on the line itself,
    /// or on the run of comment-only lines directly above it. The
    /// allowing pragma is marked used (feeding the `unused-pragma` pass).
    pub(crate) fn allows(&mut self, rule: Rule, line: u32) -> bool {
        if self
            .by_line
            .get(&line)
            .is_some_and(|s| s.contains_key(&rule))
        {
            self.used.insert((line, rule));
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 && self.comment_lines.contains(&l) && !self.code_lines.contains(&l) {
            if self.by_line.get(&l).is_some_and(|s| s.contains_key(&rule)) {
                self.used.insert((l, rule));
                return true;
            }
            l -= 1;
        }
        false
    }

    /// Well-formed pragmas that never suppressed a finding, as
    /// `(line, rule, col)` in line order.
    pub(crate) fn unused(&self) -> Vec<(u32, Rule, u32)> {
        self.by_line
            .iter()
            .flat_map(|(&line, rules)| {
                rules
                    .iter()
                    .filter(move |&(&rule, _)| !self.used.contains(&(line, rule)))
                    .map(move |(&rule, &col)| (line, rule, col))
            })
            .collect()
    }
}

/// Scans every comment for `h2o-lint: allow(<rule>) -- <reason>`. A
/// pragma only registers when the rule id is known **and** the reason is
/// non-empty — an unjustified pragma suppresses nothing.
pub(crate) fn collect_pragmas(tokens: &[Token]) -> Pragmas {
    let mut by_line: BTreeMap<u32, BTreeMap<Rule, u32>> = BTreeMap::new();
    let mut code_lines = BTreeSet::new();
    let mut comment_lines = BTreeSet::new();
    for t in tokens {
        if t.is_trivia() {
            comment_lines.insert(t.line);
            // Doc comments are documentation, not directives: rustdoc
            // text quoting the pragma syntax (this linter's own docs do)
            // must not register as a live pragma — which the unused-pragma
            // pass would then flag as stale.
            let is_doc = ["///", "//!", "/**", "/*!"]
                .iter()
                .any(|prefix| t.text.starts_with(prefix));
            if is_doc {
                continue;
            }
            for (rule, reason) in parse_pragmas(&t.text) {
                if !reason.is_empty() {
                    by_line
                        .entry(t.line)
                        .or_default()
                        .entry(rule)
                        .or_insert(t.col);
                }
            }
        } else {
            code_lines.insert(t.line);
        }
    }
    Pragmas {
        by_line,
        used: BTreeSet::new(),
        code_lines,
        comment_lines,
    }
}

/// Extracts every `h2o-lint: allow(<rule>) -- <reason>` from one comment's
/// text. The reason runs to the end of the comment (line comments) or to
/// the closing delimiter (block comments).
fn parse_pragmas(comment: &str) -> Vec<(Rule, String)> {
    const KEY: &str = "h2o-lint: allow(";
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find(KEY) {
        rest = &rest[at + KEY.len()..];
        let Some(close) = rest.find(')') else { break };
        let rule_id = rest[..close].trim();
        let after = rest[close + 1..].trim_start();
        if let Some(rule) = Rule::parse(rule_id) {
            if let Some(reason) = after.strip_prefix("--") {
                let reason = reason.trim().trim_end_matches("*/").trim();
                out.push((rule, reason.to_string()));
            }
        }
        rest = &rest[close + 1..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_in(crate_name: &str, src: &str) -> Vec<Finding> {
        lint_source(crate_name, "test.rs", src)
    }

    #[test]
    fn pragma_requires_reason() {
        let bare = "fn f() { let t = Instant::now(); } // h2o-lint: allow(no-wallclock)\n";
        assert_eq!(lint_in("core", bare).len(), 1, "reasonless pragma ignored");
        let justified =
            "fn f() { let t = Instant::now(); } // h2o-lint: allow(no-wallclock) -- bench only\n";
        assert!(lint_in("core", justified).is_empty());
    }

    #[test]
    fn pragma_on_preceding_comment_line() {
        let src = "\
// h2o-lint: allow(no-ambient-rng) -- interactive tool, determinism not required
let mut rng = thread_rng();
";
        assert!(lint_in("core", src).is_empty());
    }

    #[test]
    fn pragma_does_not_leak_past_code_lines() {
        let src = "\
// h2o-lint: allow(no-ambient-rng) -- only for the next line
let a = thread_rng();
let b = thread_rng();
";
        let found = lint_in("core", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "\
pub fn lib() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let x: Option<u32> = None; x.unwrap(); }
}
";
        assert!(lint_in("core", src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nfn f(x: Option<u32>) { x.unwrap(); }\n";
        assert_eq!(lint_in("core", src).len(), 1);
    }

    #[test]
    fn scope_excludes_unlisted_crates() {
        let src = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
        assert_eq!(lint_in("core", src).len(), 2, "two HashMap tokens");
        assert!(
            lint_in("space", src).is_empty(),
            "space is not output-ordered"
        );
        assert!(
            lint_in("obs", src).is_empty(),
            "obs is outside the collections scope"
        );
    }

    #[test]
    fn stale_pragma_is_a_finding() {
        let src = "\
// h2o-lint: allow(panic-hygiene) -- stale: the unwrap was refactored away
fn f() -> u32 { 1 }
";
        let found = lint_in("core", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::UnusedPragma);
        assert_eq!(found[0].line, 1);
        assert!(found[0].message.contains("allow(panic-hygiene)"));
    }

    #[test]
    fn pragma_for_out_of_scope_rule_is_unused() {
        // panic-hygiene never fires in `lint`, so the pragma there
        // suppresses nothing even though an unwrap sits right under it.
        let src = "\
// h2o-lint: allow(panic-hygiene) -- wrong crate for this rule
fn f(x: Option<u32>) -> u32 { x.unwrap() }
";
        let found = lint_in("lint", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::UnusedPragma);
    }

    #[test]
    fn pragma_inside_test_code_is_exempt_from_unused() {
        let src = "\
pub fn lib() {}
#[cfg(test)]
mod tests {
    // h2o-lint: allow(panic-hygiene) -- tests may unwrap anyway
    #[test]
    fn t() {}
}
";
        assert!(lint_in("core", src).is_empty());
    }

    #[test]
    fn doc_comment_pragma_text_is_not_a_pragma() {
        // Quoting the pragma syntax in rustdoc neither suppresses the
        // finding below nor registers as a stale pragma.
        let src = "\
/// Use `// h2o-lint: allow(no-wallclock) -- reason` to suppress.
fn f() { let t = Instant::now(); }
";
        let found = lint_in("core", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::NoWallclock);
    }

    #[test]
    fn reasonless_pragma_is_not_reported_unused() {
        // A reasonless pragma never registers, so it is neither an escape
        // hatch nor a stale one — only the underlying finding fires.
        let bare = "fn f() { let t = Instant::now(); } // h2o-lint: allow(no-wallclock)\n";
        let found = lint_in("core", bare);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::NoWallclock);
    }

    #[test]
    fn panic_hygiene_covers_the_whole_candidate_eval_path() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        for scoped in ["obs", "bench", "tensor", "space", "models", "graph"] {
            assert_eq!(lint_in(scoped, src).len(), 1, "{scoped} is in scope");
        }
        assert!(lint_in("lint", src).is_empty(), "lint stays out of scope");
    }

    #[test]
    fn println_in_library_code_fires_for_every_print_macro() {
        for mac in ["println", "print", "eprintln", "eprint", "dbg"] {
            let src = format!("fn f() {{ {mac}!(\"x\"); }}\n");
            let found = lint_in("space", &src);
            assert_eq!(found.len(), 1, "{mac}! should fire");
            assert_eq!(found[0].rule, Rule::NoPrintlnInLibs);
        }
    }

    #[test]
    fn println_in_binary_entry_points_is_allowed() {
        let src = "fn main() { println!(\"usage\"); }\n";
        for path in ["crates/lint/src/main.rs", "src/bin/h2o.rs", "main.rs"] {
            assert!(
                lint_source("h2o-nas", path, src).is_empty(),
                "{path} owns the terminal"
            );
        }
        assert_eq!(
            lint_source("h2o-nas", "src/distributed.rs", src).len(),
            1,
            "library modules of a package with binaries are still libraries"
        );
    }

    #[test]
    fn writeln_to_a_caller_supplied_writer_is_fine() {
        let src = "fn f(w: &mut impl std::io::Write) { let _ = writeln!(w, \"x\"); }\n";
        assert!(lint_in("space", src).is_empty());
    }

    #[test]
    fn string_contents_never_fire() {
        let src = "fn f() { let s = \"thread_rng Instant::now unwrap()\"; }\n";
        assert!(lint_in("core", src).is_empty());
    }

    #[test]
    fn partial_cmp_unwrap_or_variants_all_fire() {
        for call in [
            "unwrap_or(std::cmp::Ordering::Equal)",
            "unwrap_or_else(|| std::cmp::Ordering::Equal)",
            "unwrap_or_default()",
        ] {
            let src = format!("fn f(a: f64, b: f64) {{ let _ = a.partial_cmp(&b).{call}; }}\n");
            let found = lint_in("space", &src);
            assert_eq!(found.len(), 1, "partial_cmp().{call} should fire");
            assert_eq!(found[0].rule, Rule::FloatOrdering);
        }
    }

    #[test]
    fn unwrap_or_without_partial_cmp_is_fine() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
        assert!(lint_in("space", src).is_empty());
    }

    #[test]
    fn unreachable_and_todo_fire_everywhere() {
        for mac in ["unreachable", "todo"] {
            let src = format!("fn f(x: u32) {{ match x {{ 0 => {{}}, _ => {mac}!() }} }}\n");
            for crate_name in ["core", "lint", "h2o-nas"] {
                let found = lint_in(crate_name, &src);
                assert_eq!(found.len(), 1, "{mac}! should fire in {crate_name}");
                assert_eq!(found[0].rule, Rule::NoUnreachable);
            }
        }
    }

    #[test]
    fn unreachable_in_test_code_is_exempt() {
        let src = "\
pub fn lib() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t(x: u32) { match x { 0 => {}, _ => unreachable!() } }
}
";
        assert!(lint_in("core", src).is_empty());
    }

    #[test]
    fn process_exit_fires_in_library_code_everywhere() {
        let src = "fn f() { std::process::exit(1); }\n";
        for crate_name in ["core", "lint", "h2o-nas"] {
            let found = lint_in(crate_name, src);
            assert_eq!(found.len(), 1, "process::exit should fire in {crate_name}");
            assert_eq!(found[0].rule, Rule::NoProcessExit);
        }
        // Both the fully-qualified and the `process::exit(..)` spelling.
        let short = "use std::process;\nfn f() { process::exit(1); }\n";
        assert_eq!(lint_in("core", short).len(), 1);
    }

    #[test]
    fn process_exit_in_binary_entry_points_is_allowed() {
        let src = "fn main() { std::process::exit(2); }\n";
        for path in ["crates/lint/src/main.rs", "src/bin/h2o.rs", "main.rs"] {
            assert!(
                lint_source("h2o-nas", path, src).is_empty(),
                "{path} owns the exit code"
            );
        }
        assert_eq!(
            lint_source("h2o-nas", "src/distributed.rs", src).len(),
            1,
            "library modules of a package with binaries still may not exit"
        );
    }

    #[test]
    fn process_exit_pragma_with_reason_suppresses() {
        let src = "\
// h2o-lint: allow(no-process-exit) -- simulated node death for the chaos tests
fn f() { std::process::exit(41); }
";
        assert!(lint_in("h2o-nas", src).is_empty());
    }

    #[test]
    fn exit_without_the_process_path_is_fine() {
        // A method or free fn named `exit` on its own is not the process
        // killer — only the `process::exit(` path pattern fires.
        let src = "fn f(l: Loop) { l.exit(); }\n";
        assert!(lint_in("core", src).is_empty());
    }

    #[test]
    fn unreachable_pragma_with_reason_suppresses() {
        let src = "\
// h2o-lint: allow(no-unreachable) -- enum is #[non_exhaustive] upstream, new variants rejected at parse
fn f(x: u32) { match x { 0 => {}, _ => unreachable!() } }
";
        assert!(lint_in("core", src).is_empty());
    }
}
