//! h2o-lint: the workspace invariant checker.
//!
//! The repository's most valuable property — bit-identical search output
//! across worker counts, cache states, and kill/resume — is a *contract*
//! (DESIGN.md, "determinism contract"), and contracts rot when they are
//! only enforced by end-to-end tests that fire long after the offending
//! line was merged. This crate enforces the contracts mechanically, at
//! the source level, with rules ordinary clippy cannot express because
//! they are project policy rather than language misuse:
//!
//! | rule | contract protected |
//! |------|--------------------|
//! | `no-wallclock` | resume determinism: no `Instant::now`/`SystemTime::now` outside `obs`/`bench` |
//! | `no-ambient-rng` | replay determinism: all RNGs derive from the seeded SplitMix64 streams |
//! | `no-unordered-collections` | output byte-stability: no `HashMap`/`HashSet` in output-producing crates |
//! | `float-ordering` | NaN robustness: `total_cmp`, never `partial_cmp().unwrap()` or a NaN-swallowing `.unwrap_or(..)` fallback |
//! | `panic-hygiene` | crash-safety: typed errors on search-reachable paths |
//! | `no-println-in-libs` | output ownership: only binary entry points (`main.rs`, `src/bin/`) write to stdout/stderr |
//! | `no-unreachable` | crash-safety: no `unreachable!`/`todo!` in non-test code — "impossible" branches return typed errors |
//! | `no-process-exit` | crash-safety: `std::process::exit` only in binary entry points — libraries return typed errors |
//! | `nondet-taint` | cross-file determinism: no call path carries a nondeterminism source's value into `core`/`exec`/`eval`/`hwsim`/`ckpt` |
//! | `fingerprint-completeness` | value visibility: every field of a fingerprinted struct is hashed (or pragma'd value-invisible) |
//! | `float-cast-on-reward-path` | reward integrity: no silent `as f64`/`as f32` rounding in fns call-graph-reachable from the reward computation |
//! | `unused-pragma` | escape-hatch hygiene: an `allow` pragma that suppresses nothing must be deleted |
//!
//! The per-file rules are token-pattern matchers. The three *semantic*
//! rules run over a workspace symbol index ([`parser`] items →
//! [`graph::WorkspaceIndex`]) with a conservative name-resolved call
//! graph — that is what lets `nondet-taint` catch a wall-clock read
//! laundered through a helper crate, which no per-file rule can see.
//!
//! Run it with `cargo run -p h2o-lint` (add `--json` for machine-readable
//! findings); it exits non-zero when any un-allowed finding exists, and
//! ci.sh runs it as a dedicated stage. See DESIGN.md for the rule
//! rationale and the `// h2o-lint: allow(<rule>) -- <reason>` escape
//! hatch.

pub mod analysis;
pub mod findings;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod semantic;

pub use analysis::{lint_files, SourceFile};
pub use findings::{to_json, Finding, Rule};
pub use rules::lint_source;

use std::io;
use std::path::{Path, PathBuf};

/// The result of linting a workspace tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// Un-allowed findings, in (file, line, col) order.
    pub findings: Vec<Finding>,
    /// Source files visited.
    pub files_checked: usize,
}

impl LintReport {
    /// Whether the workspace satisfies every contract.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lints every member crate's `src/` tree plus the root package's
/// `src/`, skipping `tests/`, `examples/`, `benches/` and `third_party/`
/// entirely (test and vendored code is outside the contracts).
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree; a missing
/// `crates/` directory is an error (wrong `--root`).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut units: Vec<(String, PathBuf)> = Vec::new();
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "{} has no crates/ directory — not the workspace root?",
                root.display()
            ),
        ));
    }
    let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    members.sort();
    for member in members {
        let name = member
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        units.push((name, member.join("src")));
    }
    // The root `h2o-nas` package (the CLI) participates in the
    // workspace-wide rules under its package name.
    units.push(("h2o-nas".to_string(), root.join("src")));

    let mut sources: Vec<SourceFile> = Vec::new();
    for (crate_name, src_dir) in units {
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for file in files {
            let source = std::fs::read_to_string(&file)?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            sources.push(SourceFile {
                crate_name: crate_name.clone(),
                rel_path: rel,
                source,
            });
        }
    }
    // One lint_files call over the whole tree: the semantic rules need
    // every file's symbols in a single index to see cross-crate paths.
    let files_checked = sources.len();
    Ok(LintReport {
        findings: lint_files(&sources),
        files_checked,
    })
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]` — how the binary finds the root when run from a crate
/// subdirectory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
