//! The workspace symbol index and conservative cross-crate call graph.
//!
//! Built once per `lint_files` run from every file's [`crate::parser`]
//! items, this is the substrate the semantic rules in [`crate::semantic`]
//! walk. Resolution is *name-based* and deliberately conservative:
//!
//! - `.name(…)` method calls resolve to every workspace method named
//!   `name` (no receiver types without a type checker);
//! - `Qual::name(…)` resolves to `Qual`'s methods when `Qual` (alias-
//!   resolved, `Self` substituted) is a workspace type — otherwise `Qual`
//!   is a module path and the call resolves to free functions named
//!   `name`;
//! - bare `name(…)` resolves to free functions named `name`.
//!
//! Unresolvable calls (std, vendored stubs) contribute no edges. The
//! over-approximation from name collisions is acceptable because every
//! rule built on the graph has the pragma escape hatch; the
//! under-approximation (calls through function pointers, macros) is the
//! usual static-analysis bargain and is documented in DESIGN.md.

use crate::parser::{CallSite, FileItems, FnItem, TypeItem};
use std::collections::{BTreeMap, BTreeSet};

/// One function in the workspace, with its defining file and resolved
/// outgoing calls.
pub struct FnNode {
    /// Index into the `lint_files` file list.
    pub file: usize,
    pub item: FnItem,
    /// Each call site in the body with the fn indices it resolves to.
    pub calls: Vec<(CallSite, Vec<usize>)>,
}

/// The symbol index plus call graph over every analysed file.
pub struct WorkspaceIndex {
    /// `(crate_name, rel_path)` per file, parallel to `lint_files` input.
    pub files: Vec<(String, String)>,
    /// Every non-test fn in the workspace.
    pub fns: Vec<FnNode>,
    /// Non-test struct/enum definitions: name → (file index, item).
    /// On a cross-crate name collision the first definition in file
    /// order wins — acceptable for conservative field lookups.
    pub types: BTreeMap<String, (usize, TypeItem)>,
    /// `alias → target` from `type A = B;` and `use … as` renames.
    pub aliases: BTreeMap<String, String>,
    /// Reverse edges: `callers[i]` = fns containing a call resolving to
    /// fn `i`.
    pub callers: Vec<Vec<usize>>,
    free_by_name: BTreeMap<String, Vec<usize>>,
    method_by_name: BTreeMap<String, Vec<usize>>,
    typed: BTreeMap<(String, String), Vec<usize>>,
}

impl WorkspaceIndex {
    /// Builds the index from each file's parsed items and non-trivia
    /// token slice (needed to extract call sites from fn bodies).
    pub fn build(
        files: &[(String, String)],
        items_per_file: &[FileItems],
        code_per_file: &[Vec<&crate::lexer::Token>],
    ) -> Self {
        let mut index = WorkspaceIndex {
            files: files.to_vec(),
            fns: Vec::new(),
            types: BTreeMap::new(),
            aliases: BTreeMap::new(),
            callers: Vec::new(),
            free_by_name: BTreeMap::new(),
            method_by_name: BTreeMap::new(),
            typed: BTreeMap::new(),
        };
        for (file_idx, items) in items_per_file.iter().enumerate() {
            for ty in &items.types {
                if !ty.is_test {
                    index
                        .types
                        .entry(ty.name.clone())
                        .or_insert_with(|| (file_idx, ty.clone()));
                }
            }
            for (alias, target) in &items.aliases {
                index
                    .aliases
                    .entry(alias.clone())
                    .or_insert_with(|| target.clone());
            }
            for f in &items.fns {
                if f.is_test {
                    continue;
                }
                let idx = index.fns.len();
                match &f.impl_type {
                    Some(t) => {
                        index
                            .method_by_name
                            .entry(f.name.clone())
                            .or_default()
                            .push(idx);
                        index
                            .typed
                            .entry((t.clone(), f.name.clone()))
                            .or_default()
                            .push(idx);
                    }
                    None => index
                        .free_by_name
                        .entry(f.name.clone())
                        .or_default()
                        .push(idx),
                }
                index.fns.push(FnNode {
                    file: file_idx,
                    item: f.clone(),
                    calls: Vec::new(),
                });
            }
        }
        // Second pass: extract and resolve call sites now that every
        // definition is indexed.
        let mut all_calls: Vec<Vec<(CallSite, Vec<usize>)>> = Vec::with_capacity(index.fns.len());
        for node in &index.fns {
            let Some(body) = node.item.body else {
                all_calls.push(Vec::new());
                continue;
            };
            let code = &code_per_file[node.file];
            let sites = crate::parser::call_sites(code, body, node.item.impl_type.as_deref());
            all_calls.push(
                sites
                    .into_iter()
                    .map(|site| {
                        let targets = index.resolve(&site);
                        (site, targets)
                    })
                    .collect(),
            );
        }
        index.callers = vec![Vec::new(); index.fns.len()];
        for (caller, calls) in all_calls.iter().enumerate() {
            let mut seen = BTreeSet::new();
            for (_, targets) in calls {
                for &t in targets {
                    if t != caller && seen.insert(t) {
                        index.callers[t].push(caller);
                    }
                }
            }
        }
        for (node, calls) in index.fns.iter_mut().zip(all_calls) {
            node.calls = calls;
        }
        index
    }

    /// Follows `type A = B;` / `use … as` chains (bounded, cycle-safe).
    pub fn resolve_alias<'a>(&'a self, name: &'a str) -> &'a str {
        let mut cur = name;
        for _ in 0..4 {
            match self.aliases.get(cur) {
                Some(next) if next != cur => cur = next,
                _ => break,
            }
        }
        cur
    }

    /// The fn indices a call site may target (see module docs for the
    /// resolution rules).
    pub fn resolve(&self, site: &CallSite) -> Vec<usize> {
        if let Some(q) = &site.qualifier {
            let q = self.resolve_alias(q);
            if self.types.contains_key(q) {
                return self
                    .typed
                    .get(&(q.to_string(), site.name.clone()))
                    .cloned()
                    .unwrap_or_default();
            }
            // Unknown qualifier: a module path (`wire::fnv1a`) or an
            // external type (`String::new`) — only free fns match; an
            // external type's methods are by definition not in the
            // workspace.
            return self
                .free_by_name
                .get(&site.name)
                .cloned()
                .unwrap_or_default();
        }
        if site.is_method {
            return self
                .method_by_name
                .get(&site.name)
                .cloned()
                .unwrap_or_default();
        }
        self.free_by_name
            .get(&site.name)
            .cloned()
            .unwrap_or_default()
    }

    /// The crate a fn is defined in.
    pub fn crate_of(&self, fn_idx: usize) -> &str {
        &self.files[self.fns[fn_idx].file].0
    }

    /// `crate::name` display form for messages.
    pub fn qualified_name(&self, fn_idx: usize) -> String {
        let node = &self.fns[fn_idx];
        match &node.item.impl_type {
            Some(t) => format!("{}::{}::{}", self.crate_of(fn_idx), t, node.item.name),
            None => format!("{}::{}", self.crate_of(fn_idx), node.item.name),
        }
    }

    /// Transitive closure of callees starting from `roots` (inclusive).
    pub fn reachable_from(&self, roots: &[usize]) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = roots.iter().copied().collect();
        let mut work: Vec<usize> = roots.to_vec();
        while let Some(f) = work.pop() {
            for (_, targets) in &self.fns[f].calls {
                for &t in targets {
                    if seen.insert(t) {
                        work.push(t);
                    }
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn build(files: &[(&str, &str, &str)]) -> WorkspaceIndex {
        let metas: Vec<(String, String)> = files
            .iter()
            .map(|(c, p, _)| (c.to_string(), p.to_string()))
            .collect();
        let tokens_per_file: Vec<_> = files.iter().map(|(_, _, src)| lex(src)).collect();
        let code_per_file: Vec<Vec<&crate::lexer::Token>> = tokens_per_file
            .iter()
            .map(|tokens| tokens.iter().filter(|t| !t.is_trivia()).collect())
            .collect();
        let items_per_file: Vec<_> = code_per_file
            .iter()
            .map(|code| {
                let ranges = crate::rules::test_item_ranges(code);
                crate::parser::parse_items(code, &ranges)
            })
            .collect();
        WorkspaceIndex::build(&metas, &items_per_file, &code_per_file)
    }

    fn idx_of(index: &WorkspaceIndex, name: &str) -> usize {
        index
            .fns
            .iter()
            .position(|f| f.item.name == name)
            .unwrap_or_else(|| panic!("no fn named {name}"))
    }

    #[test]
    fn cross_file_free_call_resolves() {
        let index = build(&[
            (
                "core",
                "crates/core/src/lib.rs",
                "pub fn driver() { helper(); }\n",
            ),
            ("space", "crates/space/src/lib.rs", "pub fn helper() {}\n"),
        ]);
        let driver = idx_of(&index, "driver");
        let helper = idx_of(&index, "helper");
        assert_eq!(index.fns[driver].calls.len(), 1);
        assert_eq!(index.fns[driver].calls[0].1, vec![helper]);
        assert_eq!(index.callers[helper], vec![driver]);
    }

    #[test]
    fn qualified_call_on_workspace_type_resolves_to_its_methods_only() {
        let index = build(&[
            (
                "core",
                "a.rs",
                "pub struct A;\nimpl A { pub fn make() {} }\npub struct B;\nimpl B { pub fn make() {} }\n\
                 pub fn go() { A::make(); }\n",
            ),
        ]);
        let go = idx_of(&index, "go");
        let targets = &index.fns[go].calls[0].1;
        assert_eq!(targets.len(), 1);
        assert_eq!(index.fns[targets[0]].item.impl_type.as_deref(), Some("A"));
    }

    #[test]
    fn external_type_method_calls_do_not_resolve_to_workspace_constructors() {
        let index = build(&[(
            "core",
            "a.rs",
            "pub struct Pool;\nimpl Pool { pub fn new() {} }\npub fn go() { let s = String::new(); }\n",
        )]);
        let go = idx_of(&index, "go");
        assert!(
            index.fns[go].calls[0].1.is_empty(),
            "String is not a workspace type; its new() must not alias Pool::new()"
        );
    }

    #[test]
    fn alias_resolves_through_type_aliases() {
        let index = build(&[(
            "core",
            "a.rs",
            "pub struct Long;\nimpl Long { pub fn make() {} }\npub type Short = Long;\n\
             pub fn go() { Short::make(); }\n",
        )]);
        let go = idx_of(&index, "go");
        assert_eq!(index.fns[go].calls[0].1.len(), 1);
    }

    #[test]
    fn test_fns_are_outside_the_graph() {
        let index = build(&[(
            "core",
            "a.rs",
            "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { super::lib(); }\n}\n",
        )]);
        assert_eq!(index.fns.len(), 1, "only the non-test fn is indexed");
    }

    #[test]
    fn reachability_is_transitive() {
        let index = build(&[(
            "core",
            "a.rs",
            "pub fn a() { b(); }\npub fn b() { c(); }\npub fn c() {}\npub fn d() {}\n",
        )]);
        let a = idx_of(&index, "a");
        let d = idx_of(&index, "d");
        let reach = index.reachable_from(&[a]);
        assert_eq!(reach.len(), 3);
        assert!(!reach.contains(&d));
    }
}
