//! Per-rule fixture tests: every token-pattern rule gets at least one
//! known-bad snippet that must produce exactly the expected findings, plus
//! a known-good variant that must stay clean. These pin the token-pattern
//! matchers against regressions in the lexer or the rule engine.

use h2o_lint::findings::Rule;
use h2o_lint::rules::lint_source;
use h2o_lint::{lint_files, SourceFile};

/// Lints `src` as if it were a file inside `crate_name`, returning the
/// `(rule, line)` pairs found.
fn findings_in(crate_name: &str, src: &str) -> Vec<(Rule, u32)> {
    lint_source(crate_name, "src/lib.rs", src)
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

// ---------------------------------------------------------------- rule 1

#[test]
fn no_wallclock_flags_instant_and_system_time() {
    let bad = r#"
pub fn elapsed() -> f64 {
    let t0 = std::time::Instant::now();
    let _wall = std::time::SystemTime::now();
    t0.elapsed().as_secs_f64()
}
"#;
    let got = findings_in("core", bad);
    assert_eq!(got, vec![(Rule::NoWallclock, 3), (Rule::NoWallclock, 4)]);
}

#[test]
fn no_wallclock_is_allowed_in_obs_and_bench() {
    let src = "pub fn t() { let _ = std::time::Instant::now(); }\n";
    assert!(findings_in("obs", src).is_empty(), "obs owns the clock");
    assert!(
        findings_in("bench", src).is_empty(),
        "bench times real work"
    );
    assert_eq!(findings_in("hwsim", src).len(), 1, "hwsim may not");
}

#[test]
fn no_wallclock_ignores_strings_and_comments() {
    let src = r#"
// Instant::now is mentioned here but not called.
pub const DOC: &str = "never call Instant::now in library code";
"#;
    assert!(findings_in("core", src).is_empty());
}

// ---------------------------------------------------------------- rule 2

#[test]
fn no_ambient_rng_flags_thread_rng_and_from_entropy() {
    let bad = r#"
fn sample() -> u64 {
    let mut rng = rand::thread_rng();
    let other = SmallRng::from_entropy();
    rng.gen()
}
"#;
    let got = findings_in("space", bad);
    assert_eq!(got, vec![(Rule::NoAmbientRng, 3), (Rule::NoAmbientRng, 4)]);
}

#[test]
fn no_ambient_rng_applies_everywhere_even_obs() {
    let bad = "fn f() { let _ = thread_rng(); }\n";
    assert_eq!(findings_in("obs", bad).len(), 1);
}

#[test]
fn seeded_rng_is_fine() {
    let good = "fn f(seed: u64) { let _rng = SmallRng::seed_from_u64(seed); }\n";
    assert!(findings_in("core", good).is_empty());
}

// ---------------------------------------------------------------- rule 3

#[test]
fn unordered_collections_flagged_in_output_crates() {
    let bad = r#"
use std::collections::HashMap;
pub struct Cache {
    entries: HashMap<u64, f64>,
}
"#;
    let got = findings_in("hwsim", bad);
    // One finding per HashMap token: the `use` and the field type.
    assert_eq!(
        got,
        vec![
            (Rule::NoUnorderedCollections, 2),
            (Rule::NoUnorderedCollections, 4)
        ]
    );
}

#[test]
fn unordered_collections_allowed_outside_scoped_crates() {
    let src = "use std::collections::HashSet;\n";
    assert!(
        findings_in("obs", src).is_empty(),
        "obs output is unordered"
    );
    assert_eq!(findings_in("data", src).len(), 1, "data is scoped");
}

#[test]
fn btreemap_is_always_fine() {
    let good = "use std::collections::BTreeMap;\npub type M = BTreeMap<u32, u32>;\n";
    assert!(findings_in("core", good).is_empty());
}

// ---------------------------------------------------------------- rule 4

#[test]
fn float_ordering_flags_partial_cmp_unwrap_and_expect() {
    let bad = r#"
fn sort(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
}
"#;
    // `lint` is outside panic-hygiene's scope, so only the float rule
    // fires and the expectation stays single-rule.
    let got = findings_in("lint", bad);
    assert_eq!(
        got,
        vec![(Rule::FloatOrdering, 3), (Rule::FloatOrdering, 4)]
    );
}

#[test]
fn float_ordering_accepts_total_cmp_and_inspected_partial_cmp() {
    let good = r#"
fn sort(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.total_cmp(b));
    if let Some(ord) = (1.0f64).partial_cmp(&2.0) {
        let _ = ord;
    }
}
"#;
    assert!(findings_in("core", good).is_empty());
}

#[test]
fn float_ordering_flags_nan_swallowing_fallbacks() {
    // unwrap_or(Equal) does not panic — it silently builds a
    // non-transitive comparator, the worse failure mode (the loss.rs AUC
    // sort shipped exactly this bug).
    let bad = r#"
fn sort(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or_else(|| std::cmp::Ordering::Equal));
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or_default());
}
"#;
    let got = findings_in("lint", bad);
    assert_eq!(
        got,
        vec![
            (Rule::FloatOrdering, 3),
            (Rule::FloatOrdering, 4),
            (Rule::FloatOrdering, 5)
        ]
    );
}

#[test]
fn float_ordering_matches_through_nested_args() {
    // The paren matcher must pair the partial_cmp(...) parens, not stop at
    // the first `)` inside the argument expression.
    let bad = "fn f(a: f64, b: f64) { a.abs().partial_cmp(&(b + 1.0).abs()).unwrap(); }\n";
    assert_eq!(findings_in("lint", bad), vec![(Rule::FloatOrdering, 1)]);
}

// ---------------------------------------------------------------- rule 5

#[test]
fn panic_hygiene_flags_unwrap_expect_panic_in_scoped_crates() {
    let bad = r#"
pub fn load(path: &str) -> String {
    let text = std::fs::read_to_string(path).unwrap();
    let first = text.lines().next().expect("non-empty");
    if first.is_empty() {
        panic!("bad file");
    }
    first.to_string()
}
"#;
    let got = findings_in("core", bad);
    assert_eq!(
        got,
        vec![
            (Rule::PanicHygiene, 3),
            (Rule::PanicHygiene, 4),
            (Rule::PanicHygiene, 6)
        ]
    );
}

#[test]
fn panic_hygiene_exempts_test_code() {
    let src = r#"
pub fn double(x: u32) -> u32 { x * 2 }

#[cfg(test)]
mod tests {
    #[test]
    fn doubles() {
        assert_eq!(super::double(2), 4);
        let v: Vec<u32> = vec![1];
        let _ = v.first().unwrap();
    }
}
"#;
    assert!(findings_in("core", src).is_empty());
}

#[test]
fn panic_hygiene_skips_unscoped_crates() {
    let src = "pub fn f(v: Vec<u32>) -> u32 { *v.first().unwrap() }\n";
    assert!(
        findings_in("lint", src).is_empty(),
        "the linter itself is not on the search path"
    );
    assert_eq!(findings_in("exec", src).len(), 1, "exec is scoped");
    assert_eq!(findings_in("tensor", src).len(), 1, "tensor is scoped");
}

// ---------------------------------------------------------------- rule 7

#[test]
fn no_unreachable_flags_unreachable_and_todo_everywhere() {
    let bad = r#"
pub fn route(kind: u8) -> u32 {
    match kind {
        0 => 1,
        1 => todo!(),
        _ => unreachable!("kinds are validated upstream"),
    }
}
"#;
    // Fires even in crates outside panic-hygiene's scope.
    let got = findings_in("lint", bad);
    assert_eq!(
        got,
        vec![(Rule::NoUnreachable, 5), (Rule::NoUnreachable, 6)]
    );
}

#[test]
fn no_unreachable_exempts_tests_and_honours_pragmas() {
    let test_code = r#"
pub fn lib() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        match 1u8 {
            1 => {}
            _ => unreachable!(),
        }
    }
}
"#;
    assert!(findings_in("lint", test_code).is_empty());

    let justified = r#"
pub fn f(x: u8) {
    match x & 1 {
        0 | 1 => {}
        // h2o-lint: allow(no-unreachable) -- x & 1 is 0 or 1 by arithmetic
        _ => unreachable!(),
    }
}
"#;
    assert!(findings_in("lint", justified).is_empty());
}

// ---------------------------------------------------------------- rule 8

#[test]
fn no_process_exit_flags_library_exits() {
    let bad = r#"
pub fn die(code: i32) {
    std::process::exit(code);
}
"#;
    let got = findings_in("core", bad);
    assert_eq!(got, vec![(Rule::NoProcessExit, 3)]);
    // Short path spelling after `use std::process`.
    let short = "use std::process;\npub fn die() { process::exit(1); }\n";
    assert_eq!(findings_in("exec", short), vec![(Rule::NoProcessExit, 2)]);
}

#[test]
fn no_process_exit_spares_binaries_and_honours_pragmas() {
    let main = "fn main() { std::process::exit(2); }\n";
    assert!(
        lint_source("h2o-nas", "src/bin/h2o.rs", main).is_empty(),
        "binaries own the exit code"
    );

    let justified = r#"
pub fn chaos() {
    // h2o-lint: allow(no-process-exit) -- simulated node death for fault-tolerance tests
    std::process::exit(41);
}
"#;
    assert!(findings_in("h2o-nas", justified).is_empty());

    // A method named `exit` is not the process killer.
    let method = "pub fn f(l: &mut Loop) { l.exit(); }\n";
    assert!(findings_in("core", method).is_empty());
}

// ---------------------------------------------------------------- pragmas

#[test]
fn pragma_with_reason_suppresses_only_its_rule() {
    let src = r#"
pub fn f(v: Vec<u32>) -> u32 {
    // h2o-lint: allow(panic-hygiene) -- v is non-empty by construction
    *v.first().unwrap()
}
"#;
    assert!(findings_in("core", src).is_empty());

    // The same pragma does not excuse a different rule on that line — and
    // since it then suppresses nothing, the pragma itself is flagged stale.
    let cross = r#"
pub fn f() {
    // h2o-lint: allow(panic-hygiene) -- wrong rule named
    let _ = std::time::Instant::now();
}
"#;
    assert_eq!(
        findings_in("core", cross),
        vec![(Rule::UnusedPragma, 3), (Rule::NoWallclock, 4)]
    );
}

#[test]
fn pragma_without_reason_is_rejected() {
    let src = r#"
pub fn f(v: Vec<u32>) -> u32 {
    // h2o-lint: allow(panic-hygiene)
    *v.first().unwrap()
}
"#;
    assert_eq!(findings_in("core", src), vec![(Rule::PanicHygiene, 4)]);
}

#[test]
fn same_line_pragma_works() {
    let src = "pub fn f(v: Vec<u32>) -> u32 { *v.first().unwrap() } // h2o-lint: allow(panic-hygiene) -- non-empty\n";
    assert!(findings_in("core", src).is_empty());
}

// ------------------------------------------------------- semantic rules

/// Builds a [`SourceFile`] for the cross-file fixtures.
fn file(crate_name: &str, rel_path: &str, source: &str) -> SourceFile {
    SourceFile {
        crate_name: crate_name.to_string(),
        rel_path: rel_path.to_string(),
        source: source.to_string(),
    }
}

/// Lints a multi-file workspace, returning `(rule, file, line)` triples.
fn findings_in_workspace(files: &[SourceFile]) -> Vec<(Rule, String, u32)> {
    lint_files(files)
        .into_iter()
        .map(|f| (f.rule, f.file, f.line))
        .collect()
}

// --------------------------------------------------------------- rule 9

/// The laundering chain the per-file rules cannot see: the source, the
/// intermediate helper, and the contract-crate call site live in three
/// different files, and only the call graph connects them.
fn laundering_files(sanitized: bool) -> Vec<SourceFile> {
    let pragma = if sanitized {
        "    // h2o-lint: allow(nondet-taint) -- width only sizes a scratch buffer\n"
    } else {
        ""
    };
    vec![
        file(
            "space",
            "crates/space/src/host.rs",
            &format!(
                "pub fn host_width() -> usize {{\n{pragma}    \
                 std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)\n}}\n"
            ),
        ),
        file(
            "space",
            "crates/space/src/stride.rs",
            "pub fn pick_stride() -> usize {\n    host_width() * 2\n}\n",
        ),
        file(
            "core",
            "crates/core/src/sched.rs",
            "pub fn schedule() -> usize {\n    pick_stride()\n}\n",
        ),
    ]
}

#[test]
fn nondet_taint_catches_cross_file_laundering() {
    // The host-shape read sits two hops away from `core`, in another
    // crate — the finding lands at the frontier: the contract-crate call
    // site that imports the tainted value.
    let got = findings_in_workspace(&laundering_files(false));
    assert_eq!(
        got,
        vec![(Rule::NondetTaint, "crates/core/src/sched.rs".to_string(), 2)]
    );
}

#[test]
fn nondet_taint_pragma_on_the_source_sanitizes_the_whole_chain() {
    // One justified source must not light up every downstream caller:
    // the pragma on the `available_parallelism` line stops propagation.
    assert!(findings_in_workspace(&laundering_files(true)).is_empty());
}

#[test]
fn nondet_taint_flags_direct_sources_in_contract_crates() {
    let got = findings_in_workspace(&[file(
        "exec",
        "crates/exec/src/lib.rs",
        "pub fn width() -> usize {\n    \
         std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)\n}\n",
    )]);
    assert_eq!(
        got,
        vec![(Rule::NondetTaint, "crates/exec/src/lib.rs".to_string(), 2)]
    );
}

// -------------------------------------------------------------- rule 10

#[test]
fn fingerprint_completeness_flags_the_unhashed_field() {
    let src = r#"
pub struct ScenarioSpec {
    pub seed: u64,
    pub shards: u64,
}
impl ScenarioSpec {
    pub fn value_fingerprint(&self) -> u64 {
        self.seed.wrapping_mul(0x100000001b3)
    }
}
"#;
    let got = findings_in_workspace(&[file("eval", "crates/eval/src/spec.rs", src)]);
    assert_eq!(
        got,
        vec![(
            Rule::FingerprintCompleteness,
            "crates/eval/src/spec.rs".to_string(),
            4
        )],
        "`shards` is never hashed; `seed` is"
    );
}

#[test]
fn fingerprint_completeness_sees_fields_hashed_via_helpers() {
    // `shards` is hashed one call away — the surface is the transitive
    // callee closure, not just the fingerprint body itself.
    let src = r#"
pub struct ScenarioSpec {
    pub seed: u64,
    pub shards: u64,
}
impl ScenarioSpec {
    pub fn value_fingerprint(&self) -> u64 {
        self.seed.wrapping_mul(31) ^ self.mix()
    }
    fn mix(&self) -> u64 {
        self.shards.wrapping_mul(37)
    }
}
"#;
    assert!(findings_in_workspace(&[file("eval", "crates/eval/src/spec.rs", src)]).is_empty());
}

#[test]
fn fingerprint_completeness_skips_stored_hash_accessors() {
    // A fingerprint fn that just returns a stored hash computes nothing
    // and constrains no fields.
    let src = r#"
pub struct Manifest {
    pub cached: u64,
    pub payload: u64,
}
impl Manifest {
    pub fn fingerprint(&self) -> u64 {
        self.cached
    }
}
"#;
    assert!(findings_in_workspace(&[file("ckpt", "crates/ckpt/src/store.rs", src)]).is_empty());
}

// -------------------------------------------------------------- rule 11

/// Reward roots plus a same-crate helper, a cross-crate producer, an
/// off-path fn, and a direct caller in another file.
fn reward_files() -> Vec<SourceFile> {
    vec![
        file(
            "core",
            "crates/core/src/reward.rs",
            "pub struct RewardFn;\n\
             impl RewardFn {\n\
             \x20   pub fn reward(&self, quality: f64, shards: usize) -> f64 {\n\
             \x20       quality + combine(shards) + quality_of(shards)\n\
             \x20   }\n\
             }\n\
             fn combine(shards: usize) -> f64 {\n\
             \x20   shards as f64\n\
             }\n\
             pub fn off_path(shards: usize) -> f64 {\n\
             \x20   shards as f64\n\
             }\n",
        ),
        file(
            "core",
            "crates/core/src/run.rs",
            "pub fn run(r: &RewardFn, n: usize) -> f64 {\n\
             \x20   let scale = n as f64;\n\
             \x20   r.reward(1.0, n) * scale\n\
             }\n",
        ),
        file(
            "space",
            "crates/space/src/quality.rs",
            "pub fn quality_of(shards: usize) -> f64 {\n\
             \x20   shards as f64\n\
             }\n",
        ),
    ]
}

#[test]
fn float_cast_flagged_on_reward_path_not_off_it() {
    let got = findings_in_workspace(&reward_files());
    assert_eq!(
        got,
        vec![
            (
                // `combine` is reward-combination math in the root's own
                // crate. `off_path` (line 11) and the cross-crate
                // quality *producer* `space::quality_of` stay unflagged:
                // producers are policed by the determinism rules, and
                // including them would re-create the whole-crate cast
                // ban this rule replaces.
                Rule::FloatCastOnRewardPath,
                "crates/core/src/reward.rs".to_string(),
                8
            ),
            (
                // `run` handles the returned reward: a direct caller.
                Rule::FloatCastOnRewardPath,
                "crates/core/src/run.rs".to_string(),
                2
            ),
        ]
    );
}
