//! The self-check: the workspace this linter ships in must itself be
//! lint-clean. This is the test that turns the five rules from a style
//! suggestion into an enforced contract — reintroducing a wall-clock read,
//! an ambient RNG, an unordered map in an output crate, a
//! `partial_cmp().unwrap()`, or an unjustified `.unwrap()` on a scoped
//! path fails `cargo test`, not just the separate ci.sh lint stage.

use h2o_lint::lint_workspace;
use std::path::Path;

#[test]
fn workspace_has_no_unallowed_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = lint_workspace(&root).expect("workspace walk succeeds");
    assert!(
        report.files_checked > 50,
        "expected to walk the whole workspace, saw only {} files",
        report.files_checked
    );
    assert!(
        report.findings.is_empty(),
        "workspace must be lint-clean; found:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
