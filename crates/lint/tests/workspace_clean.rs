//! The self-check: the workspace this linter ships in must itself be
//! lint-clean. This is the test that turns the twelve rules from a style
//! suggestion into an enforced contract — reintroducing a wall-clock read,
//! an ambient RNG, an unordered map in an output crate, a
//! `partial_cmp().unwrap()`, an unjustified `.unwrap()` on a scoped path,
//! or (since the semantic rules) a cross-file nondeterminism laundering
//! chain, an unhashed fingerprint field, or a reward-path float cast
//! fails `cargo test`, not just the separate ci.sh lint stage.

use h2o_lint::{lint_files, lint_workspace, Rule, SourceFile};
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn workspace_has_no_unallowed_findings() {
    let report = lint_workspace(&workspace_root()).expect("workspace walk succeeds");
    assert!(
        report.files_checked > 50,
        "expected to walk the whole workspace, saw only {} files",
        report.files_checked
    );
    assert!(
        report.findings.is_empty(),
        "workspace must be lint-clean; found:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The `--json` exporter feeds CI artifacts and diffing; two runs over the
/// same tree must be byte-identical (the linter is itself held to the
/// repository's determinism contract).
#[test]
fn json_output_is_byte_identical_across_runs() {
    let root = workspace_root();
    let a = lint_workspace(&root).expect("first run");
    let b = lint_workspace(&root).expect("second run");
    assert_eq!(a.files_checked, b.files_checked);
    assert_eq!(
        h2o_lint::to_json(&a.findings),
        h2o_lint::to_json(&b.findings)
    );

    // And with a non-empty finding set, via the same engine: the fixture
    // has sources in multiple crates so the cross-file machinery (index
    // build, taint BFS) is on the path being checked for determinism.
    let files = vec![
        SourceFile {
            crate_name: "space".to_string(),
            rel_path: "crates/space/src/host.rs".to_string(),
            source: "pub fn width() -> usize {\n    \
                     std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)\n}\n"
                .to_string(),
        },
        SourceFile {
            crate_name: "core".to_string(),
            rel_path: "crates/core/src/lib.rs".to_string(),
            source: "pub fn plan() -> usize {\n    width()\n}\n\
                     pub fn t() -> f64 {\n    let x = std::time::Instant::now();\n    0.0\n}\n"
                .to_string(),
        },
    ];
    let x = h2o_lint::to_json(&lint_files(&files));
    let y = h2o_lint::to_json(&lint_files(&files));
    assert!(x.contains("nondet-taint"), "fixture must produce findings");
    assert_eq!(x, y, "--json must be byte-identical across runs");
}

/// Proof that the in-tree pragmas are load-bearing: stripping the
/// justification from the one sanctioned `available_parallelism` read in
/// `exec` must reintroduce a `nondet-taint` finding on the *real* source.
#[test]
fn stripping_a_load_bearing_pragma_reintroduces_the_finding() {
    let path = workspace_root().join("crates/exec/src/lib.rs");
    let src = std::fs::read_to_string(&path).expect("exec/src/lib.rs readable");
    assert!(
        src.contains("h2o-lint: allow(nondet-taint)"),
        "the sanctioned host-shape read must carry its pragma"
    );
    let stripped: String = src
        .lines()
        .filter(|l| !l.contains("h2o-lint: allow(nondet-taint)"))
        .map(|l| format!("{l}\n"))
        .collect();
    let findings = lint_files(&[SourceFile {
        crate_name: "exec".to_string(),
        rel_path: "crates/exec/src/lib.rs".to_string(),
        source: stripped,
    }]);
    assert!(
        findings.iter().any(|f| f.rule == Rule::NondetTaint),
        "removing the pragma must resurface the nondet-taint finding"
    );
}
