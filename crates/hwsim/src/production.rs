//! The "real hardware" stand-in used for performance-model fine-tuning.
//!
//! The paper fine-tunes its MLP performance model on ~20 measurements from
//! production TPUs (§6.2.2, Table 1). We cannot run on TPUs, so this module
//! provides a **hi-fi distorted simulator** that plays the role of deployed
//! hardware: it runs the same roofline simulation but applies systematic
//! per-op-class biases (compiler maturity, DMA contention, host overheads)
//! and mild measurement noise. The result is a realistic *sim-to-real gap*
//! — pretrained models are 15–45 % off on "production" numbers until
//! fine-tuned, exactly the effect Table 1 quantifies.

use crate::config::{HardwareConfig, SystemConfig};
use crate::simulator::{SimReport, Simulator};
use h2o_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Systematic distortions between the idealised simulator and deployed
/// hardware.
#[derive(Debug, Clone, PartialEq)]
pub struct DistortionProfile {
    /// Multiplier on matrix-unit op time (compiler achieves less than the
    /// tiling model predicts on real fusion boundaries).
    pub mxu_slowdown: f64,
    /// Multiplier on memory-bound op time (DMA setup, refresh contention).
    pub memory_slowdown: f64,
    /// Multiplier on network op time (congestion, stragglers).
    pub network_slowdown: f64,
    /// Fixed per-step overhead in seconds (host input pipeline, runtime).
    pub step_overhead: f64,
    /// Standard deviation of multiplicative log-normal measurement noise.
    pub noise_sigma: f64,
}

impl Default for DistortionProfile {
    fn default() -> Self {
        Self {
            mxu_slowdown: 1.18,
            memory_slowdown: 1.30,
            network_slowdown: 1.45,
            step_overhead: 350e-6,
            noise_sigma: 0.015,
        }
    }
}

/// Deployed-hardware measurement source: the fine-tuning target of the
/// two-phase performance model.
///
/// # Examples
///
/// ```
/// use h2o_hwsim::{ProductionHardware, HardwareConfig, SystemConfig};
/// use h2o_graph::{Graph, OpKind, DType};
///
/// let mut g = Graph::new("m", DType::Bf16);
/// g.add(OpKind::MatMul { m: 512, k: 512, n: 512 }, &[]);
/// let prod = ProductionHardware::new(HardwareConfig::tpu_v4(), 42);
/// let measured = prod.measure_step_time(&g, &SystemConfig::single(64));
/// assert!(measured > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ProductionHardware {
    sim: Simulator,
    profile: DistortionProfile,
    seed: u64,
}

impl ProductionHardware {
    /// Creates a production stand-in with the default distortion profile.
    pub fn new(hw: HardwareConfig, seed: u64) -> Self {
        Self::with_profile(hw, DistortionProfile::default(), seed)
    }

    /// Creates a production stand-in with a custom distortion profile.
    pub fn with_profile(hw: HardwareConfig, profile: DistortionProfile, seed: u64) -> Self {
        Self {
            sim: Simulator::new(hw),
            profile,
            seed,
        }
    }

    /// The underlying idealised simulator.
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    fn distort(&self, report: &SimReport, graph_name: &str) -> f64 {
        // Split the critical-path time into compute-ish and memory-ish parts
        // using the utilisation proxies, then slow each down systematically.
        let mxu_fraction = report.mxu_utilization();
        let net_fraction = if report.time > 0.0 {
            (report.ici_bytes / self.sim.hardware().ici_bw / report.time).min(1.0)
        } else {
            0.0
        };
        let mem_fraction = (1.0 - mxu_fraction - net_fraction).max(0.0);
        let slowdown = mxu_fraction * self.profile.mxu_slowdown
            + mem_fraction * self.profile.memory_slowdown
            + net_fraction * self.profile.network_slowdown;
        let base = report.time * slowdown + self.profile.step_overhead;
        // Deterministic per-(seed, graph, time) noise so repeated
        // measurements of the same model agree like real repeated runs do.
        let mut h: u64 = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for b in graph_name.bytes() {
            h = h.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
        }
        h ^= report.time.to_bits();
        let mut rng = StdRng::seed_from_u64(h);
        let z: f64 = {
            // Box-Muller from two uniforms (keeps us inside the allowed
            // dependency set — no rand_distr).
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        base * (self.profile.noise_sigma * z).exp()
    }

    /// "Measures" a training step time on deployed hardware (seconds).
    pub fn measure_step_time(&self, graph: &Graph, system: &SystemConfig) -> f64 {
        let report = self.sim.simulate_training(graph, system);
        self.distort(&report, graph.name())
    }

    /// "Measures" serving latency on deployed hardware (seconds).
    pub fn measure_serving_latency(&self, graph: &Graph) -> f64 {
        let report = self.sim.simulate(graph);
        self.distort(&report, graph.name())
    }

    /// "Measures" training throughput (steps/s), the fine-tuning target
    /// metric of §6.2.2.
    pub fn measure_training_throughput(&self, graph: &Graph, system: &SystemConfig) -> f64 {
        1.0 / self.measure_step_time(graph, system)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2o_graph::{DType, OpKind};

    fn graph(n: usize) -> Graph {
        let mut g = Graph::new(format!("g{n}"), DType::Bf16);
        g.add(OpKind::MatMul { m: n, k: n, n }, &[]);
        g
    }

    #[test]
    fn production_is_systematically_slower_than_sim() {
        let prod = ProductionHardware::new(HardwareConfig::tpu_v4(), 1);
        let sys = SystemConfig::single(64);
        let g = graph(2048);
        let sim_time = prod.simulator().simulate_training(&g, &sys).time;
        let measured = prod.measure_step_time(&g, &sys);
        assert!(measured > sim_time, "{measured} vs {sim_time}");
        // but not absurdly so
        assert!(measured < 3.0 * sim_time + 1e-3);
    }

    #[test]
    fn measurements_are_reproducible_for_same_seed() {
        let prod = ProductionHardware::new(HardwareConfig::tpu_v4(), 7);
        let sys = SystemConfig::single(64);
        let g = graph(1024);
        assert_eq!(
            prod.measure_step_time(&g, &sys),
            prod.measure_step_time(&g, &sys)
        );
    }

    #[test]
    fn different_seeds_differ_slightly() {
        let sys = SystemConfig::single(64);
        let g = graph(1024);
        let a = ProductionHardware::new(HardwareConfig::tpu_v4(), 1).measure_step_time(&g, &sys);
        let b = ProductionHardware::new(HardwareConfig::tpu_v4(), 2).measure_step_time(&g, &sys);
        assert_ne!(a, b);
        assert!((a - b).abs() / a < 0.2, "noise should be mild: {a} vs {b}");
    }

    #[test]
    fn ordering_preserved_under_distortion() {
        // A model twice as big must still measure slower — the sim-to-real
        // gap is systematic, not rank-destroying (else fine-tuning on 20
        // points could never work).
        let prod = ProductionHardware::new(HardwareConfig::tpu_v4(), 3);
        let sys = SystemConfig::single(64);
        assert!(
            prod.measure_step_time(&graph(2048), &sys) > prod.measure_step_time(&graph(1024), &sys)
        );
    }

    #[test]
    fn throughput_is_reciprocal_of_step_time() {
        let prod = ProductionHardware::new(HardwareConfig::tpu_v4(), 4);
        let sys = SystemConfig::single(64);
        let g = graph(1024);
        let t = prod.measure_step_time(&g, &sys);
        let thr = prod.measure_training_throughput(&g, &sys);
        assert!((thr * t - 1.0).abs() < 1e-9);
    }
}
