//! # h2o-hwsim — roofline hardware performance & power simulator
//!
//! The reproduction of the paper's in-house ML performance simulator
//! (§6.2.3) and of the hardware analyses in Figs. 4, 7 and 9:
//!
//! * [`HardwareConfig`] — per-chip platform models with presets for
//!   **TPUv4** (training), **TPUv4i** (serving) and **GPU V100**, each with
//!   matrix units, vector units, an HBM + on-chip CMEM memory hierarchy, an
//!   inter-chip interconnect, and an energy model where CMEM bytes are ~10×
//!   cheaper than HBM bytes.
//! * [`roofline`] — per-operator timing: `max` over compute / vector /
//!   memory / network rails, with an MXU tiling-efficiency model that makes
//!   small channel counts strand matrix-unit lanes. The MBConv vs
//!   Fused-MBConv latency crossover of Fig. 4c *emerges* from this model
//!   rather than being hard-coded.
//! * [`Simulator`] — whole-graph critical-path simulation with hardware
//!   counters (achieved FLOPS, HBM/CMEM traffic and bandwidth), training
//!   step modelling (fwd+bwd+all-reduce) and the power/energy model used by
//!   Fig. 9.
//! * [`ProductionHardware`] — the deployed-hardware stand-in (systematic
//!   distortions + measurement noise) that the two-phase performance model
//!   fine-tunes against (Table 1). See DESIGN.md for the substitution
//!   rationale.
//!
//! # Examples
//!
//! ```
//! use h2o_hwsim::{Simulator, HardwareConfig, SystemConfig};
//! use h2o_graph::{Graph, OpKind, DType};
//!
//! let mut g = Graph::new("mlp", DType::Bf16);
//! let a = g.add(OpKind::MatMul { m: 4096, k: 1024, n: 1024 }, &[]);
//! g.add(OpKind::Elementwise { elems: 4096 * 1024, ops_per_elem: 1.0, label: "relu".into() }, &[a]);
//!
//! let sim = Simulator::new(HardwareConfig::tpu_v4());
//! let step = sim.simulate_training(&g, &SystemConfig::training_pod());
//! println!("step time {:.3} ms at {:.0} W", step.time * 1e3, step.avg_power);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
mod config;
mod production;
pub mod roofline;
mod simulator;
pub mod sweep;

pub use cache::{arch_key, context_key, CacheStats, CachedSimulator, EvalCache, EvalCost};
pub use config::{HardwareConfig, SystemConfig};
pub use production::{DistortionProfile, ProductionHardware};
pub use roofline::{mxu_efficiency, roofline_envelope, OpTiming, RooflinePoint};
pub use simulator::{SimReport, Simulator};
