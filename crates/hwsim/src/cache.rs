//! Memoizing evaluation cache: canonical architecture hashing, a sharded
//! LRU of simulated cost triples, and a caching simulator facade.
//!
//! A one-shot search re-visits architectures constantly — the policy
//! concentrates as entropy decays, so late-search steps sample the same
//! few candidates over and over. Re-walking the op graph for a candidate
//! the simulator has already costed wastes the hot path. This module keys
//! every simulated evaluation by a **canonical architecture hash** and
//! memoizes the resulting latency/energy/memory triple in a sharded LRU,
//! so repeated candidates cost one hash lookup instead of a graph build
//! plus a simulator walk.
//!
//! Determinism: a cached value is the exact `f64` triple the simulator
//! produced for that key, so cache-on and cache-off searches are
//! bit-identical (asserted by the workspace determinism suite).

use crate::config::SystemConfig;
use crate::simulator::{SimReport, Simulator};
use h2o_graph::Graph;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv1a(hash: u64, byte: u8) -> u64 {
    (hash ^ byte as u64).wrapping_mul(FNV_PRIME)
}

fn fnv1a_u64(mut hash: u64, value: u64) -> u64 {
    for byte in value.to_le_bytes() {
        hash = fnv1a(hash, byte);
    }
    hash
}

/// Canonical hash of a sampled architecture within a named search space.
///
/// FNV-1a over the space name, the decision count, and every choice index
/// — so equal `(space, sample)` pairs always collide and any single-field
/// mutation (a different choice, a truncated sample, a different space)
/// changes the key with overwhelming probability. The property suite in
/// `crates/hwsim/tests/cache_props.rs` pins both directions.
pub fn arch_key(space: &str, sample: &[usize]) -> u64 {
    let mut hash = FNV_OFFSET;
    for byte in space.as_bytes() {
        hash = fnv1a(hash, *byte);
    }
    // Length before elements: distinguishes [1] in a 2-decision prefix
    // from [1, 0] even though FNV of the elements alone could agree.
    hash = fnv1a_u64(hash, sample.len() as u64);
    for &choice in sample {
        hash = fnv1a_u64(hash, choice as u64);
    }
    hash
}

/// Mixes an evaluation context (serving vs training, system size) into an
/// architecture key, so one cache can hold both cost kinds.
pub fn context_key(base: u64, tag: &str, chips: usize) -> u64 {
    let mut hash = base ^ 0x9e3779b97f4a7c15;
    for byte in tag.as_bytes() {
        hash = fnv1a(hash, *byte);
    }
    fnv1a_u64(hash, chips as u64)
}

/// The memoized cost of one evaluated architecture: the latency / energy /
/// memory triple the reward objectives consume, plus the parameter count
/// quality surrogates need (cached alongside so a hit also skips the graph
/// build).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct EvalCost {
    /// Critical-path execution time, seconds.
    pub latency: f64,
    /// Total dynamic + idle energy, joules.
    pub energy: f64,
    /// Memory traffic (HBM + CMEM), bytes.
    pub memory_bytes: f64,
    /// Trainable parameters of the evaluated graph.
    pub params: f64,
}

impl EvalCost {
    /// Extracts the cached cost triple from a simulation report.
    pub fn from_report(report: &SimReport) -> Self {
        Self {
            latency: report.time,
            energy: report.energy,
            memory_bytes: report.total_mem_bytes(),
            params: report.params,
        }
    }
}

/// Hit / miss / eviction counters of an [`EvalCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct CacheStats {
    /// Lookups that found the key.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries displaced by the LRU policy.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over total lookups, in `[0, 1]`; zero when nothing was looked
    /// up yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    cost: EvalCost,
    last_used: u64,
}

struct Shard {
    map: BTreeMap<u64, Entry>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Shard {
    fn new() -> Self {
        Self {
            map: BTreeMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }
}

struct Inner {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
}

/// A sharded, memoizing LRU cache of [`EvalCost`] keyed by canonical
/// architecture hash.
///
/// Shards are selected by the key's top bits, so concurrent evaluators
/// contend on `1/shards` of the lock traffic. Cloning is cheap and shares
/// the underlying storage — hand one clone to every worker.
///
/// # Examples
///
/// ```
/// use h2o_hwsim::{arch_key, EvalCache, EvalCost};
///
/// let cache = EvalCache::new(1024);
/// let key = arch_key("dlrm", &[1, 2, 3]);
/// let cost = cache.get_or_insert_with(key, || EvalCost { latency: 1e-3, ..Default::default() });
/// assert_eq!(cache.get(key), Some(cost)); // hit
/// assert!(cache.stats().hits >= 1);
/// ```
#[derive(Clone)]
pub struct EvalCache {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for EvalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalCache")
            .field("capacity", &self.capacity())
            .field("stats", &self.stats())
            .finish()
    }
}

const DEFAULT_SHARDS: usize = 16;

impl EvalCache {
    /// Creates a cache holding at most `capacity` entries across 16
    /// shards (fewer shards when `capacity < 16` so every shard holds at
    /// least one entry).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, DEFAULT_SHARDS.min(capacity.max(1)))
    }

    /// Creates a cache with an explicit shard count.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `shards == 0` or `capacity < shards`.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(shards > 0, "need at least one shard");
        assert!(
            capacity >= shards,
            "capacity {capacity} must cover all {shards} shards"
        );
        Self {
            inner: Arc::new(Inner {
                shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
                capacity_per_shard: capacity / shards,
            }),
        }
    }

    fn shard_of(&self, key: u64) -> &Mutex<Shard> {
        // SplitMix64 finalizer: raw keys (tests, sequential ids) are as
        // well-spread across shards as FNV-hashed ones.
        let mut mixed = key;
        mixed = (mixed ^ (mixed >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        mixed = (mixed ^ (mixed >> 27)).wrapping_mul(0x94D049BB133111EB);
        mixed ^= mixed >> 31;
        let n = self.inner.shards.len() as u64;
        &self.inner.shards[(mixed % n) as usize]
    }

    /// Looks up a key, refreshing its recency on a hit.
    pub fn get(&self, key: u64) -> Option<EvalCost> {
        let mut shard = self.shard_of(key).lock();
        shard.clock += 1;
        let clock = shard.clock;
        match shard.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = clock;
                let cost = entry.cost;
                shard.hits += 1;
                h2o_obs::counter("h2o_hwsim_cache_hits_total").inc();
                Some(cost)
            }
            None => {
                shard.misses += 1;
                h2o_obs::counter("h2o_hwsim_cache_misses_total").inc();
                None
            }
        }
    }

    /// Inserts (or overwrites) a key, evicting the least-recently-used
    /// entry of its shard when that shard is full.
    pub fn insert(&self, key: u64, cost: EvalCost) {
        let mut shard = self.shard_of(key).lock();
        shard.clock += 1;
        let clock = shard.clock;
        if let Some(entry) = shard.map.get_mut(&key) {
            entry.cost = cost;
            entry.last_used = clock;
            return;
        }
        if shard.map.len() >= self.inner.capacity_per_shard {
            if let Some(&victim) = shard
                .map
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| key)
            {
                shard.map.remove(&victim);
                shard.evictions += 1;
                h2o_obs::counter("h2o_hwsim_cache_evictions_total").inc();
            }
        }
        shard.map.insert(
            key,
            Entry {
                cost,
                last_used: clock,
            },
        );
    }

    /// Returns the cached cost for `key`, computing and inserting it on a
    /// miss. The computation runs **outside** the shard lock, so an
    /// expensive simulator walk never blocks other shardmates; two racing
    /// computations of the same key both produce the identical value, so
    /// the overwrite is benign.
    pub fn get_or_insert_with(&self, key: u64, compute: impl FnOnce() -> EvalCost) -> EvalCost {
        if let Some(cost) = self.get(key) {
            return cost;
        }
        let cost = compute();
        self.insert(key, cost);
        cost
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|shard| shard.lock().map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum entries the cache can hold (capacity per shard × shards).
    pub fn capacity(&self) -> usize {
        self.inner.capacity_per_shard * self.inner.shards.len()
    }

    /// Aggregated hit / miss / eviction counters.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        for shard in &self.inner.shards {
            let shard = shard.lock();
            stats.hits += shard.hits;
            stats.misses += shard.misses;
            stats.evictions += shard.evictions;
            stats.entries += shard.map.len();
        }
        stats
    }
}

/// A [`Simulator`] facade that memoizes whole-graph evaluations through an
/// [`EvalCache`].
///
/// The caller supplies the canonical key (from [`arch_key`]) and a graph
/// *builder* rather than a graph — on a hit, neither the graph build nor
/// the simulator walk happens. Clones share the cache, so one
/// `CachedSimulator` per worker shard all feed the same memo table.
#[derive(Debug, Clone)]
pub struct CachedSimulator {
    sim: Simulator,
    cache: EvalCache,
}

impl CachedSimulator {
    /// Wraps a simulator with a shared cache.
    pub fn new(sim: Simulator, cache: EvalCache) -> Self {
        Self { sim, cache }
    }

    /// The wrapped simulator.
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// The shared cache (clone it to inspect stats elsewhere).
    pub fn cache(&self) -> &EvalCache {
        &self.cache
    }

    /// One timed evaluation through the cache: the `h2o_hwsim_evals_total`
    /// counter ticks per call, and wall time lands in
    /// `h2o_hwsim_eval_seconds{result="hit"|"miss"}` so the hit/miss
    /// latency gap (hash lookup vs graph build + simulator walk) is
    /// visible in snapshots. Instruments are looked up per call — a
    /// `CachedSimulator` may outlive a registry reset, and a cached handle
    /// would silently drop out of snapshots. Like
    /// [`EvalCache::get_or_insert_with`], the miss computation runs
    /// outside the shard lock; racing misses recompute the identical value.
    fn timed_eval(&self, ck: u64, compute: impl FnOnce() -> EvalCost) -> EvalCost {
        let watch = h2o_obs::Stopwatch::start();
        h2o_obs::counter("h2o_hwsim_evals_total").inc();
        if let Some(cost) = self.cache.get(ck) {
            h2o_obs::histogram("h2o_hwsim_eval_seconds{result=\"hit\"}")
                .record(watch.elapsed_secs());
            return cost;
        }
        let cost = compute();
        self.cache.insert(ck, cost);
        h2o_obs::histogram("h2o_hwsim_eval_seconds{result=\"miss\"}").record(watch.elapsed_secs());
        cost
    }

    /// Memoized training-step cost of the architecture identified by
    /// `key`. `build` runs only on a miss.
    pub fn training_cost(
        &self,
        key: u64,
        system: &SystemConfig,
        build: impl FnOnce() -> Graph,
    ) -> EvalCost {
        self.timed_eval(context_key(key, "train", system.chips), || {
            EvalCost::from_report(&self.sim.simulate_training(&build(), system))
        })
    }

    /// Memoized serving (single forward pass) cost of the architecture
    /// identified by `key`. `build` runs only on a miss.
    pub fn serving_cost(&self, key: u64, build: impl FnOnce() -> Graph) -> EvalCost {
        self.timed_eval(context_key(key, "serve", 1), || {
            EvalCost::from_report(&self.sim.simulate(&build()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HardwareConfig;
    use h2o_graph::{DType, OpKind};

    fn cost(latency: f64) -> EvalCost {
        EvalCost {
            latency,
            ..Default::default()
        }
    }

    #[test]
    fn equal_samples_equal_keys() {
        assert_eq!(arch_key("cnn", &[1, 2, 3]), arch_key("cnn", &[1, 2, 3]));
        assert_ne!(arch_key("cnn", &[1, 2, 3]), arch_key("vit", &[1, 2, 3]));
        assert_ne!(arch_key("cnn", &[1, 2, 3]), arch_key("cnn", &[1, 2, 4]));
        assert_ne!(arch_key("cnn", &[1, 2]), arch_key("cnn", &[1, 2, 0]));
    }

    #[test]
    fn context_key_separates_training_from_serving() {
        let base = arch_key("dlrm", &[0, 1]);
        assert_ne!(
            context_key(base, "train", 128),
            context_key(base, "serve", 1)
        );
        assert_ne!(
            context_key(base, "train", 1),
            context_key(base, "train", 128)
        );
    }

    #[test]
    fn hit_returns_inserted_value_and_counts() {
        let cache = EvalCache::new(8);
        let key = arch_key("s", &[1]);
        assert_eq!(cache.get(key), None);
        cache.insert(key, cost(1.0));
        assert_eq!(cache.get(key), Some(cost(1.0)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reinsert_overwrites() {
        let cache = EvalCache::new(8);
        cache.insert(7, cost(1.0));
        cache.insert(7, cost(2.0));
        assert_eq!(cache.get(7), Some(cost(2.0)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_oldest_within_a_shard() {
        // Single shard: recency order is global.
        let cache = EvalCache::with_shards(2, 1);
        cache.insert(1, cost(1.0));
        cache.insert(2, cost(2.0));
        cache.get(1); // refresh 1 → 2 is now LRU
        cache.insert(3, cost(3.0));
        assert_eq!(cache.get(2), None, "LRU entry evicted");
        assert_eq!(cache.get(1), Some(cost(1.0)));
        assert_eq!(cache.get(3), Some(cost(3.0)));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn cached_simulator_skips_rebuilds_on_hits() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let builds = AtomicUsize::new(0);
        let cached =
            CachedSimulator::new(Simulator::new(HardwareConfig::tpu_v4()), EvalCache::new(64));
        let build = || {
            builds.fetch_add(1, Ordering::SeqCst);
            let mut g = Graph::new("g", DType::Bf16);
            g.add(
                OpKind::MatMul {
                    m: 256,
                    k: 256,
                    n: 256,
                },
                &[],
            );
            g
        };
        let key = arch_key("bench", &[4, 2]);
        let first = cached.serving_cost(key, build);
        let second = cached.serving_cost(key, build);
        assert_eq!(first, second, "hit returns the exact memoized triple");
        assert_eq!(builds.load(Ordering::SeqCst), 1, "graph built only once");
        assert!(first.latency > 0.0 && first.energy > 0.0);
    }

    #[test]
    fn training_and_serving_costs_do_not_collide() {
        let cached =
            CachedSimulator::new(Simulator::new(HardwareConfig::tpu_v4()), EvalCache::new(64));
        let build = || {
            let mut g = Graph::new("g", DType::Bf16);
            g.add(
                OpKind::MatMul {
                    m: 512,
                    k: 512,
                    n: 512,
                },
                &[],
            );
            g
        };
        let key = arch_key("bench", &[1]);
        let train = cached.training_cost(key, &SystemConfig::single(64), build);
        let serve = cached.serving_cost(key, build);
        assert!(train.latency > serve.latency, "training ≈ 3× forward work");
    }

    #[test]
    fn timed_eval_splits_hit_and_miss_latency() {
        let cached =
            CachedSimulator::new(Simulator::new(HardwareConfig::tpu_v4()), EvalCache::new(64));
        let build = || {
            let mut g = Graph::new("g", DType::Bf16);
            g.add(
                OpKind::MatMul {
                    m: 128,
                    k: 128,
                    n: 128,
                },
                &[],
            );
            g
        };
        let key = arch_key("timed", &[9, 9]);
        cached.serving_cost(key, build); // miss
        cached.serving_cost(key, build); // hit
                                         // The registry is global and other tests in this binary may touch
                                         // the same series, so assert floors rather than exact counts.
        let snap = h2o_obs::snapshot();
        assert!(snap.counters["h2o_hwsim_evals_total"] >= 2);
        assert!(snap.histograms["h2o_hwsim_eval_seconds{result=\"miss\"}"].count >= 1);
        assert!(snap.histograms["h2o_hwsim_eval_seconds{result=\"hit\"}"].count >= 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        EvalCache::new(0);
    }
}
