//! Batch-size sweeps and load-aware serving latency.
//!
//! Two practitioner tools on top of the raw simulator:
//!
//! * [`batch_sweep`] — throughput/latency/utilisation curves over batch
//!   size, the standard way to pick a serving batch (§6.2.2's "serving
//!   throughput under P99 target latency" is a point on this curve).
//! * [`ServingLoadModel`] — an M/M/1 queueing layer over the simulated
//!   service time: production serving runs at some utilisation ρ, and the
//!   P99 seen by users includes queueing delay, not just the accelerator's
//!   isolated latency.

use crate::config::HardwareConfig;
use crate::simulator::Simulator;
use h2o_graph::Graph;
use serde::{Deserialize, Serialize};

/// One point of a batch-size sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchSweepPoint {
    /// Batch size.
    pub batch: usize,
    /// Isolated per-batch latency, seconds.
    pub latency: f64,
    /// Throughput, examples/s.
    pub throughput: f64,
    /// Matrix-unit utilisation in `[0, 1]`.
    pub mxu_utilization: f64,
    /// Average power, watts.
    pub power: f64,
    /// Energy per example, joules.
    pub energy_per_example: f64,
}

/// Sweeps serving batch sizes; `graph_at_batch` builds the serving graph
/// per batch size.
pub fn batch_sweep(
    sim: &Simulator,
    mut graph_at_batch: impl FnMut(usize) -> Graph,
    batches: &[usize],
) -> Vec<BatchSweepPoint> {
    batches
        .iter()
        .map(|&batch| {
            let report = sim.simulate(&graph_at_batch(batch));
            BatchSweepPoint {
                batch,
                latency: report.time,
                throughput: batch as f64 / report.time,
                mxu_utilization: report.mxu_utilization(),
                power: report.avg_power,
                energy_per_example: report.energy / batch.max(1) as f64,
            }
        })
        .collect()
}

/// M/M/1 queueing model over a simulated service time: at utilisation
/// `rho`, the mean sojourn time is `service / (1 − ρ)` and quantiles are
/// exponential (`P99 = −ln(0.01) × mean ≈ 4.6 × mean`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingLoadModel {
    /// Offered load as a fraction of capacity, in `[0, 1)`.
    pub utilization: f64,
}

impl ServingLoadModel {
    /// Creates a load model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ utilization < 1` (an M/M/1 queue diverges at 1).
    pub fn new(utilization: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&utilization),
            "utilization must be in [0, 1): the queue diverges at saturation"
        );
        Self { utilization }
    }

    /// Mean sojourn (queue + service) time for a given service time.
    pub fn mean_sojourn(&self, service_time: f64) -> f64 {
        service_time / (1.0 - self.utilization)
    }

    /// P99 sojourn time (exponential sojourn distribution of M/M/1).
    pub fn p99_sojourn(&self, service_time: f64) -> f64 {
        -(0.01f64).ln() * self.mean_sojourn(service_time)
    }

    /// Simulated P99 latency of a serving graph under this load.
    pub fn p99_latency(&self, sim: &Simulator, graph: &Graph) -> f64 {
        self.p99_sojourn(sim.simulate(graph).time)
    }

    /// The highest utilisation at which the graph still meets a P99
    /// target — the headroom a capacity planner cares about. Returns 0 if
    /// even an unloaded server misses the target.
    pub fn max_utilization_for_target(sim: &Simulator, graph: &Graph, target_p99: f64) -> f64 {
        let service = sim.simulate(graph).time;
        let unloaded_p99 = -(0.01f64).ln() * service;
        if unloaded_p99 >= target_p99 {
            return 0.0;
        }
        // p99(ρ) = 4.605 · service / (1−ρ)  ⇒  ρ = 1 − 4.605·service/target
        (1.0 - unloaded_p99 / target_p99).clamp(0.0, 1.0)
    }
}

/// Convenience wrapper: sweep + the platform it ran on (for reports).
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Platform name.
    pub hardware: String,
    /// The sweep points.
    pub points: Vec<BatchSweepPoint>,
}

/// Runs a sweep on a platform preset by name.
///
/// # Panics
///
/// Panics if the platform name is unknown.
pub fn sweep_on(
    hw_name: &str,
    graph_at_batch: impl FnMut(usize) -> Graph,
    batches: &[usize],
) -> SweepReport {
    let hw = HardwareConfig::by_name(hw_name)
        // h2o-lint: allow(panic-hygiene) -- documented panic on an unknown preset name: this is a
        // config-time entry point (bench/CLI), never reached from a running search
        .unwrap_or_else(|| panic!("unknown hardware '{hw_name}'"));
    let name = hw.name.clone();
    let sim = Simulator::new(hw);
    SweepReport {
        hardware: name,
        points: batch_sweep(&sim, graph_at_batch, batches),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2o_graph::{DType, OpKind};

    fn graph_at(batch: usize) -> Graph {
        let mut g = Graph::new("serve", DType::Bf16);
        g.add(
            OpKind::MatMul {
                m: batch * 16,
                k: 1024,
                n: 1024,
            },
            &[],
        );
        g
    }

    #[test]
    fn throughput_grows_then_saturates_with_batch() {
        let sim = Simulator::new(HardwareConfig::tpu_v4i());
        let points = batch_sweep(&sim, graph_at, &[1, 4, 16, 64, 256]);
        assert!(points
            .windows(2)
            .all(|w| w[1].throughput >= w[0].throughput * 0.99));
        // Large batches approach a plateau: the last doubling gains little.
        let gain = points[4].throughput / points[3].throughput;
        assert!(gain < 3.0, "gain {gain} should be sub-linear by batch 256");
    }

    #[test]
    fn latency_grows_with_batch() {
        let sim = Simulator::new(HardwareConfig::tpu_v4i());
        let points = batch_sweep(&sim, graph_at, &[1, 64, 512]);
        assert!(points[2].latency > points[0].latency);
    }

    #[test]
    fn energy_per_example_improves_with_batching() {
        let sim = Simulator::new(HardwareConfig::tpu_v4i());
        let points = batch_sweep(&sim, graph_at, &[1, 128]);
        assert!(
            points[1].energy_per_example < points[0].energy_per_example,
            "batching amortises idle energy"
        );
    }

    #[test]
    fn queueing_inflates_latency_with_load() {
        let light = ServingLoadModel::new(0.1);
        let heavy = ServingLoadModel::new(0.9);
        assert!(heavy.mean_sojourn(1e-3) > 5.0 * light.mean_sojourn(1e-3));
        assert!((heavy.p99_sojourn(1e-3) / heavy.mean_sojourn(1e-3) - 4.605).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "diverges")]
    fn saturation_rejected() {
        ServingLoadModel::new(1.0);
    }

    #[test]
    fn max_utilization_headroom_is_consistent() {
        let sim = Simulator::new(HardwareConfig::tpu_v4i());
        let g = graph_at(8);
        let service = sim.simulate(&g).time;
        let target = 20.0 * service;
        let rho = ServingLoadModel::max_utilization_for_target(&sim, &g, target);
        assert!(rho > 0.0 && rho < 1.0, "rho {rho}");
        // At that utilisation the P99 hits the target (within rounding).
        let p99 = ServingLoadModel::new(rho.min(0.999)).p99_sojourn(service);
        assert!((p99 - target).abs() / target < 0.05, "{p99} vs {target}");
    }

    #[test]
    fn impossible_target_gives_zero_headroom() {
        let sim = Simulator::new(HardwareConfig::tpu_v4i());
        let g = graph_at(8);
        assert_eq!(
            ServingLoadModel::max_utilization_for_target(&sim, &g, 1e-12),
            0.0
        );
    }

    #[test]
    fn sweep_on_resolves_presets() {
        let report = sweep_on("v100", graph_at, &[1, 8]);
        assert_eq!(report.hardware, "GPUv100");
        assert_eq!(report.points.len(), 2);
    }
}
