//! Hardware platform descriptions.
//!
//! Presets are parameterised from published numbers for the accelerators the
//! paper targets: TPUv4 (training, [Cloud TPU docs]), TPUv4i (serving,
//! Jouppi et al. ISCA'21) and the NVIDIA V100 (Choquette et al., IEEE
//! Micro'18). Power/energy coefficients are representative datacenter
//! values; EXPERIMENTS.md compares *shapes*, not absolute watts.

use serde::{Deserialize, Serialize};

/// A datacenter ML accelerator chip model.
///
/// All rates are peak per chip. The simulator derates matrix-unit throughput
/// with a tiling-efficiency model (see [`crate::roofline`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareConfig {
    /// Platform name, e.g. `"TPUv4"`.
    pub name: String,
    /// Peak matrix-unit throughput in FLOP/s (bf16/fp16 with fp32 accumulate).
    pub peak_flops: f64,
    /// Matrix-unit systolic tile dimension (128 for TPU MXUs and, close
    /// enough, for tensor-core GEMM tiling).
    pub mxu_dim: usize,
    /// Peak vector-processing-unit throughput in scalar op/s.
    pub vpu_ops_per_sec: f64,
    /// Off-chip HBM bandwidth in bytes/s.
    pub hbm_bw: f64,
    /// HBM capacity in bytes.
    pub hbm_capacity: f64,
    /// On-chip scratchpad (CMEM / L2) capacity in bytes.
    pub cmem_capacity: f64,
    /// On-chip scratchpad bandwidth in bytes/s.
    pub cmem_bw: f64,
    /// Inter-chip interconnect (ICI / NVLink) bandwidth in bytes/s per chip.
    pub ici_bw: f64,
    /// Fixed per-operator launch/dispatch overhead in seconds.
    pub op_overhead: f64,
    /// Chip idle power in watts (clock gating, HBM refresh, host share).
    pub idle_watts: f64,
    /// Dynamic energy per matrix-unit FLOP, joules.
    pub pj_per_flop: f64,
    /// Dynamic energy per vector op, joules.
    pub pj_per_vpu_op: f64,
    /// Dynamic energy per HBM byte, joules.
    pub pj_per_hbm_byte: f64,
    /// Dynamic energy per CMEM byte, joules (an order of magnitude below
    /// HBM — the reason Fig. 9's faster models can use *less* power).
    pub pj_per_cmem_byte: f64,
    /// Dynamic energy per interconnect byte, joules.
    pub pj_per_ici_byte: f64,
}

const PJ: f64 = 1e-12;

impl HardwareConfig {
    /// Google TPUv4 — the paper's training platform (275 TFLOPS bf16,
    /// 1.2 TB/s HBM, 128 MB CMEM).
    pub fn tpu_v4() -> Self {
        Self {
            name: "TPUv4".to_string(),
            peak_flops: 275e12,
            mxu_dim: 128,
            vpu_ops_per_sec: 4e12,
            hbm_bw: 1.2e12,
            hbm_capacity: 32e9,
            cmem_capacity: 128e6,
            cmem_bw: 7.0e12,
            ici_bw: 300e9,
            op_overhead: 1.2e-6,
            idle_watts: 90.0,
            pj_per_flop: 0.28 * PJ,
            pj_per_vpu_op: 0.8 * PJ,
            pj_per_hbm_byte: 28.0 * PJ,
            pj_per_cmem_byte: 2.5 * PJ,
            pj_per_ici_byte: 35.0 * PJ,
        }
    }

    /// Google TPUv4i — the paper's serving platform (~138 TFLOPS bf16,
    /// 614 GB/s HBM, 128 MB CMEM; Jouppi et al. ISCA'21).
    pub fn tpu_v4i() -> Self {
        Self {
            name: "TPUv4i".to_string(),
            peak_flops: 138e12,
            mxu_dim: 128,
            vpu_ops_per_sec: 2e12,
            hbm_bw: 614e9,
            hbm_capacity: 8e9,
            cmem_capacity: 128e6,
            cmem_bw: 3.6e12,
            ici_bw: 100e9,
            op_overhead: 1.0e-6,
            idle_watts: 55.0,
            pj_per_flop: 0.26 * PJ,
            pj_per_vpu_op: 0.8 * PJ,
            pj_per_hbm_byte: 30.0 * PJ,
            pj_per_cmem_byte: 2.5 * PJ,
            pj_per_ici_byte: 35.0 * PJ,
        }
    }

    /// NVIDIA V100 — the paper's GPU serving comparison point (125 TFLOPS
    /// fp16 tensor cores, 900 GB/s HBM2, 6 MB L2).
    pub fn gpu_v100() -> Self {
        Self {
            name: "GPUv100".to_string(),
            peak_flops: 125e12,
            mxu_dim: 128,
            vpu_ops_per_sec: 7e12,
            hbm_bw: 900e9,
            hbm_capacity: 16e9,
            cmem_capacity: 6e6,
            cmem_bw: 2.5e12,
            ici_bw: 150e9,
            op_overhead: 3.0e-6,
            idle_watts: 70.0,
            pj_per_flop: 0.45 * PJ,
            pj_per_vpu_op: 1.0 * PJ,
            pj_per_hbm_byte: 32.0 * PJ,
            pj_per_cmem_byte: 4.0 * PJ,
            pj_per_ici_byte: 40.0 * PJ,
        }
    }

    /// NVIDIA A100 (Ampere whitepaper: 312 TFLOPS bf16 tensor cores,
    /// 1.6 TB/s HBM2e on the 40 GB part, 40 MB L2).
    pub fn gpu_a100() -> Self {
        Self {
            name: "GPUa100".to_string(),
            peak_flops: 312e12,
            mxu_dim: 128,
            vpu_ops_per_sec: 19e12,
            hbm_bw: 1.6e12,
            hbm_capacity: 40e9,
            cmem_capacity: 40e6,
            cmem_bw: 4.8e12,
            ici_bw: 300e9,
            op_overhead: 2.5e-6,
            idle_watts: 80.0,
            pj_per_flop: 0.32 * PJ,
            pj_per_vpu_op: 0.9 * PJ,
            pj_per_hbm_byte: 30.0 * PJ,
            pj_per_cmem_byte: 3.5 * PJ,
            pj_per_ici_byte: 38.0 * PJ,
        }
    }

    /// NVIDIA H100 SXM (Hopper whitepaper: ~990 TFLOPS bf16 dense,
    /// 3.35 TB/s HBM3, 50 MB L2).
    pub fn gpu_h100() -> Self {
        Self {
            name: "GPUh100".to_string(),
            peak_flops: 990e12,
            mxu_dim: 128,
            vpu_ops_per_sec: 60e12,
            hbm_bw: 3.35e12,
            hbm_capacity: 80e9,
            cmem_capacity: 50e6,
            cmem_bw: 12.0e12,
            ici_bw: 450e9,
            op_overhead: 2.0e-6,
            idle_watts: 110.0,
            pj_per_flop: 0.22 * PJ,
            pj_per_vpu_op: 0.7 * PJ,
            pj_per_hbm_byte: 24.0 * PJ,
            pj_per_cmem_byte: 3.0 * PJ,
            pj_per_ici_byte: 32.0 * PJ,
        }
    }

    /// Google TPUv3 (Jouppi et al. CACM'20: 123 TFLOPS bf16, 900 GB/s HBM,
    /// no CMEM scratchpad beyond small on-chip buffers).
    pub fn tpu_v3() -> Self {
        Self {
            name: "TPUv3".to_string(),
            peak_flops: 123e12,
            mxu_dim: 128,
            vpu_ops_per_sec: 3e12,
            hbm_bw: 900e9,
            hbm_capacity: 32e9,
            cmem_capacity: 32e6,
            cmem_bw: 2.0e12,
            ici_bw: 162e9,
            op_overhead: 1.5e-6,
            idle_watts: 85.0,
            pj_per_flop: 0.40 * PJ,
            pj_per_vpu_op: 1.0 * PJ,
            pj_per_hbm_byte: 34.0 * PJ,
            pj_per_cmem_byte: 4.0 * PJ,
            pj_per_ici_byte: 40.0 * PJ,
        }
    }

    /// Looks a preset up by (case-insensitive) name.
    ///
    /// # Errors
    ///
    /// Returns `None` for unknown platform names.
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "tpuv3" | "tpu_v3" => Some(Self::tpu_v3()),
            "tpuv4" | "tpu_v4" => Some(Self::tpu_v4()),
            "tpuv4i" | "tpu_v4i" => Some(Self::tpu_v4i()),
            "gpuv100" | "v100" | "gpu_v100" => Some(Self::gpu_v100()),
            "gpua100" | "a100" | "gpu_a100" => Some(Self::gpu_a100()),
            "gpuh100" | "h100" | "gpu_h100" => Some(Self::gpu_h100()),
            _ => None,
        }
    }

    /// The ridge point of the HBM roofline, FLOPs/byte: operational
    /// intensities above this are compute-bound.
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_flops / self.hbm_bw
    }
}

/// A multi-chip training/serving system (e.g. the paper's 128-chip TPUv4
/// training pods, Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of accelerator chips.
    pub chips: usize,
    /// Global batch size (split evenly across chips for data parallelism).
    pub global_batch: usize,
}

impl SystemConfig {
    /// A single-chip system at the given batch size.
    pub fn single(batch: usize) -> Self {
        Self {
            chips: 1,
            global_batch: batch,
        }
    }

    /// The paper's standard 128-chip training pod (Table 2) at per-chip
    /// batch 64 (Table 3's throughput footnote), i.e. global batch 8192.
    pub fn training_pod() -> Self {
        Self {
            chips: 128,
            global_batch: 128 * 64,
        }
    }

    /// Per-chip batch size.
    ///
    /// # Panics
    ///
    /// Panics if `chips == 0`.
    pub fn per_chip_batch(&self) -> usize {
        assert!(self.chips > 0, "system must have at least one chip");
        (self.global_batch / self.chips).max(1)
    }
}

impl HardwareConfig {
    /// Every built-in platform preset, for sweeps and reports.
    pub fn all_presets() -> Vec<HardwareConfig> {
        vec![
            Self::tpu_v3(),
            Self::tpu_v4(),
            Self::tpu_v4i(),
            Self::gpu_v100(),
            Self::gpu_a100(),
            Self::gpu_h100(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_rooflines() {
        for hw in HardwareConfig::all_presets() {
            assert!(hw.peak_flops > 1e13, "{}", hw.name);
            assert!(hw.hbm_bw > 1e11);
            assert!(
                hw.cmem_bw > hw.hbm_bw,
                "on-chip must beat off-chip bandwidth"
            );
            assert!(
                hw.pj_per_cmem_byte < hw.pj_per_hbm_byte,
                "on-chip must be cheaper energy"
            );
            assert!(hw.ridge_intensity() > 50.0 && hw.ridge_intensity() < 1000.0);
        }
    }

    #[test]
    fn tpu_v4_faster_than_v4i() {
        assert!(HardwareConfig::tpu_v4().peak_flops > HardwareConfig::tpu_v4i().peak_flops);
    }

    #[test]
    fn generational_ordering_holds() {
        assert!(HardwareConfig::tpu_v3().peak_flops < HardwareConfig::tpu_v4().peak_flops);
        assert!(HardwareConfig::gpu_v100().peak_flops < HardwareConfig::gpu_a100().peak_flops);
        assert!(HardwareConfig::gpu_a100().peak_flops < HardwareConfig::gpu_h100().peak_flops);
        assert!(HardwareConfig::gpu_a100().hbm_bw > HardwareConfig::gpu_v100().hbm_bw);
    }

    #[test]
    fn new_presets_resolve_by_name() {
        assert_eq!(HardwareConfig::by_name("a100").unwrap().name, "GPUa100");
        assert_eq!(HardwareConfig::by_name("H100").unwrap().name, "GPUh100");
        assert_eq!(HardwareConfig::by_name("tpuv3").unwrap().name, "TPUv3");
    }

    #[test]
    fn by_name_resolves_aliases() {
        assert_eq!(HardwareConfig::by_name("TPUv4").unwrap().name, "TPUv4");
        assert_eq!(HardwareConfig::by_name("v100").unwrap().name, "GPUv100");
        assert!(HardwareConfig::by_name("tpu9000").is_none());
    }

    #[test]
    fn training_pod_matches_table2() {
        let sys = SystemConfig::training_pod();
        assert_eq!(sys.chips, 128);
        assert_eq!(sys.per_chip_batch(), 64);
    }

    #[test]
    fn per_chip_batch_never_zero() {
        let sys = SystemConfig {
            chips: 16,
            global_batch: 8,
        };
        assert_eq!(sys.per_chip_batch(), 1);
    }
}
