//! Per-operator roofline timing: compute / vector / memory / network rails
//! with an MXU tiling-efficiency model.
//!
//! This is where the paper's Fig. 4 behaviour comes from. An operator's
//! time is `max(rail times)` (subsystems overlap on TPUs/GPUs); the matrix
//! rail is derated by how well the operator's dimensions tile onto the
//! 128×128 systolic arrays. Small channel counts pad badly and strand
//! matrix-unit lanes — which is why a Fused-MBConv at depth 32 beats the
//! MBConv despite ~5× the FLOPs, while at depth 128 the MBConv wins
//! (Fig. 4c).

use crate::config::HardwareConfig;
use h2o_graph::{DType, OpCost, OpKind};
use serde::{Deserialize, Serialize};

/// Achieved fraction of peak for a GEMM of logical shape `(m, k, n)` on a
/// `tile`-wide systolic array.
///
/// Padding model: each dimension is padded up to its hardware granularity
/// (the full tile for `k`/`n`, 8 rows for `m`), and the efficiency is the
/// ratio of useful to padded work, capped at a realistic 90 % of peak.
pub fn mxu_efficiency(m: usize, k: usize, n: usize, tile: usize) -> f64 {
    let pad = |dim: usize, granule: usize| -> f64 {
        let padded = dim.div_ceil(granule) * granule;
        dim as f64 / padded as f64
    };
    let eff = pad(m, 8) * pad(k, tile) * pad(n, tile);
    (0.90 * eff).clamp(0.0, 0.90)
}

/// GEMM-equivalent logical shape of a matrix-unit operator, if any.
pub fn gemm_shape(kind: &OpKind) -> Option<(usize, usize, usize)> {
    match *kind {
        OpKind::MatMul { m, k, n } => Some((m, k, n)),
        OpKind::BatchedMatMul { batches, m, k, n } => Some((batches * m, k, n)),
        OpKind::Conv2d {
            batch,
            h,
            w,
            c_in,
            c_out,
            kh,
            kw,
            stride,
        } => {
            let (ho, wo) = (h.div_ceil(stride), w.div_ceil(stride));
            Some((batch * ho * wo, c_in * kh * kw, c_out))
        }
        _ => None,
    }
}

/// Dominant service point of an operator's activation traffic (kept for
/// reporting; the timing model splits traffic fractionally).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryPlacement {
    /// Working set fits in the on-chip scratchpad.
    Cmem,
    /// Spills to off-chip HBM.
    Hbm,
}

/// Timing and traffic breakdown of a single operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct OpTiming {
    /// Wall-clock time of the operator in seconds (max over rails, plus
    /// launch overhead).
    pub time: f64,
    /// Matrix-unit rail time.
    pub mxu_time: f64,
    /// Vector-unit rail time.
    pub vpu_time: f64,
    /// HBM rail time.
    pub hbm_time: f64,
    /// On-chip memory rail time.
    pub cmem_time: f64,
    /// Interconnect rail time.
    pub ici_time: f64,
    /// Bytes served by HBM.
    pub hbm_bytes: f64,
    /// Bytes served by CMEM.
    pub cmem_bytes: f64,
    /// Bytes crossing the interconnect.
    pub ici_bytes: f64,
    /// Achieved MXU efficiency (0 for non-matrix ops).
    pub mxu_efficiency: f64,
}

/// Computes the roofline timing of one operator.
///
/// `cost` must be the operator's [`OpCost`] (already honouring fusion);
/// `kind` supplies the dimensions for the tiling model.
pub fn time_op(kind: &OpKind, cost: &OpCost, hw: &HardwareConfig) -> OpTiming {
    // --- Matrix rail ---
    let (mxu_time, eff) = if let Some((m, k, n)) = gemm_shape(kind) {
        let eff = mxu_efficiency(m, k, n, hw.mxu_dim);
        let t = if cost.flops > 0.0 {
            cost.flops / (hw.peak_flops * eff.max(1e-6))
        } else {
            0.0
        };
        (t, eff)
    } else {
        (0.0, 0.0)
    };

    // --- Vector rail ---
    let vpu_time = cost.vpu_ops / hw.vpu_ops_per_sec;

    // --- Memory rails: activation traffic is served from on-chip CMEM up
    //     to a per-op budget (the compiler tiles working sets through the
    //     scratchpad), spilling the remainder to HBM. Embedding-table
    //     gathers and weights always stream from HBM. ---
    let act_bytes = (cost.bytes_read - cost.weight_bytes).max(0.0) + cost.bytes_written;
    let cmem_budget = 0.5 * hw.cmem_capacity;
    let (cmem_bytes, mut hbm_bytes) = if matches!(kind, OpKind::EmbeddingLookup { .. }) {
        (0.0, act_bytes)
    } else if act_bytes <= cmem_budget {
        (act_bytes, 0.0)
    } else {
        (cmem_budget, act_bytes - cmem_budget)
    };
    hbm_bytes += cost.weight_bytes;
    let hbm_time = hbm_bytes / hw.hbm_bw;
    let cmem_time = cmem_bytes / hw.cmem_bw;

    // --- Network rail ---
    let ici_time = cost.network_bytes / hw.ici_bw;

    let busy = mxu_time
        .max(vpu_time)
        .max(hbm_time)
        .max(cmem_time)
        .max(ici_time);
    let overhead = if busy > 0.0 || cost.network_bytes > 0.0 {
        hw.op_overhead
    } else {
        0.0
    };
    OpTiming {
        time: busy + overhead,
        mxu_time,
        vpu_time,
        hbm_time,
        cmem_time,
        ici_time,
        hbm_bytes,
        cmem_bytes,
        ici_bytes: cost.network_bytes,
        mxu_efficiency: eff,
    }
}

/// A point on the classic roofline plot: operational intensity (x) and
/// achieved FLOP/s (y). Used directly by the Fig. 4b bench.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// FLOPs per byte of memory traffic.
    pub operational_intensity: f64,
    /// Achieved compute rate in FLOP/s.
    pub achieved_flops: f64,
    /// Fraction of the platform peak.
    pub fraction_of_peak: f64,
}

/// Evaluates a whole-kernel roofline point for an operator set with
/// aggregate cost `cost` executing in `time` seconds.
pub fn roofline_point(cost: &OpCost, time: f64, hw: &HardwareConfig) -> RooflinePoint {
    let achieved = if time > 0.0 { cost.flops / time } else { 0.0 };
    RooflinePoint {
        operational_intensity: cost.operational_intensity(),
        achieved_flops: achieved,
        fraction_of_peak: achieved / hw.peak_flops,
    }
}

/// The ideal roofline envelope `min(peak, intensity × bw)` — the reference
/// curve drawn on Fig. 4b.
pub fn roofline_envelope(intensity: f64, hw: &HardwareConfig) -> f64 {
    (intensity * hw.hbm_bw).min(hw.peak_flops)
}

/// Convenience: cost + timing for a standalone op at a dtype.
pub fn time_standalone(kind: &OpKind, dtype: DType, hw: &HardwareConfig) -> OpTiming {
    time_op(kind, &kind.cost(dtype), hw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HardwareConfig {
        HardwareConfig::tpu_v4i()
    }

    #[test]
    fn efficiency_full_tiles_is_max() {
        assert!((mxu_efficiency(1024, 128, 128, 128) - 0.90).abs() < 1e-9);
    }

    #[test]
    fn efficiency_small_k_penalised() {
        let small = mxu_efficiency(1024, 32, 128, 128);
        let full = mxu_efficiency(1024, 128, 128, 128);
        assert!((small - full * 32.0 / 128.0).abs() < 1e-9);
    }

    #[test]
    fn conv_gemm_shape_contracts_over_kernel_and_cin() {
        let k = OpKind::Conv2d {
            batch: 2,
            h: 8,
            w: 8,
            c_in: 16,
            c_out: 32,
            kh: 3,
            kw: 3,
            stride: 1,
        };
        assert_eq!(gemm_shape(&k), Some((2 * 64, 144, 32)));
    }

    #[test]
    fn compute_bound_matmul_hits_mxu_rail() {
        let k = OpKind::MatMul {
            m: 4096,
            k: 4096,
            n: 4096,
        };
        let t = time_standalone(&k, DType::Bf16, &hw());
        assert!(t.mxu_time > t.hbm_time, "{t:?}");
        assert!(t.mxu_time > t.cmem_time);
    }

    #[test]
    fn embedding_lookup_is_memory_bound_on_hbm() {
        let k = OpKind::EmbeddingLookup {
            lookups: 1_000_000,
            width: 128,
            vocab: 10_000_000,
        };
        let t = time_standalone(&k, DType::F32, &hw());
        assert!(t.hbm_time > t.mxu_time);
        assert_eq!(t.cmem_bytes, 0.0, "embedding gathers must not claim CMEM");
    }

    #[test]
    fn small_activations_served_from_cmem() {
        let k = OpKind::Elementwise {
            elems: 1000,
            ops_per_elem: 1.0,
            label: "relu".into(),
        };
        let t = time_standalone(&k, DType::Bf16, &hw());
        assert!(t.cmem_bytes > 0.0);
        assert_eq!(t.hbm_bytes, 0.0);
    }

    #[test]
    fn huge_activations_spill_to_hbm() {
        let k = OpKind::Elementwise {
            elems: 200_000_000,
            ops_per_elem: 1.0,
            label: "relu".into(),
        };
        let t = time_standalone(&k, DType::Bf16, &hw());
        assert!(t.hbm_bytes > t.cmem_bytes, "most traffic spills off-chip");
        // The tiled slice stays on-chip at exactly the CMEM budget.
        assert!((t.cmem_bytes - 0.5 * hw().cmem_capacity).abs() < 1.0);
    }

    #[test]
    fn fig4c_crossover_emerges_from_tiling() {
        // F-MBC(32) faster than MBC(32); F-MBC(128) slower than MBC(128).
        use h2o_graph::blocks::{fused_mbconv, mbconv, MbConvConfig};
        use h2o_graph::Graph;
        let time_of = |fused: bool, depth: usize| {
            let cfg = MbConvConfig::square(56, depth, 8);
            let mut g = Graph::new("b", DType::Bf16);
            let i = g.add(OpKind::Reshape { elems: 1 }, &[]);
            if fused {
                fused_mbconv(&mut g, &cfg, i);
            } else {
                mbconv(&mut g, &cfg, i);
            }
            g.fuse_elementwise();
            let hw = hw();
            g.critical_path_time(|id| time_op(&g.node(id).kind, &g.node_cost(id), &hw).time)
        };
        assert!(
            time_of(true, 32) < time_of(false, 32),
            "fused must win at depth 32: {} vs {}",
            time_of(true, 32),
            time_of(false, 32)
        );
        assert!(
            time_of(true, 128) > time_of(false, 128),
            "classic must win at depth 128: {} vs {}",
            time_of(true, 128),
            time_of(false, 128)
        );
    }

    #[test]
    fn roofline_envelope_has_ridge() {
        let h = hw();
        let low = roofline_envelope(1.0, &h);
        let high = roofline_envelope(1e6, &h);
        assert!((low - h.hbm_bw).abs() / h.hbm_bw < 1e-9);
        assert_eq!(high, h.peak_flops);
    }

    #[test]
    fn network_op_rides_ici_rail() {
        let k = OpKind::AllToAll {
            bytes_per_chip: 1e9,
        };
        let t = time_standalone(&k, DType::Bf16, &hw());
        assert!(t.ici_time > 0.0);
        assert!(t.time >= t.ici_time);
    }

    #[test]
    fn more_bandwidth_never_slower() {
        let k = OpKind::EmbeddingLookup {
            lookups: 100_000,
            width: 64,
            vocab: 1_000_000,
        };
        let mut fast = hw();
        fast.hbm_bw *= 2.0;
        let slow_t = time_standalone(&k, DType::F32, &hw()).time;
        let fast_t = time_standalone(&k, DType::F32, &fast).time;
        assert!(fast_t <= slow_t);
    }
}
