//! Whole-graph simulation: critical-path execution time, hardware counters,
//! power and energy.
//!
//! Mirrors §6.2.3 of the paper: the simulator "walks through a
//! TensorFlow/HLO graph, simulates run-time of each operator, and finally
//! sums the total run-time on the critical path as the execution time".
//! On top of the per-op rooflines it adds the counters needed for the
//! Fig. 7 hardware analysis and the power/energy model behind Fig. 9.

use crate::config::{HardwareConfig, SystemConfig};
use crate::roofline::{roofline_point, time_op, RooflinePoint};
use h2o_graph::{Graph, OpCost, OpKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregated result of simulating one graph execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SimReport {
    /// Critical-path execution time in seconds.
    pub time: f64,
    /// Total matrix-unit FLOPs executed.
    pub flops: f64,
    /// Achieved compute rate FLOP/s (`flops / time`).
    pub achieved_flops_rate: f64,
    /// Bytes moved through HBM.
    pub hbm_bytes: f64,
    /// Bytes moved through on-chip CMEM.
    pub cmem_bytes: f64,
    /// Bytes moved over the interconnect.
    pub ici_bytes: f64,
    /// Average HBM bandwidth consumed, bytes/s.
    pub hbm_bw_used: f64,
    /// Average CMEM bandwidth consumed, bytes/s.
    pub cmem_bw_used: f64,
    /// Total dynamic + idle energy in joules.
    pub energy: f64,
    /// Average power draw in watts (`energy / time`).
    pub avg_power: f64,
    /// Trainable parameters of the simulated graph.
    pub params: f64,
    /// Sum of per-op busy time on the matrix units (utilisation proxy).
    pub mxu_busy: f64,
    /// Per-op-label time breakdown, seconds.
    pub breakdown: BTreeMap<String, f64>,
}

impl SimReport {
    /// Total memory traffic (HBM + CMEM).
    pub fn total_mem_bytes(&self) -> f64 {
        self.hbm_bytes + self.cmem_bytes
    }

    /// Total average memory bandwidth (HBM + CMEM), bytes/s.
    pub fn total_mem_bw(&self) -> f64 {
        self.hbm_bw_used + self.cmem_bw_used
    }

    /// Matrix-unit utilisation in `[0, 1]` (busy time over wall time).
    pub fn mxu_utilization(&self) -> f64 {
        if self.time > 0.0 {
            (self.mxu_busy / self.time).min(1.0)
        } else {
            0.0
        }
    }

    /// The roofline point of the whole execution on `hw` (Fig. 4b / Fig. 7).
    pub fn roofline(&self, hw: &HardwareConfig) -> RooflinePoint {
        let cost = OpCost {
            flops: self.flops,
            bytes_read: self.hbm_bytes, // intensity w.r.t. off-chip traffic
            bytes_written: 0.0,
            ..OpCost::default()
        };
        roofline_point(&cost, self.time, hw)
    }
}

/// The hardware performance simulator (§6.2.3).
///
/// # Examples
///
/// ```
/// use h2o_hwsim::{Simulator, HardwareConfig};
/// use h2o_graph::{Graph, OpKind, DType};
///
/// let mut g = Graph::new("gemm", DType::Bf16);
/// g.add(OpKind::MatMul { m: 1024, k: 1024, n: 1024 }, &[]);
/// let sim = Simulator::new(HardwareConfig::tpu_v4());
/// let report = sim.simulate(&g);
/// assert!(report.time > 0.0 && report.avg_power > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    hw: HardwareConfig,
}

impl Simulator {
    /// Creates a simulator for the given platform.
    pub fn new(hw: HardwareConfig) -> Self {
        Self { hw }
    }

    /// The platform being simulated.
    pub fn hardware(&self) -> &HardwareConfig {
        &self.hw
    }

    /// Simulates one forward execution (a serving step) of the graph.
    pub fn simulate(&self, graph: &Graph) -> SimReport {
        self.simulate_scaled(graph, 1.0, 0.0)
    }

    /// Simulates one *training* step of the graph on a (possibly
    /// multi-chip, data-parallel) system.
    ///
    /// The backward pass is modelled as 2× the forward work (the standard
    /// fwd:bwd FLOP ratio for dense nets), and data parallelism adds a
    /// gradient all-reduce of the *data-parallel* parameter bytes over the
    /// interconnect. Embedding tables are model-parallel (sharded across
    /// chips with all-to-all exchange, as in production DLRM systems), so
    /// their parameters are excluded from the all-reduce.
    pub fn simulate_training(&self, graph: &Graph, system: &SystemConfig) -> SimReport {
        let dense_params: f64 = graph
            .nodes()
            .iter()
            .filter(|n| !matches!(n.kind, OpKind::EmbeddingLookup { .. }))
            .map(|n| graph.node_cost(n.id).params)
            .sum();
        let grad_bytes = dense_params * graph.dtype().bytes() as f64;
        let allreduce_bytes = if system.chips > 1 {
            2.0 * grad_bytes
        } else {
            0.0
        };
        self.simulate_scaled(graph, 3.0, allreduce_bytes)
    }

    fn simulate_scaled(&self, graph: &Graph, work_scale: f64, extra_ici_bytes: f64) -> SimReport {
        let walk_span = h2o_obs::span("simulator_walk");
        h2o_obs::counter("h2o_hwsim_graphs_walked_total").inc();
        h2o_obs::counter("h2o_hwsim_ops_visited_total").add(graph.len() as u64);
        let mut report = SimReport::default();
        let mut timings = Vec::with_capacity(graph.len());
        for node in graph.nodes() {
            let cost = graph.node_cost(node.id);
            let t = time_op(&node.kind, &cost, &self.hw);
            report.flops += cost.flops * work_scale;
            report.hbm_bytes += t.hbm_bytes * work_scale;
            report.cmem_bytes += t.cmem_bytes * work_scale;
            report.ici_bytes += t.ici_bytes * work_scale;
            report.params += cost.params;
            report.mxu_busy += t.mxu_time * work_scale;
            let vpu_energy = cost.vpu_ops * work_scale * self.hw.pj_per_vpu_op;
            report.energy += cost.flops * work_scale * self.hw.pj_per_flop
                + t.hbm_bytes * work_scale * self.hw.pj_per_hbm_byte
                + t.cmem_bytes * work_scale * self.hw.pj_per_cmem_byte
                + t.ici_bytes * work_scale * self.hw.pj_per_ici_byte
                + vpu_energy;
            *report
                .breakdown
                .entry(node.kind.label().to_string())
                .or_insert(0.0) += t.time * work_scale;
            timings.push(t.time * work_scale);
        }
        // Per-op-kind visit counts, aggregated once per walk (one labelled
        // counter add per distinct op label, not per node).
        for (label, visits) in graph.nodes().iter().fold(
            std::collections::BTreeMap::<&str, u64>::new(),
            |mut acc, node| {
                *acc.entry(node.kind.label()).or_insert(0) += 1;
                acc
            },
        ) {
            h2o_obs::counter(&format!("h2o_hwsim_op_visits{{op=\"{label}\"}}")).add(visits);
        }
        let mut time = graph.critical_path_time(|id| timings[id.0]);
        if extra_ici_bytes > 0.0 {
            let allreduce = OpKind::AllReduce {
                bytes_per_chip: extra_ici_bytes / 2.0,
            };
            let t = time_op(&allreduce, &allreduce.cost(graph.dtype()), &self.hw);
            // Gradient all-reduce partially overlaps the backward pass; model
            // half of it as exposed.
            time += 0.5 * t.time;
            report.ici_bytes += extra_ici_bytes;
            report.energy += extra_ici_bytes * self.hw.pj_per_ici_byte;
            *report
                .breakdown
                .entry("all_reduce".to_string())
                .or_insert(0.0) += t.time;
        }
        report.time = time;
        report.energy += self.hw.idle_watts * time;
        if time > 0.0 {
            report.achieved_flops_rate = report.flops / time;
            report.hbm_bw_used = report.hbm_bytes / time;
            report.cmem_bw_used = report.cmem_bytes / time;
            report.avg_power = report.energy / time;
        }
        h2o_obs::histogram("h2o_hwsim_walk_seconds").record(walk_span.finish());
        report
    }

    /// Memory-capacity feasibility (§6.1 lists memory capacity among the
    /// launch constraints): a model is servable on one chip only if its
    /// parameters fit in HBM alongside an activation working set, and
    /// trainable on a system only if parameters + optimizer state (Adam
    /// keeps two moment buffers) fit across the chips with the embedding
    /// tables sharded.
    pub fn fits_for_serving(&self, graph: &Graph) -> bool {
        let param_bytes = graph.param_count() * graph.dtype().bytes() as f64;
        let activation_slack = 0.1 * self.hw.hbm_capacity;
        param_bytes + activation_slack <= self.hw.hbm_capacity
    }

    /// Whether a training job fits in aggregate system memory (parameters,
    /// gradients and two Adam moments; embeddings sharded across chips).
    pub fn fits_for_training(&self, graph: &Graph, system: &SystemConfig) -> bool {
        let param_bytes = graph.param_count() * graph.dtype().bytes() as f64;
        // params + grads + 2 optimizer moments = 4x, sharded across chips.
        let per_chip = 4.0 * param_bytes / system.chips.max(1) as f64;
        let activation_slack = 0.2 * self.hw.hbm_capacity;
        per_chip + activation_slack <= self.hw.hbm_capacity
    }

    /// Serving latency percentile model: production serving sees queueing
    /// and co-tenancy jitter, so P99 ≈ 1.35× the isolated mean plus a fixed
    /// host-side overhead.
    pub fn p99_latency(&self, graph: &Graph) -> f64 {
        let mean = self.simulate(graph).time;
        1.35 * mean + 150e-6
    }

    /// Serving throughput (queries/s) under a P99 latency target, the
    /// paper's serving metric (§6.2.2): batch is scaled up until P99 would
    /// exceed the target.
    ///
    /// `graph_at_batch` must build the serving graph for a given batch size.
    /// Returns `(best_batch, throughput_qps)`; `(0, 0.0)` if even batch 1
    /// misses the target.
    pub fn serving_throughput_under_p99(
        &self,
        target_latency: f64,
        mut graph_at_batch: impl FnMut(usize) -> Graph,
    ) -> (usize, f64) {
        let mut best = (0usize, 0.0f64);
        let mut batch = 1usize;
        while batch <= 4096 {
            let g = graph_at_batch(batch);
            let p99 = self.p99_latency(&g);
            if p99 <= target_latency {
                let qps = batch as f64 / self.simulate(&g).time;
                if qps > best.1 {
                    best = (batch, qps);
                }
            } else if batch > 1 {
                break;
            }
            batch *= 2;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2o_graph::DType;

    fn gemm_graph(n: usize) -> Graph {
        let mut g = Graph::new("gemm", DType::Bf16);
        g.add(OpKind::MatMul { m: n, k: n, n }, &[]);
        g
    }

    #[test]
    fn bigger_graph_takes_longer() {
        let sim = Simulator::new(HardwareConfig::tpu_v4());
        assert!(sim.simulate(&gemm_graph(2048)).time > sim.simulate(&gemm_graph(512)).time);
    }

    #[test]
    fn training_step_costs_about_3x_forward() {
        let sim = Simulator::new(HardwareConfig::tpu_v4());
        let g = gemm_graph(2048);
        let fwd = sim.simulate(&g);
        let train = sim.simulate_training(&g, &SystemConfig::single(64));
        assert!(train.time > 2.5 * fwd.time && train.time < 4.0 * fwd.time);
    }

    #[test]
    fn data_parallel_training_adds_allreduce_traffic() {
        let sim = Simulator::new(HardwareConfig::tpu_v4());
        let g = gemm_graph(1024);
        let single = sim.simulate_training(&g, &SystemConfig::single(64));
        let pod = sim.simulate_training(&g, &SystemConfig::training_pod());
        assert!(pod.ici_bytes > single.ici_bytes);
        assert!(pod.time > single.time);
    }

    #[test]
    fn energy_is_time_times_power() {
        let sim = Simulator::new(HardwareConfig::tpu_v4());
        let r = sim.simulate(&gemm_graph(1024));
        assert!((r.energy - r.time * r.avg_power).abs() / r.energy < 1e-9);
    }

    #[test]
    fn idle_power_dominates_tiny_graphs() {
        let sim = Simulator::new(HardwareConfig::tpu_v4());
        let mut g = Graph::new("tiny", DType::Bf16);
        g.add(
            OpKind::Elementwise {
                elems: 8,
                ops_per_elem: 1.0,
                label: "relu".into(),
            },
            &[],
        );
        let r = sim.simulate(&g);
        assert!((r.avg_power - sim.hardware().idle_watts).abs() < 5.0);
    }

    #[test]
    fn compute_bound_graph_draws_more_power_than_idle() {
        let sim = Simulator::new(HardwareConfig::tpu_v4());
        let r = sim.simulate(&gemm_graph(4096));
        assert!(
            r.avg_power > sim.hardware().idle_watts * 1.5,
            "power {}",
            r.avg_power
        );
    }

    #[test]
    fn achieved_rate_below_peak() {
        let sim = Simulator::new(HardwareConfig::tpu_v4());
        let r = sim.simulate(&gemm_graph(4096));
        assert!(r.achieved_flops_rate < sim.hardware().peak_flops);
        assert!(r.achieved_flops_rate > 0.1 * sim.hardware().peak_flops);
    }

    #[test]
    fn breakdown_accounts_labels() {
        let sim = Simulator::new(HardwareConfig::tpu_v4());
        let mut g = gemm_graph(512);
        g.add(
            OpKind::Elementwise {
                elems: 512 * 512,
                ops_per_elem: 1.0,
                label: "relu".into(),
            },
            &[],
        );
        let r = sim.simulate(&g);
        assert!(r.breakdown.contains_key("matmul"));
        assert!(r.breakdown.contains_key("relu"));
    }

    #[test]
    fn p99_exceeds_mean() {
        let sim = Simulator::new(HardwareConfig::tpu_v4i());
        let g = gemm_graph(1024);
        assert!(sim.p99_latency(&g) > sim.simulate(&g).time);
    }

    #[test]
    fn serving_throughput_grows_with_looser_target() {
        let sim = Simulator::new(HardwareConfig::tpu_v4i());
        let builder = |batch: usize| {
            let mut g = Graph::new("serve", DType::Bf16);
            g.add(
                OpKind::MatMul {
                    m: batch * 64,
                    k: 1024,
                    n: 1024,
                },
                &[],
            );
            g
        };
        let (b_tight, q_tight) = sim.serving_throughput_under_p99(1e-3, builder);
        let (b_loose, q_loose) = sim.serving_throughput_under_p99(20e-3, builder);
        assert!(b_loose >= b_tight);
        assert!(q_loose >= q_tight);
        assert!(q_loose > 0.0);
    }

    #[test]
    fn serving_throughput_impossible_target_is_zero() {
        let sim = Simulator::new(HardwareConfig::tpu_v4i());
        let builder = |batch: usize| {
            let mut g = Graph::new("serve", DType::Bf16);
            g.add(
                OpKind::MatMul {
                    m: batch * 64,
                    k: 8192,
                    n: 8192,
                },
                &[],
            );
            g
        };
        let (b, q) = sim.serving_throughput_under_p99(1e-9, builder);
        assert_eq!(b, 0);
        assert_eq!(q, 0.0);
    }

    #[test]
    fn small_model_fits_everywhere() {
        let sim = Simulator::new(HardwareConfig::tpu_v4i());
        let g = gemm_graph(512);
        assert!(sim.fits_for_serving(&g));
        assert!(sim.fits_for_training(&g, &SystemConfig::single(64)));
    }

    #[test]
    fn giant_model_fails_single_chip_but_fits_a_pod() {
        // ~8B params at bf16 = 16 GB of weights: over a TPUv4i's 8 GB HBM,
        // trainable once sharded across a 128-chip pod.
        let mut g = Graph::new("giant", DType::Bf16);
        let mut prev = g.add(
            OpKind::MatMul {
                m: 64,
                k: 16384,
                n: 16384,
            },
            &[],
        );
        for _ in 0..29 {
            prev = g.add(
                OpKind::MatMul {
                    m: 64,
                    k: 16384,
                    n: 16384,
                },
                &[prev],
            );
        }
        let serve = Simulator::new(HardwareConfig::tpu_v4i());
        assert!(
            !serve.fits_for_serving(&g),
            "giant model must not fit one TPUv4i"
        );
        let train = Simulator::new(HardwareConfig::tpu_v4());
        assert!(!train.fits_for_training(&g, &SystemConfig::single(64)));
        assert!(train.fits_for_training(&g, &SystemConfig::training_pod()));
    }

    #[test]
    fn parallel_branches_overlap_in_time() {
        // Two equal matmuls in parallel should take about as long as one,
        // not two (critical-path semantics, Fig. 8's max(embedding, MLP)).
        let sim = Simulator::new(HardwareConfig::tpu_v4());
        let serial = {
            let mut g = Graph::new("serial", DType::Bf16);
            let a = g.add(
                OpKind::MatMul {
                    m: 1024,
                    k: 1024,
                    n: 1024,
                },
                &[],
            );
            g.add(
                OpKind::MatMul {
                    m: 1024,
                    k: 1024,
                    n: 1024,
                },
                &[a],
            );
            sim.simulate(&g).time
        };
        let parallel = {
            let mut g = Graph::new("parallel", DType::Bf16);
            g.add(
                OpKind::MatMul {
                    m: 1024,
                    k: 1024,
                    n: 1024,
                },
                &[],
            );
            g.add(
                OpKind::MatMul {
                    m: 1024,
                    k: 1024,
                    n: 1024,
                },
                &[],
            );
            sim.simulate(&g).time
        };
        assert!(parallel < 0.6 * serial);
    }
}
