//! Property tests locking down the memoizing cache: canonical-hash
//! injectivity under mutation, and the LRU invariants the determinism
//! suite leans on (bounded size; a hit always returns the last value
//! inserted for that key).

use h2o_hwsim::{arch_key, EvalCache, EvalCost};
use proptest::prelude::*;

fn cost(tag: f64) -> EvalCost {
    EvalCost {
        latency: tag,
        energy: 2.0 * tag,
        memory_bytes: 3.0 * tag,
        params: 4.0 * tag,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    fn equal_configs_hash_equal(sample in prop::collection::vec(0usize..64, 0..40)) {
        prop_assert_eq!(arch_key("space", &sample), arch_key("space", &sample));
        // A fresh clone hashes identically (no hidden address/state input).
        let clone = sample.clone();
        prop_assert_eq!(arch_key("space", &sample), arch_key("space", &clone));
    }

    fn single_field_mutation_changes_the_hash(
        sample in prop::collection::vec(0usize..64, 1..40),
        field in 0usize..40,
        bump in 1usize..64,
    ) {
        let field = field % sample.len();
        let mut mutated = sample.clone();
        // Guaranteed-different choice at exactly one decision.
        mutated[field] = (mutated[field] + bump) % 64;
        if mutated[field] != sample[field] {
            prop_assert_ne!(arch_key("space", &sample), arch_key("space", &mutated));
        }
    }

    fn truncation_and_space_rename_change_the_hash(
        sample in prop::collection::vec(0usize..64, 1..40),
    ) {
        // Dropping a decision must change the key (length is hashed).
        prop_assert_ne!(
            arch_key("space", &sample),
            arch_key("space", &sample[..sample.len() - 1])
        );
        // A different space name must change the key.
        prop_assert_ne!(arch_key("space", &sample), arch_key("spacf", &sample));
    }

    fn cache_never_exceeds_capacity(
        capacity in 1usize..32,
        keys in prop::collection::vec(0u64..1_000, 1..300),
    ) {
        let cache = EvalCache::new(capacity);
        for (i, &key) in keys.iter().enumerate() {
            cache.insert(key, cost(i as f64));
            prop_assert!(
                cache.len() <= cache.capacity(),
                "{} entries in a {}-capacity cache", cache.len(), cache.capacity()
            );
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.entries, cache.len());
    }

    fn hit_returns_last_inserted_value(
        inserts in prop::collection::vec((0u64..16, 0.0f64..1e6), 1..200),
    ) {
        // A single shard whose capacity covers the whole key universe, so
        // nothing is evicted and every key reports its most recent insert.
        let cache = EvalCache::with_shards(16, 1);
        let mut last = std::collections::HashMap::new();
        for &(key, tag) in &inserts {
            cache.insert(key, cost(tag));
            last.insert(key, cost(tag));
        }
        for (key, expected) in last {
            prop_assert_eq!(cache.get(key), Some(expected));
        }
    }

    fn eviction_only_removes_the_least_recent(
        touch in prop::collection::vec(0u64..8, 1..100),
    ) {
        // Single-shard cache of 4: after any access pattern over 8 keys,
        // the resident set is exactly the 4 most recently touched keys.
        let cache = EvalCache::with_shards(4, 1);
        let mut recency: Vec<u64> = Vec::new();
        for &key in &touch {
            cache.insert(key, cost(key as f64));
            recency.retain(|&k| k != key);
            recency.push(key);
        }
        let resident: Vec<u64> = recency.iter().rev().take(4).copied().collect();
        for &key in &resident {
            prop_assert!(cache.get(key).is_some(), "recent key {} evicted", key);
        }
        for &key in recency.iter().rev().skip(4) {
            prop_assert!(cache.get(key).is_none(), "stale key {} resident", key);
        }
    }
}
