//! Concurrency stress tests for the executor layers (mirrors
//! `crates/obs/tests/concurrency.rs`): overlapping batches from many
//! producers must lose nothing, duplicate nothing, and shut down cleanly.

use h2o_exec::{Executor, WorkerPool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const PRODUCERS: usize = 8;
const BATCHES_PER_PRODUCER: usize = 20;
const JOBS_PER_BATCH: usize = 37;

/// Worker count for stress runs; honours the CI matrix's `H2O_WORKERS`.
fn workers() -> usize {
    h2o_exec::resolve_workers(0, 4)
}

#[test]
fn overlapping_batches_from_many_producers_lose_nothing() {
    let pool = Arc::new(WorkerPool::new(workers()));
    let executed = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        for producer in 0..PRODUCERS {
            let pool = pool.clone();
            let executed = executed.clone();
            s.spawn(move || {
                for batch in 0..BATCHES_PER_PRODUCER {
                    let jobs: Vec<_> = (0..JOBS_PER_BATCH)
                        .map(|job| {
                            let executed = executed.clone();
                            move || {
                                executed.fetch_add(1, Ordering::SeqCst);
                                // A value unique across all producers/batches/jobs.
                                (producer, batch, job)
                            }
                        })
                        .collect();
                    let results = pool.submit(jobs).collect();
                    // No loss, no duplication, no cross-batch bleed: each
                    // producer sees exactly its own jobs, in order.
                    assert_eq!(results.len(), JOBS_PER_BATCH);
                    for (job, &(p, b, j)) in results.iter().enumerate() {
                        assert_eq!((p, b, j), (producer, batch, job));
                    }
                }
            });
        }
    });
    assert_eq!(
        executed.load(Ordering::SeqCst),
        PRODUCERS * BATCHES_PER_PRODUCER * JOBS_PER_BATCH,
        "every job executed exactly once"
    );
}

#[test]
fn pool_drop_is_a_clean_shutdown() {
    let executed = Arc::new(AtomicUsize::new(0));
    let n = 200;
    {
        let pool = WorkerPool::new(workers());
        let _unclaimed: Vec<_> = (0..n)
            .map(|_| {
                let executed = executed.clone();
                pool.submit(vec![move || {
                    executed.fetch_add(1, Ordering::SeqCst);
                }])
            })
            .collect();
        // Pool dropped with handles unclaimed and jobs possibly queued.
    }
    // Drop drained the queue and joined every worker: nothing lost, and no
    // thread is left running (a hang here would time the test out).
    assert_eq!(executed.load(Ordering::SeqCst), n);
}

#[test]
fn scoped_executor_is_deterministic_under_contention() {
    // Many concurrent *scoped* executors hammering the same process must
    // not interfere: each returns its own batch in submission order.
    std::thread::scope(|s| {
        for round in 0..PRODUCERS {
            s.spawn(move || {
                let exec = Executor::new(4);
                let expect: Vec<u64> = (0..100u64).map(|x| x * 31 + round as u64).collect();
                for _ in 0..10 {
                    let got = exec.map((0..100u64).collect(), |_, x| x * 31 + round as u64);
                    assert_eq!(got, expect);
                }
            });
        }
    });
}

#[test]
fn tiny_batches_never_deadlock_the_steal_path() {
    // Regression: workers used to hold their own queue lock while locking a
    // victim's queue to steal (a guard-lifetime bug), so several workers
    // going empty simultaneously formed a hold-and-wait cycle and the pool
    // hung. Trivial jobs drain the queues almost instantly, making every
    // worker a would-be thief — thousands of rounds reliably tripped the
    // old cycle, while the fixed lock discipline must run them all.
    let exec = Executor::new(4);
    for round in 0..4_000u64 {
        let got = exec.map((0..8u64).collect(), |_, x| x ^ round);
        assert_eq!(got.len(), 8);
    }
}

#[test]
fn mixed_cost_jobs_still_reduce_in_order() {
    let exec = Executor::new(workers().max(2));
    // Heavily skewed job costs force steals; results must stay ordered.
    let out = exec.map((0..256usize).collect(), |i, _| {
        let spin = if i % 16 == 0 { 200_000 } else { 10 };
        let mut acc = i as u64;
        for _ in 0..spin {
            acc = acc
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        std::hint::black_box(acc);
        i
    });
    assert_eq!(out, (0..256).collect::<Vec<_>>());
}
