//! Frame-codec robustness suite, mirroring the checkpoint format's
//! corruption tests: every single-byte flip, truncation at every
//! boundary, version skew and kind skew must surface as *typed* errors —
//! never a panic, never a hang, never a silently-accepted frame.

use h2o_exec::{
    decode_frame, encode_frame, read_frame, write_frame, ExecError, FrameKind, FRAME_HEADER_LEN,
    MAX_PAYLOAD, PROTOCOL_VERSION,
};
use proptest::prelude::*;
use std::io::Read;

fn sample_frame() -> Vec<u8> {
    encode_frame(
        FrameKind::Job,
        b"the quick brown fox jumps over the lazy dog",
    )
}

/// Re-stamps the trailing checksum after a deliberate header mutation, so
/// validation proceeds past the checksum to the field checks.
fn restamp(mut bytes: Vec<u8>) -> Vec<u8> {
    let content_len = bytes.len() - 8;
    let checksum = h2o_exec::wire::fnv1a(&bytes[..content_len]);
    bytes[content_len..].copy_from_slice(&checksum.to_le_bytes());
    bytes
}

#[test]
fn every_single_byte_flip_is_caught() {
    let good = sample_frame();
    assert!(decode_frame(&good).is_ok());
    for i in 0..good.len() {
        for flip in [0x01u8, 0x80, 0xff] {
            let mut bad = good.clone();
            bad[i] ^= flip;
            match decode_frame(&bad) {
                Err(ExecError::BadMagic) | Err(ExecError::ChecksumMismatch) => {}
                other => panic!(
                    "byte {i} flipped by {flip:#04x}: expected BadMagic or \
                     ChecksumMismatch, got {other:?}"
                ),
            }
        }
    }
}

#[test]
fn truncation_at_every_boundary_is_typed() {
    let good = sample_frame();
    for cut in 0..good.len() {
        match decode_frame(&good[..cut]) {
            Err(
                ExecError::Truncated
                | ExecError::BadMagic
                | ExecError::ChecksumMismatch
                | ExecError::Protocol(_),
            ) => {}
            other => panic!("cut at {cut}: expected a typed error, got {other:?}"),
        }
    }
    // Trailing garbage breaks the checksum too.
    let mut padded = good;
    padded.push(0);
    assert_eq!(decode_frame(&padded), Err(ExecError::ChecksumMismatch));
}

#[test]
fn version_skew_is_typed() {
    let mut bytes = sample_frame();
    bytes[8..12].copy_from_slice(&(PROTOCOL_VERSION + 1).to_le_bytes());
    assert_eq!(
        decode_frame(&restamp(bytes)),
        Err(ExecError::VersionSkew {
            found: PROTOCOL_VERSION + 1,
            expected: PROTOCOL_VERSION,
        })
    );
}

#[test]
fn unknown_kind_is_typed() {
    let mut bytes = sample_frame();
    bytes[12..16].copy_from_slice(&999u32.to_le_bytes());
    assert_eq!(decode_frame(&restamp(bytes)), Err(ExecError::BadKind(999)));
}

#[test]
fn oversize_declaration_is_rejected_before_allocation() {
    // A frame *declaring* a huge payload (without carrying it) must be
    // rejected from the length field alone.
    let mut bytes = sample_frame();
    bytes[16..24].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    assert_eq!(
        decode_frame(&restamp(bytes)),
        Err(ExecError::Oversize {
            len: MAX_PAYLOAD + 1,
            max: MAX_PAYLOAD,
        })
    );
}

#[test]
fn declared_length_must_match_carried_payload() {
    let mut bytes = sample_frame();
    bytes[16..24].copy_from_slice(&5u64.to_le_bytes());
    match decode_frame(&restamp(bytes)) {
        Err(ExecError::Protocol(why)) => assert!(why.contains("payload length"), "{why}"),
        other => panic!("expected Protocol error, got {other:?}"),
    }
}

/// A reader that hands out its buffer in caller-chosen chunk sizes,
/// exercising `read_frame`'s short-read handling.
struct ChunkedReader {
    data: Vec<u8>,
    pos: usize,
    chunks: Vec<usize>,
    next_chunk: usize,
}

impl Read for ChunkedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        // Cycle through the chunk sizes; a chunk of 0 becomes 1 so the
        // stream always makes progress.
        let chunk = self.chunks[self.next_chunk % self.chunks.len()].max(1);
        self.next_chunk += 1;
        let n = chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

proptest! {
    /// Arbitrary payloads round-trip through encode → arbitrarily-chunked
    /// stream reads → decode, bit-exactly, for every frame kind.
    #[test]
    fn frame_round_trips_across_arbitrary_chunk_boundaries(
        payload_words in proptest::collection::vec(0u64..256, 0..200),
        chunks in proptest::collection::vec(1usize..40, 1..12),
        kind_index in 0usize..6,
    ) {
        let kinds = [
            FrameKind::Hello,
            FrameKind::HelloAck,
            FrameKind::Job,
            FrameKind::Result,
            FrameKind::Error,
            FrameKind::Shutdown,
        ];
        let kind = kinds[kind_index];
        let payload: Vec<u8> = payload_words.iter().map(|&w| w as u8).collect();
        let mut encoded = Vec::new();
        write_frame(&mut encoded, kind, &payload).expect("write to Vec");
        prop_assert_eq!(&encoded, &encode_frame(kind, &payload));
        let mut reader = ChunkedReader { data: encoded, pos: 0, chunks, next_chunk: 0 };
        let frame = read_frame(&mut reader).expect("round trip");
        prop_assert_eq!(frame.kind, kind);
        prop_assert_eq!(frame.payload, payload);
        // The stream is fully consumed: a follow-up read sees a clean
        // frame-boundary EOF.
        prop_assert_eq!(read_frame(&mut reader), Err(ExecError::PeerClosed));
    }

    /// Truncating an encoded frame at an arbitrary point and serving it
    /// through arbitrary chunk sizes yields PeerClosed (cut before the
    /// first byte) or Truncated (cut mid-frame) — never a hang or panic.
    #[test]
    fn truncated_streams_yield_typed_errors(
        payload_words in proptest::collection::vec(0u64..256, 0..100),
        chunks in proptest::collection::vec(1usize..40, 1..12),
        cut_seed in 0u64..10_000,
    ) {
        let payload: Vec<u8> = payload_words.iter().map(|&w| w as u8).collect();
        let encoded = encode_frame(FrameKind::Result, &payload);
        let cut = (cut_seed as usize) % encoded.len();
        let mut reader = ChunkedReader {
            data: encoded[..cut].to_vec(),
            pos: 0,
            chunks,
            next_chunk: 0,
        };
        let expected = if cut == 0 { ExecError::PeerClosed } else { ExecError::Truncated };
        prop_assert_eq!(read_frame(&mut reader), Err(expected));
    }

    /// Arbitrary corruption of one byte anywhere in the frame is caught
    /// by magic or checksum validation.
    #[test]
    fn arbitrary_byte_corruption_is_caught(
        payload_words in proptest::collection::vec(0u64..256, 1..100),
        position_seed in 0u64..10_000,
        flip in 1u64..256,
    ) {
        let payload: Vec<u8> = payload_words.iter().map(|&w| w as u8).collect();
        let mut encoded = encode_frame(FrameKind::Job, &payload);
        let position = (position_seed as usize) % encoded.len();
        encoded[position] ^= flip as u8;
        match decode_frame(&encoded) {
            Err(ExecError::BadMagic) | Err(ExecError::ChecksumMismatch) => {}
            other => prop_assert!(false, "byte {} xor {:#04x}: got {:?}", position, flip, other),
        }
    }
}

#[test]
fn header_len_constant_matches_the_layout() {
    // magic(8) + version(4) + kind(4) + payload_len(8).
    assert_eq!(FRAME_HEADER_LEN, 24);
    let empty = encode_frame(FrameKind::Shutdown, b"");
    assert_eq!(empty.len(), FRAME_HEADER_LEN + 8);
}
