//! # h2o-exec — the parallel candidate-evaluation executor
//!
//! The paper's first pillar is a *massively parallel* one-shot search:
//! candidate evaluation throughput, not policy arithmetic, is the binding
//! constraint at scale. This crate provides the machinery the search loops
//! use to fan per-step candidate batches out across a worker pool:
//!
//! * [`Executor`] — a scoped **work-stealing** executor for borrowing
//!   jobs (evaluators live on the caller's stack). Jobs are pre-sharded
//!   round-robin across per-worker deques; an idle worker steals from the
//!   back of its neighbours' deques.
//! * [`WorkerPool`] — a persistent channel-fed pool for `'static` jobs,
//!   supporting concurrent batch submission from many producer threads
//!   ([`WorkerPool::submit`] / [`BatchHandle::collect`]) and clean
//!   drain-then-join shutdown on drop.
//! * [`DistributedPool`] — the **process-per-node** mode: byte jobs fan
//!   out over Unix-socket or TCP [`NodeTransport`]s carrying
//!   length-prefixed, checksummed [`frame`]s, with the same
//!   submission-order reduction, so a multi-process search reproduces the
//!   single-process run byte for byte ([`serve`] is the worker half).
//!
//! ## Determinism contract
//!
//! Both layers reduce results in **submission order**: `execute(jobs)[i]`
//! is always the result of `jobs[i]`, no matter which worker ran it or
//! when it finished. A job must therefore own everything its result
//! depends on (its RNG seed, its evaluator state) — under that discipline,
//! single-worker and N-worker runs produce bit-identical output, which the
//! determinism suite (`tests/determinism.rs` at the workspace root)
//! asserts on whole search-history CSVs.
//!
//! Scheduling *placement* is intentionally nondeterministic (that is what
//! makes stealing fast); only the reduction order is pinned. For
//! schedule-sensitive debugging, [`Executor::serialized`] (or
//! `H2O_EXEC_SERIAL=1` with [`Executor::from_env`]) degrades the executor
//! to running every job on the calling thread in submission order — a
//! loom-style single-schedule mode the CI smoke target runs the suite
//! under.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod distributed;
pub mod frame;
mod pool;
pub mod transport;
pub mod wire;

pub use distributed::{decode_indexed, encode_indexed, serve, DistributedPool, PoolOptions};
pub use frame::{
    decode_frame, encode_frame, read_frame, write_frame, ExecError, Frame, FrameKind,
    FRAME_HEADER_LEN, FRAME_MAGIC, MAX_PAYLOAD, PROTOCOL_VERSION,
};
pub use pool::{BatchHandle, WorkerPool};
pub use transport::{NodeAddr, NodeListener, NodeTransport};
pub use wire::{Dec, Enc, WireError};

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Environment variable overriding the worker count when a config asks for
/// auto selection (`workers == 0`).
pub const WORKERS_ENV: &str = "H2O_WORKERS";

/// Environment variable forcing the serialized (single-schedule) mode in
/// [`Executor::from_env`]. Any non-empty value other than `0` enables it.
pub const SERIAL_ENV: &str = "H2O_EXEC_SERIAL";

/// Resolves a requested worker count to a concrete one.
///
/// * `requested > 0` wins outright.
/// * `requested == 0` means auto: the [`WORKERS_ENV`] variable if set,
///   otherwise the machine's available parallelism.
///
/// The result is clamped to `[1, max_useful]` — there is never a reason to
/// run more workers than jobs per batch.
pub fn resolve_workers(requested: usize, max_useful: usize) -> usize {
    let chosen = if requested > 0 {
        requested
    } else {
        std::env::var(WORKERS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&w| w > 0)
            .unwrap_or_else(|| {
                // h2o-lint: allow(nondet-taint) -- the worker count is value-invisible
                // by the determinism contract: search output is bit-identical for every
                // worker count (enforced by the tier-1 determinism suite).
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    };
    chosen.clamp(1, max_useful.max(1))
}

/// A scoped work-stealing executor over borrowing jobs.
///
/// # Examples
///
/// ```
/// use h2o_exec::Executor;
///
/// let exec = Executor::new(4);
/// let squares = exec.map((0..100).collect(), |_, x: u64| x * x);
/// assert_eq!(squares[7], 49); // submission-order reduction
/// ```
#[derive(Debug, Clone)]
pub struct Executor {
    workers: usize,
    serialized: bool,
}

impl Executor {
    /// Creates an executor with a fixed worker count.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        Self {
            workers,
            serialized: false,
        }
    }

    /// Creates an executor that runs every job on the calling thread in
    /// strict submission order, regardless of `workers` — the serialized
    /// schedule used by the CI ordering-smoke target. `workers` is kept so
    /// worker-count-dependent *logic* (sharding arithmetic) still sees the
    /// configured pool size.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn serialized(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        Self {
            workers,
            serialized: true,
        }
    }

    /// Builds an executor from a config-requested worker count plus the
    /// environment: [`WORKERS_ENV`] fills in auto counts and
    /// [`SERIAL_ENV`] switches to the serialized schedule.
    pub fn from_env(requested: usize, max_useful: usize) -> Self {
        let workers = resolve_workers(requested, max_useful);
        let serial = std::env::var(SERIAL_ENV)
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        if serial {
            Self::serialized(workers)
        } else {
            Self::new(workers)
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether this executor runs the serialized schedule.
    pub fn is_serialized(&self) -> bool {
        self.serialized
    }

    /// Runs every job and returns results in **submission order**:
    /// `execute(jobs)[i]` is the result of `jobs[i]`.
    ///
    /// Jobs are pre-sharded round-robin over per-worker deques (job `i`
    /// starts on worker `i % workers`); an idle worker steals from the
    /// back of the other deques. Each job runs exactly once.
    ///
    /// Utilization telemetry per batch: jobs executed per worker
    /// (`h2o_exec_worker_jobs_total{worker=...}`), steals
    /// (`h2o_exec_steals_total`), and one busy plus one idle observation
    /// per worker (`h2o_exec_worker_{busy,idle}_seconds`) — idle is the
    /// time spent in the steal loop without holding a job, so
    /// `idle / (busy + idle)` is the batch's scheduling overhead.
    ///
    /// # Panics
    ///
    /// Propagates the first job panic after all workers stop.
    pub fn execute<J, R>(&self, jobs: Vec<J>) -> Vec<R>
    where
        J: FnOnce() -> R + Send,
        R: Send,
    {
        let n = jobs.len();
        h2o_obs::counter("h2o_exec_batches_total").inc();
        h2o_obs::counter("h2o_exec_jobs_total").add(n as u64);
        let workers = self.workers.min(n.max(1));
        // Utilization instruments: per-worker job counters plus one busy
        // and one idle observation per worker per batch (idle = the time a
        // worker spent inside the steal loop without holding a job).
        // Readings come from h2o-obs stopwatches and feed instruments
        // only, so they cannot perturb the submission-order reduction.
        let worker_jobs: Vec<h2o_obs::Counter> = (0..workers)
            .map(|w| h2o_obs::counter(&format!("h2o_exec_worker_jobs_total{{worker=\"{w}\"}}")))
            .collect();
        let busy_seconds = h2o_obs::histogram("h2o_exec_worker_busy_seconds");
        let idle_seconds = h2o_obs::histogram("h2o_exec_worker_idle_seconds");
        if self.serialized || workers == 1 {
            let batch_watch = h2o_obs::Stopwatch::start();
            let results = jobs
                .into_iter()
                .map(|job| {
                    worker_jobs[0].inc();
                    job()
                })
                .collect();
            busy_seconds.record(batch_watch.elapsed_secs());
            idle_seconds.record(0.0);
            return results;
        }

        // Each job lives in its own slot so taking one never contends with
        // taking another; the queues only carry indices.
        let slots: Vec<Mutex<Option<J>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let mut queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|_| Mutex::new(VecDeque::with_capacity(n / workers + 1)))
            .collect();
        for i in 0..n {
            queues[i % workers].get_mut().push_back(i);
        }
        let queues = &queues;
        let slots = &slots;
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let results_ref = &results;
        let steals = AtomicU64::new(0);
        let steals_ref = &steals;
        let worker_jobs = &worker_jobs;
        let busy_seconds = &busy_seconds;
        let idle_seconds = &idle_seconds;

        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|me| {
                    scope.spawn(move |_| {
                        let batch_watch = h2o_obs::Stopwatch::start();
                        let mut busy = 0.0f64;
                        loop {
                            // Own deque first (front), then steal (back). The
                            // own-queue guard MUST drop before stealing: chained
                            // `lock().pop_front().or_else(..)` keeps the guard
                            // alive across the closure (temporaries live to the
                            // end of the statement), and N workers each holding
                            // their own queue while locking a victim's is a
                            // hold-and-wait cycle that deadlocks the pool.
                            let own = queues[me].lock().pop_front();
                            let idx = own.or_else(|| {
                                (1..workers).find_map(|offset| {
                                    let victim = (me + offset) % workers;
                                    let stolen = queues[victim].lock().pop_back();
                                    if stolen.is_some() {
                                        steals_ref.fetch_add(1, Ordering::Relaxed);
                                    }
                                    stolen
                                })
                            });
                            let Some(i) = idx else { break };
                            // h2o-lint: allow(panic-hygiene) -- each index is pushed to exactly one
                            // deque and stealing pops, never clones, so a slot is taken exactly once
                            let job = slots[i].lock().take().expect("job taken exactly once");
                            let job_watch = h2o_obs::Stopwatch::start();
                            let result = job();
                            busy += job_watch.elapsed_secs();
                            worker_jobs[me].inc();
                            *results_ref[i].lock() = Some(result);
                        }
                        busy_seconds.record(busy);
                        idle_seconds.record((batch_watch.elapsed_secs() - busy).max(0.0));
                    })
                })
                .collect();
            for handle in handles {
                // h2o-lint: allow(panic-hygiene) -- a worker panic means a job panicked; the only
                // honest move is to propagate it to the caller, not to swallow it into an Err
                handle.join().expect("executor worker panicked");
            }
        })
        // h2o-lint: allow(panic-hygiene) -- same: scope Err re-raises a child thread's panic
        .expect("executor scope panicked");

        h2o_obs::counter("h2o_exec_steals_total").add(steals.into_inner());
        results
            .into_iter()
            // h2o-lint: allow(panic-hygiene) -- the scope above joins every worker, and workers
            // only exit once all deques are drained, so each result slot was filled
            .map(|slot| slot.into_inner().expect("every job produced a result"))
            .collect()
    }

    /// Applies `f` to every item in parallel, returning results in item
    /// order. `f` receives the item's submission index, so jobs can derive
    /// per-item seeds without sharing state.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let f = &f;
        let jobs: Vec<_> = items
            .into_iter()
            .enumerate()
            .map(|(i, item)| move || f(i, item))
            .collect();
        self.execute(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let exec = Executor::new(4);
        // Reverse sleep-free compute order pressure: later jobs are cheaper.
        let out = exec.map((0..64u64).collect(), |i, x| {
            let mut acc = x;
            for _ in 0..(64 - i) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        });
        for (i, (idx, _)) in out.iter().enumerate() {
            assert_eq!(i, *idx);
        }
    }

    #[test]
    fn one_worker_equals_many_workers() {
        let work = |_: usize, x: u64| x.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
        let a = Executor::new(1).map((0..257).collect(), work);
        let b = Executor::new(7).map((0..257).collect(), work);
        assert_eq!(a, b);
    }

    #[test]
    fn serialized_schedule_matches_parallel() {
        let work = |i: usize, x: u64| x ^ (i as u64) << 3;
        let parallel = Executor::new(4).map((0..100).collect(), work);
        let serial = Executor::serialized(4).map((0..100).collect(), work);
        assert_eq!(parallel, serial);
        assert!(Executor::serialized(4).is_serialized());
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<u64> = Executor::new(3).map(Vec::<u64>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn stateful_jobs_each_run_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        let counters: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        let exec = Executor::new(8);
        exec.map((0..500).collect::<Vec<usize>>(), |_, i| {
            counters[i].fetch_add(1, Ordering::SeqCst)
        });
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        Executor::new(0);
    }

    #[test]
    fn resolve_workers_clamps_and_prefers_explicit() {
        assert_eq!(resolve_workers(4, 16), 4);
        assert_eq!(resolve_workers(32, 8), 8, "clamped to max_useful");
        assert_eq!(resolve_workers(3, 0), 1, "max_useful floor of 1");
        assert!(resolve_workers(0, 64) >= 1);
    }
}
