//! Shared little-endian binary codec — the serialisation idioms `h2o-ckpt`
//! pioneered (length-prefixed byte strings, floats as IEEE-754 bit
//! patterns, bounds-checked decode with typed errors), extracted here so
//! the node transport's frames and the checkpoint files speak the same
//! byte dialect. `h2o-ckpt` re-wires its payload codec through this module;
//! the frame layer ([`crate::frame`]) builds its headers on it.
//!
//! The codec is deliberately boring: `u64`/`u32` little-endian, `f64` via
//! [`f64::to_bits`] (so round trips are bit-exact and determinism proofs
//! can compare CSVs byte-for-byte across processes), and byte strings as a
//! `u64` length prefix followed by the raw bytes. Every decode is
//! bounds-checked and returns a typed [`WireError`] — never a panic — on
//! truncated or inconsistent input.

use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// FNV-1a over a byte slice: the workspace's standard content checksum
/// (checkpoint files and transport frames both end in one).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A decode failure. Deliberately small: callers that need richer error
/// vocabularies (`h2o-ckpt`'s `CkptError`, the transport's `ExecError`)
/// wrap these two cases into their own types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ends before the declared content does.
    Truncated,
    /// The input decoded inconsistently (absurd lengths, bad flags,
    /// trailing bytes).
    Corrupt(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::Corrupt(why) => write!(f, "input corrupt: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Little-endian `u64` from an exactly-8-byte slice. Callers slice lengths
/// they have already bounds-checked; the typed error arm guards future
/// offset mistakes instead of an `expect`.
pub fn read_u64_le(chunk: &[u8]) -> Result<u64, WireError> {
    let arr: [u8; 8] = chunk.try_into().map_err(|_| WireError::Truncated)?;
    Ok(u64::from_le_bytes(arr))
}

/// Little-endian `u32` from an exactly-4-byte slice (see [`read_u64_le`]).
pub fn read_u32_le(chunk: &[u8]) -> Result<u32, WireError> {
    let arr: [u8; 4] = chunk.try_into().map_err(|_| WireError::Truncated)?;
    Ok(u32::from_le_bytes(arr))
}

/// Append-only encoder over a growable buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact round
    /// trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// The encoded bytes so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder, returning the buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked cursor decoder over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let end = self.pos.checked_add(8).ok_or(WireError::Truncated)?;
        let chunk = self.bytes.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        read_u64_le(chunk)
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let end = self.pos.checked_add(4).ok_or(WireError::Truncated)?;
        let chunk = self.bytes.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        read_u32_le(chunk)
    }

    /// Reads an `f64` from its bit pattern.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than 8 bytes remain.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u64` count that must not exceed the remaining bytes —
    /// rejects absurd lengths *before* any allocation. `what` names the
    /// field in the error message.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] or [`WireError::Corrupt`].
    pub fn len(&mut self, what: &str) -> Result<usize, WireError> {
        let n = self.u64()?;
        if n > (self.bytes.len() - self.pos) as u64 {
            return Err(WireError::Corrupt(format!(
                "{what} length {n} exceeds payload"
            )));
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed byte string into an owned buffer.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] or [`WireError::Corrupt`].
    pub fn bytes_vec(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.len("byte string")?;
        let end = self.pos + n;
        let chunk = self.bytes.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(chunk.to_vec())
    }

    /// Asserts the decoder consumed every byte.
    ///
    /// # Errors
    ///
    /// [`WireError::Corrupt`] naming the trailing byte count otherwise.
    pub fn finish(self) -> Result<(), WireError> {
        if self.pos != self.bytes.len() {
            return Err(WireError::Corrupt(format!(
                "{} trailing payload bytes",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_bit_exact() {
        let mut e = Enc::new();
        e.u64(u64::MAX);
        e.u32(0xDEAD_BEEF);
        e.f64(-0.0);
        e.f64(f64::NAN);
        e.bytes(b"shard job");
        let buf = e.into_vec();
        let mut d = Dec::new(&buf);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.f64().unwrap().is_nan());
        assert_eq!(d.bytes_vec().unwrap(), b"shard job");
        d.finish().unwrap();
    }

    #[test]
    fn truncated_reads_are_typed() {
        let mut d = Dec::new(&[1, 2, 3]);
        assert_eq!(d.u64(), Err(WireError::Truncated));
        let mut d = Dec::new(&[1, 2]);
        assert_eq!(d.u32(), Err(WireError::Truncated));
    }

    #[test]
    fn absurd_lengths_are_rejected_before_allocation() {
        let mut e = Enc::new();
        e.u64(u64::MAX); // declared length far past the buffer
        let buf = e.into_vec();
        let mut d = Dec::new(&buf);
        assert!(matches!(d.len("test"), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let mut e = Enc::new();
        e.u64(7);
        e.u32(9);
        let buf = e.into_vec();
        let mut d = Dec::new(&buf);
        d.u64().unwrap();
        assert!(matches!(d.finish(), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn fnv1a_matches_reference_vector() {
        // FNV-1a 64-bit of the empty string is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
