//! A persistent worker pool for `'static` jobs.
//!
//! Where [`crate::Executor`] spins scoped workers per batch (so jobs may
//! borrow evaluator state from the caller's stack), [`WorkerPool`] keeps
//! its threads alive across batches and accepts submissions from many
//! producer threads concurrently — the shape long-running services need.
//! Results are re-assembled in submission order per batch, so concurrent
//! producers never observe each other's results and each batch keeps the
//! executor determinism contract.

use crossbeam::channel::{self, Receiver, Sender};
use std::fmt;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent pool of worker threads fed by an MPMC injector channel.
///
/// Dropping the pool is a **clean shutdown**: the injector closes, workers
/// drain every job already submitted, then exit and are joined. No
/// submitted job is ever lost.
///
/// # Examples
///
/// ```
/// use h2o_exec::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let handle = pool.submit((0..10u64).map(|x| move || x * 2).collect());
/// assert_eq!(handle.collect(), (0..10u64).map(|x| x * 2).collect::<Vec<_>>());
/// ```
pub struct WorkerPool {
    injector: Option<Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` threads waiting on the injector channel.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let (tx, rx) = channel::unbounded::<Job>();
        let handles = (0..workers)
            .map(|_| {
                let rx: Receiver<Job> = rx.clone();
                std::thread::spawn(move || {
                    // Instruments are looked up per job, not hoisted: pool
                    // threads outlive registry resets, and an orphaned
                    // handle would silently vanish from snapshots.
                    loop {
                        let wait = h2o_obs::Stopwatch::start();
                        // Err means: injector dropped AND queue drained.
                        let Ok(job) = rx.recv() else { break };
                        h2o_obs::histogram("h2o_exec_pool_idle_seconds")
                            .record(wait.elapsed_secs());
                        h2o_obs::histogram("h2o_exec_pool_job_seconds").time(job);
                        h2o_obs::counter("h2o_exec_pool_jobs_total").inc();
                    }
                })
            })
            .collect();
        Self {
            injector: Some(tx),
            handles,
        }
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Submits a batch of jobs; any number of threads may submit
    /// concurrently. The returned handle yields this batch's results in
    /// submission order, independent of interleaving with other batches.
    pub fn submit<R, F>(&self, batch: Vec<F>) -> BatchHandle<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let expected = batch.len();
        let (tx, rx) = channel::unbounded::<(usize, R)>();
        let injector = self
            .injector
            .as_ref()
            // h2o-lint: allow(panic-hygiene) -- the Option is only taken in Drop; submit() cannot
            // run on a dropped pool
            .expect("injector lives until the pool is dropped");
        for (index, job) in batch.into_iter().enumerate() {
            let tx = tx.clone();
            injector
                .send(Box::new(move || {
                    let result = job();
                    // A dropped BatchHandle just discards the result.
                    let _ = tx.send((index, result));
                }))
                // h2o-lint: allow(panic-hygiene) -- send fails only when every receiver is gone,
                // and workers are joined no earlier than Drop
                .expect("pool workers alive");
        }
        BatchHandle { rx, expected }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the injector lets workers drain the queue and exit.
        self.injector.take();
        for handle in self.handles.drain(..) {
            // h2o-lint: allow(panic-hygiene) -- re-raises a job's panic on the dropping thread
            // instead of discarding it
            handle.join().expect("pool worker panicked");
        }
    }
}

/// Pending results of one submitted batch.
#[must_use = "collect() the handle to retrieve the batch's results"]
#[derive(Debug)]
pub struct BatchHandle<R> {
    rx: Receiver<(usize, R)>,
    expected: usize,
}

impl<R> BatchHandle<R> {
    /// The number of jobs in the batch.
    pub fn len(&self) -> usize {
        self.expected
    }

    /// Whether the batch held no jobs at all.
    pub fn is_empty(&self) -> bool {
        self.expected == 0
    }

    /// Blocks until every job in the batch finished and returns the
    /// results in submission order.
    ///
    /// # Panics
    ///
    /// Panics if a result arrives twice for the same index (an executor
    /// bug) or the pool shuts down before the batch completes.
    pub fn collect(self) -> Vec<R> {
        let mut out: Vec<Option<R>> = (0..self.expected).map(|_| None).collect();
        for _ in 0..self.expected {
            let (index, result) = self
                .rx
                .recv()
                // h2o-lint: allow(panic-hygiene) -- documented panic: collect() on a pool that shut
                // down mid-batch is a caller bug (the pool's Drop drains all submitted jobs first)
                .expect("pool shut down before the batch completed");
            assert!(
                out[index].is_none(),
                "duplicate result for batch index {index}"
            );
            out[index] = Some(result);
        }
        out.into_iter()
            // h2o-lint: allow(panic-hygiene) -- expected results arrived with distinct indices
            // (asserted above), so every slot is filled
            .map(|slot| slot.expect("no batch index skipped"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_results_in_submission_order() {
        let pool = WorkerPool::new(4);
        let handle = pool.submit((0..50u64).map(|x| move || x * x).collect());
        assert_eq!(handle.len(), 50);
        let got = handle.collect();
        assert_eq!(got, (0..50u64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_collects_immediately() {
        let pool = WorkerPool::new(2);
        let handle = pool.submit(Vec::<fn() -> u8>::new());
        assert!(handle.is_empty());
        assert!(handle.collect().is_empty());
    }

    #[test]
    fn drop_drains_outstanding_jobs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let done = done.clone();
                    pool.submit(vec![move || {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        done.fetch_add(1, Ordering::SeqCst);
                    }])
                })
                .collect();
            // Handles dropped without collecting: results discarded, jobs
            // must still run to completion before the pool drop returns.
            drop(handles);
        }
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }
}
