//! The process-per-node executor: a [`DistributedPool`] fanning byte jobs
//! out over [`NodeTransport`]s, and the worker-side [`serve`] loop.
//!
//! This is the multi-process sibling of the in-process [`crate::Executor`]
//! and it keeps the same contract: **submission-order reduction**. Job `i`
//! of a batch always runs on node `i % nodes` and `execute(jobs)[i]` is
//! always the result of `jobs[i]`, so shard→node placement is invisible in
//! the results and a 1-process run, a 2-node run and a 4-node run of the
//! same search produce byte-identical output (`tests/
//! distributed_determinism.rs` at the workspace root proves it on whole
//! CSVs).
//!
//! Jobs and results are opaque byte payloads — closures cannot cross a
//! process boundary, so the caller (`h2o-core`'s `DistributedStage`)
//! encodes `(step, shard, sample)` jobs and decodes `EvalResult` bytes
//! with the shared [`crate::wire`] codec. A handshake pins the scenario:
//! both sides exchange a fingerprint of the evaluation configuration and
//! refuse to proceed on a mismatch ([`ExecError::ScenarioMismatch`]), so a
//! worker can never silently evaluate under different settings.

use crate::frame::{ExecError, FrameKind};
use crate::transport::{NodeAddr, NodeTransport};
use crate::wire::{Dec, Enc};
use std::time::Duration;

/// Encodes an `(index, payload)` pair for a `Job` or `Result` frame.
pub fn encode_indexed(index: u64, payload: &[u8]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(index);
    e.bytes(payload);
    e.into_vec()
}

/// Decodes an `(index, payload)` pair from a `Job` or `Result` frame.
///
/// # Errors
///
/// [`ExecError::Truncated`] / [`ExecError::Protocol`] on malformed bytes.
pub fn decode_indexed(bytes: &[u8]) -> Result<(u64, Vec<u8>), ExecError> {
    let mut d = Dec::new(bytes);
    let index = d.u64()?;
    let payload = d.bytes_vec()?;
    d.finish()?;
    Ok((index, payload))
}

/// Timeouts governing a [`DistributedPool`]'s connections.
#[derive(Debug, Clone, Copy)]
pub struct PoolOptions {
    /// How long to keep retrying the initial connect per node (covers
    /// worker process startup).
    pub connect_timeout: Duration,
    /// Per-read/per-write socket timeout after the connection is up. One
    /// evaluation must complete within this bound or the node counts as
    /// dead.
    pub io_timeout: Duration,
}

impl Default for PoolOptions {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(10),
            io_timeout: Duration::from_secs(30),
        }
    }
}

/// A pool of connected node processes executing byte jobs with
/// submission-order reduction — the distributed counterpart of
/// [`crate::Executor::execute`].
#[derive(Debug)]
pub struct DistributedPool {
    nodes: Vec<NodeTransport>,
    node_jobs: Vec<h2o_obs::Counter>,
    node_roundtrip: Vec<h2o_obs::Histogram>,
}

impl DistributedPool {
    /// Connects to every node and performs the scenario handshake.
    ///
    /// The client sends `Hello(fingerprint)`; each worker answers
    /// `HelloAck(its own fingerprint)`. Both sides compare — a mismatch is
    /// [`ExecError::ScenarioMismatch`] on both ends, so neither can run a
    /// search whose evaluation settings differ from its peer's.
    ///
    /// # Errors
    ///
    /// [`ExecError::Connect`] / [`ExecError::Timeout`] on dead nodes, any
    /// frame-shaped error on protocol trouble, [`ExecError::Protocol`] if
    /// `addrs` is empty.
    pub fn connect(
        addrs: &[NodeAddr],
        fingerprint: u64,
        options: PoolOptions,
    ) -> Result<Self, ExecError> {
        if addrs.is_empty() {
            return Err(ExecError::Protocol(
                "a pool needs at least one node".to_string(),
            ));
        }
        let mut nodes = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let mut transport =
                NodeTransport::connect(addr, options.connect_timeout, options.io_timeout)?;
            let mut hello = Enc::new();
            hello.u64(fingerprint);
            transport.send(FrameKind::Hello, hello.as_slice())?;
            let ack = transport.recv()?;
            match ack.kind {
                FrameKind::HelloAck => {
                    let mut d = Dec::new(&ack.payload);
                    let theirs = d.u64()?;
                    d.finish()?;
                    if theirs != fingerprint {
                        return Err(ExecError::ScenarioMismatch {
                            found: theirs,
                            expected: fingerprint,
                        });
                    }
                }
                FrameKind::Error => {
                    return Err(ExecError::Worker {
                        node: nodes.len(),
                        message: String::from_utf8_lossy(&ack.payload).into_owned(),
                    })
                }
                other => {
                    return Err(ExecError::Protocol(format!(
                        "expected HelloAck, got {other:?}"
                    )))
                }
            }
            nodes.push(transport);
        }
        let node_jobs = (0..nodes.len())
            .map(|n| h2o_obs::counter(&format!("h2o_exec_node_jobs_total{{node=\"{n}\"}}")))
            .collect();
        let node_roundtrip = (0..nodes.len())
            .map(|n| {
                h2o_obs::histogram(&format!("h2o_exec_node_roundtrip_seconds{{node=\"{n}\"}}"))
            })
            .collect();
        Ok(Self {
            nodes,
            node_jobs,
            node_roundtrip,
        })
    }

    /// The number of connected nodes.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Runs every byte job on the pool and returns results in
    /// **submission order**: `execute(jobs)[i]` is the result of
    /// `jobs[i]`, evaluated on node `i % nodes`.
    ///
    /// Each node's jobs are pipelined (all sent, then all received) on a
    /// thread per node; the per-socket I/O timeout bounds every blocking
    /// read, so a node dying mid-batch surfaces as a typed error — the
    /// lowest-numbered failing node's error is returned, deterministically.
    ///
    /// # Errors
    ///
    /// Any [`ExecError`]; after an error the pool must be considered
    /// poisoned (in-flight frames are not resynchronised) and rebuilt.
    pub fn execute(&mut self, jobs: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, ExecError> {
        let n_jobs = jobs.len();
        let n_nodes = self.nodes.len();
        h2o_obs::counter("h2o_exec_node_batches_total").inc();
        let mut per_node: Vec<Vec<(u64, Vec<u8>)>> = (0..n_nodes).map(|_| Vec::new()).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            per_node[i % n_nodes].push((i as u64, job));
        }
        let node_jobs = &self.node_jobs;
        let node_roundtrip = &self.node_roundtrip;

        let mut outcomes: Vec<Result<IndexedBatch, ExecError>> =
            (0..n_nodes).map(|_| Ok(Vec::new())).collect();
        {
            let mut outcome_slots: Vec<_> = outcomes.iter_mut().collect();
            crossbeam::thread::scope(|scope| {
                for (node, (transport, batch)) in self.nodes.iter_mut().zip(per_node).enumerate() {
                    // Pop from the front so slot k belongs to node k.
                    let slot = outcome_slots.remove(0);
                    scope.spawn(move |_| {
                        let watch = h2o_obs::Stopwatch::start();
                        *slot = run_node_batch(transport, node, batch);
                        node_roundtrip[node].record(watch.elapsed_secs());
                    });
                }
            })
            // h2o-lint: allow(panic-hygiene) -- a scope Err re-raises a child thread's panic;
            // node threads return typed errors through their slot and do not panic themselves
            .expect("node batch scope panicked");
        }

        let mut slots: Vec<Option<Vec<u8>>> = (0..n_jobs).map(|_| None).collect();
        for (node, outcome) in outcomes.into_iter().enumerate() {
            let results = outcome?;
            node_jobs[node].add(results.len() as u64);
            for (index, payload) in results {
                let slot = slots.get_mut(index as usize).ok_or_else(|| {
                    ExecError::Protocol(format!(
                        "node {node} returned result index {index} beyond batch size {n_jobs}"
                    ))
                })?;
                if slot.is_some() {
                    return Err(ExecError::Protocol(format!(
                        "node {node} returned result index {index} twice"
                    )));
                }
                *slot = Some(payload);
            }
        }
        let mut out = Vec::with_capacity(n_jobs);
        for (i, slot) in slots.into_iter().enumerate() {
            out.push(slot.ok_or_else(|| {
                ExecError::Protocol(format!("no node returned a result for job {i}"))
            })?);
        }
        Ok(out)
    }

    /// Asks every node to exit cleanly. Best-effort: a node that already
    /// died is ignored.
    pub fn shutdown(mut self) {
        for transport in &mut self.nodes {
            let _ = transport.send(FrameKind::Shutdown, &[]);
        }
    }
}

/// A batch of submission-index-tagged payloads, one entry per job.
type IndexedBatch = Vec<(u64, Vec<u8>)>;

/// One node's half of [`DistributedPool::execute`]: pipeline all jobs out,
/// then collect exactly one reply per job.
fn run_node_batch(
    transport: &mut NodeTransport,
    node: usize,
    batch: IndexedBatch,
) -> Result<IndexedBatch, ExecError> {
    for (index, job) in &batch {
        transport.send(FrameKind::Job, &encode_indexed(*index, job))?;
    }
    let mut results = Vec::with_capacity(batch.len());
    for _ in 0..batch.len() {
        let frame = transport.recv()?;
        match frame.kind {
            FrameKind::Result => results.push(decode_indexed(&frame.payload)?),
            FrameKind::Error => {
                return Err(ExecError::Worker {
                    node,
                    message: String::from_utf8_lossy(&frame.payload).into_owned(),
                })
            }
            other => {
                return Err(ExecError::Protocol(format!(
                    "node {node}: expected Result, got {other:?}"
                )))
            }
        }
    }
    Ok(results)
}

/// The worker side: answers the scenario handshake, then evaluates every
/// `Job` frame through `handler` until the client shuts down or hangs up.
///
/// A handler error is reported to the client as an `Error` frame (the
/// client surfaces it as [`ExecError::Worker`]) and the loop continues —
/// the client decides whether the batch is lost. Returns `Ok(())` on a
/// clean `Shutdown` or a peer hang-up at a frame boundary.
///
/// # Errors
///
/// [`ExecError::ScenarioMismatch`] when the client's fingerprint differs
/// from `fingerprint` (after telling the client ours), or any frame-shaped
/// error from the transport.
pub fn serve<F>(
    transport: &mut NodeTransport,
    fingerprint: u64,
    mut handler: F,
) -> Result<(), ExecError>
where
    F: FnMut(&[u8]) -> Result<Vec<u8>, String>,
{
    let jobs_served = h2o_obs::counter("h2o_exec_node_worker_jobs_total");
    loop {
        let frame = match transport.recv() {
            Ok(frame) => frame,
            Err(ExecError::PeerClosed) => return Ok(()),
            Err(e) => return Err(e),
        };
        match frame.kind {
            FrameKind::Hello => {
                let mut d = Dec::new(&frame.payload);
                let theirs = d.u64()?;
                d.finish()?;
                let mut ack = Enc::new();
                ack.u64(fingerprint);
                transport.send(FrameKind::HelloAck, ack.as_slice())?;
                if theirs != fingerprint {
                    return Err(ExecError::ScenarioMismatch {
                        found: theirs,
                        expected: fingerprint,
                    });
                }
            }
            FrameKind::Job => {
                let (index, payload) = decode_indexed(&frame.payload)?;
                match handler(&payload) {
                    Ok(result) => {
                        jobs_served.inc();
                        transport.send(FrameKind::Result, &encode_indexed(index, &result))?;
                    }
                    Err(message) => {
                        transport.send(FrameKind::Error, message.as_bytes())?;
                    }
                }
            }
            FrameKind::Shutdown => return Ok(()),
            other => {
                return Err(ExecError::Protocol(format!(
                    "worker received unexpected {other:?} frame"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::NodeListener;
    use std::path::PathBuf;

    fn temp_sock(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("h2o_dpool_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        dir.join(format!("{name}.sock"))
    }

    /// Spawns an in-process worker thread serving `handler` on a fresh
    /// unix socket; returns its address.
    fn spawn_worker<F>(name: &str, fingerprint: u64, handler: F) -> NodeAddr
    where
        F: FnMut(&[u8]) -> Result<Vec<u8>, String> + Send + 'static,
    {
        let addr = NodeAddr::Unix(temp_sock(name));
        let listener = NodeListener::bind(&addr).unwrap();
        std::thread::spawn(move || {
            let mut handler = handler;
            if let Ok(mut t) = listener.accept(Duration::from_secs(10)) {
                let _ = serve(&mut t, fingerprint, &mut handler);
            }
        });
        addr
    }

    fn opts() -> PoolOptions {
        PoolOptions {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(5),
        }
    }

    #[test]
    fn pool_reduces_in_submission_order() {
        let addrs: Vec<NodeAddr> = (0..3)
            .map(|i| {
                spawn_worker(&format!("order{i}"), 7, |job: &[u8]| {
                    let mut out = job.to_vec();
                    out.iter_mut().for_each(|b| *b = b.wrapping_mul(2));
                    Ok(out)
                })
            })
            .collect();
        let mut pool = DistributedPool::connect(&addrs, 7, opts()).unwrap();
        assert_eq!(pool.nodes(), 3);
        let jobs: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i]).collect();
        let results = pool.execute(jobs).unwrap();
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r, &vec![(i as u8) * 2], "job {i} out of order");
        }
        pool.shutdown();
    }

    #[test]
    fn handshake_rejects_fingerprint_skew() {
        let addr = spawn_worker("skew", 1111, |job: &[u8]| Ok(job.to_vec()));
        let err = DistributedPool::connect(&[addr], 2222, opts()).expect_err("fingerprints differ");
        assert_eq!(
            err,
            ExecError::ScenarioMismatch {
                found: 1111,
                expected: 2222,
            }
        );
    }

    #[test]
    fn worker_handler_error_is_typed() {
        let addr = spawn_worker("fail", 3, |_: &[u8]| Err("simulator exploded".to_string()));
        let mut pool = DistributedPool::connect(&[addr], 3, opts()).unwrap();
        let err = pool.execute(vec![vec![1]]).expect_err("handler fails");
        assert_eq!(
            err,
            ExecError::Worker {
                node: 0,
                message: "simulator exploded".to_string(),
            }
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let addr = spawn_worker("empty", 4, |job: &[u8]| Ok(job.to_vec()));
        let mut pool = DistributedPool::connect(&[addr], 4, opts()).unwrap();
        assert!(pool.execute(Vec::new()).unwrap().is_empty());
        pool.shutdown();
    }

    #[test]
    fn indexed_payload_round_trips() {
        let bytes = encode_indexed(42, b"payload");
        assert_eq!(decode_indexed(&bytes).unwrap(), (42, b"payload".to_vec()));
        assert!(decode_indexed(&bytes[..3]).is_err());
    }
}
