//! The process-per-node executor: a [`DistributedPool`] fanning byte jobs
//! out over [`NodeTransport`]s, and the worker-side [`serve`] loop.
//!
//! This is the multi-process sibling of the in-process [`crate::Executor`]
//! and it keeps the same contract: **submission-order reduction**.
//! `execute(jobs)[i]` is always the result of `jobs[i]` no matter which
//! node answered it, so shard→node placement is invisible in the results
//! and a 1-process run, a 2-node run and a 4-node run of the same search
//! produce byte-identical output (`tests/distributed_determinism.rs` at
//! the workspace root proves it on whole CSVs).
//!
//! Node death is a **recoverable event**, not a run-ending one. A batch
//! leg that fails with an I/O-class error ([`ExecError::is_node_loss`]:
//! timeout, peer hang-up, torn frame) marks that node dead, salvages the
//! replies it already returned (frames are checksummed, so a fully
//! decoded reply is trustworthy), and redispatches only the *unfinished*
//! jobs over the surviving nodes. A pool given a [`NodeRespawner`] (the
//! spawn-managed `--nodes N` path) additionally attempts a bounded
//! respawn-reconnect-rehandshake cycle with linear backoff before
//! degrading to the smaller node set. Because evaluations are pure
//! functions of the job payload, redispatch cannot change any result —
//! the output stays byte-identical whether or not a death occurred. Only
//! when the live set drops below [`PoolOptions::min_live_nodes`] does the
//! batch fail, with the typed [`ExecError::NodesExhausted`].
//!
//! Jobs and results are opaque byte payloads — closures cannot cross a
//! process boundary, so the caller (`h2o-core`'s `DistributedStage`)
//! encodes `(step, shard, sample)` jobs and decodes `EvalResult` bytes
//! with the shared [`crate::wire`] codec. A handshake pins the scenario:
//! both sides exchange a fingerprint of the evaluation configuration and
//! refuse to proceed on a mismatch ([`ExecError::ScenarioMismatch`]), so a
//! worker can never silently evaluate under different settings.

use crate::frame::{ExecError, FrameKind};
use crate::transport::{NodeAddr, NodeTransport};
use crate::wire::{Dec, Enc};
use std::time::Duration;

/// Encodes an `(index, payload)` pair for a `Job` or `Result` frame.
pub fn encode_indexed(index: u64, payload: &[u8]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(index);
    e.bytes(payload);
    e.into_vec()
}

/// Decodes an `(index, payload)` pair from a `Job` or `Result` frame.
///
/// # Errors
///
/// [`ExecError::Truncated`] / [`ExecError::Protocol`] on malformed bytes.
pub fn decode_indexed(bytes: &[u8]) -> Result<(u64, Vec<u8>), ExecError> {
    let mut d = Dec::new(bytes);
    let index = d.u64()?;
    let payload = d.bytes_vec()?;
    d.finish()?;
    Ok((index, payload))
}

/// Timeouts and fault-tolerance knobs governing a [`DistributedPool`].
#[derive(Debug, Clone, Copy)]
pub struct PoolOptions {
    /// How long to keep retrying the initial connect per node (covers
    /// worker process startup — and respawned-worker startup on the
    /// reconnect path).
    pub connect_timeout: Duration,
    /// Per-read/per-write socket timeout after the connection is up. One
    /// evaluation must complete within this bound or the node counts as
    /// dead.
    pub io_timeout: Duration,
    /// Respawn-and-reconnect attempts per node death, when the pool has a
    /// [`NodeRespawner`]. `0` disables reconnection — a dead node stays
    /// dead and the pool degrades to the survivors.
    pub max_node_retries: usize,
    /// Base delay before each reconnect attempt; attempt `k` (1-based)
    /// waits `k * retry_backoff` so a crash-looping worker doesn't get
    /// hammered.
    pub retry_backoff: Duration,
    /// The fewest live nodes the pool will keep executing with. When
    /// deaths (after any reconnect attempts) leave fewer than this,
    /// `execute` fails with [`ExecError::NodesExhausted`]. Values below 1
    /// are treated as 1.
    pub min_live_nodes: usize,
}

impl Default for PoolOptions {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(10),
            io_timeout: Duration::from_secs(30),
            max_node_retries: 2,
            retry_backoff: Duration::from_millis(200),
            min_live_nodes: 1,
        }
    }
}

/// Callback reviving a dead spawn-managed worker: kill and reap whatever
/// is left of node `index`'s process, spawn a fresh one, and return the
/// address to reconnect to. Supplied by the layer that owns the worker
/// processes (the facade's `NodeCluster`); pools attached to externally
/// managed workers have none and degrade instead of reconnecting.
pub type NodeRespawner = Box<dyn FnMut(usize) -> Result<NodeAddr, String> + Send>;

/// A pool of connected node processes executing byte jobs with
/// submission-order reduction — the distributed counterpart of
/// [`crate::Executor::execute`] — that survives node deaths by
/// redispatching unfinished jobs (see the module docs).
///
/// `nodes[i]` is `Some(transport)` while node `i` is live and `None`
/// after it died (until a [`NodeRespawner`] revives it).
pub struct DistributedPool {
    nodes: Vec<Option<NodeTransport>>,
    fingerprint: u64,
    options: PoolOptions,
    respawner: Option<NodeRespawner>,
    node_jobs: Vec<h2o_obs::Counter>,
    node_roundtrip: Vec<h2o_obs::Histogram>,
    node_live: Vec<h2o_obs::Gauge>,
    deaths: h2o_obs::Counter,
    redispatched: h2o_obs::Counter,
    reconnects: h2o_obs::Counter,
}

impl std::fmt::Debug for DistributedPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedPool")
            .field("nodes", &self.nodes.len())
            .field("live", &self.live_nodes())
            .field("options", &self.options)
            .field("has_respawner", &self.respawner.is_some())
            .finish()
    }
}

/// Connects to `addr` and runs the client half of the scenario handshake.
fn connect_node(
    addr: &NodeAddr,
    node: usize,
    fingerprint: u64,
    options: &PoolOptions,
) -> Result<NodeTransport, ExecError> {
    let mut transport = NodeTransport::connect(addr, options.connect_timeout, options.io_timeout)?;
    let mut hello = Enc::new();
    hello.u64(fingerprint);
    transport.send(FrameKind::Hello, hello.as_slice())?;
    let ack = transport.recv()?;
    match ack.kind {
        FrameKind::HelloAck => {
            let mut d = Dec::new(&ack.payload);
            let theirs = d.u64()?;
            d.finish()?;
            if theirs != fingerprint {
                return Err(ExecError::ScenarioMismatch {
                    found: theirs,
                    expected: fingerprint,
                });
            }
        }
        FrameKind::Error => {
            return Err(ExecError::Worker {
                node,
                message: String::from_utf8_lossy(&ack.payload).into_owned(),
            })
        }
        other => {
            return Err(ExecError::Protocol(format!(
                "expected HelloAck, got {other:?}"
            )))
        }
    }
    Ok(transport)
}

impl DistributedPool {
    /// Connects to every node and performs the scenario handshake.
    ///
    /// The client sends `Hello(fingerprint)`; each worker answers
    /// `HelloAck(its own fingerprint)`. Both sides compare — a mismatch is
    /// [`ExecError::ScenarioMismatch`] on both ends, so neither can run a
    /// search whose evaluation settings differ from its peer's.
    ///
    /// The initial connect is all-or-nothing: a pool that cannot reach
    /// every configured node at startup is a configuration problem, not
    /// churn, so it fails typed instead of silently starting degraded.
    ///
    /// # Errors
    ///
    /// [`ExecError::Connect`] / [`ExecError::Timeout`] on dead nodes, any
    /// frame-shaped error on protocol trouble, [`ExecError::Protocol`] if
    /// `addrs` is empty or `min_live_nodes` exceeds the node count.
    pub fn connect(
        addrs: &[NodeAddr],
        fingerprint: u64,
        options: PoolOptions,
    ) -> Result<Self, ExecError> {
        if addrs.is_empty() {
            return Err(ExecError::Protocol(
                "a pool needs at least one node".to_string(),
            ));
        }
        if options.min_live_nodes > addrs.len() {
            return Err(ExecError::Protocol(format!(
                "min_live_nodes {} exceeds the {} configured node(s)",
                options.min_live_nodes,
                addrs.len()
            )));
        }
        let mut nodes = Vec::with_capacity(addrs.len());
        for (i, addr) in addrs.iter().enumerate() {
            nodes.push(Some(connect_node(addr, i, fingerprint, &options)?));
        }
        let node_jobs = (0..nodes.len())
            .map(|n| h2o_obs::counter(&format!("h2o_exec_node_jobs_total{{node=\"{n}\"}}")))
            .collect();
        let node_roundtrip = (0..nodes.len())
            .map(|n| {
                h2o_obs::histogram(&format!("h2o_exec_node_roundtrip_seconds{{node=\"{n}\"}}"))
            })
            .collect();
        let node_live: Vec<h2o_obs::Gauge> = (0..nodes.len())
            .map(|n| h2o_obs::gauge(&format!("h2o_exec_node_live{{node=\"{n}\"}}")))
            .collect();
        for gauge in &node_live {
            gauge.set(1.0);
        }
        Ok(Self {
            nodes,
            fingerprint,
            options,
            respawner: None,
            node_jobs,
            node_roundtrip,
            node_live,
            deaths: h2o_obs::counter("h2o_exec_node_deaths_total"),
            redispatched: h2o_obs::counter("h2o_exec_redispatched_jobs_total"),
            reconnects: h2o_obs::counter("h2o_exec_node_reconnects_total"),
        })
    }

    /// Installs the hook that revives dead spawn-managed workers. Without
    /// one, a dead node stays dead and the pool degrades to the
    /// survivors.
    pub fn set_respawner(&mut self, respawner: NodeRespawner) {
        self.respawner = Some(respawner);
    }

    /// The number of configured nodes (live or dead).
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The number of currently live (connected) nodes.
    pub fn live_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Runs every byte job on the pool and returns results in
    /// **submission order**: `execute(jobs)[i]` is the result of
    /// `jobs[i]`.
    ///
    /// Pending jobs are spread round-robin over the live nodes; each
    /// node's leg is pipelined (all sent, then all received) on a thread
    /// per node, with the per-socket I/O timeout bounding every blocking
    /// read. A leg that fails with an I/O-class error marks its node dead
    /// (salvaging the checksummed replies it already produced), triggers
    /// the bounded respawn-reconnect cycle when a [`NodeRespawner`] is
    /// installed, and leaves its unfinished jobs to be redispatched over
    /// whatever nodes remain live. Placement is invisible in the results,
    /// so a batch that survived a death is byte-identical to one that
    /// never saw it.
    ///
    /// # Errors
    ///
    /// [`ExecError::NodesExhausted`] when deaths leave fewer than
    /// [`PoolOptions::min_live_nodes`] live nodes; any non-I/O-class
    /// [`ExecError`] (protocol violation, worker-reported evaluation
    /// failure, scenario skew) immediately — the lowest-numbered failing
    /// node's error, deterministically. After a fatal error the pool must
    /// be considered poisoned (in-flight frames are not resynchronised)
    /// and rebuilt; after an `Ok` the pool is at a frame boundary and
    /// ready for the next batch even if nodes died along the way.
    pub fn execute(&mut self, jobs: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, ExecError> {
        let n_jobs = jobs.len();
        h2o_obs::counter("h2o_exec_node_batches_total").inc();
        let mut slots: Vec<Option<Vec<u8>>> = (0..n_jobs).map(|_| None).collect();
        let mut last_loss: Option<ExecError> = None;
        let mut round = 0usize;
        loop {
            let pending: Vec<usize> = slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_none())
                .map(|(i, _)| i)
                .collect();
            if pending.is_empty() {
                break;
            }
            let live: Vec<usize> = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.is_some())
                .map(|(i, _)| i)
                .collect();
            let min_live = self.options.min_live_nodes.max(1);
            if live.len() < min_live {
                return Err(ExecError::NodesExhausted {
                    live: live.len(),
                    min: min_live,
                    last_error: last_loss
                        .map(|e| e.to_string())
                        .unwrap_or_else(|| "no prior node loss".to_string()),
                });
            }
            if round > 0 {
                // Every job sent after round 0 is a job whose original
                // node died before answering it.
                self.redispatched.add(pending.len() as u64);
            }
            round += 1;

            // Round-robin the pending jobs over the live nodes in index
            // order. On round 0 with a fully live pool this reproduces the
            // historical `i % nodes` placement exactly; either way,
            // submission-order reduction makes placement invisible.
            let mut per_node: Vec<IndexedBatch> =
                (0..self.nodes.len()).map(|_| Vec::new()).collect();
            for (k, &index) in pending.iter().enumerate() {
                per_node[live[k % live.len()]].push((index as u64, jobs[index].clone()));
            }

            let node_roundtrip = &self.node_roundtrip;
            let mut outcomes: Vec<BatchOutcome> = (0..self.nodes.len())
                .map(|_| BatchOutcome {
                    results: Vec::new(),
                    error: None,
                })
                .collect();
            {
                let mut outcome_slots: Vec<_> = outcomes.iter_mut().collect();
                crossbeam::thread::scope(|scope| {
                    for (node, (slot_node, batch)) in
                        self.nodes.iter_mut().zip(per_node).enumerate()
                    {
                        // Pop from the front so slot k belongs to node k.
                        let slot = outcome_slots.remove(0);
                        let Some(transport) = slot_node.as_mut() else {
                            continue;
                        };
                        if batch.is_empty() {
                            continue;
                        }
                        scope.spawn(move |_| {
                            let watch = h2o_obs::Stopwatch::start();
                            *slot = run_node_batch(transport, node, batch);
                            node_roundtrip[node].record(watch.elapsed_secs());
                        });
                    }
                })
                // h2o-lint: allow(panic-hygiene) -- a scope Err re-raises a child thread's panic;
                // node threads return typed outcomes through their slot and do not panic themselves
                .expect("node batch scope panicked");
            }

            // Merge every salvaged result first, then classify failures:
            // fatal errors abort (lowest node wins, deterministically),
            // node losses mark the node dead and feed the revive path.
            let mut lost: Vec<(usize, ExecError)> = Vec::new();
            for (node, outcome) in outcomes.into_iter().enumerate() {
                self.node_jobs[node].add(outcome.results.len() as u64);
                for (index, payload) in outcome.results {
                    let slot = slots.get_mut(index as usize).ok_or_else(|| {
                        ExecError::Protocol(format!(
                            "node {node} returned result index {index} beyond batch size {n_jobs}"
                        ))
                    })?;
                    if slot.is_some() {
                        return Err(ExecError::Protocol(format!(
                            "node {node} returned result index {index} twice"
                        )));
                    }
                    *slot = Some(payload);
                }
                if let Some(error) = outcome.error {
                    if !error.is_node_loss() {
                        return Err(error);
                    }
                    lost.push((node, error));
                }
            }
            for (node, error) in lost {
                self.deaths.inc();
                self.node_live[node].set(0.0);
                self.nodes[node] = None;
                last_loss = Some(error);
                self.try_revive(node);
            }
        }
        let mut out = Vec::with_capacity(n_jobs);
        for (i, slot) in slots.into_iter().enumerate() {
            out.push(slot.ok_or_else(|| {
                ExecError::Protocol(format!("no node returned a result for job {i}"))
            })?);
        }
        Ok(out)
    }

    /// Bounded respawn-reconnect-rehandshake cycle for a dead node: up to
    /// `max_node_retries` attempts, attempt `k` (1-based) backing off
    /// `k * retry_backoff` first. A node that cannot be revived stays
    /// dead and the pool degrades; there is no respawner for externally
    /// managed workers, so those degrade immediately.
    fn try_revive(&mut self, node: usize) {
        let Some(respawner) = self.respawner.as_mut() else {
            return;
        };
        for attempt in 1..=self.options.max_node_retries {
            std::thread::sleep(self.options.retry_backoff.saturating_mul(attempt as u32));
            let Ok(addr) = respawner(node) else {
                continue;
            };
            match connect_node(&addr, node, self.fingerprint, &self.options) {
                Ok(transport) => {
                    self.nodes[node] = Some(transport);
                    self.node_live[node].set(1.0);
                    self.reconnects.inc();
                    return;
                }
                Err(_) => continue,
            }
        }
    }

    /// Asks every live node to exit cleanly. Best-effort: a node that
    /// already died is skipped.
    pub fn shutdown(mut self) {
        for slot in &mut self.nodes {
            if let Some(transport) = slot.as_mut() {
                let _ = transport.send(FrameKind::Shutdown, &[]);
            }
        }
    }
}

/// A batch of submission-index-tagged payloads, one entry per job.
type IndexedBatch = Vec<(u64, Vec<u8>)>;

/// What one node's batch leg produced: every reply that arrived intact,
/// plus the error that ended the leg early (if one did). Salvaged replies
/// are trustworthy even when the leg failed — each came from a fully
/// checksummed frame.
struct BatchOutcome {
    results: IndexedBatch,
    error: Option<ExecError>,
}

/// One node's half of [`DistributedPool::execute`]: pipeline all jobs out,
/// then collect replies until one per job has arrived or the leg fails.
fn run_node_batch(transport: &mut NodeTransport, node: usize, batch: IndexedBatch) -> BatchOutcome {
    let mut outcome = BatchOutcome {
        results: Vec::with_capacity(batch.len()),
        error: None,
    };
    for (index, job) in &batch {
        if let Err(e) = transport.send(FrameKind::Job, &encode_indexed(*index, job)) {
            outcome.error = Some(e);
            return outcome;
        }
    }
    for _ in 0..batch.len() {
        let frame = match transport.recv() {
            Ok(frame) => frame,
            Err(e) => {
                outcome.error = Some(e);
                return outcome;
            }
        };
        match frame.kind {
            FrameKind::Result => match decode_indexed(&frame.payload) {
                Ok(result) => outcome.results.push(result),
                Err(e) => {
                    outcome.error = Some(e);
                    return outcome;
                }
            },
            FrameKind::Error => {
                outcome.error = Some(ExecError::Worker {
                    node,
                    message: String::from_utf8_lossy(&frame.payload).into_owned(),
                });
                return outcome;
            }
            other => {
                outcome.error = Some(ExecError::Protocol(format!(
                    "node {node}: expected Result, got {other:?}"
                )));
                return outcome;
            }
        }
    }
    outcome
}

/// The worker side: answers the scenario handshake, then evaluates every
/// `Job` frame through `handler` until the client shuts down or hangs up.
///
/// A handler error is reported to the client as an `Error` frame (the
/// client surfaces it as [`ExecError::Worker`]) and the loop continues —
/// the client decides whether the batch is lost. Returns `Ok(())` on a
/// clean `Shutdown` or a peer hang-up at a frame boundary.
///
/// # Errors
///
/// [`ExecError::ScenarioMismatch`] when the client's fingerprint differs
/// from `fingerprint` (after telling the client ours), or any frame-shaped
/// error from the transport.
pub fn serve<F>(
    transport: &mut NodeTransport,
    fingerprint: u64,
    mut handler: F,
) -> Result<(), ExecError>
where
    F: FnMut(&[u8]) -> Result<Vec<u8>, String>,
{
    let jobs_served = h2o_obs::counter("h2o_exec_node_worker_jobs_total");
    loop {
        let frame = match transport.recv() {
            Ok(frame) => frame,
            Err(ExecError::PeerClosed) => return Ok(()),
            Err(e) => return Err(e),
        };
        match frame.kind {
            FrameKind::Hello => {
                let mut d = Dec::new(&frame.payload);
                let theirs = d.u64()?;
                d.finish()?;
                let mut ack = Enc::new();
                ack.u64(fingerprint);
                transport.send(FrameKind::HelloAck, ack.as_slice())?;
                if theirs != fingerprint {
                    return Err(ExecError::ScenarioMismatch {
                        found: theirs,
                        expected: fingerprint,
                    });
                }
            }
            FrameKind::Job => {
                let (index, payload) = decode_indexed(&frame.payload)?;
                match handler(&payload) {
                    Ok(result) => {
                        jobs_served.inc();
                        transport.send(FrameKind::Result, &encode_indexed(index, &result))?;
                    }
                    Err(message) => {
                        transport.send(FrameKind::Error, message.as_bytes())?;
                    }
                }
            }
            FrameKind::Shutdown => return Ok(()),
            other => {
                return Err(ExecError::Protocol(format!(
                    "worker received unexpected {other:?} frame"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::NodeListener;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_sock(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("h2o_dpool_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        dir.join(format!("{name}.sock"))
    }

    /// Spawns an in-process worker thread serving `handler` on a fresh
    /// unix socket; returns its address.
    fn spawn_worker<F>(name: &str, fingerprint: u64, handler: F) -> NodeAddr
    where
        F: FnMut(&[u8]) -> Result<Vec<u8>, String> + Send + 'static,
    {
        let addr = NodeAddr::Unix(temp_sock(name));
        let listener = NodeListener::bind(&addr).unwrap();
        std::thread::spawn(move || {
            let mut handler = handler;
            if let Ok(mut t) = listener.accept(Duration::from_secs(10)) {
                let _ = serve(&mut t, fingerprint, &mut handler);
            }
        });
        addr
    }

    /// Spawns a worker that answers the handshake, echoes `die_after` jobs
    /// doubled, then drops its socket mid-conversation — exactly how a
    /// crashed node looks to the pool.
    fn spawn_dying_worker(name: &str, fingerprint: u64, die_after: usize) -> NodeAddr {
        let addr = NodeAddr::Unix(temp_sock(name));
        let listener = NodeListener::bind(&addr).unwrap();
        std::thread::spawn(move || {
            let Ok(mut t) = listener.accept(Duration::from_secs(10)) else {
                return;
            };
            let mut served = 0usize;
            let _ = serve(&mut t, fingerprint, move |job: &[u8]| {
                if served >= die_after {
                    // Simulated crash: the serve loop is abandoned by
                    // panicking out of the handler thread, which drops the
                    // transport without a Shutdown or Error frame.
                    std::panic::panic_any(NodeDeath);
                }
                served += 1;
                Ok(double(job))
            });
        });
        addr
    }

    /// Panic payload used to unwind a dying worker thread quietly.
    struct NodeDeath;

    fn double(job: &[u8]) -> Vec<u8> {
        let mut out = job.to_vec();
        out.iter_mut().for_each(|b| *b = b.wrapping_mul(2));
        out
    }

    fn opts() -> PoolOptions {
        PoolOptions {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(5),
            retry_backoff: Duration::from_millis(5),
            ..PoolOptions::default()
        }
    }

    #[test]
    fn pool_reduces_in_submission_order() {
        let addrs: Vec<NodeAddr> = (0..3)
            .map(|i| spawn_worker(&format!("order{i}"), 7, |job: &[u8]| Ok(double(job))))
            .collect();
        let mut pool = DistributedPool::connect(&addrs, 7, opts()).unwrap();
        assert_eq!(pool.nodes(), 3);
        assert_eq!(pool.live_nodes(), 3);
        let jobs: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i]).collect();
        let results = pool.execute(jobs).unwrap();
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r, &vec![(i as u8) * 2], "job {i} out of order");
        }
        pool.shutdown();
    }

    #[test]
    fn handshake_rejects_fingerprint_skew() {
        let addr = spawn_worker("skew", 1111, |job: &[u8]| Ok(job.to_vec()));
        let err = DistributedPool::connect(&[addr], 2222, opts()).expect_err("fingerprints differ");
        assert_eq!(
            err,
            ExecError::ScenarioMismatch {
                found: 1111,
                expected: 2222,
            }
        );
    }

    #[test]
    fn worker_handler_error_is_typed_and_fatal() {
        let addr = spawn_worker("fail", 3, |_: &[u8]| Err("simulator exploded".to_string()));
        let mut pool = DistributedPool::connect(&[addr], 3, opts()).unwrap();
        let err = pool.execute(vec![vec![1]]).expect_err("handler fails");
        assert_eq!(
            err,
            ExecError::Worker {
                node: 0,
                message: "simulator exploded".to_string(),
            }
        );
        assert!(
            !err.is_node_loss(),
            "a worker-reported failure is not recoverable churn"
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let addr = spawn_worker("empty", 4, |job: &[u8]| Ok(job.to_vec()));
        let mut pool = DistributedPool::connect(&[addr], 4, opts()).unwrap();
        assert!(pool.execute(Vec::new()).unwrap().is_empty());
        pool.shutdown();
    }

    #[test]
    fn indexed_payload_round_trips() {
        let bytes = encode_indexed(42, b"payload");
        assert_eq!(decode_indexed(&bytes).unwrap(), (42, b"payload".to_vec()));
        assert!(decode_indexed(&bytes[..3]).is_err());
    }

    #[test]
    fn dead_node_jobs_redispatch_to_the_survivor() {
        // Node 0 answers 3 jobs then vanishes mid-batch; node 1 is
        // healthy. Every job must still come back, in submission order,
        // with node 0's salvaged replies reused rather than re-run.
        let addrs = vec![
            spawn_dying_worker("redisp-dying", 11, 3),
            spawn_worker("redisp-healthy", 11, |job: &[u8]| Ok(double(job))),
        ];
        let redispatched = h2o_obs::counter("h2o_exec_redispatched_jobs_total");
        let deaths = h2o_obs::counter("h2o_exec_node_deaths_total");
        let (redisp_before, deaths_before) = (redispatched.value(), deaths.value());
        let mut pool = DistributedPool::connect(&addrs, 11, opts()).unwrap();
        let jobs: Vec<Vec<u8>> = (0..12u8).map(|i| vec![i]).collect();
        let results = pool.execute(jobs).expect("the pool survives one death");
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r, &vec![(i as u8) * 2], "job {i} wrong after redispatch");
        }
        assert_eq!(pool.live_nodes(), 1, "the dead node stays dead");
        assert!(deaths.value() > deaths_before, "death must be counted");
        assert!(
            redispatched.value() > redisp_before,
            "redispatched jobs must be counted"
        );
        pool.shutdown();
    }

    #[test]
    fn exhausted_pool_fails_typed() {
        // The only node dies immediately and there is no respawner: the
        // pool drops below min_live_nodes=1 and must fail typed.
        let addr = spawn_dying_worker("exhaust", 12, 0);
        let mut pool = DistributedPool::connect(&[addr], 12, opts()).unwrap();
        let err = pool
            .execute(vec![vec![1], vec![2]])
            .expect_err("no nodes left");
        match err {
            ExecError::NodesExhausted { live, min, .. } => {
                assert_eq!(live, 0);
                assert_eq!(min, 1);
            }
            other => panic!("expected NodesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn min_live_nodes_floor_fails_a_degraded_pool() {
        // Two nodes, min_live_nodes=2: one death is already below the
        // floor even though a survivor could finish the work.
        let addrs = vec![
            spawn_dying_worker("floor-dying", 13, 1),
            spawn_worker("floor-healthy", 13, |job: &[u8]| Ok(double(job))),
        ];
        let options = PoolOptions {
            min_live_nodes: 2,
            ..opts()
        };
        let mut pool = DistributedPool::connect(&addrs, 13, options).unwrap();
        let jobs: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i]).collect();
        let err = pool.execute(jobs).expect_err("below the live floor");
        assert!(
            matches!(
                err,
                ExecError::NodesExhausted {
                    live: 1,
                    min: 2,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn respawner_revives_a_dead_node() {
        // Node 0 dies after 2 jobs; the respawner brings up a healthy
        // replacement worker on a fresh socket. The batch completes and
        // the node is live again afterwards.
        let addr = spawn_dying_worker("revive-initial", 14, 2);
        let reconnects = h2o_obs::counter("h2o_exec_node_reconnects_total");
        let reconnects_before = reconnects.value();
        let mut pool = DistributedPool::connect(&[addr], 14, opts()).unwrap();
        static GENERATION: AtomicUsize = AtomicUsize::new(0);
        pool.set_respawner(Box::new(|node| {
            let generation = GENERATION.fetch_add(1, Ordering::Relaxed);
            Ok(spawn_worker(
                &format!("revive-{node}-{generation}"),
                14,
                |job: &[u8]| Ok(double(job)),
            ))
        }));
        let jobs: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i]).collect();
        let results = pool.execute(jobs).expect("revived pool completes");
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r, &vec![(i as u8) * 2], "job {i} wrong after revival");
        }
        assert_eq!(pool.live_nodes(), 1, "the node is back");
        assert!(
            reconnects.value() > reconnects_before,
            "the reconnect must be counted"
        );
        pool.shutdown();
    }

    #[test]
    fn min_live_nodes_above_pool_size_is_rejected_at_connect() {
        let addr = spawn_worker("floor-toohigh", 15, |job: &[u8]| Ok(job.to_vec()));
        let options = PoolOptions {
            min_live_nodes: 3,
            ..opts()
        };
        let err = DistributedPool::connect(&[addr], 15, options)
            .expect_err("floor above pool size is a config error");
        assert!(matches!(err, ExecError::Protocol(_)), "{err:?}");
    }
}
