//! Node addresses, listeners and connected transports for the
//! process-per-node executor.
//!
//! Two interchangeable byte pipes carry the [`crate::frame`] protocol:
//! Unix domain sockets (the default for co-located node processes — the
//! `--nodes N` auto-spawn path) and TCP (for nodes on other machines or
//! pre-started workers). Every blocking operation is bounded: connects
//! retry up to a deadline, accepts poll up to a deadline, and reads and
//! writes carry an OS-level socket timeout, so a dead or wedged peer
//! surfaces as a typed [`ExecError`] instead of a hang.

use crate::frame::{read_frame, write_frame, ExecError, Frame, FrameKind};
use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// How often bounded retry loops (connect, accept) poll.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// The address of one evaluation node.
///
/// Textual forms (accepted by [`NodeAddr::parse`], produced by `Display`):
/// `unix:/path/to.sock` and `tcp:host:port`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeAddr {
    /// A Unix domain socket path.
    Unix(PathBuf),
    /// A TCP `host:port` endpoint.
    Tcp(String),
}

impl NodeAddr {
    /// Parses `unix:<path>` or `tcp:<host:port>`.
    ///
    /// # Errors
    ///
    /// [`ExecError::Protocol`] naming the malformed address otherwise.
    pub fn parse(s: &str) -> Result<Self, ExecError> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(ExecError::Protocol(format!(
                    "empty unix socket path in '{s}'"
                )));
            }
            return Ok(NodeAddr::Unix(PathBuf::from(path)));
        }
        if let Some(hostport) = s.strip_prefix("tcp:") {
            if !hostport.contains(':') {
                return Err(ExecError::Protocol(format!(
                    "tcp address '{s}' must be tcp:host:port"
                )));
            }
            return Ok(NodeAddr::Tcp(hostport.to_string()));
        }
        Err(ExecError::Protocol(format!(
            "node address '{s}' must start with unix: or tcp:"
        )))
    }
}

impl fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeAddr::Unix(path) => write!(f, "unix:{}", path.display()),
            NodeAddr::Tcp(hostport) => write!(f, "tcp:{hostport}"),
        }
    }
}

/// A bound, listening node endpoint (the worker side).
#[derive(Debug)]
pub enum NodeListener {
    /// Listening on a Unix domain socket.
    Unix(UnixListener),
    /// Listening on a TCP socket.
    Tcp(TcpListener),
}

impl NodeListener {
    /// Binds a listener at `addr`. A stale Unix socket file left by a
    /// crashed worker is removed first; `tcp:host:0` binds an ephemeral
    /// port ([`NodeListener::local_addr`] reports the real one).
    ///
    /// # Errors
    ///
    /// [`ExecError::Io`] if the bind fails.
    pub fn bind(addr: &NodeAddr) -> Result<Self, ExecError> {
        match addr {
            NodeAddr::Unix(path) => {
                let _ = std::fs::remove_file(path);
                Ok(NodeListener::Unix(UnixListener::bind(path)?))
            }
            NodeAddr::Tcp(hostport) => Ok(NodeListener::Tcp(TcpListener::bind(hostport)?)),
        }
    }

    /// The actual bound address (resolves `tcp:host:0` to the assigned
    /// port).
    ///
    /// # Errors
    ///
    /// [`ExecError::Io`] if the socket cannot report its address.
    pub fn local_addr(&self) -> Result<NodeAddr, ExecError> {
        match self {
            NodeListener::Unix(l) => {
                let addr = l.local_addr()?;
                let path = addr
                    .as_pathname()
                    .ok_or_else(|| ExecError::Io("unnamed unix socket".to_string()))?;
                Ok(NodeAddr::Unix(path.to_path_buf()))
            }
            NodeListener::Tcp(l) => Ok(NodeAddr::Tcp(l.local_addr()?.to_string())),
        }
    }

    /// Accepts one connection, polling for at most `timeout`.
    ///
    /// # Errors
    ///
    /// [`ExecError::Timeout`] if no peer connects in time, otherwise
    /// [`ExecError::Io`].
    pub fn accept(&self, timeout: Duration) -> Result<NodeTransport, ExecError> {
        match self {
            NodeListener::Unix(l) => l.set_nonblocking(true)?,
            NodeListener::Tcp(l) => l.set_nonblocking(true)?,
        }
        let watch = h2o_obs::Stopwatch::start();
        loop {
            let accepted = match self {
                NodeListener::Unix(l) => l.accept().map(|(s, _)| NodeTransport::Unix(s)),
                NodeListener::Tcp(l) => l.accept().map(|(s, _)| NodeTransport::Tcp(s)),
            };
            match accepted {
                Ok(transport) => {
                    transport.set_blocking()?;
                    return Ok(transport);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if watch.elapsed_secs() > timeout.as_secs_f64() {
                        return Err(ExecError::Timeout(format!(
                            "no connection within {timeout:?}"
                        )));
                    }
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
}

/// A connected byte pipe to one node, carrying [`crate::frame`] frames.
#[derive(Debug)]
pub enum NodeTransport {
    /// Over a Unix domain socket.
    Unix(UnixStream),
    /// Over a TCP socket.
    Tcp(TcpStream),
}

impl NodeTransport {
    /// Connects to `addr`, retrying until `connect_timeout` elapses (a
    /// just-spawned worker's socket may not exist yet), then applies
    /// `io_timeout` to every subsequent read and write.
    ///
    /// # Errors
    ///
    /// [`ExecError::Connect`] when the deadline passes without a
    /// connection.
    pub fn connect(
        addr: &NodeAddr,
        connect_timeout: Duration,
        io_timeout: Duration,
    ) -> Result<Self, ExecError> {
        let watch = h2o_obs::Stopwatch::start();
        loop {
            let last_err = match Self::connect_once(addr) {
                Ok(transport) => {
                    transport.set_io_timeout(io_timeout)?;
                    return Ok(transport);
                }
                Err(e) => e.to_string(),
            };
            if watch.elapsed_secs() > connect_timeout.as_secs_f64() {
                return Err(ExecError::Connect(format!(
                    "{addr}: no connection within {connect_timeout:?} (last error: {last_err})"
                )));
            }
            std::thread::sleep(POLL_INTERVAL);
        }
    }

    fn connect_once(addr: &NodeAddr) -> std::io::Result<Self> {
        match addr {
            NodeAddr::Unix(path) => Ok(NodeTransport::Unix(UnixStream::connect(path)?)),
            NodeAddr::Tcp(hostport) => {
                let sockaddr = hostport.to_socket_addrs()?.next().ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::AddrNotAvailable,
                        format!("'{hostport}' resolves to no address"),
                    )
                })?;
                let stream = TcpStream::connect_timeout(&sockaddr, Duration::from_secs(1))?;
                stream.set_nodelay(true)?;
                Ok(NodeTransport::Tcp(stream))
            }
        }
    }

    /// Applies `timeout` to every blocking read and write on the socket,
    /// so a dead peer becomes [`ExecError::Timeout`] instead of a hang.
    ///
    /// # Errors
    ///
    /// [`ExecError::Io`] if the socket rejects the option.
    pub fn set_io_timeout(&self, timeout: Duration) -> Result<(), ExecError> {
        let t = Some(timeout);
        match self {
            NodeTransport::Unix(s) => {
                s.set_read_timeout(t)?;
                s.set_write_timeout(t)?;
            }
            NodeTransport::Tcp(s) => {
                s.set_read_timeout(t)?;
                s.set_write_timeout(t)?;
            }
        }
        Ok(())
    }

    fn set_blocking(&self) -> Result<(), ExecError> {
        match self {
            NodeTransport::Unix(s) => s.set_nonblocking(false)?,
            NodeTransport::Tcp(s) => s.set_nonblocking(false)?,
        }
        Ok(())
    }

    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// Frame-shaped [`ExecError`]s from the write path.
    pub fn send(&mut self, kind: FrameKind, payload: &[u8]) -> Result<(), ExecError> {
        match self {
            NodeTransport::Unix(s) => write_frame(s, kind, payload),
            NodeTransport::Tcp(s) => write_frame(s, kind, payload),
        }
    }

    /// Receives one frame.
    ///
    /// # Errors
    ///
    /// Frame-shaped [`ExecError`]s from the read path; a peer that died
    /// mid-frame is [`ExecError::Truncated`], one that hung up cleanly is
    /// [`ExecError::PeerClosed`], one that stopped responding is
    /// [`ExecError::Timeout`].
    pub fn recv(&mut self) -> Result<Frame, ExecError> {
        match self {
            NodeTransport::Unix(s) => read_frame(s),
            NodeTransport::Tcp(s) => read_frame(s),
        }
    }
}

impl Read for NodeTransport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            NodeTransport::Unix(s) => s.read(buf),
            NodeTransport::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for NodeTransport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            NodeTransport::Unix(s) => s.write(buf),
            NodeTransport::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            NodeTransport::Unix(s) => s.flush(),
            NodeTransport::Tcp(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_parse_round_trips() {
        let unix = NodeAddr::parse("unix:/tmp/node-0.sock").unwrap();
        assert_eq!(unix, NodeAddr::Unix(PathBuf::from("/tmp/node-0.sock")));
        assert_eq!(unix.to_string(), "unix:/tmp/node-0.sock");
        let tcp = NodeAddr::parse("tcp:127.0.0.1:9000").unwrap();
        assert_eq!(tcp, NodeAddr::Tcp("127.0.0.1:9000".to_string()));
        assert_eq!(tcp.to_string(), "tcp:127.0.0.1:9000");
    }

    #[test]
    fn malformed_addrs_are_typed_errors() {
        for bad in [
            "",
            "unix:",
            "tcp:",
            "tcp:nohostport",
            "/bare/path",
            "udp:x:1",
        ] {
            assert!(
                matches!(NodeAddr::parse(bad), Err(ExecError::Protocol(_))),
                "'{bad}' must be rejected"
            );
        }
    }

    #[test]
    fn unix_frames_flow_both_ways() {
        let dir = std::env::temp_dir().join(format!("h2o_exec_t_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let addr = NodeAddr::Unix(dir.join("pair.sock"));
        let listener = NodeListener::bind(&addr).unwrap();
        let client = std::thread::spawn({
            let addr = addr.clone();
            move || {
                let mut t =
                    NodeTransport::connect(&addr, Duration::from_secs(5), Duration::from_secs(5))
                        .unwrap();
                t.send(FrameKind::Hello, b"ping").unwrap();
                t.recv().unwrap()
            }
        });
        let mut server = listener.accept(Duration::from_secs(5)).unwrap();
        let frame = server.recv().unwrap();
        assert_eq!(frame.payload, b"ping");
        server.send(FrameKind::HelloAck, b"pong").unwrap();
        let reply = client.join().unwrap();
        assert_eq!(reply.kind, FrameKind::HelloAck);
        assert_eq!(reply.payload, b"pong");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tcp_port_zero_resolves_and_carries_frames() {
        let listener = NodeListener::bind(&NodeAddr::Tcp("127.0.0.1:0".to_string())).unwrap();
        let addr = listener.local_addr().unwrap();
        assert!(matches!(&addr, NodeAddr::Tcp(hp) if !hp.ends_with(":0")));
        let client = std::thread::spawn({
            let addr = addr.clone();
            move || {
                let mut t =
                    NodeTransport::connect(&addr, Duration::from_secs(5), Duration::from_secs(5))
                        .unwrap();
                t.send(FrameKind::Job, &[9; 32]).unwrap();
            }
        });
        let mut server = listener.accept(Duration::from_secs(5)).unwrap();
        assert_eq!(server.recv().unwrap().payload, vec![9; 32]);
        client.join().unwrap();
    }

    #[test]
    fn connect_to_nobody_times_out_typed() {
        let err = NodeTransport::connect(
            &NodeAddr::Unix(PathBuf::from("/nonexistent/h2o/never.sock")),
            Duration::from_millis(50),
            Duration::from_secs(1),
        )
        .expect_err("nothing listens there");
        assert!(matches!(err, ExecError::Connect(_)), "{err:?}");
    }

    #[test]
    fn accept_with_no_client_times_out_typed() {
        let dir = std::env::temp_dir().join(format!("h2o_exec_acc_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let listener = NodeListener::bind(&NodeAddr::Unix(dir.join("lonely.sock"))).unwrap();
        let err = listener
            .accept(Duration::from_millis(50))
            .expect_err("no client ever connects");
        assert!(matches!(err, ExecError::Timeout(_)), "{err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_peer_read_times_out_typed() {
        let dir = std::env::temp_dir().join(format!("h2o_exec_dead_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let addr = NodeAddr::Unix(dir.join("dead.sock"));
        let listener = NodeListener::bind(&addr).unwrap();
        let client = std::thread::spawn({
            let addr = addr.clone();
            move || NodeTransport::connect(&addr, Duration::from_secs(5), Duration::from_millis(80))
        });
        let server = listener.accept(Duration::from_secs(5)).unwrap();
        let mut t = client.join().unwrap().unwrap();
        // The server holds the connection open but never writes: the read
        // must come back as a typed timeout, not hang.
        let err = t.recv().expect_err("silent peer");
        assert!(matches!(err, ExecError::Timeout(_)), "{err:?}");
        drop(server);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
