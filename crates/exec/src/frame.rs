//! Length-prefixed, checksummed message frames for the node transport.
//!
//! Every message between the search client and a `node-worker` process is
//! one frame:
//!
//! ```text
//! MAGIC (8) | version u32 | kind u32 | payload_len u64 | payload | fnv1a u64
//! ```
//!
//! All integers little-endian; the trailing FNV-1a checksum covers every
//! preceding byte (same construction as an `h2o-ckpt` checkpoint file, via
//! the shared [`crate::wire`] codec). Anything wrong with a frame — bad
//! magic, checksum mismatch, protocol version skew, an unknown kind, a
//! truncated read, an oversize length — surfaces as a typed [`ExecError`];
//! the decode paths never panic and the streaming read path never blocks
//! past the transport's read timeout.

use crate::wire::{self, WireError};
use std::fmt;
use std::io::Read;

/// First 8 bytes of every frame.
pub const FRAME_MAGIC: &[u8; 8] = b"H2OFRM1\0";

/// Node-protocol version; bumped on any incompatible frame or payload
/// layout change. A client and worker with different versions refuse each
/// other with [`ExecError::VersionSkew`] instead of mis-decoding.
pub const PROTOCOL_VERSION: u32 = 1;

/// Fixed bytes before the payload: magic(8) + version(4) + kind(4) +
/// payload_len(8).
pub const FRAME_HEADER_LEN: usize = 24;

/// Hard cap on a frame payload. Real job/result payloads are a few hundred
/// bytes; the cap turns a corrupted length field into a typed
/// [`ExecError::Oversize`] instead of a multi-gigabyte allocation.
pub const MAX_PAYLOAD: u64 = 64 * 1024 * 1024;

/// What a frame carries. The numeric values are the on-wire encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → worker: handshake carrying the scenario fingerprint.
    Hello = 1,
    /// Worker → client: handshake accepted.
    HelloAck = 2,
    /// Client → worker: one evaluation job (`index u64 | bytes`).
    Job = 3,
    /// Worker → client: one job result (`index u64 | bytes`).
    Result = 4,
    /// Worker → client: a typed failure (`bytes` = UTF-8 message).
    Error = 5,
    /// Client → worker: drain and exit cleanly.
    Shutdown = 6,
}

impl FrameKind {
    fn from_u32(v: u32) -> Option<Self> {
        match v {
            1 => Some(FrameKind::Hello),
            2 => Some(FrameKind::HelloAck),
            3 => Some(FrameKind::Job),
            4 => Some(FrameKind::Result),
            5 => Some(FrameKind::Error),
            6 => Some(FrameKind::Shutdown),
            _ => None,
        }
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The message kind.
    pub kind: FrameKind,
    /// The raw payload (kind-specific layout, see [`FrameKind`]).
    pub payload: Vec<u8>,
}

/// Everything that can go wrong in the distributed executor: connecting,
/// framing, protocol agreement, and remote evaluation.
///
/// The determinism contract extends to failures: a frame-level problem is
/// always a typed error within the transport's timeout, never a hang and
/// never a panic, so the driver can stop cleanly and a later resume from
/// the last checkpoint reproduces the single-process trajectory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Could not establish a connection to a node within the timeout.
    Connect(String),
    /// A transport I/O failure (formatted `std::io::Error`).
    Io(String),
    /// A read or write exceeded the transport's configured timeout.
    Timeout(String),
    /// The peer closed the connection at a frame boundary (clean EOF).
    PeerClosed,
    /// The stream does not start with the frame magic — not our protocol.
    BadMagic,
    /// The peer speaks a different protocol version.
    VersionSkew {
        /// Version found on the wire.
        found: u32,
        /// Version this build speaks.
        expected: u32,
    },
    /// The frame kind field is not one this build knows.
    BadKind(u32),
    /// The frame checksum does not match: corruption in transit.
    ChecksumMismatch,
    /// The stream ended mid-frame (torn write or peer death).
    Truncated,
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversize {
        /// Declared payload length.
        len: u64,
        /// The cap it exceeded.
        max: u64,
    },
    /// The peer's scenario fingerprint does not match ours — the worker
    /// would evaluate under a different configuration and silently break
    /// the determinism contract.
    ScenarioMismatch {
        /// Fingerprint the peer reported.
        found: u64,
        /// Fingerprint this side expects.
        expected: u64,
    },
    /// A well-formed frame arrived where the protocol does not allow it,
    /// or its payload decoded inconsistently.
    Protocol(String),
    /// A worker reported an evaluation failure.
    Worker {
        /// Index of the node that failed.
        node: usize,
        /// The worker's error message.
        message: String,
    },
    /// Node deaths left fewer live nodes than the pool's configured
    /// minimum (`PoolOptions::min_live_nodes`); the batch cannot complete
    /// even with redispatch.
    NodesExhausted {
        /// Live nodes remaining after the losses.
        live: usize,
        /// The configured minimum.
        min: usize,
        /// The rendered error that killed the last node.
        last_error: String,
    },
}

impl ExecError {
    /// Whether this error means the connection to a node is gone — an
    /// I/O-class failure (timeout, peer hang-up, torn frame, transport
    /// I/O) that a fault-tolerant pool may recover from by marking the
    /// node dead and redispatching its unfinished jobs. Protocol- and
    /// configuration-class errors (version skew, scenario mismatch, a
    /// worker-reported evaluation failure, malformed frames from a *live*
    /// peer) return `false`: retrying cannot fix those, so they stay
    /// fatal.
    pub fn is_node_loss(&self) -> bool {
        matches!(
            self,
            ExecError::Connect(_)
                | ExecError::Io(_)
                | ExecError::Timeout(_)
                | ExecError::PeerClosed
                | ExecError::Truncated
        )
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Connect(e) => write!(f, "node connect failed: {e}"),
            ExecError::Io(e) => write!(f, "node transport I/O error: {e}"),
            ExecError::Timeout(what) => write!(f, "node transport timed out: {what}"),
            ExecError::PeerClosed => write!(f, "peer closed the connection"),
            ExecError::BadMagic => write!(f, "not a node-protocol frame (bad magic)"),
            ExecError::VersionSkew { found, expected } => {
                write!(
                    f,
                    "peer speaks protocol v{found}, this build speaks v{expected}"
                )
            }
            ExecError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            ExecError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            ExecError::Truncated => write!(f, "frame truncated (short read)"),
            ExecError::Oversize { len, max } => {
                write!(f, "frame payload length {len} exceeds the {max}-byte cap")
            }
            ExecError::ScenarioMismatch { found, expected } => write!(
                f,
                "worker scenario fingerprint {found:#018x} does not match client {expected:#018x}"
            ),
            ExecError::Protocol(why) => write!(f, "node protocol violation: {why}"),
            ExecError::Worker { node, message } => {
                write!(f, "node {node} evaluation failed: {message}")
            }
            ExecError::NodesExhausted {
                live,
                min,
                last_error,
            } => write!(
                f,
                "node pool degraded to {live} live node(s), below the configured minimum \
                 of {min} (last node loss: {last_error})"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<WireError> for ExecError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Truncated => ExecError::Truncated,
            WireError::Corrupt(why) => ExecError::Protocol(why),
        }
    }
}

impl From<std::io::Error> for ExecError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                ExecError::Timeout(e.to_string())
            }
            std::io::ErrorKind::UnexpectedEof => ExecError::Truncated,
            _ => ExecError::Io(e.to_string()),
        }
    }
}

/// Encodes one frame: header, payload, trailing checksum over everything
/// before it.
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len() + 8);
    out.extend_from_slice(FRAME_MAGIC);
    out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    out.extend_from_slice(&(kind as u32).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let checksum = wire::fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Parses and validates one complete frame from a byte buffer.
///
/// Validation order mirrors `h2o_ckpt::decode_file`: magic → whole-frame
/// checksum → version → kind → payload length consistency. Because the
/// checksum covers the header too, *any* single corrupted byte is caught
/// as [`ExecError::BadMagic`] or [`ExecError::ChecksumMismatch`] (the
/// robustness suite flips every byte and asserts exactly that).
///
/// # Errors
///
/// Any of the frame-shaped [`ExecError`] variants; never panics.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, ExecError> {
    if bytes.len() < FRAME_HEADER_LEN + 8 {
        return Err(ExecError::Truncated);
    }
    if &bytes[..8] != FRAME_MAGIC {
        return Err(ExecError::BadMagic);
    }
    let (content, checksum_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = wire::read_u64_le(checksum_bytes)?;
    if wire::fnv1a(content) != stored {
        return Err(ExecError::ChecksumMismatch);
    }
    let version = wire::read_u32_le(&content[8..12])?;
    if version != PROTOCOL_VERSION {
        return Err(ExecError::VersionSkew {
            found: version,
            expected: PROTOCOL_VERSION,
        });
    }
    let kind_raw = wire::read_u32_le(&content[12..16])?;
    let kind = FrameKind::from_u32(kind_raw).ok_or(ExecError::BadKind(kind_raw))?;
    let payload_len = wire::read_u64_le(&content[16..24])?;
    if payload_len > MAX_PAYLOAD {
        return Err(ExecError::Oversize {
            len: payload_len,
            max: MAX_PAYLOAD,
        });
    }
    let payload = &content[FRAME_HEADER_LEN..];
    if payload_len != payload.len() as u64 {
        return Err(ExecError::Protocol(format!(
            "declared payload length {payload_len}, found {}",
            payload.len()
        )));
    }
    Ok(Frame {
        kind,
        payload: payload.to_vec(),
    })
}

/// Reads one frame from a byte stream.
///
/// A clean EOF *before the first header byte* is [`ExecError::PeerClosed`]
/// (the peer hung up at a frame boundary — normal shutdown); EOF anywhere
/// inside a frame is [`ExecError::Truncated`] (a torn write or mid-frame
/// peer death). The header's magic and length are validated *before* the
/// payload is read, so a corrupt length can never make the reader block
/// forever waiting for bytes that will not come: it fails typed, and the
/// transport's read timeout bounds every blocking `read` underneath.
///
/// # Errors
///
/// Any frame-shaped [`ExecError`]; I/O failures map through
/// [`From<std::io::Error>`] (timeouts become [`ExecError::Timeout`]).
pub fn read_frame<R: Read + ?Sized>(r: &mut R) -> Result<Frame, ExecError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    read_exact_or(r, &mut header, true)?;
    if &header[..8] != FRAME_MAGIC {
        return Err(ExecError::BadMagic);
    }
    let payload_len = wire::read_u64_le(&header[16..24])?;
    if payload_len > MAX_PAYLOAD {
        return Err(ExecError::Oversize {
            len: payload_len,
            max: MAX_PAYLOAD,
        });
    }
    let mut rest = vec![0u8; payload_len as usize + 8];
    read_exact_or(r, &mut rest, false)?;
    let mut bytes = Vec::with_capacity(header.len() + rest.len());
    bytes.extend_from_slice(&header);
    bytes.extend_from_slice(&rest);
    decode_frame(&bytes)
}

/// `read_exact` with the frame layer's EOF semantics: EOF on the very
/// first byte is [`ExecError::PeerClosed`] when `at_boundary`, otherwise —
/// and for EOF anywhere later — [`ExecError::Truncated`].
fn read_exact_or<R: Read + ?Sized>(
    r: &mut R,
    buf: &mut [u8],
    at_boundary: bool,
) -> Result<(), ExecError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_boundary && filled == 0 {
                    ExecError::PeerClosed
                } else {
                    ExecError::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Writes one frame to a byte stream.
///
/// # Errors
///
/// [`ExecError::Io`] / [`ExecError::Timeout`] from the underlying writer.
pub fn write_frame<W: std::io::Write + ?Sized>(
    w: &mut W,
    kind: FrameKind,
    payload: &[u8],
) -> Result<(), ExecError> {
    let bytes = encode_frame(kind, payload);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let bytes = encode_frame(FrameKind::Job, b"payload bytes");
        let frame = decode_frame(&bytes).unwrap();
        assert_eq!(frame.kind, FrameKind::Job);
        assert_eq!(frame.payload, b"payload bytes");
    }

    #[test]
    fn empty_payload_round_trips() {
        let bytes = encode_frame(FrameKind::Shutdown, b"");
        let frame = decode_frame(&bytes).unwrap();
        assert_eq!(frame.kind, FrameKind::Shutdown);
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn stream_reader_matches_buffer_decoder() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_frame(FrameKind::Hello, &[1, 2, 3]));
        stream.extend_from_slice(&encode_frame(FrameKind::Result, &[4; 100]));
        let mut cursor = std::io::Cursor::new(stream);
        assert_eq!(read_frame(&mut cursor).unwrap().kind, FrameKind::Hello);
        assert_eq!(read_frame(&mut cursor).unwrap().payload, vec![4; 100]);
        // Clean EOF at a frame boundary is PeerClosed, not Truncated.
        assert_eq!(read_frame(&mut cursor), Err(ExecError::PeerClosed));
    }

    #[test]
    fn mid_frame_eof_is_truncated() {
        let bytes = encode_frame(FrameKind::Job, b"abcdef");
        for cut in [1, FRAME_HEADER_LEN - 1, FRAME_HEADER_LEN, bytes.len() - 1] {
            let mut cursor = std::io::Cursor::new(bytes[..cut].to_vec());
            assert_eq!(
                read_frame(&mut cursor),
                Err(ExecError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversize_length_is_rejected_before_allocation() {
        let mut bytes = encode_frame(FrameKind::Job, b"x");
        bytes[16..24].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let mut cursor = std::io::Cursor::new(bytes.clone());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ExecError::Oversize { .. })
        ));
    }
}
