//! Property tests for the checkpoint file format: arbitrary snapshots
//! round-trip bit-exactly through encode/decode, and arbitrary corruption
//! never slips past validation.

use h2o_ckpt::{decode_file, encode_file, CkptError};
use h2o_core::{EvalResult, EvaluatedCandidate, Policy, ResumeState, RewardBaseline, StepRecord};
use proptest::prelude::*;

/// Builds a `ResumeState` from plain generated parts (logits per decision,
/// float payloads via bit patterns so NaNs and infinities are covered too).
#[allow(clippy::type_complexity)]
fn state_from(
    steps_done: usize,
    logits: Vec<Vec<u64>>,
    baseline_bits: u64,
    initialized: bool,
    history_bits: Vec<(u64, u64, u64)>,
    candidates: Vec<(Vec<u64>, u64, Vec<u64>)>,
    supernet: Option<Vec<u8>>,
) -> ResumeState {
    ResumeState {
        steps_done,
        policy: Policy::from_logits(
            logits
                .into_iter()
                .map(|row| row.into_iter().map(f64::from_bits).collect())
                .collect(),
        ),
        baseline: RewardBaseline::from_parts(f64::from_bits(baseline_bits), 0.9, initialized),
        history: history_bits
            .into_iter()
            .enumerate()
            .map(|(i, (mean, best, entropy))| StepRecord {
                step: i,
                mean_reward: f64::from_bits(mean),
                best_reward: f64::from_bits(best),
                entropy: f64::from_bits(entropy),
                step_time_ms: i as f64,
            })
            .collect(),
        evaluated: candidates
            .into_iter()
            .map(|(sample, quality, perf)| EvaluatedCandidate {
                sample: sample.into_iter().map(|c| c as usize).collect(),
                result: EvalResult {
                    quality: f64::from_bits(quality),
                    perf_values: perf.into_iter().map(f64::from_bits).collect(),
                },
                reward: f64::from_bits(quality ^ 1),
            })
            .collect(),
        supernet_state: supernet,
    }
}

// The vendored proptest only samples numeric ranges, tuples, and vectors,
// so richer shapes are built from those: bools from `0..2`, `Option` from a
// (discriminant, payload) pair, and raw bytes from `0u64..256`.
const BITS: std::ops::Range<u64> = 0u64..u64::MAX;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    fn arbitrary_snapshots_round_trip_bit_exactly(
        steps_done in 0usize..10_000,
        logits in prop::collection::vec(prop::collection::vec(BITS, 1..6), 1..5),
        baseline_bits in BITS,
        initialized in 0usize..2,
        history in prop::collection::vec((BITS, BITS, BITS), 0..8),
        candidates in prop::collection::vec(
            (prop::collection::vec(0u64..64, 0..5), BITS,
             prop::collection::vec(BITS, 0..3)),
            0..6,
        ),
        supernet in (0usize..2, prop::collection::vec(0u64..256, 0..64)),
        fingerprint in BITS,
    ) {
        let (has_supernet, supernet_bytes) = supernet;
        let supernet = (has_supernet == 1)
            .then(|| supernet_bytes.into_iter().map(|b| b as u8).collect());
        let state = state_from(
            steps_done, logits, baseline_bits, initialized == 1, history, candidates, supernet,
        );
        let bytes = encode_file(&state.as_snapshot(), fingerprint);
        let back = decode_file(&bytes, fingerprint).expect("well-formed file decodes");
        // Bit-level equality: compare a re-encoding, which is sensitive to
        // every stored bit (including NaN payloads PartialEq would miss).
        prop_assert_eq!(encode_file(&back.as_snapshot(), fingerprint), bytes);
    }

    fn corruption_never_slips_past_validation(
        steps_done in 0usize..100,
        logits in prop::collection::vec(prop::collection::vec(BITS, 1..4), 1..3),
        offset in 0usize..1_000_000,
        flip in 1u64..256,
    ) {
        let state = state_from(steps_done, logits, 0, false, vec![], vec![], None);
        let mut bytes = encode_file(&state.as_snapshot(), 42);
        let i = offset % bytes.len();
        bytes[i] ^= flip as u8;
        // Any single-byte corruption must be caught by the magic or the
        // whole-file checksum — never decoded into a different state.
        let err = decode_file(&bytes, 42).expect_err("corruption detected");
        prop_assert!(
            matches!(err, CkptError::ChecksumMismatch | CkptError::BadMagic),
            "unexpected error {:?}", err
        );
    }
}
