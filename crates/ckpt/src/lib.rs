//! # h2o-ckpt — crash-safe checkpoints for H2O-NAS searches
//!
//! Long searches (the paper's production runs span days across pods) must
//! survive preemption. This crate provides the durable half of the
//! checkpoint/resume contract defined in `h2o-core`:
//!
//! * a **versioned binary format** with a magic header, format version,
//!   config fingerprint, and an FNV-1a checksum over the whole file —
//!   corrupt, truncated, or mismatched files are rejected with a typed
//!   [`CkptError`] instead of silently resuming a wrong trajectory;
//! * an **atomic [`CheckpointStore`]**: snapshots are written to a
//!   temporary file, fsynced, then renamed into place, so a crash mid-write
//!   can never destroy the previous good checkpoint;
//! * a **[`FileCheckpointSink`]** implementing
//!   [`h2o_core::CheckpointSink`], plugging the store into
//!   `parallel_search_with` / `unified_search_with` at a fixed step cadence.
//!
//! Floats are serialised via their IEEE-754 bit patterns, so a restored
//! search continues **bit-identically** — the determinism tests in the
//! workspace root assert interrupted+resumed runs equal uninterrupted ones
//! byte for byte.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use h2o_core::{CheckpointSink, Policy, ResumeState, RewardBaseline, SearchSnapshot};
use h2o_core::{EvalResult, EvaluatedCandidate, StepRecord};
use h2o_exec::wire::{self, Dec, Enc, WireError};
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// First 8 bytes of every checkpoint file.
const MAGIC: &[u8; 8] = b"H2OCKPT\0";
/// Current format version; bumped on any incompatible layout change.
pub const FORMAT_VERSION: u32 = 1;
/// Filename extension of finished checkpoints.
const EXT: &str = "h2o";

/// Everything that can go wrong saving or loading a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// Filesystem error (formatted `std::io::Error`).
    Io(String),
    /// The file does not start with the checkpoint magic — not a
    /// checkpoint at all.
    BadMagic,
    /// The file's format version is not the one this build reads.
    BadVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The whole-file checksum does not match: bit rot or a torn write.
    ChecksumMismatch,
    /// The checkpoint was written under a different search configuration
    /// (space shape, seed, shards, …) and must not seed this run.
    FingerprintMismatch {
        /// Fingerprint recorded in the file.
        found: u64,
        /// Fingerprint of the config attempting to resume.
        expected: u64,
    },
    /// The file ends before the declared content does.
    Truncated,
    /// The payload decoded inconsistently (bad lengths, trailing bytes).
    Corrupt(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CkptError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CkptError::BadVersion { found, expected } => {
                write!(
                    f,
                    "checkpoint format v{found}, this build reads v{expected}"
                )
            }
            CkptError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CkptError::FingerprintMismatch { found, expected } => write!(
                f,
                "checkpoint fingerprint {found:#018x} does not match search config {expected:#018x}"
            ),
            CkptError::Truncated => write!(f, "checkpoint file truncated"),
            CkptError::Corrupt(why) => write!(f, "checkpoint payload corrupt: {why}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e.to_string())
    }
}

impl From<WireError> for CkptError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Truncated => CkptError::Truncated,
            WireError::Corrupt(why) => CkptError::Corrupt(why),
        }
    }
}

// ---------------------------------------------------------------------------
// Payload codec: the shared `h2o_exec::wire` dialect (little-endian u64s,
// floats as IEEE-754 bits so the round trip is bit-exact) — the same codec
// the node transport's frames use, so checkpoints and the distributed
// protocol can never drift apart byte-wise.
// ---------------------------------------------------------------------------

fn read_u64_le(chunk: &[u8]) -> Result<u64, CkptError> {
    Ok(wire::read_u64_le(chunk)?)
}

fn read_u32_le(chunk: &[u8]) -> Result<u32, CkptError> {
    Ok(wire::read_u32_le(chunk)?)
}

fn encode_payload(snapshot: &SearchSnapshot<'_>) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(snapshot.steps_done as u64);
    // Policy logits.
    let logits = snapshot.policy.logits();
    e.u64(logits.len() as u64);
    for decision in logits {
        e.u64(decision.len() as u64);
        for &l in decision {
            e.f64(l);
        }
    }
    // Reward baseline.
    e.f64(snapshot.baseline.value());
    e.f64(snapshot.baseline.momentum());
    e.u64(snapshot.baseline.initialized() as u64);
    // Step history.
    e.u64(snapshot.history.len() as u64);
    for r in snapshot.history {
        e.u64(r.step as u64);
        e.f64(r.mean_reward);
        e.f64(r.best_reward);
        e.f64(r.entropy);
        e.f64(r.step_time_ms);
    }
    // Evaluated candidates.
    e.u64(snapshot.evaluated.len() as u64);
    for c in snapshot.evaluated {
        e.u64(c.sample.len() as u64);
        for &choice in &c.sample {
            e.u64(choice as u64);
        }
        e.f64(c.result.quality);
        e.u64(c.result.perf_values.len() as u64);
        for &p in &c.result.perf_values {
            e.f64(p);
        }
        e.f64(c.reward);
    }
    // Supernet shared weights (one-shot loops).
    match snapshot.supernet_state {
        Some(state) => {
            e.u64(1);
            e.bytes(state);
        }
        None => e.u64(0),
    }
    e.into_vec()
}

fn decode_payload(payload: &[u8]) -> Result<ResumeState, CkptError> {
    let mut d = Dec::new(payload);
    let steps_done = d.u64()? as usize;
    let num_decisions = d.len("policy decisions")?;
    if num_decisions == 0 {
        return Err(CkptError::Corrupt("policy has no decisions".into()));
    }
    let mut logits = Vec::with_capacity(num_decisions);
    for _ in 0..num_decisions {
        let choices = d.len("decision logits")?;
        if choices == 0 {
            return Err(CkptError::Corrupt("decision has no choices".into()));
        }
        let mut row = Vec::with_capacity(choices);
        for _ in 0..choices {
            row.push(d.f64()?);
        }
        logits.push(row);
    }
    let policy = Policy::from_logits(logits);
    let value = d.f64()?;
    let momentum = d.f64()?;
    if !(0.0..1.0).contains(&momentum) {
        return Err(CkptError::Corrupt(format!(
            "baseline momentum {momentum} outside [0, 1)"
        )));
    }
    let initialized = match d.u64()? {
        0 => false,
        1 => true,
        other => {
            return Err(CkptError::Corrupt(format!(
                "baseline initialized flag {other} is not 0/1"
            )))
        }
    };
    let baseline = RewardBaseline::from_parts(value, momentum, initialized);
    let n_history = d.len("history")?;
    let mut history = Vec::with_capacity(n_history);
    for _ in 0..n_history {
        history.push(StepRecord {
            step: d.u64()? as usize,
            mean_reward: d.f64()?,
            best_reward: d.f64()?,
            entropy: d.f64()?,
            step_time_ms: d.f64()?,
        });
    }
    let n_evaluated = d.len("evaluated candidates")?;
    let mut evaluated = Vec::with_capacity(n_evaluated);
    for _ in 0..n_evaluated {
        let n_sample = d.len("arch sample")?;
        let mut sample = Vec::with_capacity(n_sample);
        for _ in 0..n_sample {
            sample.push(d.u64()? as usize);
        }
        let quality = d.f64()?;
        let n_perf = d.len("perf values")?;
        let mut perf_values = Vec::with_capacity(n_perf);
        for _ in 0..n_perf {
            perf_values.push(d.f64()?);
        }
        let reward = d.f64()?;
        evaluated.push(EvaluatedCandidate {
            sample,
            result: EvalResult {
                quality,
                perf_values,
            },
            reward,
        });
    }
    let supernet_state = match d.u64()? {
        0 => None,
        1 => Some(d.bytes_vec()?),
        other => {
            return Err(CkptError::Corrupt(format!(
                "supernet presence flag {other} is not 0/1"
            )))
        }
    };
    d.finish()?;
    Ok(ResumeState {
        steps_done,
        policy,
        baseline,
        history,
        evaluated,
        supernet_state,
    })
}

// ---------------------------------------------------------------------------
// File framing.
// ---------------------------------------------------------------------------

/// Encodes a whole checkpoint file:
/// `MAGIC | version u32 | fingerprint u64 | payload_len u64 | payload |
/// fnv1a-checksum u64` — all integers little-endian, the checksum covering
/// every preceding byte.
fn encode_file_with_version(
    snapshot: &SearchSnapshot<'_>,
    fingerprint: u64,
    version: u32,
) -> Vec<u8> {
    let payload = encode_payload(snapshot);
    let mut out = Vec::with_capacity(MAGIC.len() + 28 + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let checksum = wire::fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Serialises a snapshot into checkpoint-file bytes (current format
/// version), stamped with the config `fingerprint`.
pub fn encode_file(snapshot: &SearchSnapshot<'_>, fingerprint: u64) -> Vec<u8> {
    encode_file_with_version(snapshot, fingerprint, FORMAT_VERSION)
}

/// Parses and validates checkpoint-file bytes.
///
/// Validation order: magic → whole-file checksum → format version →
/// fingerprint → payload length → payload decode. The fingerprint must
/// equal `expected_fingerprint` ([`CkptError::FingerprintMismatch`]
/// otherwise) — resuming under a different search config would silently
/// produce a trajectory neither run ever had.
///
/// # Errors
///
/// Any [`CkptError`] variant except `Io`.
pub fn decode_file(bytes: &[u8], expected_fingerprint: u64) -> Result<ResumeState, CkptError> {
    // Fixed overhead: magic(8) + version(4) + fingerprint(8) + len(8) +
    // checksum(8).
    const HEADER: usize = 8 + 4 + 8 + 8;
    if bytes.len() < HEADER + 8 {
        return Err(CkptError::Truncated);
    }
    if &bytes[..8] != MAGIC {
        return Err(CkptError::BadMagic);
    }
    let (content, checksum_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = read_u64_le(checksum_bytes)?;
    if wire::fnv1a(content) != stored {
        return Err(CkptError::ChecksumMismatch);
    }
    let version = read_u32_le(&content[8..12])?;
    if version != FORMAT_VERSION {
        return Err(CkptError::BadVersion {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let fingerprint = read_u64_le(&content[12..20])?;
    if fingerprint != expected_fingerprint {
        return Err(CkptError::FingerprintMismatch {
            found: fingerprint,
            expected: expected_fingerprint,
        });
    }
    let payload_len = read_u64_le(&content[20..28])?;
    let payload = &content[28..];
    if payload_len != payload.len() as u64 {
        return Err(CkptError::Corrupt(format!(
            "declared payload length {payload_len}, found {}",
            payload.len()
        )));
    }
    decode_payload(payload)
}

// ---------------------------------------------------------------------------
// Durable store.
// ---------------------------------------------------------------------------

/// A directory of checkpoints for one search run, all stamped with the same
/// config fingerprint.
///
/// Writes are atomic: the file is assembled under a `.tmp` name, fsynced,
/// then renamed to `ckpt-<steps>.h2o`. A crash at any point leaves either
/// the old set of checkpoints or the old set plus one complete new file —
/// never a torn file under a final name.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    fingerprint: u64,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory for a search whose
    /// config fingerprints to `fingerprint`.
    ///
    /// # Errors
    ///
    /// [`CkptError::Io`] if the directory cannot be created.
    pub fn new(dir: impl Into<PathBuf>, fingerprint: u64) -> Result<Self, CkptError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir, fingerprint })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The config fingerprint stamped on every file.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Final path of the checkpoint taken after `steps_done` steps.
    pub fn path_for(&self, steps_done: usize) -> PathBuf {
        self.dir.join(format!("ckpt-{steps_done:08}.{EXT}"))
    }

    /// Atomically writes a snapshot; returns the final path.
    ///
    /// # Errors
    ///
    /// [`CkptError::Io`] on any filesystem failure (the `.tmp` file is left
    /// behind for post-mortem only if the rename itself failed).
    pub fn save(&self, snapshot: &SearchSnapshot<'_>) -> Result<PathBuf, CkptError> {
        let span = h2o_obs::span("ckpt_save");
        let bytes = encode_file(snapshot, self.fingerprint);
        let final_path = self.path_for(snapshot.steps_done);
        let tmp_path = final_path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(&bytes)?;
            // Data must be on disk before the rename publishes the file.
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        // Best-effort directory fsync so the rename itself survives a
        // crash; not all platforms allow opening a directory for sync.
        if let Ok(d) = fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        h2o_obs::counter("h2o_ckpt_snapshots_written_total").inc();
        h2o_obs::counter("h2o_ckpt_bytes_written_total").add(bytes.len() as u64);
        span.finish();
        Ok(final_path)
    }

    /// The highest `steps_done` among complete checkpoints in the
    /// directory, or `None` if there are none.
    ///
    /// # Errors
    ///
    /// [`CkptError::Io`] if the directory cannot be read.
    pub fn latest_step(&self) -> Result<Option<usize>, CkptError> {
        let mut latest = None;
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name
                .strip_prefix("ckpt-")
                .and_then(|s| s.strip_suffix(&format!(".{EXT}")))
            else {
                continue;
            };
            if let Ok(steps) = stem.parse::<usize>() {
                latest = Some(latest.map_or(steps, |l: usize| l.max(steps)));
            }
        }
        Ok(latest)
    }

    /// Loads and validates the checkpoint taken after `steps_done` steps.
    ///
    /// # Errors
    ///
    /// Any [`CkptError`]: missing file, corruption, version or fingerprint
    /// mismatch.
    pub fn load(&self, steps_done: usize) -> Result<ResumeState, CkptError> {
        let span = h2o_obs::span("ckpt_load");
        let bytes = fs::read(self.path_for(steps_done))?;
        let state = decode_file(&bytes, self.fingerprint)?;
        h2o_obs::counter("h2o_ckpt_restores_total").inc();
        span.finish();
        Ok(state)
    }

    /// Loads the most recent checkpoint, or `None` if the directory holds
    /// none.
    ///
    /// # Errors
    ///
    /// As for [`CheckpointStore::load`].
    pub fn load_latest(&self) -> Result<Option<ResumeState>, CkptError> {
        match self.latest_step()? {
            Some(steps) => Ok(Some(self.load(steps)?)),
            None => Ok(None),
        }
    }
}

/// A [`CheckpointSink`] that persists every `every`-th completed step into
/// a [`CheckpointStore`].
#[derive(Debug)]
pub struct FileCheckpointSink {
    store: CheckpointStore,
    every: usize,
}

impl FileCheckpointSink {
    /// Snapshots after every `every` completed steps (so step counts
    /// `every, 2·every, …`).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn new(store: CheckpointStore, every: usize) -> Self {
        assert!(every > 0, "checkpoint cadence must be at least 1 step");
        Self { store, every }
    }

    /// The underlying store.
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }
}

impl CheckpointSink for FileCheckpointSink {
    fn should_checkpoint(&self, steps_done: usize) -> bool {
        steps_done > 0 && steps_done.is_multiple_of(self.every)
    }

    fn on_checkpoint(&mut self, snapshot: &SearchSnapshot<'_>) -> Result<(), String> {
        self.store
            .save(snapshot)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> ResumeState {
        ResumeState {
            steps_done: 12,
            policy: Policy::from_logits(vec![vec![0.25, -1.5, 3.0], vec![0.0, 42.5]]),
            baseline: RewardBaseline::from_parts(-0.125, 0.9, true),
            history: vec![
                StepRecord {
                    step: 0,
                    mean_reward: -1.0,
                    best_reward: -0.5,
                    entropy: 1.09,
                    step_time_ms: 3.25,
                },
                StepRecord {
                    step: 11,
                    mean_reward: 0.75,
                    best_reward: 1.5,
                    entropy: 0.4,
                    step_time_ms: 2.0,
                },
            ],
            evaluated: vec![EvaluatedCandidate {
                sample: vec![2, 1],
                result: EvalResult {
                    quality: 0.875,
                    perf_values: vec![1e6, 2.5],
                },
                reward: -0.25,
            }],
            supernet_state: Some(vec![7, 0, 255, 3]),
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("h2o_ckpt_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn bytes_round_trip_bit_exactly() {
        let state = sample_state();
        let bytes = encode_file(&state.as_snapshot(), 0xDEAD_BEEF);
        let back = decode_file(&bytes, 0xDEAD_BEEF).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn no_supernet_state_round_trips() {
        let mut state = sample_state();
        state.supernet_state = None;
        let bytes = encode_file(&state.as_snapshot(), 1);
        assert_eq!(decode_file(&bytes, 1).unwrap(), state);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let state = sample_state();
        let bytes = encode_file(&state.as_snapshot(), 5);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let err = decode_file(&bad, 5).expect_err("flip must be rejected");
            assert!(
                matches!(err, CkptError::ChecksumMismatch | CkptError::BadMagic),
                "byte {i}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let state = sample_state();
        let bytes = encode_file(&state.as_snapshot(), 5);
        for cut in [0, 7, 20, bytes.len() - 1] {
            let err = decode_file(&bytes[..cut], 5).expect_err("truncation must be rejected");
            assert!(
                matches!(err, CkptError::Truncated | CkptError::ChecksumMismatch),
                "cut {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let state = sample_state();
        let bytes = encode_file_with_version(&state.as_snapshot(), 5, FORMAT_VERSION + 1);
        assert_eq!(
            decode_file(&bytes, 5),
            Err(CkptError::BadVersion {
                found: FORMAT_VERSION + 1,
                expected: FORMAT_VERSION,
            })
        );
    }

    #[test]
    fn wrong_fingerprint_is_rejected() {
        let state = sample_state();
        let bytes = encode_file(&state.as_snapshot(), 5);
        assert_eq!(
            decode_file(&bytes, 6),
            Err(CkptError::FingerprintMismatch {
                found: 5,
                expected: 6,
            })
        );
    }

    #[test]
    fn store_round_trips_and_leaves_no_tmp_files() {
        let dir = temp_dir("store");
        let store = CheckpointStore::new(&dir, 99).unwrap();
        let state = sample_state();
        let path = store.save(&state.as_snapshot()).unwrap();
        assert!(path.ends_with("ckpt-00000012.h2o"));
        assert_eq!(store.load(12).unwrap(), state);
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .and_then(|x| x.to_str())
                    == Some("tmp")
            })
            .collect();
        assert!(leftovers.is_empty(), "no temp files may survive a save");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_latest_picks_the_highest_step() {
        let dir = temp_dir("latest");
        let store = CheckpointStore::new(&dir, 7).unwrap();
        for steps in [4, 12, 8] {
            let mut state = sample_state();
            state.steps_done = steps;
            store.save(&state.as_snapshot()).unwrap();
        }
        assert_eq!(store.latest_step().unwrap(), Some(12));
        assert_eq!(store.load_latest().unwrap().unwrap().steps_done, 12);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_store_has_no_latest() {
        let dir = temp_dir("empty");
        let store = CheckpointStore::new(&dir, 7).unwrap();
        assert_eq!(store.latest_step().unwrap(), None);
        assert!(store.load_latest().unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sink_checkpoints_on_the_requested_cadence() {
        let dir = temp_dir("sink");
        let store = CheckpointStore::new(&dir, 7).unwrap();
        let sink = FileCheckpointSink::new(store, 4);
        assert!(!sink.should_checkpoint(0), "never before the first step");
        assert!(!sink.should_checkpoint(3));
        assert!(sink.should_checkpoint(4));
        assert!(!sink.should_checkpoint(5));
        assert!(sink.should_checkpoint(8));
        let _ = fs::remove_dir_all(&dir);
    }
}
