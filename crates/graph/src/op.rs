//! Operator kinds and their hardware-relevant cost accounting.
//!
//! Every operator knows how to report an [`OpCost`]: FLOPs, bytes moved,
//! vector-unit work, network traffic and parameter count. The hardware
//! simulator (`h2o-hwsim`) converts these into time via a roofline model
//! (§6.2.3 of the paper: "walks through a TensorFlow/HLO graph, simulates
//! run-time of each operator").

use serde::{Deserialize, Serialize};

/// Numeric element type of a tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DType {
    /// 16-bit brain float — the TPU matrix-unit native type.
    #[default]
    Bf16,
    /// 32-bit IEEE float.
    F32,
    /// 32-bit integer (embedding indices).
    I32,
}

impl DType {
    /// Size of one element in bytes.
    pub fn bytes(self) -> usize {
        match self {
            DType::Bf16 => 2,
            DType::F32 => 4,
            DType::I32 => 4,
        }
    }
}

/// Aggregate hardware cost of one operator instance.
///
/// All quantities are totals for the operator at its configured batch size.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OpCost {
    /// Matrix/tensor-unit floating-point operations (multiply-adds × 2).
    pub flops: f64,
    /// Bytes read from memory (activations + weights).
    pub bytes_read: f64,
    /// Bytes written to memory.
    pub bytes_written: f64,
    /// Bytes of weights among `bytes_read` (eligible for on-chip caching).
    pub weight_bytes: f64,
    /// Vector-processing-unit scalar operations (activations, norms, ...).
    pub vpu_ops: f64,
    /// Bytes crossing the inter-chip interconnect (all-to-all / all-reduce).
    pub network_bytes: f64,
    /// Trainable parameter count.
    pub params: f64,
}

impl OpCost {
    /// Total bytes moved through the memory system.
    pub fn total_bytes(&self) -> f64 {
        self.bytes_read + self.bytes_written
    }

    /// Operational intensity in FLOPs per byte (the roofline x-axis).
    /// Returns 0 for pure-memory ops.
    pub fn operational_intensity(&self) -> f64 {
        let b = self.total_bytes();
        if b <= 0.0 {
            0.0
        } else {
            self.flops / b
        }
    }

    /// Element-wise sum of two costs.
    pub fn combine(&self, other: &OpCost) -> OpCost {
        OpCost {
            flops: self.flops + other.flops,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            weight_bytes: self.weight_bytes + other.weight_bytes,
            vpu_ops: self.vpu_ops + other.vpu_ops,
            network_bytes: self.network_bytes + other.network_bytes,
            params: self.params + other.params,
        }
    }
}

/// The operator vocabulary of the IR.
///
/// Shapes are given per *batch element* where a `batch` field exists; the
/// cost methods multiply batch in. Dimensions are in elements, not bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// Dense matrix product `(m×k) · (k×n)`, with the `k×n` operand being
    /// trainable weights (an MLP or projection layer).
    MatMul {
        /// Rows of the left operand (usually batch × sequence).
        m: usize,
        /// Contraction dimension.
        k: usize,
        /// Columns of the weight operand.
        n: usize,
    },
    /// Batched matrix product with *no* trainable weights (attention
    /// `QKᵀ` / `AV` products).
    BatchedMatMul {
        /// Number of independent products (batch × heads).
        batches: usize,
        /// Rows per product.
        m: usize,
        /// Contraction dimension.
        k: usize,
        /// Columns per product.
        n: usize,
    },
    /// 2-D convolution in NHWC layout.
    Conv2d {
        /// Batch size.
        batch: usize,
        /// Input spatial height.
        h: usize,
        /// Input spatial width.
        w: usize,
        /// Input channels.
        c_in: usize,
        /// Output channels.
        c_out: usize,
        /// Kernel height.
        kh: usize,
        /// Kernel width.
        kw: usize,
        /// Spatial stride.
        stride: usize,
    },
    /// Depthwise 2-D convolution (one filter per channel).
    DepthwiseConv2d {
        /// Batch size.
        batch: usize,
        /// Input spatial height.
        h: usize,
        /// Input spatial width.
        w: usize,
        /// Channels.
        c: usize,
        /// Kernel height.
        kh: usize,
        /// Kernel width.
        kw: usize,
        /// Spatial stride.
        stride: usize,
    },
    /// Embedding-bag lookup: `lookups` row gathers of width `width`, summed.
    /// Memory- and network-bound; runs outside the matrix units (§5.1.1).
    EmbeddingLookup {
        /// Total number of row gathers across the batch.
        lookups: usize,
        /// Embedding width (columns per row).
        width: usize,
        /// Table rows (contributes to params, not to per-step traffic).
        vocab: usize,
    },
    /// Element-wise map (activation, bias add, batch-norm apply, ...).
    Elementwise {
        /// Total elements processed.
        elems: usize,
        /// VPU scalar ops per element (see
        /// `h2o_tensor::Activation::vpu_ops_per_element` for typical values).
        ops_per_elem: f64,
        /// Human-readable label, e.g. `"swish"`.
        label: String,
    },
    /// Spatial pooling (average/max); vector-unit work plus memory traffic.
    Pool {
        /// Batch size.
        batch: usize,
        /// Input spatial height.
        h: usize,
        /// Input spatial width.
        w: usize,
        /// Channels.
        c: usize,
        /// Pooling window (window × window).
        window: usize,
    },
    /// Concatenation along the feature axis — pure memory traffic.
    Concat {
        /// Total elements in the concatenated output.
        elems: usize,
    },
    /// Cross-chip all-to-all (distributed embedding exchange in DLRM).
    AllToAll {
        /// Bytes each chip sends (== receives) per step.
        bytes_per_chip: f64,
    },
    /// Cross-chip all-reduce (gradient synchronisation).
    AllReduce {
        /// Bytes reduced per chip per step.
        bytes_per_chip: f64,
    },
    /// Data reformatting (space-to-depth, space-to-batch, reshape-copy) —
    /// pure memory traffic, used by the CNN search space's tensor-reshaping
    /// dimension (Table 5).
    Reshape {
        /// Total elements copied.
        elems: usize,
    },
}

impl OpKind {
    /// Short lowercase operator label for reports.
    pub fn label(&self) -> &str {
        match self {
            OpKind::MatMul { .. } => "matmul",
            OpKind::BatchedMatMul { .. } => "batched_matmul",
            OpKind::Conv2d { .. } => "conv2d",
            OpKind::DepthwiseConv2d { .. } => "depthwise_conv2d",
            OpKind::EmbeddingLookup { .. } => "embedding_lookup",
            OpKind::Elementwise { label, .. } => label,
            OpKind::Pool { .. } => "pool",
            OpKind::Concat { .. } => "concat",
            OpKind::AllToAll { .. } => "all_to_all",
            OpKind::AllReduce { .. } => "all_reduce",
            OpKind::Reshape { .. } => "reshape",
        }
    }

    /// Whether this operator runs on the matrix units (MXU / tensor cores).
    pub fn uses_matrix_unit(&self) -> bool {
        matches!(
            self,
            OpKind::MatMul { .. } | OpKind::BatchedMatMul { .. } | OpKind::Conv2d { .. }
        )
    }

    /// Computes the operator's cost at the given element type.
    pub fn cost(&self, dtype: DType) -> OpCost {
        let eb = dtype.bytes() as f64;
        match *self {
            OpKind::MatMul { m, k, n } => {
                let (m, k, n) = (m as f64, k as f64, n as f64);
                OpCost {
                    flops: 2.0 * m * k * n,
                    bytes_read: (m * k + k * n) * eb,
                    bytes_written: m * n * eb,
                    weight_bytes: k * n * eb,
                    params: k * n + n,
                    ..OpCost::default()
                }
            }
            OpKind::BatchedMatMul { batches, m, k, n } => {
                let (b, m, k, n) = (batches as f64, m as f64, k as f64, n as f64);
                OpCost {
                    flops: 2.0 * b * m * k * n,
                    bytes_read: b * (m * k + k * n) * eb,
                    bytes_written: b * m * n * eb,
                    ..OpCost::default()
                }
            }
            OpKind::Conv2d {
                batch,
                h,
                w,
                c_in,
                c_out,
                kh,
                kw,
                stride,
            } => {
                let (ho, wo) = (h.div_ceil(stride) as f64, w.div_ceil(stride) as f64);
                let (b, ci, co, kh_f, kw_f) = (
                    batch as f64,
                    c_in as f64,
                    c_out as f64,
                    kh as f64,
                    kw as f64,
                );
                let weight = kh_f * kw_f * ci * co;
                OpCost {
                    flops: 2.0 * b * ho * wo * co * ci * kh_f * kw_f,
                    bytes_read: (b * h as f64 * w as f64 * ci + weight) * eb,
                    bytes_written: b * ho * wo * co * eb,
                    weight_bytes: weight * eb,
                    params: weight + co,
                    ..OpCost::default()
                }
            }
            OpKind::DepthwiseConv2d {
                batch,
                h,
                w,
                c,
                kh,
                kw,
                stride,
            } => {
                let (ho, wo) = (h.div_ceil(stride) as f64, w.div_ceil(stride) as f64);
                let (b, c_f, kh_f, kw_f) = (batch as f64, c as f64, kh as f64, kw as f64);
                let weight = kh_f * kw_f * c_f;
                OpCost {
                    // Depthwise convs have no channel contraction: they run on
                    // the vector units on TPUs, hence counted as vpu_ops too.
                    flops: 2.0 * b * ho * wo * c_f * kh_f * kw_f,
                    bytes_read: (b * h as f64 * w as f64 * c_f + weight) * eb,
                    bytes_written: b * ho * wo * c_f * eb,
                    weight_bytes: weight * eb,
                    vpu_ops: 2.0 * b * ho * wo * c_f * kh_f * kw_f,
                    params: weight + c_f,
                    ..OpCost::default()
                }
            }
            OpKind::EmbeddingLookup {
                lookups,
                width,
                vocab,
            } => {
                let (l, w) = (lookups as f64, width as f64);
                OpCost {
                    flops: 0.0,
                    bytes_read: l * w * eb,
                    bytes_written: l * w * eb,
                    vpu_ops: l * w, // pooling adds
                    params: vocab as f64 * w,
                    ..OpCost::default()
                }
            }
            OpKind::Elementwise {
                elems,
                ops_per_elem,
                ..
            } => {
                let e = elems as f64;
                OpCost {
                    bytes_read: e * eb,
                    bytes_written: e * eb,
                    vpu_ops: e * ops_per_elem,
                    ..OpCost::default()
                }
            }
            OpKind::Pool {
                batch,
                h,
                w,
                c,
                window,
            } => {
                let e = (batch * h * w * c) as f64;
                let out = e / (window * window) as f64;
                OpCost {
                    bytes_read: e * eb,
                    bytes_written: out * eb,
                    vpu_ops: e,
                    ..OpCost::default()
                }
            }
            OpKind::Concat { elems } => {
                let e = elems as f64;
                OpCost {
                    bytes_read: e * eb,
                    bytes_written: e * eb,
                    ..OpCost::default()
                }
            }
            OpKind::AllToAll { bytes_per_chip } => OpCost {
                network_bytes: bytes_per_chip,
                ..OpCost::default()
            },
            OpKind::AllReduce { bytes_per_chip } => OpCost {
                // Ring all-reduce moves ~2× the payload over the links.
                network_bytes: 2.0 * bytes_per_chip,
                ..OpCost::default()
            },
            OpKind::Reshape { elems } => {
                let e = elems as f64;
                OpCost {
                    bytes_read: e * eb,
                    bytes_written: e * eb,
                    ..OpCost::default()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_flops_formula() {
        let c = OpKind::MatMul { m: 8, k: 16, n: 4 }.cost(DType::Bf16);
        assert_eq!(c.flops, 2.0 * 8.0 * 16.0 * 4.0);
        assert_eq!(c.params, 16.0 * 4.0 + 4.0);
        assert_eq!(c.weight_bytes, 16.0 * 4.0 * 2.0);
    }

    #[test]
    fn conv_flops_and_params() {
        let c = OpKind::Conv2d {
            batch: 1,
            h: 32,
            w: 32,
            c_in: 16,
            c_out: 32,
            kh: 3,
            kw: 3,
            stride: 1,
        }
        .cost(DType::Bf16);
        assert_eq!(c.flops, 2.0 * 32.0 * 32.0 * 32.0 * 16.0 * 9.0);
        assert_eq!(c.params, 9.0 * 16.0 * 32.0 + 32.0);
    }

    #[test]
    fn conv_stride_reduces_output_and_flops() {
        let mk = |stride| {
            OpKind::Conv2d {
                batch: 1,
                h: 32,
                w: 32,
                c_in: 8,
                c_out: 8,
                kh: 3,
                kw: 3,
                stride,
            }
            .cost(DType::Bf16)
        };
        assert!((mk(2).flops - mk(1).flops / 4.0).abs() < 1.0);
    }

    #[test]
    fn depthwise_much_cheaper_than_full_conv() {
        let full = OpKind::Conv2d {
            batch: 1,
            h: 16,
            w: 16,
            c_in: 64,
            c_out: 64,
            kh: 3,
            kw: 3,
            stride: 1,
        }
        .cost(DType::Bf16);
        let dw = OpKind::DepthwiseConv2d {
            batch: 1,
            h: 16,
            w: 16,
            c: 64,
            kh: 3,
            kw: 3,
            stride: 1,
        }
        .cost(DType::Bf16);
        assert!(dw.flops * 32.0 < full.flops);
    }

    #[test]
    fn depthwise_has_lower_operational_intensity_than_conv() {
        // The core hardware insight behind Fused-MBConv (Fig. 4b).
        let full = OpKind::Conv2d {
            batch: 1,
            h: 16,
            w: 16,
            c_in: 64,
            c_out: 64,
            kh: 3,
            kw: 3,
            stride: 1,
        }
        .cost(DType::Bf16);
        let dw = OpKind::DepthwiseConv2d {
            batch: 1,
            h: 16,
            w: 16,
            c: 64,
            kh: 3,
            kw: 3,
            stride: 1,
        }
        .cost(DType::Bf16);
        assert!(dw.operational_intensity() < full.operational_intensity());
    }

    #[test]
    fn embedding_is_pure_memory() {
        let c = OpKind::EmbeddingLookup {
            lookups: 100,
            width: 64,
            vocab: 1000,
        }
        .cost(DType::F32);
        assert_eq!(c.flops, 0.0);
        assert!(c.bytes_read > 0.0);
        assert_eq!(c.params, 64_000.0);
    }

    #[test]
    fn elementwise_costs_scale_with_ops_per_elem() {
        let relu = OpKind::Elementwise {
            elems: 100,
            ops_per_elem: 1.0,
            label: "relu".into(),
        }
        .cost(DType::Bf16);
        let gelu = OpKind::Elementwise {
            elems: 100,
            ops_per_elem: 14.0,
            label: "gelu".into(),
        }
        .cost(DType::Bf16);
        assert_eq!(gelu.vpu_ops, 14.0 * relu.vpu_ops);
        assert_eq!(gelu.bytes_read, relu.bytes_read);
    }

    #[test]
    fn allreduce_doubles_payload() {
        let c = OpKind::AllReduce {
            bytes_per_chip: 100.0,
        }
        .cost(DType::Bf16);
        assert_eq!(c.network_bytes, 200.0);
    }

    #[test]
    fn operational_intensity_zero_for_no_bytes() {
        let c = OpCost::default();
        assert_eq!(c.operational_intensity(), 0.0);
    }

    #[test]
    fn combine_adds_fields() {
        let a = OpKind::MatMul { m: 2, k: 2, n: 2 }.cost(DType::Bf16);
        let b = a.combine(&a);
        assert_eq!(b.flops, 2.0 * a.flops);
        assert_eq!(b.params, 2.0 * a.params);
    }

    #[test]
    fn dtype_bytes() {
        assert_eq!(DType::Bf16.bytes(), 2);
        assert_eq!(DType::F32.bytes(), 4);
        assert_eq!(DType::I32.bytes(), 4);
    }

    #[test]
    fn matrix_unit_classification() {
        assert!(OpKind::MatMul { m: 1, k: 1, n: 1 }.uses_matrix_unit());
        assert!(!OpKind::EmbeddingLookup {
            lookups: 1,
            width: 1,
            vocab: 1
        }
        .uses_matrix_unit());
        assert!(!OpKind::DepthwiseConv2d {
            batch: 1,
            h: 1,
            w: 1,
            c: 1,
            kh: 1,
            kw: 1,
            stride: 1
        }
        .uses_matrix_unit());
    }
}
