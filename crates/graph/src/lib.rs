//! # h2o-graph — HLO-like operator graph IR for H2O-NAS
//!
//! The intermediate representation the hardware simulator consumes
//! (§6.2.3 of the paper: the in-house simulator takes "a TensorFlow graph
//! or a high level operation (HLO) graph of the target ML model" and walks
//! it op by op). This crate provides:
//!
//! * [`OpKind`] / [`OpCost`] — the operator vocabulary with FLOPs / bytes /
//!   VPU / network / parameter accounting.
//! * [`Graph`] — a DAG with topological construction, an XLA-style
//!   elementwise-fusion pass, and critical-path analysis (independent
//!   branches overlap, giving DLRM's `max(embedding, MLP)` step time).
//! * [`blocks`] — reusable macro-block builders: MBConv and Fused-MBConv
//!   (Fig. 4a), transformer encoder blocks, and MLP stacks, each exposing
//!   the searchable knobs of Table 5.
//!
//! # Examples
//!
//! ```
//! use h2o_graph::{Graph, DType, blocks::{MbConvConfig, mbconv}};
//! use h2o_graph::OpKind;
//!
//! let mut g = Graph::new("one-block", DType::Bf16);
//! let input = g.add(OpKind::Reshape { elems: 1 }, &[]);
//! let cfg = MbConvConfig::square(56, 64, 8);
//! mbconv(&mut g, &cfg, input);
//! g.fuse_elementwise();
//! assert!(g.total_flops() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod blocks;
mod graph;
mod op;
pub mod text;

pub use graph::{Graph, Node, NodeId};
pub use op::{DType, OpCost, OpKind};
