//! The operator DAG, its builder, and graph-level analyses.
//!
//! A [`Graph`] is the unit the hardware simulator consumes: it walks the
//! nodes in topological order, assigns each a simulated run time, and takes
//! the longest weighted path through the DAG as the model's execution time
//! (§6.2.3: "sums the total run-time on the critical path"). Independent
//! branches — e.g. DLRM's embedding side vs. its bottom-MLP side — therefore
//! overlap, reproducing the paper's
//! `step time = MAX(embedding time, MLP time)` behaviour (Fig. 8).

use crate::op::{DType, OpCost, OpKind};
use serde::{Deserialize, Serialize};

/// Identifier of a node within its [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// One operator instance in the DAG.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Identifier (index into [`Graph::nodes`]).
    pub id: NodeId,
    /// The operator.
    pub kind: OpKind,
    /// Producer nodes this operator consumes.
    pub inputs: Vec<NodeId>,
    /// Set by the fusion pass: a fused elementwise op reads its input from
    /// registers/accumulators, so its memory traffic is elided.
    pub fused: bool,
}

/// An operator DAG with cost accounting.
///
/// # Examples
///
/// ```
/// use h2o_graph::{Graph, OpKind, DType};
///
/// let mut g = Graph::new("tiny", DType::Bf16);
/// let a = g.add(OpKind::MatMul { m: 8, k: 8, n: 8 }, &[]);
/// let _ = g.add(
///     OpKind::Elementwise { elems: 64, ops_per_elem: 1.0, label: "relu".into() },
///     &[a],
/// );
/// assert_eq!(g.len(), 2);
/// assert!(g.total_cost().flops > 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    name: String,
    dtype: DType,
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>, dtype: DType) -> Self {
        Self {
            name: name.into(),
            dtype,
            nodes: Vec::new(),
        }
    }

    /// Graph name (model identifier in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Element type used for byte accounting.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes in insertion (= topological) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node lookup.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Appends an operator whose inputs must already exist, returning its id.
    ///
    /// Insertion order is required to be a valid topological order (inputs
    /// before consumers), which this method enforces.
    ///
    /// # Panics
    ///
    /// Panics if an input id is not yet in the graph.
    pub fn add(&mut self, kind: OpKind, inputs: &[NodeId]) -> NodeId {
        let id = NodeId(self.nodes.len());
        for &input in inputs {
            assert!(input.0 < self.nodes.len(), "input {input:?} not yet added");
        }
        self.nodes.push(Node {
            id,
            kind,
            inputs: inputs.to_vec(),
            fused: false,
        });
        id
    }

    /// Appends every node of `other` (a reusable sub-graph), wiring its
    /// sources to `attach` and returning the ids of `other`'s sinks.
    pub fn append_subgraph(&mut self, other: &Graph, attach: &[NodeId]) -> Vec<NodeId> {
        let offset = self.nodes.len();
        let mut has_consumer = vec![false; other.nodes.len()];
        for node in &other.nodes {
            for input in &node.inputs {
                has_consumer[input.0] = true;
            }
        }
        for node in &other.nodes {
            let inputs: Vec<NodeId> = if node.inputs.is_empty() {
                attach.to_vec()
            } else {
                node.inputs.iter().map(|i| NodeId(i.0 + offset)).collect()
            };
            self.add(node.kind.clone(), &inputs);
        }
        (0..other.nodes.len())
            .filter(|&i| !has_consumer[i])
            .map(|i| NodeId(i + offset))
            .collect()
    }

    /// Sets a node's fused flag directly (used by the textual-format parser;
    /// prefer [`Graph::fuse_elementwise`] for the analysis pass).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn set_fused(&mut self, id: NodeId, fused: bool) {
        self.nodes[id.0].fused = fused;
    }

    /// Cost of one node, honouring its `fused` flag (fused elementwise ops
    /// keep their VPU work but lose their memory traffic).
    pub fn node_cost(&self, id: NodeId) -> OpCost {
        let node = &self.nodes[id.0];
        let mut cost = node.kind.cost(self.dtype);
        if node.fused {
            cost.bytes_read = 0.0;
            cost.bytes_written = 0.0;
        }
        cost
    }

    /// Sum of all node costs.
    pub fn total_cost(&self) -> OpCost {
        let mut total = OpCost::default();
        for node in &self.nodes {
            total = total.combine(&self.node_cost(node.id));
        }
        total
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> f64 {
        self.total_cost().params
    }

    /// Total matrix-unit FLOPs (the "FLOPs" column of the paper's tables).
    pub fn total_flops(&self) -> f64 {
        self.total_cost().flops
    }

    /// XLA-style producer-consumer fusion: an [`OpKind::Elementwise`],
    /// [`OpKind::Reshape`] or [`OpKind::Concat`] node whose single producer
    /// has no other consumer is marked `fused`, eliding its memory
    /// round-trip. Returns the number of newly fused nodes.
    ///
    /// The paper's simulator "simulates compiler optimizations such as
    /// op/layer fusion" when fed TensorFlow graphs; this pass is that
    /// optimisation.
    pub fn fuse_elementwise(&mut self) -> usize {
        let mut consumer_count = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            for input in &node.inputs {
                consumer_count[input.0] += 1;
            }
        }
        let mut fused = 0;
        for i in 0..self.nodes.len() {
            let fusible = matches!(
                self.nodes[i].kind,
                OpKind::Elementwise { .. } | OpKind::Reshape { .. } | OpKind::Concat { .. }
            );
            if !fusible || self.nodes[i].fused {
                continue;
            }
            if self.nodes[i].inputs.len() == 1 && consumer_count[self.nodes[i].inputs[0].0] == 1 {
                self.nodes[i].fused = true;
                fused += 1;
            }
        }
        fused
    }

    /// Longest weighted path through the DAG, where `node_time` gives each
    /// node's duration. Nodes with no inputs start at t = 0; independent
    /// branches overlap. This is the critical-path execution time of
    /// §6.2.3.
    ///
    /// # Panics
    ///
    /// Panics if `node_time` returns a negative duration.
    pub fn critical_path_time(&self, mut node_time: impl FnMut(NodeId) -> f64) -> f64 {
        let mut finish = vec![0.0f64; self.nodes.len()];
        let mut max_finish = 0.0f64;
        for node in &self.nodes {
            let t = node_time(node.id);
            assert!(t >= 0.0, "negative node time for {:?}", node.id);
            let start = node
                .inputs
                .iter()
                .map(|i| finish[i.0])
                .fold(0.0f64, f64::max);
            finish[node.id.0] = start + t;
            max_finish = max_finish.max(finish[node.id.0]);
        }
        max_finish
    }

    /// Per-branch finish times of the graph's sink nodes, labelled by op.
    /// Useful for Fig. 8-style embedding-vs-MLP breakdowns.
    pub fn sink_finish_times(
        &self,
        mut node_time: impl FnMut(NodeId) -> f64,
    ) -> Vec<(NodeId, f64)> {
        let mut finish = vec![0.0f64; self.nodes.len()];
        let mut has_consumer = vec![false; self.nodes.len()];
        for node in &self.nodes {
            let t = node_time(node.id);
            let start = node
                .inputs
                .iter()
                .map(|i| finish[i.0])
                .fold(0.0f64, f64::max);
            finish[node.id.0] = start + t;
            for input in &node.inputs {
                has_consumer[input.0] = true;
            }
        }
        self.nodes
            .iter()
            .filter(|n| !has_consumer[n.id.0])
            .map(|n| (n.id, finish[n.id.0]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ew(elems: usize) -> OpKind {
        OpKind::Elementwise {
            elems,
            ops_per_elem: 1.0,
            label: "relu".into(),
        }
    }

    #[test]
    fn add_enforces_topological_order() {
        let mut g = Graph::new("t", DType::Bf16);
        let a = g.add(OpKind::MatMul { m: 1, k: 1, n: 1 }, &[]);
        let b = g.add(ew(1), &[a]);
        assert_eq!(b, NodeId(1));
    }

    #[test]
    #[should_panic(expected = "not yet added")]
    fn add_rejects_forward_reference() {
        let mut g = Graph::new("t", DType::Bf16);
        g.add(ew(1), &[NodeId(5)]);
    }

    #[test]
    fn total_cost_sums_nodes() {
        let mut g = Graph::new("t", DType::Bf16);
        let a = g.add(OpKind::MatMul { m: 2, k: 2, n: 2 }, &[]);
        g.add(OpKind::MatMul { m: 2, k: 2, n: 2 }, &[a]);
        assert_eq!(g.total_flops(), 2.0 * 16.0);
    }

    #[test]
    fn fusion_elides_memory_but_keeps_vpu() {
        let mut g = Graph::new("t", DType::Bf16);
        let a = g.add(OpKind::MatMul { m: 4, k: 4, n: 4 }, &[]);
        let e = g.add(ew(16), &[a]);
        let before = g.node_cost(e);
        assert_eq!(g.fuse_elementwise(), 1);
        let after = g.node_cost(e);
        assert_eq!(after.bytes_read, 0.0);
        assert_eq!(after.bytes_written, 0.0);
        assert_eq!(after.vpu_ops, before.vpu_ops);
    }

    #[test]
    fn fusion_skips_multi_consumer_producers() {
        let mut g = Graph::new("t", DType::Bf16);
        let a = g.add(OpKind::MatMul { m: 4, k: 4, n: 4 }, &[]);
        let _e1 = g.add(ew(16), &[a]);
        let _e2 = g.add(ew(16), &[a]); // `a` now has two consumers
        assert_eq!(g.fuse_elementwise(), 0);
    }

    #[test]
    fn fusion_skips_multi_input_elementwise() {
        let mut g = Graph::new("t", DType::Bf16);
        let a = g.add(OpKind::MatMul { m: 4, k: 4, n: 4 }, &[]);
        let b = g.add(OpKind::MatMul { m: 4, k: 4, n: 4 }, &[]);
        let _c = g.add(OpKind::Concat { elems: 32 }, &[a, b]);
        assert_eq!(g.fuse_elementwise(), 0);
    }

    #[test]
    fn critical_path_takes_max_of_parallel_branches() {
        // a --> c, b --> c: time(c) starts after max(a, b).
        let mut g = Graph::new("t", DType::Bf16);
        let a = g.add(ew(1), &[]);
        let b = g.add(ew(2), &[]);
        let c = g.add(OpKind::Concat { elems: 3 }, &[a, b]);
        let time = |id: NodeId| match id {
            i if i == a => 5.0,
            i if i == b => 9.0,
            i if i == c => 1.0,
            other => panic!("critical_path_time queried unknown node {other:?}"),
        };
        assert_eq!(g.critical_path_time(time), 10.0);
    }

    #[test]
    fn critical_path_serial_chain_sums() {
        let mut g = Graph::new("t", DType::Bf16);
        let a = g.add(ew(1), &[]);
        let b = g.add(ew(1), &[a]);
        let _c = g.add(ew(1), &[b]);
        assert_eq!(g.critical_path_time(|_| 2.0), 6.0);
    }

    #[test]
    fn sink_finish_times_reports_all_sinks() {
        let mut g = Graph::new("t", DType::Bf16);
        let _a = g.add(ew(1), &[]);
        let _b = g.add(ew(1), &[]);
        let sinks = g.sink_finish_times(|_| 1.0);
        assert_eq!(sinks.len(), 2);
    }

    #[test]
    fn append_subgraph_rewires_sources_and_returns_sinks() {
        let mut sub = Graph::new("sub", DType::Bf16);
        let s0 = sub.add(OpKind::MatMul { m: 1, k: 1, n: 1 }, &[]);
        sub.add(ew(1), &[s0]);

        let mut g = Graph::new("main", DType::Bf16);
        let root = g.add(ew(1), &[]);
        let sinks = g.append_subgraph(&sub, &[root]);
        assert_eq!(sinks.len(), 1);
        assert_eq!(g.len(), 3);
        // The subgraph's source must now consume `root`.
        assert_eq!(g.node(NodeId(1)).inputs, vec![root]);
    }

    #[test]
    fn empty_graph_critical_path_is_zero() {
        let g = Graph::new("t", DType::Bf16);
        assert_eq!(g.critical_path_time(|_| 1.0), 0.0);
        assert!(g.is_empty());
    }
}
