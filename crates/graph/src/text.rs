//! A textual HLO-like serialisation of operator graphs.
//!
//! §6.2.3: the paper's simulator accepts "a TensorFlow graph or a high
//! level operation (HLO) graph of the target ML model" as input. This
//! module gives the reproduction the same interface: [`to_text`] dumps a
//! [`Graph`] into a stable, human-readable format and [`parse`] reads it
//! back, so models can be exchanged with external tools (and the `h2o`
//! CLI can simulate graphs from files).
//!
//! Format example:
//!
//! ```text
//! graph "dlrm" dtype=f32 {
//!   %0 = reshape(elems=16384)
//!   %1 = matmul(m=64, k=256, n=512) inputs=[%0]
//!   %2 = elementwise(elems=32768, ops_per_elem=1, label="relu") inputs=[%1] fused
//! }
//! ```

use crate::graph::{Graph, NodeId};
use crate::op::{DType, OpKind};
use std::fmt::Write as _;

/// Serialises a graph to the textual HLO-like format.
pub fn to_text(graph: &Graph) -> String {
    let dtype = match graph.dtype() {
        DType::Bf16 => "bf16",
        DType::F32 => "f32",
        DType::I32 => "i32",
    };
    let mut out = String::new();
    let _ = writeln!(out, "graph {:?} dtype={dtype} {{", graph.name());
    for node in graph.nodes() {
        let _ = write!(out, "  %{} = ", node.id.0);
        match &node.kind {
            OpKind::MatMul { m, k, n } => {
                let _ = write!(out, "matmul(m={m}, k={k}, n={n})");
            }
            OpKind::BatchedMatMul { batches, m, k, n } => {
                let _ = write!(
                    out,
                    "batched_matmul(batches={batches}, m={m}, k={k}, n={n})"
                );
            }
            OpKind::Conv2d {
                batch,
                h,
                w,
                c_in,
                c_out,
                kh,
                kw,
                stride,
            } => {
                let _ = write!(
                    out,
                    "conv2d(batch={batch}, h={h}, w={w}, c_in={c_in}, c_out={c_out}, kh={kh}, kw={kw}, stride={stride})"
                );
            }
            OpKind::DepthwiseConv2d {
                batch,
                h,
                w,
                c,
                kh,
                kw,
                stride,
            } => {
                let _ = write!(
                    out,
                    "depthwise_conv2d(batch={batch}, h={h}, w={w}, c={c}, kh={kh}, kw={kw}, stride={stride})"
                );
            }
            OpKind::EmbeddingLookup {
                lookups,
                width,
                vocab,
            } => {
                let _ = write!(
                    out,
                    "embedding_lookup(lookups={lookups}, width={width}, vocab={vocab})"
                );
            }
            OpKind::Elementwise {
                elems,
                ops_per_elem,
                label,
            } => {
                let _ = write!(
                    out,
                    "elementwise(elems={elems}, ops_per_elem={ops_per_elem}, label={label:?})"
                );
            }
            OpKind::Pool {
                batch,
                h,
                w,
                c,
                window,
            } => {
                let _ = write!(
                    out,
                    "pool(batch={batch}, h={h}, w={w}, c={c}, window={window})"
                );
            }
            OpKind::Concat { elems } => {
                let _ = write!(out, "concat(elems={elems})");
            }
            OpKind::AllToAll { bytes_per_chip } => {
                let _ = write!(out, "all_to_all(bytes_per_chip={bytes_per_chip})");
            }
            OpKind::AllReduce { bytes_per_chip } => {
                let _ = write!(out, "all_reduce(bytes_per_chip={bytes_per_chip})");
            }
            OpKind::Reshape { elems } => {
                let _ = write!(out, "reshape(elems={elems})");
            }
        }
        if !node.inputs.is_empty() {
            let refs: Vec<String> = node.inputs.iter().map(|i| format!("%{}", i.0)).collect();
            let _ = write!(out, " inputs=[{}]", refs.join(", "));
        }
        if node.fused {
            let _ = write!(out, " fused");
        }
        let _ = writeln!(out);
    }
    out.push_str("}\n");
    out
}

/// A parse failure with its line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGraphError {
    /// 1-based line of the offending text.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseGraphError {}

fn err(line: usize, message: impl Into<String>) -> ParseGraphError {
    ParseGraphError {
        line,
        message: message.into(),
    }
}

/// Splits `key=value` argument lists, respecting quoted strings.
fn parse_args(body: &str, line: usize) -> Result<Vec<(String, String)>, ParseGraphError> {
    let mut args = Vec::new();
    let mut depth_quote = false;
    let mut current = String::new();
    let mut parts = Vec::new();
    for ch in body.chars() {
        match ch {
            '"' => {
                depth_quote = !depth_quote;
                current.push(ch);
            }
            ',' if !depth_quote => {
                parts.push(std::mem::take(&mut current));
            }
            _ => current.push(ch),
        }
    }
    if !current.trim().is_empty() {
        parts.push(current);
    }
    for part in parts {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| err(line, format!("expected key=value, got '{part}'")))?;
        args.push((key.trim().to_string(), value.trim().to_string()));
    }
    Ok(args)
}

struct ArgMap {
    args: Vec<(String, String)>,
    line: usize,
}

impl ArgMap {
    fn get(&self, key: &str) -> Result<&str, ParseGraphError> {
        self.args
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| err(self.line, format!("missing argument '{key}'")))
    }

    fn usize(&self, key: &str) -> Result<usize, ParseGraphError> {
        self.get(key)?
            .parse()
            .map_err(|_| err(self.line, format!("argument '{key}' is not an integer")))
    }

    fn f64(&self, key: &str) -> Result<f64, ParseGraphError> {
        self.get(key)?
            .parse()
            .map_err(|_| err(self.line, format!("argument '{key}' is not a number")))
    }

    fn string(&self, key: &str) -> Result<String, ParseGraphError> {
        let raw = self.get(key)?;
        Ok(raw.trim_matches('"').to_string())
    }
}

/// Parses the textual format back into a [`Graph`].
///
/// # Errors
///
/// Returns a [`ParseGraphError`] with the offending line on any syntax or
/// referential problem (unknown op, forward reference, bad argument).
pub fn parse(text: &str) -> Result<Graph, ParseGraphError> {
    let mut lines = text.lines().enumerate();
    // Header: graph "name" dtype=<d> {
    let (header_idx, header) = lines
        .by_ref()
        .find(|(_, l)| !l.trim().is_empty())
        .ok_or_else(|| err(1, "empty input"))?;
    let header_line = header_idx + 1;
    let header = header.trim();
    let rest = header
        .strip_prefix("graph ")
        .ok_or_else(|| err(header_line, "expected 'graph \"name\" dtype=... {'"))?;
    let (name, rest) = {
        let rest = rest.trim_start();
        if !rest.starts_with('"') {
            return Err(err(header_line, "graph name must be quoted"));
        }
        let end = rest[1..]
            .find('"')
            .ok_or_else(|| err(header_line, "unterminated graph name"))?;
        (rest[1..1 + end].to_string(), &rest[end + 2..])
    };
    let rest = rest.trim();
    let dtype_str = rest
        .strip_prefix("dtype=")
        .and_then(|r| r.strip_suffix('{'))
        .ok_or_else(|| err(header_line, "expected dtype=<d> {"))?
        .trim();
    let dtype = match dtype_str {
        "bf16" => DType::Bf16,
        "f32" => DType::F32,
        "i32" => DType::I32,
        other => return Err(err(header_line, format!("unknown dtype '{other}'"))),
    };
    let mut graph = Graph::new(name, dtype);

    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if line == "}" {
            return Ok(graph);
        }
        // %<id> = <op>(<args>) [inputs=[..]] [fused]
        let (lhs, rhs) = line
            .split_once('=')
            .ok_or_else(|| err(line_no, "expected '%id = op(...)'"))?;
        let expect_id: usize = lhs
            .trim()
            .strip_prefix('%')
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err(line_no, "node id must look like %N"))?;
        if expect_id != graph.len() {
            return Err(err(
                line_no,
                format!("node ids must be dense; expected %{}", graph.len()),
            ));
        }
        let rhs = rhs.trim();
        let open = rhs
            .find('(')
            .ok_or_else(|| err(line_no, "expected op(...)"))?;
        let close = rhs
            .rfind(')')
            .ok_or_else(|| err(line_no, "unterminated argument list"))?;
        let op_name = rhs[..open].trim();
        let args = ArgMap {
            args: parse_args(&rhs[open + 1..close], line_no)?,
            line: line_no,
        };
        let tail = rhs[close + 1..].trim();
        let (inputs, fused) = {
            let mut inputs = Vec::new();
            let mut fused = false;
            let mut tail = tail;
            if let Some(rest) = tail.strip_prefix("inputs=[") {
                let end = rest
                    .find(']')
                    .ok_or_else(|| err(line_no, "unterminated inputs"))?;
                for part in rest[..end].split(',') {
                    let part = part.trim();
                    if part.is_empty() {
                        continue;
                    }
                    let id: usize = part
                        .strip_prefix('%')
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err(line_no, format!("bad input ref '{part}'")))?;
                    if id >= graph.len() {
                        return Err(err(line_no, format!("forward reference %{id}")));
                    }
                    inputs.push(NodeId(id));
                }
                tail = rest[end + 1..].trim();
            }
            if tail == "fused" {
                fused = true;
            } else if !tail.is_empty() {
                return Err(err(line_no, format!("unexpected trailing '{tail}'")));
            }
            (inputs, fused)
        };
        let kind = match op_name {
            "matmul" => OpKind::MatMul {
                m: args.usize("m")?,
                k: args.usize("k")?,
                n: args.usize("n")?,
            },
            "batched_matmul" => OpKind::BatchedMatMul {
                batches: args.usize("batches")?,
                m: args.usize("m")?,
                k: args.usize("k")?,
                n: args.usize("n")?,
            },
            "conv2d" => OpKind::Conv2d {
                batch: args.usize("batch")?,
                h: args.usize("h")?,
                w: args.usize("w")?,
                c_in: args.usize("c_in")?,
                c_out: args.usize("c_out")?,
                kh: args.usize("kh")?,
                kw: args.usize("kw")?,
                stride: args.usize("stride")?,
            },
            "depthwise_conv2d" => OpKind::DepthwiseConv2d {
                batch: args.usize("batch")?,
                h: args.usize("h")?,
                w: args.usize("w")?,
                c: args.usize("c")?,
                kh: args.usize("kh")?,
                kw: args.usize("kw")?,
                stride: args.usize("stride")?,
            },
            "embedding_lookup" => OpKind::EmbeddingLookup {
                lookups: args.usize("lookups")?,
                width: args.usize("width")?,
                vocab: args.usize("vocab")?,
            },
            "elementwise" => OpKind::Elementwise {
                elems: args.usize("elems")?,
                ops_per_elem: args.f64("ops_per_elem")?,
                label: args.string("label")?,
            },
            "pool" => OpKind::Pool {
                batch: args.usize("batch")?,
                h: args.usize("h")?,
                w: args.usize("w")?,
                c: args.usize("c")?,
                window: args.usize("window")?,
            },
            "concat" => OpKind::Concat {
                elems: args.usize("elems")?,
            },
            "all_to_all" => OpKind::AllToAll {
                bytes_per_chip: args.f64("bytes_per_chip")?,
            },
            "all_reduce" => OpKind::AllReduce {
                bytes_per_chip: args.f64("bytes_per_chip")?,
            },
            "reshape" => OpKind::Reshape {
                elems: args.usize("elems")?,
            },
            other => return Err(err(line_no, format!("unknown op '{other}'"))),
        };
        let id = graph.add(kind, &inputs);
        if fused {
            graph.set_fused(id, true);
        }
    }
    Err(err(text.lines().count(), "missing closing '}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> Graph {
        let mut g = Graph::new("sample", DType::Bf16);
        let a = g.add(OpKind::Reshape { elems: 128 }, &[]);
        let b = g.add(OpKind::MatMul { m: 8, k: 16, n: 4 }, &[a]);
        let c = g.add(
            OpKind::Elementwise {
                elems: 32,
                ops_per_elem: 10.0,
                label: "swish".into(),
            },
            &[b],
        );
        g.add(OpKind::Concat { elems: 64 }, &[b, c]);
        g.fuse_elementwise();
        g
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = sample_graph();
        let text = to_text(&g);
        let parsed = parse(&text).expect("parse");
        assert_eq!(parsed.name(), g.name());
        assert_eq!(parsed.dtype(), g.dtype());
        assert_eq!(parsed.len(), g.len());
        assert_eq!(parsed.total_cost(), g.total_cost());
        for (a, b) in g.nodes().iter().zip(parsed.nodes()) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.inputs, b.inputs);
            assert_eq!(a.fused, b.fused);
        }
    }

    #[test]
    fn roundtrip_all_op_kinds() {
        let mut g = Graph::new("all", DType::F32);
        let a = g.add(OpKind::Reshape { elems: 1 }, &[]);
        let b = g.add(
            OpKind::Conv2d {
                batch: 1,
                h: 8,
                w: 8,
                c_in: 3,
                c_out: 4,
                kh: 3,
                kw: 3,
                stride: 2,
            },
            &[a],
        );
        let c = g.add(
            OpKind::DepthwiseConv2d {
                batch: 1,
                h: 4,
                w: 4,
                c: 4,
                kh: 3,
                kw: 3,
                stride: 1,
            },
            &[b],
        );
        let d = g.add(
            OpKind::BatchedMatMul {
                batches: 2,
                m: 4,
                k: 4,
                n: 4,
            },
            &[c],
        );
        let e = g.add(
            OpKind::Pool {
                batch: 1,
                h: 4,
                w: 4,
                c: 4,
                window: 2,
            },
            &[d],
        );
        let f = g.add(
            OpKind::EmbeddingLookup {
                lookups: 10,
                width: 8,
                vocab: 100,
            },
            &[],
        );
        let h = g.add(
            OpKind::AllToAll {
                bytes_per_chip: 123.5,
            },
            &[f],
        );
        let i = g.add(
            OpKind::AllReduce {
                bytes_per_chip: 64.0,
            },
            &[e],
        );
        g.add(OpKind::Concat { elems: 10 }, &[h, i]);
        let parsed = parse(&to_text(&g)).expect("parse");
        assert_eq!(parsed.len(), g.len());
        assert_eq!(parsed.total_cost(), g.total_cost());
    }

    #[test]
    fn parse_rejects_forward_reference() {
        let text = "graph \"x\" dtype=bf16 {\n  %0 = concat(elems=1) inputs=[%1]\n}\n";
        let e = parse(text).unwrap_err();
        assert!(e.message.contains("forward reference"), "{e}");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn parse_rejects_unknown_op() {
        let text = "graph \"x\" dtype=bf16 {\n  %0 = frobnicate(elems=1)\n}\n";
        assert!(parse(text).unwrap_err().message.contains("unknown op"));
    }

    #[test]
    fn parse_rejects_missing_argument() {
        let text = "graph \"x\" dtype=bf16 {\n  %0 = matmul(m=1, k=2)\n}\n";
        assert!(parse(text)
            .unwrap_err()
            .message
            .contains("missing argument 'n'"));
    }

    #[test]
    fn parse_rejects_sparse_ids() {
        let text = "graph \"x\" dtype=bf16 {\n  %5 = reshape(elems=1)\n}\n";
        assert!(parse(text).unwrap_err().message.contains("dense"));
    }

    #[test]
    fn parse_rejects_missing_brace() {
        let text = "graph \"x\" dtype=bf16 {\n  %0 = reshape(elems=1)\n";
        assert!(parse(text).unwrap_err().message.contains("missing closing"));
    }

    #[test]
    fn labels_with_commas_survive() {
        let mut g = Graph::new("q", DType::Bf16);
        g.add(
            OpKind::Elementwise {
                elems: 4,
                ops_per_elem: 1.0,
                label: "a,b".into(),
            },
            &[],
        );
        let parsed = parse(&to_text(&g)).expect("parse");
        assert_eq!(parsed.node(NodeId(0)).kind.label(), "a,b");
    }

    #[test]
    fn coatnet_graph_roundtrips_through_text() {
        // A realistically large model survives the format.
        let g = {
            let mut g = Graph::new("big", DType::Bf16);
            let mut prev = g.add(
                OpKind::Reshape {
                    elems: 3 * 224 * 224,
                },
                &[],
            );
            for i in 0..50 {
                prev = g.add(
                    OpKind::MatMul {
                        m: 64,
                        k: 64 + i,
                        n: 64,
                    },
                    &[prev],
                );
            }
            g
        };
        let parsed = parse(&to_text(&g)).expect("parse");
        assert_eq!(parsed.len(), 51);
        assert_eq!(parsed.total_flops(), g.total_flops());
    }
}
