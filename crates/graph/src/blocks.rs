//! Reusable macro-block builders: MBConv, Fused-MBConv, transformer blocks
//! and DLRM layer groups.
//!
//! These are the composable units the H2O-NAS search spaces assemble
//! (Fig. 4a of the paper shows MBConv vs Fused-MBConv; Table 5 lists the
//! searchable knobs each block exposes).

use crate::graph::{Graph, NodeId};
use crate::op::OpKind;

/// Element-wise activation descriptor for graph construction: a label plus
/// its vector-unit cost per element. Mirrors
/// `h2o_tensor::Activation::vpu_ops_per_element` without coupling the IR to
/// the training crate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActDesc {
    /// Display label, e.g. `"swish"`.
    pub label: &'static str,
    /// VPU scalar operations per element.
    pub ops_per_elem: f64,
}

impl ActDesc {
    /// `max(0, x)`.
    pub const RELU: ActDesc = ActDesc {
        label: "relu",
        ops_per_elem: 1.0,
    };
    /// `x · sigmoid(x)`.
    pub const SWISH: ActDesc = ActDesc {
        label: "swish",
        ops_per_elem: 10.0,
    };
    /// Gaussian error linear unit.
    pub const GELU: ActDesc = ActDesc {
        label: "gelu",
        ops_per_elem: 14.0,
    };
    /// `max(0, x)²` — the CoAtNet-H activation (Table 3).
    pub const SQUARED_RELU: ActDesc = ActDesc {
        label: "squared_relu",
        ops_per_elem: 2.0,
    };
    /// Logistic sigmoid.
    pub const SIGMOID: ActDesc = ActDesc {
        label: "sigmoid",
        ops_per_elem: 8.0,
    };
}

/// Configuration of an (optionally fused) MBConv block — Fig. 4a.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MbConvConfig {
    /// Batch size.
    pub batch: usize,
    /// Input feature-map height.
    pub h: usize,
    /// Input feature-map width.
    pub w: usize,
    /// Input channel depth.
    pub c_in: usize,
    /// Output channel depth.
    pub c_out: usize,
    /// Expansion ratio of the inverted bottleneck (Table 5: 1, 3, 4, 6).
    pub expansion: usize,
    /// Depthwise (or fused) kernel size (Table 5: 3, 5, 7).
    pub kernel: usize,
    /// Spatial stride (Table 5: 1, 2, 4).
    pub stride: usize,
    /// Squeeze-and-excite ratio; 0.0 removes the SE layer (Table 5).
    pub se_ratio: f64,
    /// Activation between layers.
    pub act: ActDesc,
}

impl MbConvConfig {
    /// A canonical block used in tests and the Fig. 4 roofline bench:
    /// square feature map, equal in/out depth, expansion 6, 3×3 kernel.
    pub fn square(hw: usize, depth: usize, batch: usize) -> Self {
        Self {
            batch,
            h: hw,
            w: hw,
            c_in: depth,
            c_out: depth,
            expansion: 6,
            kernel: 3,
            stride: 1,
            se_ratio: 0.25,
            act: ActDesc::SWISH,
        }
    }

    fn out_hw(&self) -> (usize, usize) {
        (self.h.div_ceil(self.stride), self.w.div_ceil(self.stride))
    }
}

fn elementwise(g: &mut Graph, elems: usize, act: ActDesc, input: NodeId) -> NodeId {
    g.add(
        OpKind::Elementwise {
            elems,
            ops_per_elem: act.ops_per_elem,
            label: act.label.into(),
        },
        &[input],
    )
}

fn squeeze_excite(g: &mut Graph, cfg: &MbConvConfig, c_mid: usize, input: NodeId) -> NodeId {
    let (ho, wo) = cfg.out_hw();
    let se_c = ((c_mid as f64 * cfg.se_ratio).round() as usize).max(1);
    let pooled = g.add(
        OpKind::Pool {
            batch: cfg.batch,
            h: ho,
            w: wo,
            c: c_mid,
            window: ho.max(1),
        },
        &[input],
    );
    let squeeze = g.add(
        OpKind::MatMul {
            m: cfg.batch,
            k: c_mid,
            n: se_c,
        },
        &[pooled],
    );
    let act = elementwise(g, cfg.batch * se_c, cfg.act, squeeze);
    let excite = g.add(
        OpKind::MatMul {
            m: cfg.batch,
            k: se_c,
            n: c_mid,
        },
        &[act],
    );
    let gate = elementwise(g, cfg.batch * c_mid, ActDesc::SIGMOID, excite);
    // Broadcast-multiply the gate over the feature map.
    g.add(
        OpKind::Elementwise {
            elems: cfg.batch * ho * wo * c_mid,
            ops_per_elem: 1.0,
            label: "se_scale".into(),
        },
        &[gate, input],
    )
}

/// Builds a classic **MBConv**: 1×1 expand → depthwise k×k → (SE) →
/// 1×1 project, with activations between. Returns the output node.
///
/// Lower total FLOPs but lower operational intensity than
/// [`fused_mbconv`] — the depthwise stage starves the matrix units
/// (Fig. 4b).
pub fn mbconv(g: &mut Graph, cfg: &MbConvConfig, input: NodeId) -> NodeId {
    let c_mid = cfg.c_in * cfg.expansion;
    let (ho, wo) = cfg.out_hw();
    let mut x = input;
    if cfg.expansion != 1 {
        x = g.add(
            OpKind::Conv2d {
                batch: cfg.batch,
                h: cfg.h,
                w: cfg.w,
                c_in: cfg.c_in,
                c_out: c_mid,
                kh: 1,
                kw: 1,
                stride: 1,
            },
            &[x],
        );
        x = elementwise(g, cfg.batch * cfg.h * cfg.w * c_mid, cfg.act, x);
    }
    x = g.add(
        OpKind::DepthwiseConv2d {
            batch: cfg.batch,
            h: cfg.h,
            w: cfg.w,
            c: c_mid,
            kh: cfg.kernel,
            kw: cfg.kernel,
            stride: cfg.stride,
        },
        &[x],
    );
    x = elementwise(g, cfg.batch * ho * wo * c_mid, cfg.act, x);
    if cfg.se_ratio > 0.0 {
        x = squeeze_excite(g, cfg, c_mid, x);
    }
    x = g.add(
        OpKind::Conv2d {
            batch: cfg.batch,
            h: ho,
            w: wo,
            c_in: c_mid,
            c_out: cfg.c_out,
            kh: 1,
            kw: 1,
            stride: 1,
        },
        &[x],
    );
    if cfg.stride == 1 && cfg.c_in == cfg.c_out {
        x = g.add(
            OpKind::Elementwise {
                elems: cfg.batch * ho * wo * cfg.c_out,
                ops_per_elem: 1.0,
                label: "residual_add".into(),
            },
            &[x, input],
        );
    }
    x
}

/// Builds a **Fused-MBConv**: full k×k convolution (expand + depthwise
/// merged) → (SE) → 1×1 project. Returns the output node.
///
/// More total FLOPs than [`mbconv`] but higher operational intensity, so it
/// can be faster or slower depending on channel depth — the dynamic-fusion
/// trade-off H2O-NAS searches over (Fig. 4b/4c).
pub fn fused_mbconv(g: &mut Graph, cfg: &MbConvConfig, input: NodeId) -> NodeId {
    let c_mid = cfg.c_in * cfg.expansion;
    let (ho, wo) = cfg.out_hw();
    let mut x = g.add(
        OpKind::Conv2d {
            batch: cfg.batch,
            h: cfg.h,
            w: cfg.w,
            c_in: cfg.c_in,
            c_out: c_mid,
            kh: cfg.kernel,
            kw: cfg.kernel,
            stride: cfg.stride,
        },
        &[input],
    );
    x = elementwise(g, cfg.batch * ho * wo * c_mid, cfg.act, x);
    if cfg.se_ratio > 0.0 {
        x = squeeze_excite(g, cfg, c_mid, x);
    }
    x = g.add(
        OpKind::Conv2d {
            batch: cfg.batch,
            h: ho,
            w: wo,
            c_in: c_mid,
            c_out: cfg.c_out,
            kh: 1,
            kw: 1,
            stride: 1,
        },
        &[x],
    );
    if cfg.stride == 1 && cfg.c_in == cfg.c_out {
        x = g.add(
            OpKind::Elementwise {
                elems: cfg.batch * ho * wo * cfg.c_out,
                ops_per_elem: 1.0,
                label: "residual_add".into(),
            },
            &[x, input],
        );
    }
    x
}

/// Configuration of a transformer encoder block (the ViT search space's
/// unit, Table 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransformerConfig {
    /// Batch size.
    pub batch: usize,
    /// Sequence length (tokens).
    pub seq: usize,
    /// Hidden size (Table 5: multiples of 64 up to 1024).
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// FFN inner width (usually 4 × hidden).
    pub ffn: usize,
    /// FFN activation.
    pub act: ActDesc,
    /// Low-rank factor on the attention projections in (0, 1]; 1.0 = full
    /// rank (Table 5's "Low rank" dimension).
    pub low_rank: f64,
    /// Primer-style depthwise convolution after the QKV projections
    /// (Table 5's "Primer transformer options").
    pub primer_dconv: bool,
}

/// Builds one multi-head self-attention + FFN transformer block.
/// Returns the output node.
pub fn transformer_block(g: &mut Graph, cfg: &TransformerConfig, input: NodeId) -> NodeId {
    let tokens = cfg.batch * cfg.seq;
    let head_dim = cfg.hidden / cfg.heads.max(1);
    let proj_n = ((cfg.hidden as f64 * cfg.low_rank).round() as usize).max(1);
    // Pre-norm.
    let mut x = g.add(
        OpKind::Elementwise {
            elems: tokens * cfg.hidden,
            ops_per_elem: 4.0,
            label: "layer_norm".into(),
        },
        &[input],
    );
    // QKV projections (possibly low-rank: hidden -> r -> hidden pairs).
    let qkv = if cfg.low_rank < 1.0 {
        let down = g.add(
            OpKind::MatMul {
                m: tokens,
                k: cfg.hidden,
                n: 3 * proj_n,
            },
            &[x],
        );
        g.add(
            OpKind::MatMul {
                m: tokens,
                k: 3 * proj_n,
                n: 3 * cfg.hidden,
            },
            &[down],
        )
    } else {
        g.add(
            OpKind::MatMul {
                m: tokens,
                k: cfg.hidden,
                n: 3 * cfg.hidden,
            },
            &[x],
        )
    };
    x = qkv;
    if cfg.primer_dconv {
        // Primer's depthwise conv over the sequence axis, per channel.
        x = g.add(
            OpKind::DepthwiseConv2d {
                batch: cfg.batch,
                h: cfg.seq,
                w: 1,
                c: 3 * cfg.hidden,
                kh: 3,
                kw: 1,
                stride: 1,
            },
            &[x],
        );
    }
    // Attention scores and weighted values.
    let scores = g.add(
        OpKind::BatchedMatMul {
            batches: cfg.batch * cfg.heads,
            m: cfg.seq,
            k: head_dim,
            n: cfg.seq,
        },
        &[x],
    );
    let softmax = g.add(
        OpKind::Elementwise {
            elems: cfg.batch * cfg.heads * cfg.seq * cfg.seq,
            ops_per_elem: 10.0,
            label: "softmax".into(),
        },
        &[scores],
    );
    let attend = g.add(
        OpKind::BatchedMatMul {
            batches: cfg.batch * cfg.heads,
            m: cfg.seq,
            k: cfg.seq,
            n: head_dim,
        },
        &[softmax],
    );
    let out_proj = g.add(
        OpKind::MatMul {
            m: tokens,
            k: cfg.hidden,
            n: cfg.hidden,
        },
        &[attend],
    );
    let res1 = g.add(
        OpKind::Elementwise {
            elems: tokens * cfg.hidden,
            ops_per_elem: 1.0,
            label: "residual_add".into(),
        },
        &[out_proj, input],
    );
    // FFN.
    let norm2 = g.add(
        OpKind::Elementwise {
            elems: tokens * cfg.hidden,
            ops_per_elem: 4.0,
            label: "layer_norm".into(),
        },
        &[res1],
    );
    let ffn1 = g.add(
        OpKind::MatMul {
            m: tokens,
            k: cfg.hidden,
            n: cfg.ffn,
        },
        &[norm2],
    );
    let act = elementwise(g, tokens * cfg.ffn, cfg.act, ffn1);
    let ffn2 = g.add(
        OpKind::MatMul {
            m: tokens,
            k: cfg.ffn,
            n: cfg.hidden,
        },
        &[act],
    );
    g.add(
        OpKind::Elementwise {
            elems: tokens * cfg.hidden,
            ops_per_elem: 1.0,
            label: "residual_add".into(),
        },
        &[ffn2, res1],
    )
}

/// Builds a plain MLP stack (DLRM bottom/top towers). `widths` are the layer
/// output sizes; `input_width` feeds the first layer. Each layer may carry a
/// low-rank factorisation (rank fraction in (0, 1]). Returns the output node.
pub fn mlp_stack(
    g: &mut Graph,
    batch: usize,
    input_width: usize,
    widths: &[usize],
    low_ranks: &[f64],
    act: ActDesc,
    input: NodeId,
) -> NodeId {
    assert_eq!(widths.len(), low_ranks.len(), "one rank per layer");
    let mut x = input;
    let mut k = input_width;
    for (&n, &rank) in widths.iter().zip(low_ranks) {
        if rank < 1.0 {
            let r = ((k.min(n) as f64 * rank).round() as usize).max(1);
            let down = g.add(OpKind::MatMul { m: batch, k, n: r }, &[x]);
            x = g.add(OpKind::MatMul { m: batch, k: r, n }, &[down]);
        } else {
            x = g.add(OpKind::MatMul { m: batch, k, n }, &[x]);
        }
        x = elementwise(g, batch * n, act, x);
        k = n;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::DType;

    #[test]
    fn mbconv_has_fewer_flops_than_fused() {
        let cfg = MbConvConfig::square(56, 64, 1);
        let mut g1 = Graph::new("mbc", DType::Bf16);
        let i1 = g1.add(OpKind::Reshape { elems: 1 }, &[]);
        mbconv(&mut g1, &cfg, i1);
        let mut g2 = Graph::new("fmbc", DType::Bf16);
        let i2 = g2.add(OpKind::Reshape { elems: 1 }, &[]);
        fused_mbconv(&mut g2, &cfg, i2);
        assert!(
            g1.total_flops() < g2.total_flops(),
            "MBConv must have less total compute"
        );
    }

    #[test]
    fn fused_mbconv_has_higher_operational_intensity() {
        // Fig. 4b: fused MBConvs always have better FLOPs/byte.
        for depth in [32usize, 64, 128] {
            let cfg = MbConvConfig::square(56, depth, 1);
            let mut g1 = Graph::new("mbc", DType::Bf16);
            let i1 = g1.add(OpKind::Reshape { elems: 1 }, &[]);
            mbconv(&mut g1, &cfg, i1);
            let mut g2 = Graph::new("fmbc", DType::Bf16);
            let i2 = g2.add(OpKind::Reshape { elems: 1 }, &[]);
            fused_mbconv(&mut g2, &cfg, i2);
            assert!(
                g2.total_cost().operational_intensity() > g1.total_cost().operational_intensity(),
                "depth {depth}"
            );
        }
    }

    #[test]
    fn se_ratio_zero_removes_se_ops() {
        let mut cfg = MbConvConfig::square(14, 32, 1);
        cfg.se_ratio = 0.0;
        let mut g = Graph::new("t", DType::Bf16);
        let i = g.add(OpKind::Reshape { elems: 1 }, &[]);
        mbconv(&mut g, &cfg, i);
        assert!(!g.nodes().iter().any(|n| n.kind.label() == "se_scale"));
    }

    #[test]
    fn residual_only_when_shapes_match() {
        let mut cfg = MbConvConfig::square(14, 32, 1);
        cfg.stride = 2;
        let mut g = Graph::new("t", DType::Bf16);
        let i = g.add(OpKind::Reshape { elems: 1 }, &[]);
        mbconv(&mut g, &cfg, i);
        assert!(!g.nodes().iter().any(|n| n.kind.label() == "residual_add"));
    }

    #[test]
    fn expansion_one_skips_expand_conv() {
        let mut cfg = MbConvConfig::square(14, 32, 1);
        cfg.expansion = 1;
        let mut g = Graph::new("t", DType::Bf16);
        let i = g.add(OpKind::Reshape { elems: 1 }, &[]);
        mbconv(&mut g, &cfg, i);
        let convs = g
            .nodes()
            .iter()
            .filter(|n| n.kind.label() == "conv2d")
            .count();
        assert_eq!(convs, 1, "only the projection conv remains");
    }

    #[test]
    fn transformer_block_flops_scale_with_hidden() {
        let mk = |hidden| {
            let cfg = TransformerConfig {
                batch: 1,
                seq: 196,
                hidden,
                heads: 8,
                ffn: hidden * 4,
                act: ActDesc::GELU,
                low_rank: 1.0,
                primer_dconv: false,
            };
            let mut g = Graph::new("t", DType::Bf16);
            let i = g.add(OpKind::Reshape { elems: 1 }, &[]);
            transformer_block(&mut g, &cfg, i);
            g.total_flops()
        };
        assert!(mk(512) > 3.0 * mk(256));
    }

    #[test]
    fn low_rank_attention_reduces_flops() {
        let mk = |low_rank| {
            let cfg = TransformerConfig {
                batch: 1,
                seq: 196,
                hidden: 512,
                heads: 8,
                ffn: 2048,
                act: ActDesc::GELU,
                low_rank,
                primer_dconv: false,
            };
            let mut g = Graph::new("t", DType::Bf16);
            let i = g.add(OpKind::Reshape { elems: 1 }, &[]);
            transformer_block(&mut g, &cfg, i);
            g.total_flops()
        };
        assert!(mk(0.2) < mk(1.0));
    }

    #[test]
    fn primer_dconv_adds_depthwise_op() {
        let mut cfg = TransformerConfig {
            batch: 1,
            seq: 64,
            hidden: 256,
            heads: 4,
            ffn: 1024,
            act: ActDesc::RELU,
            low_rank: 1.0,
            primer_dconv: false,
        };
        let count = |cfg: &TransformerConfig| {
            let mut g = Graph::new("t", DType::Bf16);
            let i = g.add(OpKind::Reshape { elems: 1 }, &[]);
            transformer_block(&mut g, cfg, i);
            g.nodes()
                .iter()
                .filter(|n| n.kind.label() == "depthwise_conv2d")
                .count()
        };
        assert_eq!(count(&cfg), 0);
        cfg.primer_dconv = true;
        assert_eq!(count(&cfg), 1);
    }

    #[test]
    fn mlp_stack_builds_one_matmul_per_layer_full_rank() {
        let mut g = Graph::new("t", DType::Bf16);
        let i = g.add(OpKind::Reshape { elems: 1 }, &[]);
        mlp_stack(
            &mut g,
            256,
            128,
            &[512, 256, 1],
            &[1.0, 1.0, 1.0],
            ActDesc::RELU,
            i,
        );
        let matmuls = g
            .nodes()
            .iter()
            .filter(|n| n.kind.label() == "matmul")
            .count();
        assert_eq!(matmuls, 3);
    }

    #[test]
    fn mlp_stack_low_rank_splits_matmuls() {
        let mut g = Graph::new("t", DType::Bf16);
        let i = g.add(OpKind::Reshape { elems: 1 }, &[]);
        mlp_stack(&mut g, 256, 128, &[512], &[0.25], ActDesc::RELU, i);
        let matmuls = g
            .nodes()
            .iter()
            .filter(|n| n.kind.label() == "matmul")
            .count();
        assert_eq!(matmuls, 2);
    }

    #[test]
    fn mlp_stack_low_rank_cuts_flops() {
        let flops = |rank| {
            let mut g = Graph::new("t", DType::Bf16);
            let i = g.add(OpKind::Reshape { elems: 1 }, &[]);
            mlp_stack(&mut g, 1024, 1024, &[1024], &[rank], ActDesc::RELU, i);
            g.total_flops()
        };
        assert!(flops(0.2) < 0.5 * flops(1.0));
    }
}
