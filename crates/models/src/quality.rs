//! Calibrated analytic quality surrogates.
//!
//! We cannot train ImageNet/JFT-scale vision models (or production CTR
//! models) in pure Rust on CPU, so architecture *quality* — the `Q(α)`
//! term of the reward — comes from closed-form surrogates whose
//! coefficients are calibrated against the paper's own numbers (Table 3's
//! ablation ladder for vision; Fig. 8's +0.02 % for DLRM). The DLRM path
//! additionally has a fully *real* quality source — the trainable
//! super-network in `h2o-space` — used by the small-scale examples and
//! tests; the surrogate covers paper-scale spaces. See DESIGN.md.
//!
//! Surrogate structure (vision):
//!
//! ```text
//! acc = cap(dataset) − amp(dataset) · params_M^(−γ)      (capacity saturation)
//!       + 2.39 · ln(conv_depth / 14)                     (Table 3: +0.6 for 12→16 conv layers)
//!       + 4.16 · ln(resolution / 224)                    (Table 3: −1.4 for 224→160)
//!       + activation bonus                               (Table 3: +0.8 for GELU→Squared ReLU)
//!       + small structural bonuses (SE, residuals)
//! ```

use h2o_space::cnn::CnnArch;
use h2o_space::DlrmArch;
use serde::{Deserialize, Serialize};

/// Pre-training dataset scale (Fig. 6: ImageNet1K / ImageNet21K / JFT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetScale {
    /// ImageNet-1K ("SD" in Fig. 6).
    Small,
    /// ImageNet-21K ("MD").
    Medium,
    /// JFT-300M ("LD").
    Large,
}

impl DatasetScale {
    /// All scales, Fig. 6 order.
    pub const ALL: [DatasetScale; 3] = [
        DatasetScale::Small,
        DatasetScale::Medium,
        DatasetScale::Large,
    ];

    fn cap(self) -> f64 {
        match self {
            DatasetScale::Small => 90.95,
            DatasetScale::Medium => 92.15,
            DatasetScale::Large => 93.45,
        }
    }

    fn amp(self) -> f64 {
        // Bigger datasets reward capacity more (smaller penalty decay).
        match self {
            DatasetScale::Small => 22.4,
            DatasetScale::Medium => 24.0,
            DatasetScale::Large => 26.5,
        }
    }
}

/// Activation family, for the quality bonus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActFamily {
    /// `max(0, x)`.
    Relu,
    /// SiLU.
    Swish,
    /// GELU.
    Gelu,
    /// Squared ReLU (the CoAtNet-H pick).
    SquaredRelu,
}

impl ActFamily {
    fn bonus(self) -> f64 {
        match self {
            ActFamily::Relu => 0.0,
            ActFamily::Swish => 0.3,
            ActFamily::Gelu => 0.4,
            ActFamily::SquaredRelu => 1.2,
        }
    }
}

/// Everything the vision surrogate needs to score a model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VisionModelDesc {
    /// Trainable parameters, millions.
    pub params_m: f64,
    /// Input resolution.
    pub resolution: usize,
    /// Convolutional layer count (Table 3's "convolution part").
    pub conv_depth: usize,
    /// Dominant activation family.
    pub act: ActFamily,
    /// Squeeze-and-excite present.
    pub has_se: bool,
    /// Identity residuals present.
    pub has_residuals: bool,
}

/// The calibrated vision quality surrogate.
///
/// # Examples
///
/// ```
/// use h2o_models::quality::{VisionQualityModel, VisionModelDesc, ActFamily, DatasetScale};
///
/// let model = VisionQualityModel::new(DatasetScale::Small);
/// let desc = VisionModelDesc {
///     params_m: 688.0,
///     resolution: 224,
///     conv_depth: 14,
///     act: ActFamily::Gelu,
///     has_se: true,
///     has_residuals: true,
/// };
/// let acc = model.accuracy(&desc);
/// assert!((acc - 89.7).abs() < 0.3); // Table 3: CoAtNet-5 = 89.7 %
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VisionQualityModel {
    dataset: DatasetScale,
}

/// Calibration constants derived from Table 3 (see module docs).
const GAMMA: f64 = 0.35;
const DEPTH_COEF: f64 = 2.387; // +0.6 acc for conv 14 → 18 layers
const RES_COEF: f64 = 4.161; // −1.4 acc for res 224 → 160
const REF_CONV_DEPTH: f64 = 14.0;
const REF_RESOLUTION: f64 = 224.0;

impl VisionQualityModel {
    /// Creates a surrogate for a dataset scale.
    pub fn new(dataset: DatasetScale) -> Self {
        Self { dataset }
    }

    /// Top-1 accuracy estimate in percent.
    pub fn accuracy(&self, desc: &VisionModelDesc) -> f64 {
        let capacity =
            self.dataset.cap() - self.dataset.amp() * desc.params_m.max(0.1).powf(-GAMMA);
        let depth = DEPTH_COEF * (desc.conv_depth.max(1) as f64 / REF_CONV_DEPTH).ln();
        let res = RES_COEF * (desc.resolution.max(32) as f64 / REF_RESOLUTION).ln();
        let se = if desc.has_se { 0.25 } else { 0.0 };
        let residual = if desc.has_residuals { 0.35 } else { 0.0 };
        capacity + depth + res + desc.act.bonus() + se + residual
    }

    /// Scores a decoded (hybrid) ViT search-space architecture. Transformer
    /// layers count toward depth at a discount (the Table 3 depth
    /// calibration is for convolutional layers); the activation bonus uses
    /// the FFN activation, and the Primer depthwise-conv option earns the
    /// small structural bonus its paper reports.
    pub fn accuracy_of_vit(&self, arch: &h2o_space::VitArch, params_m: f64) -> f64 {
        let conv_depth: usize = arch.conv_blocks.iter().map(|b| b.depth).sum();
        let tfm_depth: usize = arch.tfm_blocks.iter().map(|b| b.layers).sum();
        let act = arch
            .tfm_blocks
            .first()
            .map(|b| match b.act {
                h2o_space::vit::ActChoice::Relu => ActFamily::Relu,
                h2o_space::vit::ActChoice::Swish => ActFamily::Swish,
                h2o_space::vit::ActChoice::Gelu => ActFamily::Gelu,
                h2o_space::vit::ActChoice::SquaredRelu => ActFamily::SquaredRelu,
            })
            .unwrap_or(ActFamily::Gelu);
        let primer_bonus = if arch.tfm_blocks.iter().any(|b| b.primer) {
            0.2
        } else {
            0.0
        };
        // Aggressive sequence pooling costs a little accuracy (tokens are
        // discarded); extreme low rank costs capacity beyond the params
        // already counted.
        let pool_penalty = 0.15 * arch.tfm_blocks.iter().filter(|b| b.seq_pool).count() as f64;
        let rank_penalty: f64 = arch
            .tfm_blocks
            .iter()
            .map(|b| if b.low_rank < 0.3 { 0.3 } else { 0.0 })
            .sum();
        let base = self.accuracy(&VisionModelDesc {
            params_m,
            resolution: arch.resolution.unwrap_or(224),
            conv_depth: (conv_depth + tfm_depth / 2).max(1),
            act,
            has_se: !arch.conv_blocks.is_empty(),
            has_residuals: true,
        });
        base + primer_bonus - pool_penalty - rank_penalty
    }

    /// Scores a decoded CNN search-space architecture.
    pub fn accuracy_of_cnn(&self, arch: &CnnArch, params_m: f64) -> f64 {
        let conv_depth: usize = arch.blocks.iter().map(|b| b.depth).sum();
        let swish = arch.blocks.iter().filter(|b| b.swish).count() * 2 > arch.blocks.len();
        let has_se = arch.blocks.iter().any(|b| b.se_ratio > 0.0);
        let has_residuals = arch.blocks.iter().any(|b| b.skip);
        self.accuracy(&VisionModelDesc {
            params_m,
            resolution: arch.resolution,
            conv_depth,
            act: if swish {
                ActFamily::Swish
            } else {
                ActFamily::Relu
            },
            has_se,
            has_residuals,
        })
    }
}

/// The DLRM quality surrogate: saturating returns on embedding capacity
/// (memorisation) and effective MLP capacity (generalisation), referenced
/// to a baseline architecture so "quality" reads as a delta-friendly
/// percentage (§5.1.1's memorisation/generalisation framing).
#[derive(Debug, Clone, PartialEq)]
pub struct DlrmQualityModel {
    base_embedding_params: f64,
    base_mlp_params: f64,
    /// Quality of the reference architecture, percent (e.g. AUC·100).
    pub base_quality: f64,
}

impl DlrmQualityModel {
    /// Memorisation weight (embedding capacity).
    const MEMO_COEF: f64 = 2.0;
    /// Generalisation weight (MLP capacity).
    const GEN_COEF: f64 = 0.8;
    /// Saturation scale in log-capacity units.
    const SCALE: f64 = 2.0;

    /// Creates the surrogate referenced to a baseline architecture.
    pub fn new(reference: &DlrmArch, base_quality: f64) -> Self {
        Self {
            base_embedding_params: reference.embedding_params().max(1.0),
            base_mlp_params: reference.mlp_params().max(1.0),
            base_quality,
        }
    }

    /// Quality estimate in percent. The reference architecture scores
    /// exactly `base_quality`.
    pub fn quality(&self, arch: &DlrmArch) -> f64 {
        let memo = (arch.embedding_params().max(1.0) / self.base_embedding_params).ln();
        let gen = (arch.mlp_params().max(1.0) / self.base_mlp_params).ln();
        self.base_quality
            + Self::MEMO_COEF * (memo / Self::SCALE).tanh()
            + Self::GEN_COEF * (gen / Self::SCALE).tanh()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coatnet::{CoAtNet, FfnAct};

    fn desc_of(m: &CoAtNet) -> VisionModelDesc {
        VisionModelDesc {
            params_m: m.params_m(),
            resolution: m.resolution,
            conv_depth: m.conv_layers(),
            act: match m.ffn_act {
                FfnAct::Gelu => ActFamily::Gelu,
                FfnAct::Relu => ActFamily::Relu,
                FfnAct::SquaredRelu => ActFamily::SquaredRelu,
            },
            has_se: true,
            has_residuals: true,
        }
    }

    #[test]
    fn table3_ablation_ladder_reproduced() {
        // Paper: 89.7 -> 90.3 -> 88.9 -> 89.7 (±0.35 tolerance: our params
        // differ slightly from the paper's exact 688M).
        let model = VisionQualityModel::new(DatasetScale::Small);
        let ladder = CoAtNet::table3_ablation();
        let accs: Vec<f64> = ladder.iter().map(|m| model.accuracy(&desc_of(m))).collect();
        let expected = [89.7, 90.3, 88.9, 89.7];
        for (got, want) in accs.iter().zip(expected) {
            assert!((got - want).abs() < 0.35, "got {accs:?}, want {expected:?}");
        }
    }

    #[test]
    fn bigger_models_are_more_accurate() {
        let model = VisionQualityModel::new(DatasetScale::Small);
        let fam = CoAtNet::family();
        let accs: Vec<f64> = fam.iter().map(|m| model.accuracy(&desc_of(m))).collect();
        assert!(accs.windows(2).all(|w| w[0] < w[1]), "{accs:?}");
    }

    #[test]
    fn larger_datasets_lift_large_models_more() {
        let small = VisionQualityModel::new(DatasetScale::Small);
        let large = VisionQualityModel::new(DatasetScale::Large);
        let fam = CoAtNet::family();
        let lift_c0 = large.accuracy(&desc_of(&fam[0])) - small.accuracy(&desc_of(&fam[0]));
        let lift_c5 = large.accuracy(&desc_of(&fam[5])) - small.accuracy(&desc_of(&fam[5]));
        assert!(lift_c5 > lift_c0, "c0 lift {lift_c0}, c5 lift {lift_c5}");
    }

    #[test]
    fn coatnet_h_family_is_quality_neutral() {
        // Fig. 6: neutral accuracy at much better throughput.
        let model = VisionQualityModel::new(DatasetScale::Small);
        for (h, b) in CoAtNet::h_family().iter().zip(CoAtNet::family().iter()) {
            let dq = model.accuracy(&desc_of(h)) - model.accuracy(&desc_of(b));
            assert!(dq.abs() < 0.6, "{}: Δacc {dq}", h.name);
        }
    }

    #[test]
    fn dlrm_h_gains_slight_quality() {
        // Fig. 8: +0.02 % quality for DLRM-H.
        let base = crate::dlrm::baseline();
        let model = DlrmQualityModel::new(&base, 85.0);
        let dq = model.quality(&crate::dlrm::h_variant()) - model.quality(&base);
        assert!(dq > 0.0, "DLRM-H must not lose quality: {dq}");
        assert!(dq < 0.30, "gain should be small: {dq} (paper 0.02)");
    }

    #[test]
    fn dlrm_reference_scores_base_quality() {
        let base = crate::dlrm::baseline();
        let model = DlrmQualityModel::new(&base, 85.0);
        assert!((model.quality(&base) - 85.0).abs() < 1e-9);
    }

    #[test]
    fn vit_surrogate_scores_hybrid_archs() {
        use h2o_space::{VitSpace, VitSpaceConfig};
        use rand::SeedableRng;
        let space = VitSpace::new(VitSpaceConfig::hybrid());
        let model = VisionQualityModel::new(DatasetScale::Medium);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let arch = space.decode(&space.space().sample_uniform(&mut rng));
            let params = arch.build_graph(1, 196).param_count() / 1e6;
            let acc = model.accuracy_of_vit(&arch, params);
            assert!((40.0..97.0).contains(&acc), "acc {acc}");
        }
    }

    #[test]
    fn vit_surrogate_rewards_squared_relu_and_primer() {
        use h2o_space::vit::{ActChoice, TfmBlockArch};
        use h2o_space::VitArch;
        let model = VisionQualityModel::new(DatasetScale::Small);
        let block = |act, primer| TfmBlockArch {
            hidden: 512,
            low_rank: 1.0,
            act,
            seq_pool: false,
            primer,
            layers: 6,
        };
        let mk = |act, primer| VitArch {
            resolution: None,
            patch: None,
            conv_blocks: vec![],
            tfm_blocks: vec![block(act, primer)],
            head_dim: 64,
        };
        let relu = model.accuracy_of_vit(&mk(ActChoice::Relu, false), 100.0);
        let sq = model.accuracy_of_vit(&mk(ActChoice::SquaredRelu, false), 100.0);
        let sq_primer = model.accuracy_of_vit(&mk(ActChoice::SquaredRelu, true), 100.0);
        assert!(sq > relu);
        assert!(sq_primer > sq);
    }

    #[test]
    fn dlrm_quality_saturates() {
        let base = crate::dlrm::baseline();
        let model = DlrmQualityModel::new(&base, 85.0);
        let mut huge = base.clone();
        for t in &mut huge.tables {
            t.width *= 64;
            t.vocab *= 64;
        }
        assert!(
            model.quality(&huge) < 85.0 + 3.0,
            "bounded gains: coefficients cap at MEMO+GEN"
        );
    }
}
