//! The EfficientNet-X baseline family and the H2O-NAS-designed
//! EfficientNet-H family (§7.1.3, Table 4).
//!
//! EfficientNet-X (B0–B7) is already a NAS-optimised family, so H2O-NAS
//! finds smaller gains here: **B0–B4 are unchanged**, while B5–B7 swap the
//! uniform expansion factor 6 for a mixture of 4 and 6 inside the dynamic
//! fused MBConv blocks — about 15 % average speedup for the big models and
//! ~6 % family-wide (Table 4).

use h2o_graph::blocks::{fused_mbconv, mbconv, ActDesc, MbConvConfig};
use h2o_graph::{DType, Graph, OpKind};
use serde::{Deserialize, Serialize};

/// One stage of the EfficientNet backbone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ENetStage {
    /// Layers in the stage (before depth scaling).
    pub depth: usize,
    /// Output channels (before width scaling).
    pub width: usize,
    /// First-layer stride.
    pub stride: usize,
    /// Kernel size.
    pub kernel: usize,
    /// Expansion ratio.
    pub expansion: usize,
    /// Fused (dense) or classic MBConv.
    pub fused: bool,
}

/// A concrete EfficientNet-style architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EfficientNet {
    /// Variant name, e.g. `"EfficientNet-X-B5"`.
    pub name: String,
    /// Input resolution.
    pub resolution: usize,
    /// Scaled stages.
    pub stages: Vec<ENetStage>,
    /// Stem channels.
    pub stem_width: usize,
}

/// B0 baseline stages (EfficientNet-X flavour: early stages fused for
/// datacenter accelerators, per the EfficientNet-X design).
fn b0_stages() -> Vec<ENetStage> {
    vec![
        ENetStage {
            depth: 1,
            width: 16,
            stride: 1,
            kernel: 3,
            expansion: 1,
            fused: true,
        },
        ENetStage {
            depth: 2,
            width: 24,
            stride: 2,
            kernel: 3,
            expansion: 6,
            fused: true,
        },
        ENetStage {
            depth: 2,
            width: 40,
            stride: 2,
            kernel: 5,
            expansion: 6,
            fused: true,
        },
        ENetStage {
            depth: 3,
            width: 80,
            stride: 2,
            kernel: 3,
            expansion: 6,
            fused: false,
        },
        ENetStage {
            depth: 3,
            width: 112,
            stride: 1,
            kernel: 5,
            expansion: 6,
            fused: false,
        },
        ENetStage {
            depth: 4,
            width: 192,
            stride: 2,
            kernel: 5,
            expansion: 6,
            fused: false,
        },
        ENetStage {
            depth: 1,
            width: 320,
            stride: 1,
            kernel: 3,
            expansion: 6,
            fused: false,
        },
    ]
}

/// Compound-scaling coefficients per variant: (width ×, depth ×, resolution).
const SCALING: [(f64, f64, usize); 8] = [
    (1.0, 1.0, 224), // B0
    (1.0, 1.1, 240), // B1
    (1.1, 1.2, 260), // B2
    (1.2, 1.4, 300), // B3
    (1.4, 1.8, 380), // B4
    (1.6, 2.2, 456), // B5
    (1.8, 2.6, 528), // B6
    (2.0, 3.1, 600), // B7
];

fn round_channels(c: f64) -> usize {
    ((c / 8.0).round() as usize * 8).max(8)
}

impl EfficientNet {
    /// The baseline EfficientNet-X family, B0–B7.
    pub fn x_family() -> Vec<EfficientNet> {
        (0..8)
            .map(|i| Self::scaled(&format!("EfficientNet-X-B{i}"), i, false))
            .collect()
    }

    /// The H2O-NAS EfficientNet-H family: identical B0–B4; B5–B7 use the
    /// searched 4/6 expansion mixture (§7.1.3).
    pub fn h_family() -> Vec<EfficientNet> {
        (0..8)
            .map(|i| Self::scaled(&format!("EfficientNet-H-B{i}"), i, i >= 5))
            .collect()
    }

    fn scaled(name: &str, variant: usize, expansion_mix: bool) -> Self {
        let (w, d, res) = SCALING[variant];
        let stages = b0_stages()
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let mut expansion = s.expansion;
                if expansion_mix && s.expansion == 6 && i % 2 == 0 {
                    // The paper: "changes on the expansion factors ... from
                    // uniformly 6 to a mixture of 4 and 6".
                    expansion = 4;
                }
                ENetStage {
                    depth: ((s.depth as f64 * d).ceil() as usize).max(1),
                    width: round_channels(s.width as f64 * w),
                    expansion,
                    ..s
                }
            })
            .collect();
        Self {
            name: name.to_string(),
            resolution: res,
            stages,
            stem_width: round_channels(32.0 * w),
        }
    }

    /// Builds the forward graph at a batch size.
    pub fn build_graph(&self, batch: usize) -> Graph {
        let mut g = Graph::new(self.name.clone(), DType::Bf16);
        let res = self.resolution;
        let input = g.add(
            OpKind::Reshape {
                elems: batch * res * res * 3,
            },
            &[],
        );
        let mut hw = res.div_ceil(2);
        let mut x = g.add(
            OpKind::Conv2d {
                batch,
                h: res,
                w: res,
                c_in: 3,
                c_out: self.stem_width,
                kh: 3,
                kw: 3,
                stride: 2,
            },
            &[input],
        );
        let mut c_in = self.stem_width;
        for stage in &self.stages {
            for layer in 0..stage.depth {
                let stride = if layer == 0 { stage.stride } else { 1 };
                let cfg = MbConvConfig {
                    batch,
                    h: hw,
                    w: hw,
                    c_in,
                    c_out: stage.width,
                    expansion: stage.expansion,
                    kernel: stage.kernel,
                    stride,
                    se_ratio: 0.25,
                    act: ActDesc::SWISH,
                };
                x = if stage.fused {
                    fused_mbconv(&mut g, &cfg, x)
                } else {
                    mbconv(&mut g, &cfg, x)
                };
                hw = hw.div_ceil(stride);
                c_in = stage.width;
            }
        }
        let head_width = round_channels(c_in as f64 * 4.0);
        x = g.add(
            OpKind::Conv2d {
                batch,
                h: hw,
                w: hw,
                c_in,
                c_out: head_width,
                kh: 1,
                kw: 1,
                stride: 1,
            },
            &[x],
        );
        let pooled = g.add(
            OpKind::Pool {
                batch,
                h: hw,
                w: hw,
                c: head_width,
                window: hw.max(1),
            },
            &[x],
        );
        g.add(
            OpKind::MatMul {
                m: batch,
                k: head_width,
                n: 1000,
            },
            &[pooled],
        );
        g.fuse_elementwise();
        g
    }

    /// Parameter count in millions.
    pub fn params_m(&self) -> f64 {
        self.build_graph(1).param_count() / 1e6
    }

    /// Per-image forward FLOPs in billions.
    pub fn flops_b(&self) -> f64 {
        self.build_graph(1).total_flops() / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_spans_table2_ranges() {
        let fam = EfficientNet::x_family();
        let p0 = fam[0].params_m();
        let p7 = fam[7].params_m();
        assert!((3.0..20.0).contains(&p0), "B0 params {p0}M (paper 7.6M)");
        assert!((80.0..400.0).contains(&p7), "B7 params {p7}M (paper 199M)");
        let f0 = fam[0].flops_b();
        let f7 = fam[7].flops_b();
        assert!((0.5..6.0).contains(&f0), "B0 FLOPs {f0}B (paper 1.8B)");
        assert!((60.0..400.0).contains(&f7), "B7 FLOPs {f7}B (paper 186B)");
    }

    #[test]
    fn families_identical_below_b5() {
        let x = EfficientNet::x_family();
        let h = EfficientNet::h_family();
        for i in 0..5 {
            assert_eq!(x[i].stages, h[i].stages, "B{i} must be unchanged");
        }
    }

    #[test]
    fn b5_to_b7_use_expansion_mixture() {
        let h = EfficientNet::h_family();
        for m in h.iter().skip(5) {
            let expansions: Vec<usize> = m.stages.iter().map(|s| s.expansion).collect();
            assert!(expansions.contains(&4), "{}: {expansions:?}", m.name);
            assert!(expansions.contains(&6), "{}: {expansions:?}", m.name);
        }
    }

    #[test]
    fn h_variants_have_fewer_flops_at_b5_plus() {
        let x = EfficientNet::x_family();
        let h = EfficientNet::h_family();
        for i in 5..8 {
            assert!(h[i].flops_b() < x[i].flops_b(), "B{i}");
        }
    }

    #[test]
    fn params_grow_monotonically() {
        let params: Vec<f64> = EfficientNet::x_family()
            .iter()
            .map(|m| m.params_m())
            .collect();
        assert!(params.windows(2).all(|w| w[0] < w[1]), "{params:?}");
    }

    #[test]
    fn early_stages_are_fused() {
        let b0 = &EfficientNet::x_family()[0];
        assert!(b0.stages[1].fused && !b0.stages[5].fused);
    }
}
