//! The synthetic production fleet behind Fig. 10.
//!
//! The paper applies H2O-NAS to five production computer-vision models and
//! three production DLRMs, with quality as the first priority (some models
//! trade performance for quality — CV5, DLRM3). We model the fleet as
//! differently-shaped baselines over the CNN and DLRM search spaces, each
//! with its own quality floor and performance target.

use h2o_space::cnn::StageBaseline;
use h2o_space::{CnnSpaceConfig, DlrmSpaceConfig};
use serde::{Deserialize, Serialize};

/// A production model's search setup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProductionModel {
    /// Fleet name (CV1..CV5, DLRM1..DLRM3 in Fig. 10).
    pub name: String,
    /// Domain-specific search configuration.
    pub domain: ProductionDomain,
    /// Relative priority of quality over performance in the reward: larger
    /// values let the search accept performance regressions for quality
    /// (the CV5 / DLRM3 behaviour in Fig. 10).
    pub quality_weight: f64,
    /// Performance target as a fraction of the baseline step time (1.0 =
    /// neutral; < 1.0 demands speedup).
    pub perf_target_ratio: f64,
}

/// Which search space a fleet model uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProductionDomain {
    /// Computer vision over the convolutional space.
    Vision(CnnSpaceConfig),
    /// Recommendation over the DLRM space.
    Dlrm(DlrmSpaceConfig),
}

fn cv_config(scale: f64, stages: usize) -> CnnSpaceConfig {
    let widths = [16, 24, 40, 80, 112, 192, 320];
    let depths = [1, 2, 2, 3, 3, 4, 1];
    let strides = [1, 2, 2, 2, 1, 2, 1];
    CnnSpaceConfig {
        stages: (0..stages.min(7))
            .map(|i| StageBaseline {
                depth: ((depths[i] as f64 * scale).round() as usize).max(1),
                width: ((widths[i] as f64 * scale / 8.0).round() as usize * 8).max(8),
                stride: strides[i],
            })
            .collect(),
        width_increment: 8,
        stem_width: 32,
    }
}

fn dlrm_config(tables: usize, mlp_scale: f64) -> DlrmSpaceConfig {
    let mut cfg = DlrmSpaceConfig::production();
    cfg.tables.truncate(tables);
    for g in &mut cfg.mlp_groups {
        g.width = ((g.width as f64 * mlp_scale / 8.0).round() as usize * 8).max(8);
    }
    cfg
}

/// The Fig. 10 fleet: five CV models and three DLRMs.
pub fn fleet() -> Vec<ProductionModel> {
    vec![
        ProductionModel {
            name: "CV1".into(),
            domain: ProductionDomain::Vision(cv_config(1.0, 7)),
            quality_weight: 1.0,
            perf_target_ratio: 0.75,
        },
        ProductionModel {
            name: "CV2".into(),
            domain: ProductionDomain::Vision(cv_config(1.4, 7)),
            quality_weight: 1.0,
            perf_target_ratio: 0.75,
        },
        ProductionModel {
            name: "CV3".into(),
            domain: ProductionDomain::Vision(cv_config(2.0, 7)),
            quality_weight: 1.5,
            perf_target_ratio: 0.80,
        },
        ProductionModel {
            name: "CV4".into(),
            domain: ProductionDomain::Vision(cv_config(1.2, 6)),
            quality_weight: 1.0,
            perf_target_ratio: 0.70,
        },
        ProductionModel {
            // CV5 prioritises quality and accepts a performance regression.
            name: "CV5".into(),
            domain: ProductionDomain::Vision(cv_config(0.8, 6)),
            quality_weight: 4.0,
            perf_target_ratio: 1.10,
        },
        ProductionModel {
            name: "DLRM1".into(),
            domain: ProductionDomain::Dlrm(dlrm_config(60, 1.0)),
            quality_weight: 3.0,
            perf_target_ratio: 0.80,
        },
        ProductionModel {
            name: "DLRM2".into(),
            domain: ProductionDomain::Dlrm(dlrm_config(100, 1.3)),
            quality_weight: 3.0,
            perf_target_ratio: 0.80,
        },
        ProductionModel {
            // DLRM3 prioritises quality and accepts a performance regression.
            name: "DLRM3".into(),
            domain: ProductionDomain::Dlrm(dlrm_config(150, 0.8)),
            quality_weight: 4.0,
            perf_target_ratio: 1.05,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_has_five_cv_and_three_dlrm() {
        let fleet = fleet();
        let cv = fleet
            .iter()
            .filter(|m| matches!(m.domain, ProductionDomain::Vision(_)))
            .count();
        let dlrm = fleet
            .iter()
            .filter(|m| matches!(m.domain, ProductionDomain::Dlrm(_)))
            .count();
        assert_eq!((cv, dlrm), (5, 3));
    }

    #[test]
    fn quality_first_models_allow_regression() {
        let fleet = fleet();
        let cv5 = fleet.iter().find(|m| m.name == "CV5").unwrap();
        let dlrm3 = fleet.iter().find(|m| m.name == "DLRM3").unwrap();
        assert!(cv5.perf_target_ratio > 1.0);
        assert!(dlrm3.perf_target_ratio > 1.0);
        assert!(cv5.quality_weight > 1.0);
    }

    #[test]
    fn fleet_baselines_are_distinct() {
        let fleet = fleet();
        for pair in fleet.windows(2) {
            assert_ne!(
                pair[0].domain, pair[1].domain,
                "{} vs {}",
                pair[0].name, pair[1].name
            );
        }
    }

    #[test]
    fn configs_build_valid_spaces() {
        use h2o_space::{CnnSpace, DlrmSpace};
        for model in fleet() {
            match &model.domain {
                ProductionDomain::Vision(cfg) => {
                    let space = CnnSpace::new(cfg.clone());
                    assert!(space.space().log10_size() > 10.0);
                }
                ProductionDomain::Dlrm(cfg) => {
                    let space = DlrmSpace::new(cfg.clone());
                    assert!(space.space().log10_size() > 50.0);
                }
            }
        }
    }
}
