//! The production-style baseline DLRM and the H2O-NAS-rebalanced DLRM-H
//! (§7.1.2, Fig. 8).
//!
//! The baseline mirrors the paper's observation about heavily hand-tuned
//! production DLRMs: the **MLP side dominates the step time** while the
//! embedding side idles — a load imbalance that both wastes the overlap
//! between the (memory/network-bound) embedding branch and the (MXU-bound)
//! MLP branch, and under-provisions memorisation. DLRM-H rebalances the
//! two towers: slightly leaner top MLP (low-rank on the widest layers),
//! larger embeddings — recovering ~10 % step time at +0.02 % quality.

use h2o_space::dlrm::{MlpGroupArch, TableArch};
use h2o_space::DlrmArch;

/// The baseline production-style DLRM (Table 2: O(1000)M params,
/// O(100)B FLOPs, trained on 128 TPUv4).
pub fn baseline() -> DlrmArch {
    let tables: Vec<TableArch> = (0..150)
        .map(|i| TableArch {
            vocab: 10_000 << (i % 8),
            width: 32 + 16 * (i % 4),
            ids_per_example: if i % 5 == 0 { 8.0 } else { 1.0 },
        })
        .collect();
    let mlp_groups = vec![
        MlpGroupArch {
            depth: 2,
            width: 512,
            low_rank: 1.0,
            bottom: true,
        },
        MlpGroupArch {
            depth: 2,
            width: 256,
            low_rank: 1.0,
            bottom: true,
        },
        MlpGroupArch {
            depth: 3,
            width: 3072,
            low_rank: 1.0,
            bottom: false,
        },
        MlpGroupArch {
            depth: 3,
            width: 2048,
            low_rank: 1.0,
            bottom: false,
        },
        MlpGroupArch {
            depth: 2,
            width: 1024,
            low_rank: 1.0,
            bottom: false,
        },
        MlpGroupArch {
            depth: 2,
            width: 512,
            low_rank: 1.0,
            bottom: false,
        },
        MlpGroupArch {
            depth: 1,
            width: 128,
            low_rank: 1.0,
            bottom: false,
        },
    ];
    DlrmArch {
        tables,
        mlp_groups,
        dense_features: 256,
    }
}

/// The H2O-NAS-designed DLRM-H: the widest top-tower groups are factorised
/// (low rank) and slightly narrowed, embedding widths grow to absorb the
/// freed step-time budget — the Fig. 8 rebalance.
pub fn h_variant() -> DlrmArch {
    let mut arch = baseline();
    for table in &mut arch.tables {
        table.width += 8; // more memorisation capacity
    }
    for group in &mut arch.mlp_groups {
        if !group.bottom && group.width >= 3072 {
            group.low_rank = 0.4;
        }
    }
    arch
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2o_hwsim::{HardwareConfig, Simulator, SystemConfig};

    fn step_time(arch: &DlrmArch) -> (f64, f64, f64) {
        // Per-chip batch 64 on a 128-chip pod, as in Table 2.
        let g = arch.build_graph(64, 128);
        let sim = Simulator::new(HardwareConfig::tpu_v4());
        let report = sim.simulate_training(&g, &SystemConfig::training_pod());
        // Branch breakdown: embedding ops vs matmul ops.
        let emb: f64 = report
            .breakdown
            .iter()
            .filter(|(k, _)| k.contains("embedding") || k.contains("all_to_all"))
            .map(|(_, v)| v)
            .sum();
        let mlp: f64 = report
            .breakdown
            .iter()
            .filter(|(k, _)| k.contains("matmul"))
            .map(|(_, v)| v)
            .sum();
        (report.time, emb, mlp)
    }

    #[test]
    fn baseline_is_mlp_dominated() {
        let (_, emb, mlp) = step_time(&baseline());
        assert!(mlp > emb, "baseline imbalance: mlp {mlp} vs emb {emb}");
    }

    #[test]
    fn h_variant_is_faster() {
        let (t_base, _, _) = step_time(&baseline());
        let (t_h, _, _) = step_time(&h_variant());
        let speedup = t_base / t_h;
        assert!(speedup > 1.02, "DLRM-H speedup {speedup} (paper ~1.10)");
        assert!(speedup < 1.5, "speedup should be modest: {speedup}");
    }

    #[test]
    fn h_variant_improves_balance() {
        let (_, emb_b, mlp_b) = step_time(&baseline());
        let (_, emb_h, mlp_h) = step_time(&h_variant());
        let imbalance = |emb: f64, mlp: f64| (mlp / emb.max(1e-12) - 1.0).abs();
        assert!(
            imbalance(emb_h, mlp_h) < imbalance(emb_b, mlp_b),
            "H must be better balanced: base ({emb_b:.2e},{mlp_b:.2e}) vs H ({emb_h:.2e},{mlp_h:.2e})"
        );
    }

    #[test]
    fn h_variant_has_more_embedding_capacity() {
        assert!(h_variant().embedding_params() > baseline().embedding_params());
    }

    #[test]
    fn model_sizes_are_production_scale() {
        let params = baseline().embedding_params() + baseline().mlp_params();
        assert!(params > 1e8, "O(1000)M params expected, got {params}");
    }
}
