//! The CoAtNet baseline family and the H2O-NAS-designed CoAtNet-H family
//! (§7.1.1, Table 3, Figs. 6 and 7).
//!
//! CoAtNet is a hybrid network: two MBConv stages followed by two
//! transformer stages. The H2O-NAS redesign (CoAtNet-H) applies three
//! changes the paper ablates in Table 3:
//!
//! 1. **Deeper convolution** (12 → 16 conv layers): +quality, −throughput.
//! 2. **Resolution shrink** (224 → 160 for pre-training): −53 % FLOPs,
//!    −quality.
//! 3. **Squared ReLU** in the transformer FFNs: +quality at ~no cost.
//!
//! Net effect: neutral accuracy at ~1.8× the training throughput, with the
//! counter-intuitive hardware behaviour analysed in Fig. 7 (lower achieved
//! FLOPS yet much faster, more CMEM traffic yet less power).

use h2o_graph::blocks::{mbconv, transformer_block, ActDesc, MbConvConfig, TransformerConfig};
use h2o_graph::{DType, Graph, OpKind};
use serde::{Deserialize, Serialize};

/// A concrete CoAtNet-style hybrid architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoAtNet {
    /// Variant name, e.g. `"CoAtNet-5"` or `"CoAtNet-H5"`.
    pub name: String,
    /// Input resolution (square).
    pub resolution: usize,
    /// Stem output channels.
    pub stem_width: usize,
    /// Channels of the two MBConv stages.
    pub conv_widths: [usize; 2],
    /// Layer counts of the two MBConv stages.
    pub conv_depths: [usize; 2],
    /// Hidden sizes of the two transformer stages.
    pub tfm_hidden: [usize; 2],
    /// Layer counts of the two transformer stages.
    pub tfm_depths: [usize; 2],
    /// FFN activation of the transformer stages.
    pub ffn_act: FfnAct,
}

/// Transformer FFN activation — the Table 3 ablation knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FfnAct {
    /// Baseline CoAtNet activation.
    Gelu,
    /// Pre-Squared-ReLU ablation step (Table 3 swaps ReLU → Squared ReLU).
    Relu,
    /// The CoAtNet-H activation.
    SquaredRelu,
}

impl FfnAct {
    fn desc(self) -> ActDesc {
        match self {
            FfnAct::Gelu => ActDesc::GELU,
            FfnAct::Relu => ActDesc::RELU,
            FfnAct::SquaredRelu => ActDesc::SQUARED_RELU,
        }
    }
}

impl CoAtNet {
    /// The baseline family C0..C5 (sizes chosen to land on Table 2's
    /// 25 M–688 M parameter range, with C5 matching Table 3's 688 M /
    /// ~1012 B FLOPs).
    pub fn family() -> Vec<CoAtNet> {
        vec![
            Self::variant(
                "CoAtNet-0",
                [96, 192],
                [2, 3],
                [384, 768],
                [5, 2],
                224,
                FfnAct::Gelu,
            ),
            Self::variant(
                "CoAtNet-1",
                [96, 192],
                [2, 6],
                [384, 768],
                [14, 2],
                224,
                FfnAct::Gelu,
            ),
            Self::variant(
                "CoAtNet-2",
                [128, 256],
                [2, 6],
                [512, 1024],
                [14, 2],
                224,
                FfnAct::Gelu,
            ),
            Self::variant(
                "CoAtNet-3",
                [192, 384],
                [2, 6],
                [768, 1536],
                [14, 2],
                224,
                FfnAct::Gelu,
            ),
            Self::variant(
                "CoAtNet-4",
                [192, 384],
                [2, 12],
                [768, 1536],
                [28, 2],
                224,
                FfnAct::Gelu,
            ),
            Self::variant(
                "CoAtNet-5",
                [256, 512],
                [2, 12],
                [1280, 2048],
                [28, 2],
                224,
                FfnAct::Gelu,
            ),
        ]
    }

    /// The H2O-NAS family: deeper convolution (+4 conv layers), resolution
    /// shrink (224 → 160) and Squared-ReLU FFNs, applied to each baseline.
    pub fn h_family() -> Vec<CoAtNet> {
        Self::family()
            .into_iter()
            .map(|mut m| {
                m.name = m.name.replace("CoAtNet-", "CoAtNet-H");
                m.conv_depths[1] += (m.conv_depths[1] / 3).max(1);
                m.resolution = 160;
                m.ffn_act = FfnAct::SquaredRelu;
                m
            })
            .collect()
    }

    /// One variant by explicit dimensions.
    pub fn variant(
        name: &str,
        conv_widths: [usize; 2],
        conv_depths: [usize; 2],
        tfm_hidden: [usize; 2],
        tfm_depths: [usize; 2],
        resolution: usize,
        ffn_act: FfnAct,
    ) -> Self {
        Self {
            name: name.to_string(),
            resolution,
            stem_width: 64,
            conv_widths,
            conv_depths,
            tfm_hidden,
            tfm_depths,
            ffn_act,
        }
    }

    /// The Table 3 ablation ladder: baseline C5, +DeeperConv, +ResShrink,
    /// +SquaredReLU (= CoAtNet-H5).
    pub fn table3_ablation() -> Vec<CoAtNet> {
        // h2o-lint: allow(panic-hygiene) -- family() returns a fixed non-empty ladder by construction
        let base = Self::family().pop().expect("family non-empty");
        let mut deeper = base.clone();
        deeper.name = "+DeeperConv".to_string();
        deeper.conv_depths[1] += 4;
        let mut shrink = deeper.clone();
        shrink.name = "+ResShrink".to_string();
        shrink.resolution = 160;
        let mut sq = shrink.clone();
        sq.name = "+SquaredReLU (CoAtNet-H5)".to_string();
        sq.ffn_act = FfnAct::SquaredRelu;
        vec![base, deeper, shrink, sq]
    }

    /// Total convolutional layer count (the Table 3 "convolution part").
    pub fn conv_layers(&self) -> usize {
        self.conv_depths.iter().sum()
    }

    /// Builds the forward graph at a batch size.
    ///
    /// Stage schedule (strides): stem /2 → S1 /2 → S2 /2 → tokens at
    /// resolution/8 → T1 (pool /2 between stages) → T2.
    pub fn build_graph(&self, batch: usize) -> Graph {
        let mut g = Graph::new(self.name.clone(), DType::Bf16);
        let res = self.resolution;
        let input = g.add(
            OpKind::Reshape {
                elems: batch * res * res * 3,
            },
            &[],
        );
        // Stem: two 3×3 convs, the first stride-2.
        let mut hw = res.div_ceil(2);
        let mut x = g.add(
            OpKind::Conv2d {
                batch,
                h: res,
                w: res,
                c_in: 3,
                c_out: self.stem_width,
                kh: 3,
                kw: 3,
                stride: 2,
            },
            &[input],
        );
        let mut c_in = self.stem_width;
        // Two MBConv stages.
        for (s, (&width, &depth)) in self.conv_widths.iter().zip(&self.conv_depths).enumerate() {
            for layer in 0..depth {
                let stride = if layer == 0 { 2 } else { 1 };
                let cfg = MbConvConfig {
                    batch,
                    h: hw,
                    w: hw,
                    c_in,
                    c_out: width,
                    expansion: 4,
                    kernel: 3,
                    stride,
                    se_ratio: 0.25,
                    act: ActDesc::GELU,
                };
                x = mbconv(&mut g, &cfg, x);
                hw = hw.div_ceil(stride);
                c_in = width;
            }
            let _ = s;
        }
        // Tokenise: the remaining feature map becomes the sequence.
        let mut seq = hw * hw;
        let mut hidden = self.tfm_hidden[0];
        x = g.add(
            OpKind::MatMul {
                m: batch * seq,
                k: c_in,
                n: hidden,
            },
            &[x],
        );
        for (s, (&h, &depth)) in self.tfm_hidden.iter().zip(&self.tfm_depths).enumerate() {
            if s > 0 {
                // Downsample between transformer stages: pool /2 spatially
                // (seq /4) and project to the new hidden size.
                seq = (seq / 4).max(1);
                x = g.add(
                    OpKind::Pool {
                        batch,
                        h: seq * 4,
                        w: 1,
                        c: hidden,
                        window: 2,
                    },
                    &[x],
                );
                x = g.add(
                    OpKind::MatMul {
                        m: batch * seq,
                        k: hidden,
                        n: h,
                    },
                    &[x],
                );
                hidden = h;
            }
            let cfg = TransformerConfig {
                batch,
                seq,
                hidden: h,
                heads: (h / 64).max(1),
                ffn: h * 4,
                act: self.ffn_act.desc(),
                low_rank: 1.0,
                primer_dconv: false,
            };
            for _ in 0..depth {
                x = transformer_block(&mut g, &cfg, x);
            }
        }
        let pooled = g.add(
            OpKind::Pool {
                batch,
                h: seq,
                w: 1,
                c: hidden,
                window: seq.max(1),
            },
            &[x],
        );
        g.add(
            OpKind::MatMul {
                m: batch,
                k: hidden,
                n: 1000,
            },
            &[pooled],
        );
        g.fuse_elementwise();
        g
    }

    /// Parameter count in millions.
    pub fn params_m(&self) -> f64 {
        self.build_graph(1).param_count() / 1e6
    }

    /// Per-image forward FLOPs in billions.
    pub fn flops_b(&self) -> f64 {
        self.build_graph(1).total_flops() / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_spans_table2_parameter_range() {
        let family = CoAtNet::family();
        let p0 = family.first().unwrap().params_m();
        let p5 = family.last().unwrap().params_m();
        assert!((15.0..60.0).contains(&p0), "C0 params {p0}M");
        assert!((500.0..900.0).contains(&p5), "C5 params {p5}M");
        // Monotone growth.
        let params: Vec<f64> = family.iter().map(CoAtNet::params_m).collect();
        assert!(params.windows(2).all(|w| w[0] < w[1]), "{params:?}");
    }

    #[test]
    fn c5_flops_near_table3() {
        let c5 = CoAtNet::family().pop().unwrap();
        let f = c5.flops_b();
        assert!((600.0..1500.0).contains(&f), "C5 FLOPs {f}B vs paper 1012B");
    }

    #[test]
    fn ablation_ladder_matches_table3_shape() {
        let ladder = CoAtNet::table3_ablation();
        assert_eq!(ladder.len(), 4);
        let params: Vec<f64> = ladder.iter().map(CoAtNet::params_m).collect();
        let flops: Vec<f64> = ladder.iter().map(CoAtNet::flops_b).collect();
        // +DeeperConv: slightly more params and FLOPs.
        assert!(params[1] > params[0]);
        assert!(flops[1] > flops[0]);
        // +ResShrink: same params, ~53% fewer FLOPs (paper 1060 -> 474).
        assert!((params[2] - params[1]).abs() < 1.0);
        let drop = flops[2] / flops[1];
        assert!(
            (0.35..0.65).contains(&drop),
            "FLOP drop ratio {drop} vs paper ~0.45"
        );
        // +SquaredReLU: ~no FLOP change.
        assert!((flops[3] / flops[2] - 1.0).abs() < 0.05);
    }

    #[test]
    fn h_family_has_fewer_flops_than_baseline() {
        for (h, b) in CoAtNet::h_family().iter().zip(CoAtNet::family().iter()) {
            assert!(h.flops_b() < b.flops_b(), "{} vs {}", h.name, b.name);
            assert!(h.params_m() > b.params_m(), "deeper conv adds params");
        }
    }

    #[test]
    fn squared_relu_reduces_vpu_work() {
        let ladder = CoAtNet::table3_ablation();
        let relu_like = &ladder[2]; // GELU baseline at shrunk res
        let sq = &ladder[3];
        let v_base = relu_like.build_graph(1).total_cost().vpu_ops;
        let v_sq = sq.build_graph(1).total_cost().vpu_ops;
        assert!(v_sq < v_base);
    }

    #[test]
    fn graph_name_carries_variant() {
        let c0 = &CoAtNet::family()[0];
        assert_eq!(c0.build_graph(1).name(), "CoAtNet-0");
    }
}
