//! # h2o-models — model families & quality surrogates
//!
//! The concrete model families evaluated in §7 of the paper, plus the
//! calibrated quality surrogates the search consumes:
//!
//! * [`coatnet`] — the CoAtNet baselines (C0–C5) and the H2O-NAS-designed
//!   CoAtNet-H family: deeper convolution, resolution shrink, Squared-ReLU
//!   (Table 3's ablation ladder; Figs. 6 and 7).
//! * [`efficientnet`] — EfficientNet-X (B0–B7) and EfficientNet-H with the
//!   4/6 expansion mixture on B5–B7 (Table 4).
//! * [`dlrm`] — a production-style baseline DLRM (MLP-dominated step time)
//!   and the rebalanced DLRM-H (Fig. 8).
//! * [`quality`] — the analytic quality surrogates, calibrated against
//!   Table 3 (vision) and Fig. 8 (DLRM). See DESIGN.md for why surrogates
//!   stand in for real vision training.
//! * [`production`] — the Fig. 10 synthetic production fleet (CV1–CV5,
//!   DLRM1–DLRM3).
//!
//! # Examples
//!
//! ```
//! use h2o_models::coatnet::CoAtNet;
//!
//! let c5 = CoAtNet::family().pop().unwrap();
//! let h5 = CoAtNet::h_family().pop().unwrap();
//! // CoAtNet-H5 halves the compute at slightly more parameters (Fig. 7).
//! assert!(h5.flops_b() < 0.7 * c5.flops_b());
//! assert!(h5.params_m() > c5.params_m());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coatnet;
pub mod dlrm;
pub mod efficientnet;
pub mod production;
pub mod quality;
