//! Criterion micro-benchmarks of the H2O-NAS machinery: the per-step costs
//! that determine how fast a search runs (the paper's "NAS efficiency"
//! axis, §2.2).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use h2o_core::{PerfObjective, Policy, RewardFn, RewardKind};
use h2o_data::{CtrTraffic, CtrTrafficConfig, TrafficSource};
use h2o_eval::{BackendSpec, Domain, EvalBackend};
use h2o_exec::Executor;
use h2o_hwsim::{arch_key, HardwareConfig, Simulator, SystemConfig};
use h2o_models::coatnet::CoAtNet;
use h2o_perfmodel::{PerfModel, PerfTargets, TrainConfig};
use h2o_space::{DlrmSpace, DlrmSpaceConfig, DlrmSupernet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_simulator(c: &mut Criterion) {
    let sim = Simulator::new(HardwareConfig::tpu_v4());
    let graph = CoAtNet::family().pop().unwrap().build_graph(64);
    c.bench_function("simulate CoAtNet-5 training step (graph walk)", |b| {
        b.iter(|| {
            black_box(
                sim.simulate_training(&graph, &SystemConfig::training_pod())
                    .time,
            )
        })
    });
    let space = DlrmSpace::new(DlrmSpaceConfig::production());
    let arch = space.decode(&space.baseline());
    c.bench_function("build + simulate production DLRM graph", |b| {
        b.iter(|| {
            let g = arch.build_graph(64, 128);
            black_box(
                sim.simulate_training(&g, &SystemConfig::training_pod())
                    .time,
            )
        })
    });
}

fn bench_policy(c: &mut Criterion) {
    let space = DlrmSpace::new(DlrmSpaceConfig::production());
    let policy = Policy::uniform(space.space());
    let mut rng = StdRng::seed_from_u64(0);
    c.bench_function("policy sample (330-decision DLRM space)", |b| {
        b.iter(|| black_box(policy.sample(&mut rng)))
    });
    let mut policy2 = policy.clone();
    let sample = policy.sample(&mut rng);
    c.bench_function("REINFORCE update (1 sample)", |b| {
        b.iter(|| policy2.reinforce_update(black_box(&[(sample.clone(), 0.1)]), 0.05))
    });
}

fn bench_reward(c: &mut Criterion) {
    let reward = RewardFn::new(
        RewardKind::Relu,
        vec![
            PerfObjective::new("time", 1.0, -2.0),
            PerfObjective::new("size", 1e9, -1.0),
        ],
    );
    c.bench_function("ReLU reward evaluation", |b| {
        b.iter(|| black_box(reward.reward(85.0, &[1.2, 0.9e9])))
    });
}

fn bench_supernet(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut supernet = DlrmSupernet::new(DlrmSpaceConfig::tiny(), 0.05, &mut rng);
    let space = supernet.space().space().clone();
    let sample = space.sample_uniform(&mut rng);
    supernet.apply_sample(&sample);
    let mut traffic = CtrTraffic::new(CtrTrafficConfig::tiny(), 2);
    let batch = traffic.next_batch(64);
    c.bench_function("supernet train_step (batch 64)", |b| {
        b.iter(|| black_box(supernet.train_step(&batch)))
    });
    c.bench_function("supernet apply_sample (masking)", |b| {
        b.iter(|| supernet.apply_sample(black_box(&sample)))
    });
}

fn bench_perfmodel(c: &mut Criterion) {
    let mut model = PerfModel::new(64, &[256, 256], 0);
    let xs = model.random_features(64, 64);
    let ys: Vec<PerfTargets> = (0..64)
        .map(|i| PerfTargets {
            training: 1e-3 * (i + 1) as f64,
            serving: 1e-4,
        })
        .collect();
    model.pretrain(
        &xs,
        &ys,
        TrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 1e-3,
        },
    );
    c.bench_function("perf model inference (2x256 MLP)", |b| {
        b.iter(|| black_box(model.predict(&xs[0])))
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let mut traffic = CtrTraffic::new(CtrTrafficConfig::tiny(), 3);
    c.bench_function("CTR traffic generation (batch 256)", |b| {
        b.iter(|| black_box(traffic.next_batch(256).len()))
    });
}

/// The executor must buy real eval throughput: on a multi-core host a
/// batch of simulator walks sharded over 4 workers should finish well
/// under half the 1-worker time (the speedup DESIGN.md's determinism
/// contract promises for free). On a single-CPU host the two rows instead
/// bound the executor's scheduling overhead: 4 workers may not beat 1, but
/// must stay within ~15% of it.
fn bench_executor(c: &mut Criterion) {
    let graph = CoAtNet::family().swap_remove(2).build_graph(64);
    let system = SystemConfig::training_pod();
    const BATCH: usize = 32;
    for workers in [1usize, 4] {
        let executor = Executor::new(workers);
        let sim = Simulator::new(HardwareConfig::tpu_v4());
        c.bench_function(
            &format!("executor: {BATCH} simulator evals, {workers} worker(s)"),
            |b| {
                b.iter(|| {
                    let jobs: Vec<_> = (0..BATCH)
                        .map(|_| || black_box(sim.simulate_training(&graph, &system).time))
                        .collect();
                    black_box(executor.execute(jobs))
                })
            },
        );
    }
}

/// A memoized re-evaluation must be orders of magnitude cheaper than a
/// simulator walk — that gap is the cache's whole value in a search whose
/// policy keeps resampling the same region.
fn bench_eval_cache(c: &mut Criterion) {
    let space = DlrmSpace::new(DlrmSpaceConfig::production());
    let sample = space.baseline();
    let arch = space.decode(&sample);
    let system = SystemConfig::training_pod();
    let sim = Simulator::new(HardwareConfig::tpu_v4());
    c.bench_function("eval uncached (build + simulate DLRM)", |b| {
        b.iter(|| {
            black_box(
                sim.simulate_training(&arch.build_graph(64, 128), &system)
                    .time,
            )
        })
    });
    let cached = EvalBackend::build(&BackendSpec::Cached { capacity: 1024 }, Domain::Dlrm)
        .expect("cached backend");
    let key = arch_key("dlrm", &sample);
    c.bench_function("eval memoized (EvalCache hit)", |b| {
        b.iter(|| {
            black_box(cached.training_cost(&sample, key, &system, || arch.build_graph(64, 128)))
        })
    });
    let stats = cached.cache().expect("cached backend").stats();
    println!(
        "eval cache after bench: {} hits / {} misses ({:.1}% hit rate)",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
}

/// Hot-path metric recording must stay nanosecond-scale so instrumenting
/// the search loop is free relative to a simulator walk or train step
/// (< 1 µs per record is the budget).
fn bench_obs(c: &mut Criterion) {
    let registry = h2o_obs::Registry::new();
    let counter = registry.counter("bench_counter");
    c.bench_function("obs counter inc (cached handle)", |b| {
        b.iter(|| counter.inc())
    });
    let gauge = registry.gauge("bench_gauge");
    c.bench_function("obs gauge set (cached handle)", |b| {
        b.iter(|| gauge.set(black_box(0.5)))
    });
    let histogram = registry.histogram("bench_histogram");
    c.bench_function("obs histogram record (cached handle)", |b| {
        b.iter(|| histogram.record(black_box(1.2345e-4)))
    });
    c.bench_function("obs counter via registry lookup", |b| {
        b.iter(|| registry.counter("bench_counter").inc())
    });
    let tracer = h2o_obs::Tracer::with_capacity(registry.clone(), 1024);
    c.bench_function("obs span open/close", |b| {
        b.iter(|| tracer.time("bench_span", || black_box(1u64)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_simulator, bench_policy, bench_reward, bench_supernet, bench_perfmodel,
        bench_pipeline, bench_executor, bench_eval_cache, bench_obs
}
criterion_main!(benches);
