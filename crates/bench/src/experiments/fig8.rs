//! Fig. 8 — DLRM-H training step time = MAX(embedding time, DNN time),
//! normalised to the baseline DLRM; paper: ~10 % faster, +0.02 % quality.

use crate::report::{pct, ratio, seconds, Table};
use h2o_hwsim::{HardwareConfig, Simulator, SystemConfig};
use h2o_models::quality::DlrmQualityModel;
use h2o_space::DlrmArch;

/// `(step_time, embedding_branch_time, dnn_branch_time)` for one DLRM on
/// the 128-chip TPUv4 pod at per-chip batch 64.
pub fn step_breakdown(arch: &DlrmArch) -> (f64, f64, f64) {
    let sim = Simulator::new(HardwareConfig::tpu_v4());
    let report = sim.simulate_training(&arch.build_graph(64, 128), &SystemConfig::training_pod());
    let emb: f64 = report
        .breakdown
        .iter()
        .filter(|(k, _)| k.contains("embedding") || k.contains("all_to_all"))
        .map(|(_, v)| v)
        .sum();
    let dnn: f64 = report
        .breakdown
        .iter()
        .filter(|(k, _)| k.contains("matmul") || k.contains("all_reduce"))
        .map(|(_, v)| v)
        .sum();
    (report.time, emb, dnn)
}

/// Runs the experiment and renders the report.
pub fn run() -> String {
    let base = h2o_models::dlrm::baseline();
    let opt = h2o_models::dlrm::h_variant();
    let quality = DlrmQualityModel::new(&base, 85.0);
    let (t_base, emb_base, dnn_base) = step_breakdown(&base);
    let (t_opt, emb_opt, dnn_opt) = step_breakdown(&opt);

    let mut table = Table::new(
        "Fig. 8: DLRM step time = MAX(embedding, DNN), normalised to baseline",
        &[
            "model",
            "step time",
            "embedding time",
            "DNN time",
            "normalised step",
            "quality Δ",
        ],
    );
    table.row(&[
        "DLRM (baseline)".into(),
        seconds(t_base),
        seconds(emb_base),
        seconds(dnn_base),
        ratio(1.0),
        "-".into(),
    ]);
    table.row(&[
        "DLRM-H".into(),
        seconds(t_opt),
        seconds(emb_opt),
        seconds(dnn_opt),
        ratio(t_opt / t_base),
        pct((quality.quality(&opt) - quality.quality(&base)) / 100.0),
    ]);
    let mut out = table.render();
    out.push_str(&format!(
        "\nSpeedup {} (paper ~1.10x). Baseline imbalance DNN/embedding = {:.2}; DLRM-H = {:.2}\n\
         (closer to 1.0 = better overlap of the parallel branches).\n",
        ratio(t_base / t_opt),
        dnn_base / emb_base,
        dnn_opt / emb_opt,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalised_step_below_one() {
        let (t_base, _, _) = step_breakdown(&h2o_models::dlrm::baseline());
        let (t_opt, _, _) = step_breakdown(&h2o_models::dlrm::h_variant());
        let normalised = t_opt / t_base;
        assert!(
            (0.6..0.98).contains(&normalised),
            "normalised step {normalised} (paper ~0.9)"
        );
    }

    #[test]
    fn report_renders() {
        assert!(run().contains("Fig. 8"));
    }
}
