//! §7.3 — the cost of H2O-NAS itself.
//!
//! Paper: "the search cost is ~1.5× that of regular model training. After a
//! candidate architecture has been identified, it has to be retrained
//! without the one-shot model overhead, making the total cost of H2O-NAS
//! about ~2.5× of a vanilla model training" — and "<0.03 % of the total
//! accelerator machine hours used for downstream serving or research
//! training jobs".
//!
//! We account for the same quantities with the simulator: a vanilla
//! training run of the baseline DLRM, a one-shot search run (mean sampled
//! sub-network step + quality-estimation forward + controller overhead),
//! the final retrain, and a representative downstream serving fleet.

use crate::report::{ratio, Table};
use h2o_hwsim::{HardwareConfig, Simulator, SystemConfig};
use h2o_space::{DlrmSpace, DlrmSpaceConfig};

/// Cost accounting in accelerator-hours.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// Vanilla training of the baseline model.
    pub vanilla_hours: f64,
    /// The one-shot search run.
    pub search_hours: f64,
    /// Retraining the discovered architecture from scratch.
    pub retrain_hours: f64,
    /// Search / vanilla ratio (paper ~1.5×).
    pub search_ratio: f64,
    /// (Search + retrain) / vanilla ratio (paper ~2.5×).
    pub total_ratio: f64,
    /// NAS hours as a fraction of a year of downstream serving (paper
    /// < 0.03 %).
    pub downstream_fraction: f64,
}

/// Computes the §7.3 cost accounting from simulated step times.
pub fn evaluate() -> CostReport {
    let mut config = DlrmSpaceConfig::production();
    config.tables.truncate(60);
    let space = DlrmSpace::new(config);
    let sim = Simulator::new(HardwareConfig::tpu_v4());
    let pod = SystemConfig::training_pod();

    // Vanilla training: the baseline architecture for N steps.
    let training_steps = 500_000.0;
    let base_step = sim
        .simulate_training(&space.decode(&space.baseline()).build_graph(64, 128), &pod)
        .time;
    let vanilla_hours = base_step * training_steps * pod.chips as f64 / 3600.0;

    // One-shot search: each step trains the *sampled* sub-network (mean
    // candidate cost over the policy), plus the extra quality-estimation
    // forward pass (~1/3 of a training step) and controller/perf-model
    // overhead — the structure behind the paper's ~1.5x.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let mean_candidate_step: f64 = (0..20)
        .map(|_| {
            let sample = space.space().sample_uniform(&mut rng);
            sim.simulate_training(&space.decode(&sample).build_graph(64, 128), &pod)
                .time
        })
        .sum::<f64>()
        / 20.0;
    let eval_forward_factor = 4.0 / 3.0; // fwd(Q) + fwd+bwd(W) vs fwd+bwd
    let controller_overhead = 1.08; // RL controller + perf-model inference
    let search_hours = mean_candidate_step
        * eval_forward_factor
        * controller_overhead
        * training_steps
        * pod.chips as f64
        / 3600.0;

    // Retrain the winner (≈ baseline-scale model) from scratch.
    let retrain_hours = vanilla_hours;

    // Downstream: the paper's models serve for years on large fleets. Use a
    // deliberately conservative stand-in: 2 000 serving chips for one year.
    let downstream_hours = 2_000.0 * 365.0 * 24.0;

    let search_ratio = search_hours / vanilla_hours;
    CostReport {
        vanilla_hours,
        search_hours,
        retrain_hours,
        search_ratio,
        total_ratio: (search_hours + retrain_hours) / vanilla_hours,
        downstream_fraction: (search_hours + retrain_hours) / downstream_hours,
    }
}

/// Runs the experiment and renders the report.
pub fn run() -> String {
    let r = evaluate();
    let mut table = Table::new(
        "§7.3: cost of H2O-NAS (accelerator-hours, simulated)",
        &["quantity", "this repro", "paper"],
    );
    table.row(&[
        "vanilla training".into(),
        format!("{:.0} h", r.vanilla_hours),
        "1.0x (reference)".into(),
    ]);
    table.row(&[
        "one-shot search".into(),
        format!("{:.0} h ({})", r.search_hours, ratio(r.search_ratio)),
        "~1.5x".into(),
    ]);
    table.row(&[
        "search + retrain".into(),
        format!(
            "{:.0} h ({})",
            r.search_hours + r.retrain_hours,
            ratio(r.total_ratio)
        ),
        "~2.5x".into(),
    ]);
    table.row(&[
        "NAS share of downstream serving".into(),
        format!("{:.3}%", r.downstream_fraction * 100.0),
        "<0.03% (their fleet is larger)".into(),
    ]);
    let mut out = table.render();
    out.push_str(
        "\nReading: a search step costs the sampled candidate's training step plus the\n\
         quality-estimation forward and controller overhead — near the paper's ~1.5x (our\n\
         mean random candidate is bigger than the hand-tuned baseline, hence ~1.9x); with\n\
         the from-scratch retrain it lands near ~2.5x, amortised to noise by serving hours.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_ratios_match_section_7_3() {
        let r = evaluate();
        assert!(
            (1.1..2.4).contains(&r.search_ratio),
            "search ratio {} (paper ~1.5)",
            r.search_ratio
        );
        assert!(
            (2.0..3.5).contains(&r.total_ratio),
            "total ratio {} (paper ~2.5)",
            r.total_ratio
        );
        assert!(
            r.downstream_fraction < 0.05,
            "downstream fraction {}",
            r.downstream_fraction
        );
    }

    #[test]
    fn report_renders() {
        assert!(run().contains("7.3"));
    }
}
