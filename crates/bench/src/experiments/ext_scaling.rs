//! "Design for Scale" (§3, §4.2) — parallel-shard scaling of the search.
//!
//! The paper's controller runs on hundreds of accelerators, each sampling
//! its own candidate, with one cross-shard policy update per step. More
//! shards means more reward signal per update: the policy should converge
//! in *fewer steps* (≈ wall-clock on real pods, where shards are parallel
//! hardware). This bench sweeps the shard count at a fixed per-step budget
//! and reports steps-to-threshold.

use crate::report::{env_usize, Table};
use h2o_core::{parallel_search, EvalResult, PerfObjective, RewardFn, RewardKind, SearchConfig};
use h2o_hwsim::{HardwareConfig, Simulator, SystemConfig};
use h2o_models::quality::{DatasetScale, VisionQualityModel};
use h2o_space::{ArchSample, CnnSpace, CnnSpaceConfig};

fn evaluator() -> impl FnMut(&ArchSample) -> EvalResult + Send {
    let space = CnnSpace::new(CnnSpaceConfig::default());
    let sim = Simulator::new(HardwareConfig::tpu_v4());
    let quality = VisionQualityModel::new(DatasetScale::Medium);
    move |sample: &ArchSample| {
        let arch = space.decode(sample);
        let graph = arch.build_graph(64);
        EvalResult {
            quality: quality.accuracy_of_cnn(&arch, graph.param_count() / 1e6),
            perf_values: vec![
                sim.simulate_training(&graph, &SystemConfig::training_pod())
                    .time,
            ],
        }
    }
}

/// Runs the search at a shard count; returns `(steps_to_threshold,
/// final_mean_reward)` where the threshold is a fixed mean reward.
pub fn scaling_point(shards: usize, steps: usize, threshold: f64) -> (Option<usize>, f64) {
    let space = CnnSpace::new(CnnSpaceConfig::default());
    let reward = RewardFn::new(
        RewardKind::Relu,
        vec![PerfObjective::new("step", 0.10, -10.0)],
    );
    let cfg = SearchConfig {
        steps,
        shards,
        policy_lr: 0.06,
        baseline_momentum: 0.9,
        seed: 55,
        workers: 0,
    };
    let outcome = parallel_search(space.space(), &reward, |_| evaluator(), &cfg);
    let hit = outcome
        .history
        .iter()
        .find(|h| h.mean_reward >= threshold)
        .map(|h| h.step);
    (
        hit,
        outcome
            .history
            .last()
            .map(|h| h.mean_reward)
            .unwrap_or(f64::NEG_INFINITY),
    )
}

/// Runs the experiment and renders the report.
pub fn run() -> String {
    let steps = env_usize("H2O_EXT_SCALE_STEPS", 120);
    let threshold = 93.0;
    let mut table = Table::new(
        "Extension (§4.2 scale): cross-shard parallelism vs convergence",
        &["shards", "steps to mean reward ≥ 93", "final mean reward"],
    );
    for shards in [1usize, 4, 16] {
        let (hit, final_reward) = scaling_point(shards, steps, threshold);
        table.row(&[
            shards.to_string(),
            hit.map(|s| s.to_string())
                .unwrap_or_else(|| format!("not in {steps}")),
            format!("{final_reward:.2}"),
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "\nReading: each step is one cross-shard policy update (one wall-clock round on a\n\
         pod). More parallel shards per update means fewer rounds to the same reward —\n\
         the property that lets H2O-NAS exploit hundreds of accelerators (§4.2).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_shards_converge_in_fewer_or_equal_steps() {
        let (hit_1, final_1) = scaling_point(2, 80, 93.0);
        let (hit_16, final_16) = scaling_point(16, 80, 93.0);
        match (hit_1, hit_16) {
            (Some(a), Some(b)) => assert!(b <= a + 5, "16 shards {b} vs 2 shards {a}"),
            (None, Some(_)) => {} // wide converged, narrow did not: fine
            (None, None) => {
                assert!(final_16 >= final_1 - 0.5, "{final_16} vs {final_1}")
            }
            (Some(_), None) => panic!("16 shards must not converge slower than 2"),
        }
    }
}
