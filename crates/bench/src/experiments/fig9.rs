//! Fig. 9 — performance, power and energy of the H2O-NAS families,
//! normalised to their baselines.
//!
//! Paper: CoAtNet-H is 1.54× faster yet draws 15 % *less* power (46 % less
//! energy); DLRM-H 1.10×/−7 %/−15 %; EfficientNet-H ≈ equal power, energy
//! wins from speed alone.

use crate::report::{geomean, ratio, Table};
use h2o_graph::Graph;
use h2o_hwsim::{HardwareConfig, SimReport, Simulator, SystemConfig};
use h2o_models::coatnet::CoAtNet;
use h2o_models::efficientnet::EfficientNet;

fn train_report(graph: &Graph) -> SimReport {
    let sim = Simulator::new(HardwareConfig::tpu_v4());
    sim.simulate_training(graph, &SystemConfig::training_pod())
}

/// Geomean (perf, power, energy) ratios of optimized vs baseline graphs.
fn family_ratios(base: &[Graph], opt: &[Graph]) -> (f64, f64, f64) {
    let mut perf = Vec::new();
    let mut power = Vec::new();
    let mut energy = Vec::new();
    for (b, o) in base.iter().zip(opt) {
        let rb = train_report(b);
        let ro = train_report(o);
        perf.push(rb.time / ro.time);
        power.push(ro.avg_power / rb.avg_power);
        energy.push(ro.energy / rb.energy);
    }
    (geomean(&perf), geomean(&power), geomean(&energy))
}

/// Runs the experiment and renders the report.
pub fn run() -> String {
    let mut table = Table::new(
        "Fig. 9: perf / power / energy, optimized models normalised to baselines (training, TPUv4)",
        &[
            "family",
            "perf",
            "power",
            "energy",
            "paper perf/power/energy",
        ],
    );
    // EfficientNet-H vs -X.
    let enet_base: Vec<Graph> = EfficientNet::x_family()
        .iter()
        .map(|m| m.build_graph(64))
        .collect();
    let enet_opt: Vec<Graph> = EfficientNet::h_family()
        .iter()
        .map(|m| m.build_graph(64))
        .collect();
    let (p, w, e) = family_ratios(&enet_base, &enet_opt);
    table.row(&[
        "EfficientNet-H".into(),
        ratio(p),
        ratio(w),
        ratio(e),
        "1.06x / ~1.0x / 0.94x".into(),
    ]);
    // CoAtNet-H vs CoAtNet.
    let cnet_base: Vec<Graph> = CoAtNet::family()
        .iter()
        .map(|m| m.build_graph(64))
        .collect();
    let cnet_opt: Vec<Graph> = CoAtNet::h_family()
        .iter()
        .map(|m| m.build_graph(64))
        .collect();
    let (p, w, e) = family_ratios(&cnet_base, &cnet_opt);
    table.row(&[
        "CoAtNet-H".into(),
        ratio(p),
        ratio(w),
        ratio(e),
        "1.54x / 0.85x / 0.54x".into(),
    ]);
    // DLRM-H vs DLRM.
    let dlrm_base = vec![h2o_models::dlrm::baseline().build_graph(64, 128)];
    let dlrm_opt = vec![h2o_models::dlrm::h_variant().build_graph(64, 128)];
    let (p, w, e) = family_ratios(&dlrm_base, &dlrm_opt);
    table.row(&[
        "DLRM-H".into(),
        ratio(p),
        ratio(w),
        ratio(e),
        "1.10x / 0.93x / 0.85x".into(),
    ]);
    let mut out = table.render();
    out.push_str(
        "\nReading: faster H2O-NAS models draw no more (often less) power because they\n\
         trade matrix-unit work for on-chip CMEM traffic, which costs ~10x less energy\n\
         per byte than HBM (§7.2's counter-intuitive result).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coatnet_h_saves_energy_and_power() {
        let base: Vec<Graph> = CoAtNet::family()
            .iter()
            .map(|m| m.build_graph(64))
            .collect();
        let opt: Vec<Graph> = CoAtNet::h_family()
            .iter()
            .map(|m| m.build_graph(64))
            .collect();
        let (perf, power, energy) = family_ratios(&base, &opt);
        assert!(perf > 1.3, "perf {perf} (paper 1.54)");
        assert!(power < 1.05, "power must not rise: {power} (paper 0.85)");
        assert!(energy < 0.75, "energy {energy} (paper 0.54)");
    }

    #[test]
    fn dlrm_h_saves_energy() {
        let base = vec![h2o_models::dlrm::baseline().build_graph(64, 128)];
        let opt = vec![h2o_models::dlrm::h_variant().build_graph(64, 128)];
        let (perf, _power, energy) = family_ratios(&base, &opt);
        assert!(perf > 1.05, "perf {perf} (paper 1.10)");
        assert!(energy < 1.0, "energy {energy} (paper 0.85)");
    }

    #[test]
    fn report_renders() {
        assert!(run().contains("Fig. 9"));
    }
}
