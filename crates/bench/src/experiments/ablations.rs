//! Ablation benches for the design choices DESIGN.md calls out (beyond
//! Fig. 5's reward ablation, which has its own experiment):
//!
//! * **Unified single-step vs TuNAS alternating two-step** (Fig. 2): at an
//!   equal *total data budget*, the unified algorithm gets twice the policy
//!   updates because it does not burn a separate validation stream.
//! * **Weight sharing vs per-candidate training**: under an equal batch
//!   budget, a shared super-network gives every candidate far more
//!   effective training than isolated per-candidate training — the premise
//!   of one-shot NAS (§5.1.2).

use crate::report::{env_usize, Table};
use h2o_core::{tunas_search, unified_search, OneShotConfig, PerfObjective, RewardFn, RewardKind};
use h2o_data::{CtrTraffic, CtrTrafficConfig, InMemoryPipeline, TrafficSource};
use h2o_space::{ArchSample, DlrmSpaceConfig, DlrmSupernet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn reward_and_perf(supernet: &DlrmSupernet) -> (RewardFn, impl Fn(&ArchSample) -> Vec<f64> + Sync) {
    let space = supernet.space().clone();
    let base_size = space.decode(&space.baseline()).model_size_bytes();
    let reward = RewardFn::new(
        RewardKind::Relu,
        vec![PerfObjective::new("size", base_size, -2.0)],
    );
    (reward, move |sample: &ArchSample| {
        vec![space.decode(sample).model_size_bytes()]
    })
}

/// Evaluates an architecture's AUC after applying it to a trained supernet,
/// averaged over fresh evaluation batches.
fn eval_auc(supernet: &mut DlrmSupernet, arch: &ArchSample, seed: u64) -> f64 {
    let mut stream = CtrTraffic::new(CtrTrafficConfig::tiny(), seed);
    supernet.apply_sample(arch);
    let mut total = 0.0;
    const BATCHES: usize = 8;
    for _ in 0..BATCHES {
        let batch = stream.next_batch(256);
        let (_, auc) = supernet.evaluate(&batch);
        total += auc;
    }
    total / BATCHES as f64
}

/// Unified vs TuNAS at equal data budgets. Returns
/// `(unified_auc, tunas_auc, unified_examples, tunas_examples)`.
pub fn single_step_ablation(steps: usize) -> (f64, f64, u64, u64) {
    let cfg = OneShotConfig {
        steps,
        shards: 4,
        batch_size: 64,
        seed: 1,
        ..Default::default()
    };

    // Unified: one stream, every batch used for both α and W.
    let mut rng = StdRng::seed_from_u64(21);
    let mut supernet_u = DlrmSupernet::new(DlrmSpaceConfig::tiny(), 0.05, &mut rng);
    let pipeline = InMemoryPipeline::new(CtrTraffic::new(CtrTrafficConfig::tiny(), 50));
    let (reward, perf) = reward_and_perf(&supernet_u);
    let outcome_u = unified_search(&mut supernet_u, &pipeline, &reward, perf, &cfg);
    let unified_examples = pipeline.stats().examples;

    // TuNAS: two streams; halve the steps so the total examples consumed
    // match the unified run.
    let mut rng = StdRng::seed_from_u64(21);
    let mut supernet_t = DlrmSupernet::new(DlrmSpaceConfig::tiny(), 0.05, &mut rng);
    let mut train = CtrTraffic::new(CtrTrafficConfig::tiny(), 51);
    let mut valid = CtrTraffic::new(CtrTrafficConfig::tiny(), 52);
    let cfg_t = OneShotConfig {
        steps: steps / 2,
        ..cfg
    };
    let (reward, perf) = reward_and_perf(&supernet_t);
    let outcome_t = tunas_search(
        &mut supernet_t,
        &mut train,
        &mut valid,
        &reward,
        perf,
        &cfg_t,
    );
    let tunas_examples = train.examples_produced() + valid.examples_produced();

    let auc_u = eval_auc(&mut supernet_u, &outcome_u.best, 99);
    let auc_t = eval_auc(&mut supernet_t, &outcome_t.best, 99);
    (auc_u, auc_t, unified_examples, tunas_examples)
}

/// Weight sharing vs isolated training at an equal batch budget. Returns
/// `(shared_mean_auc, isolated_mean_auc)` over the same candidate set.
pub fn weight_sharing_ablation(budget_batches: usize) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(7);
    let space = h2o_space::DlrmSpace::new(DlrmSpaceConfig::tiny());
    let candidates: Vec<ArchSample> = (0..4)
        .map(|_| space.space().sample_uniform(&mut rng))
        .collect();

    // Shared: one supernet, the whole budget, candidates interleaved.
    let mut shared = DlrmSupernet::new(DlrmSpaceConfig::tiny(), 0.05, &mut rng);
    let mut stream = CtrTraffic::new(CtrTrafficConfig::tiny(), 60);
    for i in 0..budget_batches {
        shared.apply_sample(&candidates[i % candidates.len()]);
        let batch = stream.next_batch(64);
        shared.train_step(&batch);
    }
    let shared_auc: f64 = candidates
        .iter()
        .map(|c| eval_auc(&mut shared, c, 98))
        .sum::<f64>()
        / candidates.len() as f64;

    // Isolated: a fresh network per candidate, budget split evenly.
    let per_candidate = budget_batches / candidates.len();
    let mut isolated_auc = 0.0;
    for candidate in &candidates {
        let mut net = DlrmSupernet::new(DlrmSpaceConfig::tiny(), 0.05, &mut rng);
        let mut stream = CtrTraffic::new(CtrTrafficConfig::tiny(), 61);
        net.apply_sample(candidate);
        for _ in 0..per_candidate {
            let batch = stream.next_batch(64);
            net.train_step(&batch);
        }
        isolated_auc += eval_auc(&mut net, candidate, 98);
    }
    (shared_auc, isolated_auc / candidates.len() as f64)
}

/// Runs both ablations and renders the report.
pub fn run() -> String {
    let steps = env_usize("H2O_ABL_STEPS", 120);
    let (auc_u, auc_t, ex_u, ex_t) = single_step_ablation(steps);
    let mut t1 = Table::new(
        "Ablation: unified single-step vs TuNAS alternating (equal data budget)",
        &[
            "algorithm",
            "final-arch AUC",
            "examples consumed",
            "streams needed",
        ],
    );
    t1.row(&[
        "unified (H2O-NAS)".into(),
        format!("{auc_u:.4}"),
        ex_u.to_string(),
        "1".into(),
    ]);
    t1.row(&[
        "alternating (TuNAS)".into(),
        format!("{auc_t:.4}"),
        ex_t.to_string(),
        "2".into(),
    ]);
    let mut out = t1.render();

    let budget = env_usize("H2O_ABL_BUDGET", 160);
    let (shared, isolated) = weight_sharing_ablation(budget);
    let mut t2 = Table::new(
        "Ablation: weight sharing vs isolated candidate training (equal batch budget)",
        &["scheme", "mean candidate AUC"],
    );
    t2.row(&["shared super-network".into(), format!("{shared:.4}")]);
    t2.row(&["isolated per-candidate".into(), format!("{isolated:.4}")]);
    out.push_str(&t2.render());
    out.push_str(
        "\nExpected shape: unified ≥ alternating at equal data (no validation stream tax);\n\
         shared ≫ isolated (every batch trains weights some candidate reuses).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unified_matches_or_beats_tunas_at_equal_data() {
        let (auc_u, auc_t, ex_u, ex_t) = single_step_ablation(60);
        // Budgets must actually match (within one step's worth).
        let budget_gap = (ex_u as f64 - ex_t as f64).abs() / ex_u as f64;
        assert!(budget_gap < 0.05, "{ex_u} vs {ex_t}");
        assert!(auc_u > auc_t - 0.03, "unified {auc_u} vs tunas {auc_t}");
    }

    #[test]
    fn weight_sharing_beats_isolated_training() {
        let (shared, isolated) = weight_sharing_ablation(80);
        assert!(
            shared > isolated - 0.01,
            "shared {shared} vs isolated {isolated}"
        );
    }
}
