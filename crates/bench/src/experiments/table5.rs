//! Table 5 — search-space definitions and sizes.
//!
//! Paper sizes: convolutional ≈ (302400)⁷·8 ≈ O(10³⁹); DLRM ≈ 7^O(300) ·
//! (7·10·10)^O(10) ≈ O(10²⁸²); transformer ≈ 17920² ≈ O(10⁸); hybrid ViT
//! ≈ O(10²¹).

use crate::report::Table;
use h2o_space::{CnnSpace, CnnSpaceConfig, DlrmSpace, DlrmSpaceConfig, VitSpace, VitSpaceConfig};

/// `(name, decisions, log10 size, paper log10)` for every space.
pub fn space_sizes() -> Vec<(&'static str, usize, f64, f64)> {
    let cnn = CnnSpace::new(CnnSpaceConfig::default());
    let dlrm = DlrmSpace::new(DlrmSpaceConfig::production());
    let tfm = VitSpace::new(VitSpaceConfig::pure());
    let hybrid = VitSpace::new(VitSpaceConfig::hybrid());
    vec![
        (
            "convolutional (7 blocks)",
            cnn.space().num_decisions(),
            cnn.space().log10_size(),
            39.0,
        ),
        (
            "DLRM (production)",
            dlrm.space().num_decisions(),
            dlrm.space().log10_size(),
            282.0,
        ),
        (
            "transformer (2 TFM blocks)",
            tfm.space().num_decisions(),
            tfm.space().log10_size(),
            8.0,
        ),
        (
            "hybrid ViT (2 conv + 2 TFM)",
            hybrid.space().num_decisions(),
            hybrid.space().log10_size(),
            21.0,
        ),
    ]
}

/// Runs the experiment and renders the report.
pub fn run() -> String {
    let mut table = Table::new(
        "Table 5: search-space sizes",
        &[
            "space",
            "categorical decisions",
            "log10(candidates)",
            "paper log10",
        ],
    );
    for (name, decisions, log, paper) in space_sizes() {
        table.row(&[
            name.to_string(),
            decisions.to_string(),
            format!("{log:.1}"),
            format!("~{paper:.0}"),
        ]);
    }
    let mut out = table.render();
    let cnn = CnnSpace::new(CnnSpaceConfig::default());
    let mut dims = Table::new(
        "Table 5 detail: per-block convolutional decisions (product = 302400)",
        &["decision", "choices"],
    );
    for d in cnn.space().decisions().iter().take(10) {
        dims.row(&[d.name.replace("block0/", ""), d.choices.to_string()]);
    }
    out.push_str(&dims.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_paper_orders_of_magnitude() {
        for (name, _, log, paper) in space_sizes() {
            assert!(
                (log - paper).abs() < 2.0,
                "{name}: log10 {log} vs paper ~{paper}"
            );
        }
    }

    #[test]
    fn report_renders() {
        assert!(run().contains("Table 5"));
    }
}
