//! Fig. 7 — hardware-counter analysis of CoAtNet-H5 vs CoAtNet-5 on TPUv4.
//!
//! Paper ratios (C-H5 / C5): speedup 1.84×, compute rate (FLOPS) 0.86×,
//! total compute (FLOPs) 0.47×, total memory bandwidth 1.20×, CMEM
//! bandwidth 5.3×, HBM traffic 0.65×.

use crate::report::{ratio, Table};
use h2o_hwsim::{HardwareConfig, SimReport, Simulator, SystemConfig};
use h2o_models::coatnet::CoAtNet;

/// Simulated training-step counters for one model at per-chip batch 64.
pub fn counters(model: &CoAtNet) -> SimReport {
    let sim = Simulator::new(HardwareConfig::tpu_v4());
    sim.simulate_training(&model.build_graph(64), &SystemConfig::training_pod())
}

/// Runs the experiment and renders the report.
pub fn run() -> String {
    let (Some(c5), Some(h5)) = (CoAtNet::family().pop(), CoAtNet::h_family().pop()) else {
        return "Fig. 7: CoAtNet families are empty — nothing to compare".to_string();
    };
    let base = counters(&c5);
    let opt = counters(&h5);

    let mut table = Table::new(
        "Fig. 7: C-H5 counters normalised to C5 (training step, TPUv4, batch 64)",
        &["metric", "C5 (raw)", "C-H5 (raw)", "C-H5 / C5", "paper"],
    );
    let rows: Vec<(&str, f64, f64, &str)> = vec![
        ("speedup (1/time)", 1.0 / base.time, 1.0 / opt.time, "1.84x"),
        (
            "compute rate (TFLOPS)",
            base.achieved_flops_rate / 1e12,
            opt.achieved_flops_rate / 1e12,
            "0.86x",
        ),
        (
            "total compute (TFLOPs)",
            base.flops / 1e12,
            opt.flops / 1e12,
            "0.47x",
        ),
        (
            "total mem BW (GB/s)",
            base.total_mem_bw() / 1e9,
            opt.total_mem_bw() / 1e9,
            "1.20x",
        ),
        (
            "CMEM BW (GB/s)",
            base.cmem_bw_used / 1e9,
            opt.cmem_bw_used / 1e9,
            "5.30x",
        ),
        (
            "HBM traffic (GB/step)",
            base.hbm_bytes / 1e9,
            opt.hbm_bytes / 1e9,
            "0.65x",
        ),
    ];
    for (name, b, o, paper) in rows {
        table.row(&[
            name.to_string(),
            format!("{b:.2}"),
            format!("{o:.2}"),
            ratio(o / b),
            paper.to_string(),
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "\nReading: total compute halves and memory traffic shifts from HBM into on-chip\n\
         CMEM (Fig. 9's power story follows from CMEM bytes being ~10x cheaper in energy).\n\
         Known deviation: the paper measures a 14% compute-rate DROP for C-H5; our roofline\n\
         model instead predicts a small rate increase (the shrunk working set is less\n\
         memory-bound), so our speedup overshoots the paper's 1.84x. The pipeline-level\n\
         inefficiencies behind the paper's rate drop are outside this simulator's scope.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_ratios_match_paper_shape() {
        let base = counters(&CoAtNet::family().pop().unwrap());
        let opt = counters(&CoAtNet::h_family().pop().unwrap());
        let speedup = base.time / opt.time;
        assert!(
            (1.4..3.0).contains(&speedup),
            "speedup {speedup} (paper 1.84)"
        );
        let flops_ratio = opt.flops / base.flops;
        assert!(
            (0.3..0.7).contains(&flops_ratio),
            "FLOPs ratio {flops_ratio} (paper 0.47)"
        );
        let hbm_ratio = opt.hbm_bytes / base.hbm_bytes;
        assert!(
            hbm_ratio < 1.0,
            "HBM traffic must drop: {hbm_ratio} (paper 0.65)"
        );
        let cmem_ratio = (opt.cmem_bw_used / base.cmem_bw_used.max(1.0)).max(0.0);
        assert!(
            cmem_ratio > 1.2,
            "CMEM bandwidth must rise: {cmem_ratio} (paper 5.3)"
        );
    }

    #[test]
    fn report_renders() {
        assert!(run().contains("Fig. 7"));
    }
}
