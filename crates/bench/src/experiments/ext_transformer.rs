//! Extension: searching the pure transformer space (§7.1.1's claim that
//! the ViT machinery transfers to "transformer-based NLP models" — the
//! transformer space "can be used in isolation to search for pure VIT or
//! transformer based NLP models", Appendix A).
//!
//! Searches the 2-block transformer space (O(10⁸), Table 5) for a model
//! matching a baseline's quality at a lower training step time, and
//! reports which hardware-friendly options the controller picks — the
//! paper's CoAtNet-H result predicts Squared ReLU and moderate sequence
//! pooling should be popular.

use crate::report::{env_usize, ratio, Table};
use h2o_core::{parallel_search, EvalResult, PerfObjective, RewardFn, RewardKind, SearchConfig};
use h2o_hwsim::{HardwareConfig, Simulator, SystemConfig};
use h2o_models::quality::{DatasetScale, VisionQualityModel};
use h2o_space::{ArchSample, VitSpace, VitSpaceConfig};

const SEQ: usize = 512; // NLP-style sequence length
const BATCH: usize = 32;

fn evaluate_sample(
    space: &VitSpace,
    sim: &Simulator,
    quality: &VisionQualityModel,
    sample: &ArchSample,
) -> (f64, f64, f64) {
    let arch = space.decode(sample);
    let graph = arch.build_graph(BATCH, SEQ);
    let step = sim
        .simulate_training(&graph, &SystemConfig::training_pod())
        .time;
    let q = quality.accuracy_of_vit(&arch, graph.param_count() / 1e6);
    (q, step, graph.param_count())
}

/// Baseline sample: hidden 512, full rank, GELU, no pooling, no primer,
/// neutral depth for both blocks.
pub fn baseline_sample() -> ArchSample {
    let mut s = Vec::new();
    for _ in 0..2 {
        s.extend_from_slice(&[7, 9, 2, 0, 0, 3]);
    }
    s
}

/// Runs the experiment and renders the report.
pub fn run() -> String {
    let space = VitSpace::new(VitSpaceConfig::pure());
    let sim = Simulator::new(HardwareConfig::tpu_v4());
    let quality = VisionQualityModel::new(DatasetScale::Medium);
    let base = baseline_sample();
    let (base_q, base_t, base_p) = evaluate_sample(&space, &sim, &quality, &base);

    let reward = RewardFn::new(
        RewardKind::Relu,
        vec![PerfObjective::new("step_time", base_t * 0.7, -8.0)],
    );
    let cfg = SearchConfig {
        steps: env_usize("H2O_EXT_TFM_STEPS", 150),
        shards: 8,
        policy_lr: 0.07,
        baseline_momentum: 0.9,
        seed: 17,
        workers: 0,
    };
    let make = |_shard: usize| {
        let space = VitSpace::new(VitSpaceConfig::pure());
        let sim = Simulator::new(HardwareConfig::tpu_v4());
        move |sample: &ArchSample| {
            let (q, t, _) = evaluate_sample(&space, &sim, &quality, sample);
            EvalResult {
                quality: q,
                perf_values: vec![t],
            }
        }
    };
    let outcome = parallel_search(space.space(), &reward, make, &cfg);
    let best = space.decode(&outcome.best);
    let (best_q, best_t, best_p) = evaluate_sample(&space, &sim, &quality, &outcome.best);

    let mut table = Table::new(
        "Extension: transformer(-NLP) search over the pure TFM space (seq 512)",
        &[
            "model",
            "quality",
            "step time (ms)",
            "params (M)",
            "speedup",
        ],
    );
    table.row(&[
        "baseline (512h, GELU, full rank)".into(),
        format!("{base_q:.1}%"),
        format!("{:.1}", base_t * 1e3),
        format!("{:.0}", base_p / 1e6),
        "-".into(),
    ]);
    table.row(&[
        "searched".into(),
        format!("{best_q:.1}%"),
        format!("{:.1}", best_t * 1e3),
        format!("{:.0}", best_p / 1e6),
        ratio(base_t / best_t),
    ]);
    let mut out = table.render();
    out.push_str("\nsearched architecture choices:\n");
    for (i, block) in best.tfm_blocks.iter().enumerate() {
        out.push_str(&format!(
            "  block {i}: hidden {} x{} layers, {:?}, rank {:.1}, pool={}, primer={}\n",
            block.hidden, block.layers, block.act, block.low_rank, block.seq_pool, block.primer
        ));
    }
    out.push_str(
        "\nExpected shape: ≥1.3x faster at neutral-or-better quality; cheap activations\n\
         (ReLU/Squared-ReLU families) and/or sequence pooling favoured — the same moves\n\
         H2O-NAS made on CoAtNet-H (§7.1.1).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transformer_search_finds_faster_neutral_model() {
        std::env::set_var("H2O_EXT_TFM_STEPS", "80");
        let space = VitSpace::new(VitSpaceConfig::pure());
        let sim = Simulator::new(HardwareConfig::tpu_v4());
        let quality = VisionQualityModel::new(DatasetScale::Medium);
        let base = baseline_sample();
        let (base_q, base_t, _) = evaluate_sample(&space, &sim, &quality, &base);
        let r = run();
        assert!(r.contains("searched"));
        // Re-derive the outcome cheaply: just confirm the baseline is valid
        // and quality/step measurable.
        assert!(base_q > 50.0 && base_t > 0.0);
    }

    #[test]
    fn baseline_sample_is_valid() {
        let space = VitSpace::new(VitSpaceConfig::pure());
        assert!(space.space().validate(&baseline_sample()).is_ok());
    }
}
