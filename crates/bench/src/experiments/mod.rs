//! One module per paper table/figure, each exposing `run() -> String`.

pub mod ablations;
pub mod ext_baselines;
pub mod ext_codesign;
pub mod ext_cost;
pub mod ext_scaling;
pub mod ext_serving;
pub mod ext_transformer;
pub mod ext_universal;
pub mod fig10;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod full_pipeline;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
