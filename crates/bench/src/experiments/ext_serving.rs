//! Extension: simultaneous training + serving + memory optimisation.
//!
//! §6.1 motivates the single-sided ReLU reward with exactly this scenario:
//! "it helps us optimize both training/serving performance (e.g.,
//! throughput and latency) and memory capacity simultaneously for
//! large-scale DLRM models. The more constraints we have, the sparser the
//! search space is." This bench runs the three-objective DLRM search
//! (training step time on the TPUv4 pod, serving P99 latency on a single
//! TPUv4i, serving model size) and shows the ReLU reward navigating the
//! sparse feasible region where the absolute reward stalls.

use crate::report::{env_usize, pct, Table};
use h2o_core::{parallel_search, EvalResult, PerfObjective, RewardFn, RewardKind, SearchConfig};
use h2o_hwsim::{HardwareConfig, Simulator, SystemConfig};
use h2o_models::quality::DlrmQualityModel;
use h2o_space::{ArchSample, DlrmSpace, DlrmSpaceConfig};

fn space() -> DlrmSpace {
    let mut config = DlrmSpaceConfig::production();
    config
        .tables
        .truncate(env_usize("H2O_EXT_SERVE_TABLES", 40));
    DlrmSpace::new(config)
}

/// `(train_step, p99_serving, size_bytes)` for a sample.
fn measure(space: &DlrmSpace, sample: &ArchSample) -> (f64, f64, f64) {
    let arch = space.decode(sample);
    let train_sim = Simulator::new(HardwareConfig::tpu_v4());
    let serve_sim = Simulator::new(HardwareConfig::tpu_v4i());
    let train = train_sim
        .simulate_training(&arch.build_graph(64, 128), &SystemConfig::training_pod())
        .time;
    let p99 = serve_sim.p99_latency(&arch.build_graph(16, 1));
    (train, p99, arch.model_size_bytes())
}

/// Runs one three-objective search; returns `(feasible_fraction,
/// best_feasible_quality, winner_measurements)`.
pub fn search(kind: RewardKind, steps: usize) -> (f64, f64, (f64, f64, f64)) {
    let space = space();
    let baseline = space.decode(&space.baseline());
    let (t0, p0, s0) = measure(&space, &space.baseline());
    let quality_model = DlrmQualityModel::new(&baseline, 85.0);
    // Tight targets on all three axes make the feasible region sparse.
    let reward = RewardFn::new(
        kind,
        vec![
            PerfObjective::new("train_step", t0 * 0.9, -6.0),
            PerfObjective::new("serving_p99", p0 * 0.9, -6.0),
            PerfObjective::new("model_size", s0, -4.0),
        ],
    );
    let cfg = SearchConfig {
        steps,
        shards: 8,
        policy_lr: 0.06,
        baseline_momentum: 0.9,
        seed: 77,
        workers: 0,
    };
    let make = |_shard: usize| {
        let space = self::space();
        let quality_model = quality_model.clone();
        move |sample: &ArchSample| {
            let (train, p99, size) = measure(&space, sample);
            EvalResult {
                quality: quality_model.quality(&space.decode(sample)),
                perf_values: vec![train, p99, size],
            }
        }
    };
    let outcome = parallel_search(space.space(), &reward, make, &cfg);
    let half = outcome.evaluated.len() / 2;
    let late = &outcome.evaluated[half..];
    let feasible = late
        .iter()
        .filter(|c| reward.feasible(&c.result.perf_values))
        .count() as f64
        / late.len() as f64;
    let best_quality = late
        .iter()
        .filter(|c| reward.feasible(&c.result.perf_values))
        .map(|c| c.result.quality)
        .fold(f64::NEG_INFINITY, f64::max);
    let winner = measure(&space, &outcome.best);
    (feasible, best_quality, winner)
}

/// Runs the experiment and renders the report.
pub fn run() -> String {
    let steps = env_usize("H2O_EXT_SERVE_STEPS", 100);
    let sp = space();
    let (t0, p0, s0) = measure(&sp, &sp.baseline());
    let mut out = format!(
        "Three-objective DLRM search. Baseline: train {:.2} ms, serving P99 {:.2} ms, size {:.0} MB.\n\
         Targets: 0.9x train, 0.9x serving, 1.0x size (sparse feasible region).\n",
        t0 * 1e3,
        p0 * 1e3,
        s0 / 1e6
    );
    let mut table = Table::new(
        "Extension: ReLU vs absolute reward under three simultaneous objectives",
        &[
            "reward",
            "feasible fraction (late search)",
            "best feasible quality",
            "final train/serve/size vs target",
        ],
    );
    for kind in [RewardKind::Relu, RewardKind::Absolute] {
        let (feasible, quality, (t, p, s)) = search(kind, steps);
        table.row(&[
            format!("{kind:?}"),
            pct(feasible),
            if quality.is_finite() {
                format!("{quality:.2}%")
            } else {
                "none".into()
            },
            format!(
                "{:+.0}% / {:+.0}% / {:+.0}%",
                (t / (t0 * 0.9) - 1.0) * 100.0,
                (p / (p0 * 0.9) - 1.0) * 100.0,
                (s / s0 - 1.0) * 100.0
            ),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nExpected shape: the ReLU reward keeps more late-search candidates inside the\n\
         feasible box (overachieving on one axis is free, so the controller can slide\n\
         along the others), echoing §6.1's argument for multiple objectives.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_reaches_feasibility_under_three_objectives() {
        std::env::set_var("H2O_EXT_SERVE_TABLES", "12");
        let (feasible, _q, (t, p, s)) = search(RewardKind::Relu, 50);
        // Late-search candidates should be mostly feasible, and the winner
        // close to (or inside) the target box on all three axes.
        assert!(feasible > 0.3, "feasible fraction {feasible}");
        let sp = space();
        let (t0, p0, s0) = measure(&sp, &sp.baseline());
        assert!(t <= t0 * 1.05, "train {t} vs target {}", t0 * 0.9);
        assert!(p <= p0 * 1.05, "serve {p} vs target {}", p0 * 0.9);
        assert!(s <= s0 * 1.15, "size {s} vs target {s0}");
    }
}
