//! Table 4 — EfficientNet-H vs EfficientNet-X geomean speedups on three
//! hardware targets; paper: 5 % train TPUv4 (14 % for B5–B7), 6 % serve
//! TPUv4i (16 %), 6 % serve V100 (17 %).

use crate::report::{geomean, Table};
use h2o_hwsim::{HardwareConfig, Simulator, SystemConfig};
use h2o_models::efficientnet::EfficientNet;

/// Per-variant speedups (X time / H time) for (train TPUv4, serve TPUv4i,
/// serve V100).
pub fn speedups() -> Vec<(String, f64, f64, f64)> {
    let train_sim = Simulator::new(HardwareConfig::tpu_v4());
    let serve_v4i = Simulator::new(HardwareConfig::tpu_v4i());
    let serve_v100 = Simulator::new(HardwareConfig::gpu_v100());
    let pod = SystemConfig::training_pod();
    EfficientNet::x_family()
        .iter()
        .zip(EfficientNet::h_family().iter())
        .map(|(x, h)| {
            let gx_train = x.build_graph(64);
            let gh_train = h.build_graph(64);
            let train = train_sim.simulate_training(&gx_train, &pod).time
                / train_sim.simulate_training(&gh_train, &pod).time;
            let gx_serve = x.build_graph(8);
            let gh_serve = h.build_graph(8);
            let v4i = serve_v4i.simulate(&gx_serve).time / serve_v4i.simulate(&gh_serve).time;
            let v100 = serve_v100.simulate(&gx_serve).time / serve_v100.simulate(&gh_serve).time;
            (x.name.replace("EfficientNet-X-", ""), train, v4i, v100)
        })
        .collect()
}

/// Runs the experiment and renders the report.
pub fn run() -> String {
    let per_variant = speedups();
    let mut table = Table::new(
        "Table 4: EfficientNet-H speedup over EfficientNet-X",
        &["variant", "train TPUv4", "serve TPUv4i", "serve GPUv100"],
    );
    for (name, t, s4, s100) in &per_variant {
        table.row(&[
            name.clone(),
            format!("{:+.1}%", (t - 1.0) * 100.0),
            format!("{:+.1}%", (s4 - 1.0) * 100.0),
            format!("{:+.1}%", (s100 - 1.0) * 100.0),
        ]);
    }
    type Row = (String, f64, f64, f64);
    let gm =
        |f: &dyn Fn(&Row) -> f64, rows: &[Row]| geomean(&rows.iter().map(f).collect::<Vec<f64>>());
    let big = &per_variant[5..];
    table.row(&[
        "geomean B0-B7".into(),
        format!(
            "{:+.1}% (paper +5%)",
            (gm(&|r| r.1, &per_variant) - 1.0) * 100.0
        ),
        format!(
            "{:+.1}% (paper +6%)",
            (gm(&|r| r.2, &per_variant) - 1.0) * 100.0
        ),
        format!(
            "{:+.1}% (paper +6%)",
            (gm(&|r| r.3, &per_variant) - 1.0) * 100.0
        ),
    ]);
    table.row(&[
        "geomean B5-B7".into(),
        format!("{:+.1}% (paper +14%)", (gm(&|r| r.1, big) - 1.0) * 100.0),
        format!("{:+.1}% (paper +16%)", (gm(&|r| r.2, big) - 1.0) * 100.0),
        format!("{:+.1}% (paper +17%)", (gm(&|r| r.3, big) - 1.0) * 100.0),
    ]);
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b0_to_b4_unchanged_b5_plus_faster() {
        let rows = speedups();
        for (name, t, s4, s100) in &rows[..5] {
            assert!((t - 1.0).abs() < 1e-9, "{name} train {t}");
            assert!((s4 - 1.0).abs() < 1e-9, "{name} {s4}");
            assert!((s100 - 1.0).abs() < 1e-9, "{name} {s100}");
        }
        for (name, t, s4, s100) in &rows[5..] {
            assert!(*t > 1.03, "{name} train speedup {t} (paper ~14%)");
            assert!(*s4 > 1.03, "{name} serve v4i speedup {s4} (paper ~16%)");
            assert!(
                *s100 > 1.03,
                "{name} serve v100 speedup {s100} (paper ~17%)"
            );
        }
    }

    #[test]
    fn family_geomean_in_paper_ballpark() {
        let rows = speedups();
        let gm = geomean(&rows.iter().map(|r| r.1).collect::<Vec<f64>>());
        assert!(
            (1.01..1.25).contains(&gm),
            "family train geomean {gm} (paper 1.05)"
        );
    }

    #[test]
    fn report_renders() {
        assert!(run().contains("Table 4"));
    }
}
