//! The complete Fig. 1 system, end to end, with every arrow exercised:
//!
//! 1. **Performance-model construction** (④): sample architectures, label
//!    them with the simulator, pretrain the MLP performance model, then
//!    fine-tune it on 20 "deployed hardware" measurements.
//! 2. **One-shot search** (②③⑤): the unified single-step algorithm over
//!    the *real trainable* DLRM super-network on the in-memory pipeline
//!    (①), with the reward's performance signals coming from the
//!    **fine-tuned performance model** — exactly as deployed, because
//!    "individual sub-networks do not exist physically to directly measure
//!    performance on hardware during search" (§6.2).
//! 3. **Validation**: the discovered architecture's *predicted* step time
//!    is checked against the production measurement, and its quality
//!    against fresh traffic.

use crate::report::{env_usize, Table};
use h2o_core::{unified_search, OneShotConfig, PerfObjective, RewardFn, RewardKind};
use h2o_data::{CtrTraffic, CtrTrafficConfig, InMemoryPipeline, TrafficSource};
use h2o_hwsim::{HardwareConfig, ProductionHardware, Simulator, SystemConfig};
use h2o_perfmodel::{Featurizer, PerfModel, PerfTargets, TrainConfig};
use h2o_space::{ArchSample, DlrmSpace, DlrmSpaceConfig, DlrmSupernet};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Outcome of the end-to-end run.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Fine-tuned perf-model NRMSE vs production on held-out archs.
    pub perfmodel_nrmse: f64,
    /// The searched architecture's step time *predicted* by the perf model.
    pub predicted_step: f64,
    /// The same architecture's step time *measured* on production hardware.
    pub measured_step: f64,
    /// Baseline step time measured on production hardware.
    pub baseline_step: f64,
    /// Final-candidate AUC on fresh traffic (the real quality signal).
    pub final_auc: f64,
    /// Pipeline audit: batches fully consumed exactly once.
    pub pipeline_clean: bool,
}

/// Runs the whole system.
pub fn evaluate() -> PipelineResult {
    let space = DlrmSpace::new(DlrmSpaceConfig::tiny());
    let featurizer = Featurizer::from_space(space.space());
    let sim = Simulator::new(HardwareConfig::tpu_v4());
    let pod = SystemConfig::training_pod();
    let production = ProductionHardware::new(HardwareConfig::tpu_v4(), 321);
    let mut rng = StdRng::seed_from_u64(1);

    // --- Stage 1: performance model (pretrain on simulator, finetune on
    //     production measurements). ---
    let n_pretrain = env_usize("H2O_PIPE_PRETRAIN", 1500);
    let mut xs = Vec::new();
    let mut sim_y = Vec::new();
    let mut samples = Vec::new();
    for _ in 0..n_pretrain + 150 {
        let sample = space.space().sample_uniform(&mut rng);
        let graph = space.decode(&sample).build_graph(64, 128);
        let t = sim.simulate_training(&graph, &pod).time;
        xs.push(featurizer.featurize(&sample));
        sim_y.push(PerfTargets {
            training: t,
            serving: t * 0.4,
        });
        samples.push(sample);
    }
    let mut perf_model = PerfModel::new(featurizer.dim(), &[96, 96], 7);
    perf_model.pretrain(
        &xs[..n_pretrain],
        &sim_y[..n_pretrain],
        TrainConfig {
            epochs: 120,
            batch_size: 64,
            lr: 1e-3,
        },
    );
    let ft_idx = PerfModel::choose_finetune_indices_seeded(n_pretrain, 20, 3);
    let measure = |sample: &ArchSample| {
        production.measure_step_time(&space.decode(sample).build_graph(64, 128), &pod)
    };
    let ft_x: Vec<Vec<f32>> = ft_idx.iter().map(|&i| xs[i].clone()).collect();
    let ft_y: Vec<PerfTargets> = ft_idx
        .iter()
        .map(|&i| {
            let t = measure(&samples[i]);
            PerfTargets {
                training: t,
                serving: t * 0.4,
            }
        })
        .collect();
    perf_model.finetune(
        &ft_x,
        &ft_y,
        TrainConfig {
            epochs: 100,
            batch_size: 8,
            lr: 5e-5,
        },
    );
    let hold_x = xs[n_pretrain..].to_vec();
    let hold_y: Vec<PerfTargets> = samples[n_pretrain..]
        .iter()
        .map(|s| {
            let t = measure(s);
            PerfTargets {
                training: t,
                serving: t * 0.4,
            }
        })
        .collect();
    let perfmodel_nrmse = perf_model.evaluate_nrmse(&hold_x, &hold_y).training;

    // --- Stage 2: one-shot search with the perf model in the loop. ---
    let baseline_step = measure(&space.baseline());
    let mut supernet = DlrmSupernet::new(DlrmSpaceConfig::tiny(), 0.05, &mut rng);
    let pipeline = InMemoryPipeline::new(CtrTraffic::new(CtrTrafficConfig::tiny(), 77));
    let reward = RewardFn::new(
        RewardKind::Relu,
        vec![
            PerfObjective::new("train_step_time", baseline_step, -20.0),
            PerfObjective::new(
                "model_size",
                space.decode(&space.baseline()).model_size_bytes(),
                -4.0,
            ),
        ],
    );
    let size_space = space.clone();
    let pm = perf_model.clone();
    let feat = featurizer.clone();
    let perf_of = move |sample: &ArchSample| {
        // The search-loop performance signal: the fine-tuned MLP, NOT the
        // simulator — sub-networks never run on "hardware" during search.
        let predicted = pm.predict(&feat.featurize(sample)).training;
        vec![predicted, size_space.decode(sample).model_size_bytes()]
    };
    let cfg = OneShotConfig {
        steps: env_usize("H2O_PIPE_STEPS", 120),
        shards: 4,
        batch_size: 64,
        seed: 2,
        ..Default::default()
    };
    let outcome = unified_search(&mut supernet, &pipeline, &reward, perf_of, &cfg);
    let pipeline_clean =
        pipeline.in_flight() == 0 && pipeline.stats().policy_used == pipeline.stats().weights_used;

    // --- Stage 3: validate the winner. ---
    let best = outcome.best;
    let predicted_step = perf_model.predict(&featurizer.featurize(&best)).training;
    let measured_step = measure(&best);
    supernet.apply_sample(&best);
    let mut eval = CtrTraffic::new(CtrTrafficConfig::tiny(), 4321);
    let mut auc = 0.0;
    for _ in 0..8 {
        let batch = eval.next_batch(256);
        auc += supernet.evaluate(&batch).1;
    }
    PipelineResult {
        perfmodel_nrmse,
        predicted_step,
        measured_step,
        baseline_step,
        final_auc: auc / 8.0,
        pipeline_clean,
    }
}

/// Runs the experiment and renders the report.
pub fn run() -> String {
    let r = evaluate();
    let mut table = Table::new(
        "Fig. 1 end to end: perf model in the search loop, real supernet, real traffic",
        &["quantity", "value"],
    );
    table.row(&[
        "perf-model NRMSE vs production (held-out)".into(),
        format!("{:.1}%", r.perfmodel_nrmse * 100.0),
    ]);
    table.row(&[
        "baseline step (production)".into(),
        format!("{:.3} ms", r.baseline_step * 1e3),
    ]);
    table.row(&[
        "searched arch, predicted step".into(),
        format!("{:.3} ms", r.predicted_step * 1e3),
    ]);
    table.row(&[
        "searched arch, measured step".into(),
        format!("{:.3} ms", r.measured_step * 1e3),
    ]);
    table.row(&[
        "prediction error on the winner".into(),
        format!(
            "{:+.1}%",
            (r.predicted_step / r.measured_step - 1.0) * 100.0
        ),
    ]);
    table.row(&[
        "final candidate AUC (fresh traffic)".into(),
        format!("{:.4}", r.final_auc),
    ]);
    table.row(&["pipeline audit clean".into(), r.pipeline_clean.to_string()]);
    let mut out = table.render();
    out.push_str(
        "\nThis is the deployed shape of H2O-NAS: the RL controller's performance signals\n\
         come from the fine-tuned MLP (sub-networks never touch hardware during search),\n\
         quality comes from the live super-network on use-once traffic, and the winner's\n\
         prediction is validated against a production measurement afterwards.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_pipeline_is_consistent() {
        std::env::set_var("H2O_PIPE_PRETRAIN", "900");
        std::env::set_var("H2O_PIPE_STEPS", "60");
        let r = evaluate();
        assert!(r.pipeline_clean, "pipeline invariants must hold");
        assert!(
            r.perfmodel_nrmse < 0.25,
            "perf model NRMSE {}",
            r.perfmodel_nrmse
        );
        // The in-loop predictions must be usable: the winner's predicted
        // step is within 30% of its production measurement.
        let err = (r.predicted_step / r.measured_step - 1.0).abs();
        assert!(err < 0.30, "winner prediction error {err}");
        // The search respected the step-time target (ReLU slack allowed).
        assert!(
            r.measured_step <= r.baseline_step * 1.10,
            "{} vs {}",
            r.measured_step,
            r.baseline_step
        );
        assert!(r.final_auc > 0.6, "AUC {}", r.final_auc);
    }
}
