//! Fig. 5 — the single-sided ReLU reward vs the absolute-value reward
//! (TuNAS) on multi-objective DLRM search.
//!
//! Paper setup (§6.1, footnote 3): training step time is the primary
//! objective with targets swept from 0.75× to 1.5× of the baseline DLRM's
//! step time; model size is the secondary objective with a neutral target.
//! Results: the ReLU reward yields a better Pareto front (5a), up to ~13 %
//! better step time per quality bucket (5b), up to ~0.4 % better quality
//! per step-time bucket (5c), and ~1.6 % smaller serving memory.

use crate::report::{env_usize, pct, Table};
use h2o_core::pareto::{bucketize_by_cost, bucketize_by_quality, pareto_front, ParetoPoint};
use h2o_core::{parallel_search, EvalResult, PerfObjective, RewardFn, RewardKind, SearchConfig};
use h2o_hwsim::{HardwareConfig, Simulator, SystemConfig};
use h2o_models::quality::DlrmQualityModel;
use h2o_space::{ArchSample, DlrmSpace, DlrmSpaceConfig};

/// A candidate evaluated during the sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Quality (surrogate percentage).
    pub quality: f64,
    /// Training step time, seconds.
    pub step_time: f64,
    /// Model size, bytes.
    pub size: f64,
}

/// Search space configuration used by the sweep (production-scale, with a
/// table count adjustable via `H2O_FIG5_TABLES`).
fn sweep_space() -> DlrmSpace {
    let mut config = DlrmSpaceConfig::production();
    config.tables.truncate(env_usize("H2O_FIG5_TABLES", 60));
    DlrmSpace::new(config)
}

/// Runs the reward sweep for one reward kind; returns all evaluated points.
pub fn sweep(kind: RewardKind, steps: usize) -> Vec<SweepPoint> {
    let space = sweep_space();
    let baseline_arch = space.decode(&space.baseline());
    let sim = Simulator::new(HardwareConfig::tpu_v4());
    let pod = SystemConfig::training_pod();
    let base_time = sim
        .simulate_training(&baseline_arch.build_graph(64, 128), &pod)
        .time;
    let base_size = baseline_arch.model_size_bytes();
    let quality_model = DlrmQualityModel::new(&baseline_arch, 85.0);

    let mut all = Vec::new();
    for (t_idx, target_ratio) in [0.75f64, 1.0, 1.25, 1.5].into_iter().enumerate() {
        let reward = RewardFn::new(
            kind,
            vec![
                PerfObjective::new("step_time", base_time * target_ratio, -4.0),
                PerfObjective::new("model_size", base_size, -2.0),
            ],
        );
        let cfg = SearchConfig {
            steps,
            shards: 8,
            policy_lr: 0.06,
            baseline_momentum: 0.9,
            seed: 100 + t_idx as u64,
            workers: 0,
        };
        let make_evaluator = |_shard: usize| {
            let space = sweep_space();
            let sim = Simulator::new(HardwareConfig::tpu_v4());
            let quality_model = quality_model.clone();
            move |sample: &ArchSample| {
                let arch = space.decode(sample);
                let step = sim
                    .simulate_training(&arch.build_graph(64, 128), &SystemConfig::training_pod())
                    .time;
                EvalResult {
                    quality: quality_model.quality(&arch),
                    perf_values: vec![step, arch.model_size_bytes()],
                }
            }
        };
        let outcome = parallel_search(space.space(), &reward, make_evaluator, &cfg);
        // Keep the later (converged) half of the search's candidates.
        let half = outcome.evaluated.len() / 2;
        for c in &outcome.evaluated[half..] {
            all.push(SweepPoint {
                quality: c.result.quality,
                step_time: c.result.perf_values[0],
                size: c.result.perf_values[1],
            });
        }
    }
    all
}

fn to_pareto(points: &[SweepPoint]) -> Vec<ParetoPoint> {
    points
        .iter()
        .enumerate()
        .map(|(i, p)| ParetoPoint {
            quality: p.quality,
            cost: p.step_time,
            index: i,
        })
        .collect()
}

/// Runs the experiment and renders the report.
pub fn run() -> String {
    let steps = env_usize("H2O_FIG5_STEPS", 80);
    let relu = sweep(RewardKind::Relu, steps);
    let abs = sweep(RewardKind::Absolute, steps);
    let mut out = String::new();

    // --- 5a: Pareto fronts ---
    let front_relu = pareto_front(&to_pareto(&relu));
    let front_abs = pareto_front(&to_pareto(&abs));
    let mut t5a = Table::new(
        "Fig. 5a: Pareto fronts (quality vs training step time)",
        &[
            "reward",
            "front size",
            "best quality",
            "fastest front point (ms)",
        ],
    );
    for (name, front) in [("ReLU", &front_relu), ("Absolute", &front_abs)] {
        let best_q = front
            .iter()
            .map(|p| p.quality)
            .fold(f64::NEG_INFINITY, f64::max);
        let fastest = front.iter().map(|p| p.cost).fold(f64::INFINITY, f64::min);
        t5a.row(&[
            name.into(),
            front.len().to_string(),
            format!("{best_q:.2}%"),
            format!("{:.2}", fastest * 1e3),
        ]);
    }
    out.push_str(&t5a.render());

    // --- 5b: step time per quality bucket ---
    let buckets_relu = bucketize_by_quality(&to_pareto(&relu), 6);
    let buckets_abs = bucketize_by_quality(&to_pareto(&abs), 6);
    let mut t5b = Table::new(
        "Fig. 5b: mean step time per quality bucket (lower is better; paper: ReLU up to 13% better)",
        &["quality bucket", "ReLU (ms)", "Absolute (ms)", "ReLU advantage"],
    );
    let mut best_time_adv = 0.0f64;
    for (q, t_relu, _) in &buckets_relu {
        // Find the matching absolute bucket by nearest quality midpoint.
        if let Some((_, t_abs, _)) = buckets_abs
            .iter()
            .min_by(|a, b| (a.0 - q).abs().total_cmp(&(b.0 - q).abs()))
        {
            let adv = 1.0 - t_relu / t_abs;
            best_time_adv = best_time_adv.max(adv);
            t5b.row(&[
                format!("{q:.2}%"),
                format!("{:.2}", t_relu * 1e3),
                format!("{:.2}", t_abs * 1e3),
                pct(adv),
            ]);
        }
    }
    out.push_str(&t5b.render());

    // --- 5c: quality per step-time bucket ---
    let qb_relu = bucketize_by_cost(&to_pareto(&relu), 6);
    let qb_abs = bucketize_by_cost(&to_pareto(&abs), 6);
    let mut t5c = Table::new(
        "Fig. 5c: mean quality per step-time bucket (higher is better; paper: ReLU up to +0.4%)",
        &[
            "step-time bucket (ms)",
            "ReLU quality",
            "Absolute quality",
            "ReLU advantage",
        ],
    );
    let mut best_q_adv = f64::NEG_INFINITY;
    for (t, q_relu, _) in &qb_relu {
        if let Some((_, q_abs, _)) = qb_abs
            .iter()
            .min_by(|a, b| (a.0 - t).abs().total_cmp(&(b.0 - t).abs()))
        {
            let adv = q_relu - q_abs;
            best_q_adv = best_q_adv.max(adv);
            t5c.row(&[
                format!("{:.2}", t * 1e3),
                format!("{q_relu:.2}%"),
                format!("{q_abs:.2}%"),
                format!("{adv:+.2}pp"),
            ]);
        }
    }
    out.push_str(&t5c.render());

    // --- serving memory comparison (paper: ReLU 1.6% smaller) ---
    let mean_size = |pts: &[SweepPoint]| pts.iter().map(|p| p.size).sum::<f64>() / pts.len() as f64;
    let size_adv = 1.0 - mean_size(&relu) / mean_size(&abs);
    out.push_str(&format!(
        "\nSummary: max ReLU step-time advantage {} (paper up to 13%); max quality advantage\n\
         {best_q_adv:+.2}pp (paper up to +0.4%); mean model size advantage {} (paper 1.6%).\n",
        pct(best_time_adv),
        pct(size_adv),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::geomean;

    #[test]
    fn relu_front_dominates_absolute_front() {
        // Small-budget smoke version of Fig. 5a: compare dominated areas.
        std::env::set_var("H2O_FIG5_TABLES", "12");
        let relu = sweep(RewardKind::Relu, 30);
        let abs = sweep(RewardKind::Absolute, 30);
        let fr = pareto_front(&to_pareto(&relu));
        let fa = pareto_front(&to_pareto(&abs));
        let ref_cost = relu
            .iter()
            .chain(&abs)
            .map(|p| p.step_time)
            .fold(f64::NEG_INFINITY, f64::max);
        let floor = relu
            .iter()
            .chain(&abs)
            .map(|p| p.quality)
            .fold(f64::INFINITY, f64::min);
        let area_relu = h2o_core::pareto::dominated_area(&fr, ref_cost, floor);
        let area_abs = h2o_core::pareto::dominated_area(&fa, ref_cost, floor);
        assert!(
            area_relu > 0.9 * area_abs,
            "ReLU front should not be dominated: {area_relu} vs {area_abs}"
        );
        let _ = geomean(&[1.0]);
    }
}
