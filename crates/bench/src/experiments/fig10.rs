//! Fig. 10 — zero-touch H2O-NAS over the production fleet.
//!
//! Paper: five production CV models improve 1.29× in training performance
//! and +2.83 % in quality on average; three production DLRMs improve 1.22×
//! and +0.12 %. Quality is the first priority: some models (CV5, DLRM3)
//! accept a performance regression for quality.

use crate::report::{env_usize, geomean, ratio, Table};
use h2o_core::{parallel_search, EvalResult, PerfObjective, RewardFn, RewardKind, SearchConfig};
use h2o_hwsim::{HardwareConfig, Simulator, SystemConfig};
use h2o_models::production::{fleet, ProductionDomain, ProductionModel};
use h2o_models::quality::{DatasetScale, DlrmQualityModel, VisionQualityModel};
use h2o_space::{ArchSample, CnnSpace, DlrmSpace};

/// The per-decision baseline sample of the CNN space: MBConv, 3×3,
/// baseline stride, expansion 6, swish, SE 0.25, skip, depth delta 0,
/// width +1 step, no reshape; resolution 224.
pub fn cnn_baseline_sample(space: &CnnSpace) -> ArchSample {
    let blocks = space.config().stages.len();
    let mut sample = Vec::with_capacity(blocks * 10 + 1);
    for _ in 0..blocks {
        sample.extend_from_slice(&[0, 0, 0, 3, 1, 3, 1, 3, 5, 0]);
    }
    sample.push(0);
    sample
}

/// Outcome for one fleet model.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Model name (CV1..DLRM3).
    pub name: String,
    /// Step-time speedup of the searched model over the baseline.
    pub perf_gain: f64,
    /// Quality delta in percentage points.
    pub quality_gain: f64,
}

/// Searches one fleet model and reports its gains.
pub fn optimize(model: &ProductionModel, steps: usize) -> FleetResult {
    let sim = Simulator::new(HardwareConfig::tpu_v4());
    let pod = SystemConfig::training_pod();
    match &model.domain {
        ProductionDomain::Vision(cfg) => {
            let space = CnnSpace::new(cfg.clone());
            let baseline_sample = cnn_baseline_sample(&space);
            let base_arch = space.decode(&baseline_sample);
            let base_graph = base_arch.build_graph(64);
            let base_time = sim.simulate_training(&base_graph, &pod).time;
            let base_size = base_graph.param_count() * 4.0;
            let quality_model = VisionQualityModel::new(DatasetScale::Medium);
            let base_q = quality_model.accuracy_of_cnn(&base_arch, base_graph.param_count() / 1e6);
            let reward = RewardFn::new(
                RewardKind::Relu,
                vec![
                    PerfObjective::new("step_time", base_time * model.perf_target_ratio, -6.0),
                    PerfObjective::new("model_size", base_size * 1.2, -2.0),
                ],
            );
            let qw = model.quality_weight;
            let make = |_shard: usize| {
                let space = CnnSpace::new(cfg.clone());
                let sim = Simulator::new(HardwareConfig::tpu_v4());
                move |sample: &ArchSample| {
                    let arch = space.decode(sample);
                    let graph = arch.build_graph(64);
                    let report = sim.simulate_training(&graph, &SystemConfig::training_pod());
                    let q = quality_model.accuracy_of_cnn(&arch, graph.param_count() / 1e6);
                    EvalResult {
                        quality: qw * q,
                        perf_values: vec![report.time, graph.param_count() * 4.0],
                    }
                }
            };
            let cfg_search = SearchConfig {
                steps,
                shards: 8,
                policy_lr: 0.06,
                baseline_momentum: 0.9,
                seed: 31,
                workers: 0,
            };
            let outcome = parallel_search(space.space(), &reward, make, &cfg_search);
            let final_arch = space.decode(&outcome.best);
            let final_graph = final_arch.build_graph(64);
            let final_time = sim.simulate_training(&final_graph, &pod).time;
            let final_q =
                quality_model.accuracy_of_cnn(&final_arch, final_graph.param_count() / 1e6);
            FleetResult {
                name: model.name.clone(),
                perf_gain: base_time / final_time,
                quality_gain: final_q - base_q,
            }
        }
        ProductionDomain::Dlrm(cfg) => {
            let space = DlrmSpace::new(cfg.clone());
            let base_arch = space.decode(&space.baseline());
            let base_time = sim
                .simulate_training(&base_arch.build_graph(64, 128), &pod)
                .time;
            let base_size = base_arch.model_size_bytes();
            let quality_model = DlrmQualityModel::new(&base_arch, 85.0);
            let reward = RewardFn::new(
                RewardKind::Relu,
                vec![
                    PerfObjective::new("step_time", base_time * model.perf_target_ratio, -6.0),
                    PerfObjective::new("model_size", base_size * 1.1, -2.0),
                ],
            );
            let qw = model.quality_weight;
            let make = |_shard: usize| {
                let space = DlrmSpace::new(cfg.clone());
                let sim = Simulator::new(HardwareConfig::tpu_v4());
                let quality_model = quality_model.clone();
                move |sample: &ArchSample| {
                    let arch = space.decode(sample);
                    let report = sim.simulate_training(
                        &arch.build_graph(64, 128),
                        &SystemConfig::training_pod(),
                    );
                    EvalResult {
                        quality: qw * quality_model.quality(&arch),
                        perf_values: vec![report.time, arch.model_size_bytes()],
                    }
                }
            };
            let cfg_search = SearchConfig {
                steps,
                shards: 8,
                policy_lr: 0.06,
                baseline_momentum: 0.9,
                seed: 32,
                workers: 0,
            };
            let outcome = parallel_search(space.space(), &reward, make, &cfg_search);
            let final_arch = space.decode(&outcome.best);
            let final_time = sim
                .simulate_training(&final_arch.build_graph(64, 128), &pod)
                .time;
            FleetResult {
                name: model.name.clone(),
                perf_gain: base_time / final_time,
                quality_gain: quality_model.quality(&final_arch) - quality_model.base_quality,
            }
        }
    }
}

/// Runs the experiment and renders the report.
pub fn run() -> String {
    let steps = env_usize("H2O_FIG10_STEPS", 120);
    let mut table = Table::new(
        "Fig. 10: production fleet gains (quality first; perf target per model)",
        &["model", "perf gain", "quality gain (pp)"],
    );
    let mut cv_perf = Vec::new();
    let mut cv_q = Vec::new();
    let mut dlrm_perf = Vec::new();
    let mut dlrm_q = Vec::new();
    for model in fleet() {
        let result = optimize(&model, steps);
        table.row(&[
            result.name.clone(),
            ratio(result.perf_gain),
            format!("{:+.2}", result.quality_gain),
        ]);
        if result.name.starts_with("CV") {
            cv_perf.push(result.perf_gain);
            cv_q.push(result.quality_gain);
        } else {
            dlrm_perf.push(result.perf_gain);
            dlrm_q.push(result.quality_gain);
        }
    }
    let mut out = table.render();
    out.push_str(&format!(
        "\nCV mean: {} perf, {:+.2}pp quality (paper: 1.29x, +2.83pp)\n\
         DLRM mean: {} perf, {:+.2}pp quality (paper: 1.22x, +0.12pp)\n\
         Quality-first models (CV5, DLRM3) may trade performance for quality, as in the paper.\n",
        ratio(geomean(&cv_perf)),
        cv_q.iter().sum::<f64>() / cv_q.len() as f64,
        ratio(geomean(&dlrm_perf)),
        dlrm_q.iter().sum::<f64>() / dlrm_q.len() as f64,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cv1_search_improves_performance_without_losing_quality() {
        let model = fleet().into_iter().find(|m| m.name == "CV1").unwrap();
        let result = optimize(&model, 60);
        assert!(result.perf_gain > 1.0, "perf gain {}", result.perf_gain);
        assert!(
            result.quality_gain > -1.0,
            "quality {}",
            result.quality_gain
        );
    }

    #[test]
    fn dlrm1_search_improves_performance() {
        let model = fleet().into_iter().find(|m| m.name == "DLRM1").unwrap();
        let result = optimize(&model, 60);
        assert!(result.perf_gain > 1.0, "perf gain {}", result.perf_gain);
    }

    #[test]
    fn cnn_baseline_sample_is_valid() {
        let model = fleet().into_iter().find(|m| m.name == "CV1").unwrap();
        if let ProductionDomain::Vision(cfg) = &model.domain {
            let space = CnnSpace::new(cfg.clone());
            assert!(space.space().validate(&cnn_baseline_sample(&space)).is_ok());
        }
    }
}
