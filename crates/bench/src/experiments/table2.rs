//! Table 2 — model characteristics and hardware configuration of the three
//! key domains, computed from this repository's model families.

use crate::report::Table;
use h2o_models::coatnet::CoAtNet;
use h2o_models::efficientnet::EfficientNet;

/// Runs the experiment and renders the report.
pub fn run() -> String {
    let coatnet = CoAtNet::family();
    let enet = EfficientNet::x_family();
    let dlrm = h2o_models::dlrm::baseline();
    let dlrm_params = (dlrm.embedding_params() + dlrm.mlp_params()) / 1e6;
    let dlrm_flops = dlrm.build_graph(1, 1).total_flops() / 1e9 * 64.0; // per-64 batch

    let fmt_range = |lo: f64, hi: f64| format!("{lo:.1} ~ {hi:.0}");
    let mut table = Table::new(
        "Table 2: model characteristics and hardware configurations",
        &["", "VIT", "DLRM", "CNN"],
    );
    table.row(&[
        "baseline".into(),
        "CoAtNet".into(),
        "production-style".into(),
        "EfficientNet-X".into(),
    ]);
    table.row(&[
        "params (M)".into(),
        fmt_range(coatnet[0].params_m(), coatnet[5].params_m()),
        format!("O({:.0})", dlrm_params),
        fmt_range(enet[0].params_m(), enet[7].params_m()),
    ]);
    table.row(&[
        "FLOPs (B)".into(),
        fmt_range(coatnet[0].flops_b(), coatnet[5].flops_b()),
        format!("O({dlrm_flops:.0})"),
        fmt_range(enet[0].flops_b(), enet[7].flops_b()),
    ]);
    table.row_str(&["paper params (M)", "25~688", "O(1000)", "7.6~199"]);
    table.row_str(&["paper FLOPs (B)", "8.4~1060", "O(100)", "1.8~186"]);
    table.row_str(&["training HW", "128 TPUv4", "128 TPUv4", "128 TPUv4"]);
    table.row_str(&["serving HW", "1 TPUv4i", "1 TPUv4i", "1 TPUv4i"]);
    table.row_str(&["dominant cost", "training", "training", "training"]);
    table.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_renders_all_domains() {
        let r = super::run();
        assert!(r.contains("VIT") && r.contains("DLRM") && r.contains("CNN"));
        assert!(r.contains("128 TPUv4"));
    }
}
