//! Extension: hardware/model co-design — the paper's concluding vision.
//!
//! §9: "H2O-NAS enables late binding of model architectures to hardware
//! architectures. This empowers architects to focus more on optimizing
//! hardware for peak performance, silicon area, and power constraints,
//! while H2O-NAS can later optimize future models to run on the hardware."
//!
//! This bench plays hardware architect: it sweeps hypothetical TPUv4
//! variants (compute-rich, bandwidth-rich, CMEM-rich) and re-runs the same
//! CNN search against each. The *searched architecture changes with the
//! hardware* — compute-rich chips attract more fused (dense-convolution)
//! blocks, bandwidth-starved chips push the search toward classic MBConv —
//! demonstrating the late-binding workflow.

use crate::report::{env_usize, Table};
use h2o_core::{parallel_search, EvalResult, PerfObjective, RewardFn, RewardKind, SearchConfig};
use h2o_hwsim::{HardwareConfig, Simulator, SystemConfig};
use h2o_models::quality::{DatasetScale, VisionQualityModel};
use h2o_space::cnn::BlockType;
use h2o_space::{ArchSample, CnnSpace, CnnSpaceConfig};

/// A hypothetical future-hardware variant.
fn variant(name: &str, flops_scale: f64, hbm_scale: f64, cmem_scale: f64) -> HardwareConfig {
    let mut hw = HardwareConfig::tpu_v4();
    hw.name = name.to_string();
    hw.peak_flops *= flops_scale;
    hw.hbm_bw *= hbm_scale;
    hw.cmem_capacity *= cmem_scale;
    hw.cmem_bw *= cmem_scale;
    hw
}

/// The hypothetical platform sweep.
pub fn variants() -> Vec<HardwareConfig> {
    vec![
        variant("TPUv4 (baseline)", 1.0, 1.0, 1.0),
        variant("compute-rich (4x FLOPS)", 4.0, 1.0, 1.0),
        variant("bandwidth-starved (1/4 HBM)", 1.0, 0.25, 1.0),
        variant("CMEM-rich (4x on-chip)", 1.0, 1.0, 4.0),
    ]
}

/// Search outcome summary on one platform.
#[derive(Debug, Clone)]
pub struct CodesignResult {
    /// Platform name.
    pub hw: String,
    /// Fraction of blocks choosing Fused-MBConv.
    pub fused_fraction: f64,
    /// Chosen input resolution.
    pub resolution: usize,
    /// Mean chosen expansion ratio.
    pub mean_expansion: f64,
    /// Searched model's step time on that platform, ms.
    pub step_ms: f64,
    /// Quality estimate.
    pub quality: f64,
}

/// Runs the same quality-first search against one hardware variant.
pub fn search_on(hw: &HardwareConfig, steps: usize) -> CodesignResult {
    let space = CnnSpace::new(CnnSpaceConfig::default());
    let quality = VisionQualityModel::new(DatasetScale::Medium);
    // Budget: a fixed wall-clock step target, identical across platforms —
    // faster hardware leaves headroom the search can spend on capacity.
    let budget = 0.08;
    let reward = RewardFn::new(
        RewardKind::Relu,
        vec![PerfObjective::new("step_time", budget, -8.0)],
    );
    let make = |_shard: usize| {
        let space = CnnSpace::new(CnnSpaceConfig::default());
        let sim = Simulator::new(hw.clone());
        move |sample: &ArchSample| {
            let arch = space.decode(sample);
            let graph = arch.build_graph(64);
            EvalResult {
                quality: quality.accuracy_of_cnn(&arch, graph.param_count() / 1e6),
                perf_values: vec![
                    sim.simulate_training(&graph, &SystemConfig::training_pod())
                        .time,
                ],
            }
        }
    };
    let cfg = SearchConfig {
        steps,
        shards: 8,
        policy_lr: 0.07,
        baseline_momentum: 0.9,
        seed: 23,
        workers: 0,
    };
    let outcome = parallel_search(space.space(), &reward, make, &cfg);
    let arch = space.decode(&outcome.best);
    let graph = arch.build_graph(64);
    let sim = Simulator::new(hw.clone());
    let step = sim
        .simulate_training(&graph, &SystemConfig::training_pod())
        .time;
    let fused = arch
        .blocks
        .iter()
        .filter(|b| b.block_type == BlockType::FusedMbConv)
        .count() as f64
        / arch.blocks.len() as f64;
    CodesignResult {
        hw: hw.name.clone(),
        fused_fraction: fused,
        resolution: arch.resolution,
        mean_expansion: arch.blocks.iter().map(|b| b.expansion as f64).sum::<f64>()
            / arch.blocks.len() as f64,
        step_ms: step * 1e3,
        quality: quality.accuracy_of_cnn(&arch, graph.param_count() / 1e6),
    }
}

/// Runs the experiment and renders the report.
pub fn run() -> String {
    let steps = env_usize("H2O_EXT_CODESIGN_STEPS", 120);
    let mut table = Table::new(
        "Extension (§9 vision): the searched architecture re-binds to future hardware",
        &[
            "hardware variant",
            "fused blocks",
            "resolution",
            "mean expansion",
            "step (ms)",
            "quality",
        ],
    );
    for hw in variants() {
        let r = search_on(&hw, steps);
        table.row(&[
            r.hw,
            format!("{:.0}%", r.fused_fraction * 100.0),
            r.resolution.to_string(),
            format!("{:.1}", r.mean_expansion),
            format!("{:.1}", r.step_ms),
            format!("{:.1}%", r.quality),
        ]);
    }
    let mut out = table.render();
    let mut real = Table::new(
        "Same sweep on real next-generation chips (late binding across GPU generations)",
        &[
            "hardware",
            "fused blocks",
            "resolution",
            "mean expansion",
            "step (ms)",
            "quality",
        ],
    );
    for hw in [
        HardwareConfig::gpu_v100(),
        HardwareConfig::gpu_a100(),
        HardwareConfig::gpu_h100(),
    ] {
        let r = search_on(&hw, steps);
        real.row(&[
            r.hw,
            format!("{:.0}%", r.fused_fraction * 100.0),
            r.resolution.to_string(),
            format!("{:.1}", r.mean_expansion),
            format!("{:.1}", r.step_ms),
            format!("{:.1}%", r.quality),
        ]);
    }
    out.push_str(&real.render());
    out.push_str(
        "\nReading: the same search, same budget, different chips — the controller spends a\n\
         compute-rich chip's headroom on capacity (resolution/expansion/fused convs) and\n\
         retreats to low-arithmetic blocks when bandwidth is scarce. Architects can commit\n\
         hardware first and let NAS bind the models later (§9).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn searched_architecture_depends_on_hardware() {
        let steps = 60;
        let base = search_on(&variants()[0], steps);
        let rich = search_on(&variants()[1], steps);
        // Compute-rich hardware must buy more capacity at the same wall
        // budget: quality at least matches, step stays within budget-ish.
        assert!(
            rich.quality >= base.quality - 0.3,
            "{} vs {}",
            rich.quality,
            base.quality
        );
        // And the *architectures* differ (late binding is non-trivial).
        let differs = rich.fused_fraction != base.fused_fraction
            || rich.resolution != base.resolution
            || (rich.mean_expansion - base.mean_expansion).abs() > 0.1;
        assert!(differs, "architectures should re-bind to the hardware");
    }

    #[test]
    fn variants_are_distinct_platforms() {
        let v = variants();
        assert_eq!(v.len(), 4);
        assert!(v[1].peak_flops > v[0].peak_flops);
        assert!(v[2].hbm_bw < v[0].hbm_bw);
        assert!(v[3].cmem_capacity > v[0].cmem_capacity);
    }
}
