//! Table 1 — two-phase training of the MLP performance model.
//!
//! Paper: 2×512 MLP over the O(10²⁸²) DLRM space; 1 M pretraining samples
//! from the simulator; 20 fine-tuning samples from production hardware.
//! NRMSE: 0.31–0.47 % on pretraining data; 14.7–42.9 % of the *pretrained*
//! model on production measurements; 1.05–3.08 % after fine-tuning (~10×
//! reduction).
//!
//! Environment knobs (defaults keep the bench minutes-scale on CPU; crank
//! them toward the paper's budget if you have time):
//! `H2O_T1_PRETRAIN` (samples, default 8000), `H2O_T1_EPOCHS` (default 100),
//! `H2O_T1_HIDDEN` (default 128; the paper uses 512), `H2O_T1_HOLDOUT`
//! (default 400), `H2O_T1_TABLES` (DLRM tables, default 20).

use crate::report::{env_usize, Table};
use h2o_hwsim::{HardwareConfig, ProductionHardware, Simulator, SystemConfig};
use h2o_perfmodel::{Featurizer, PerfModel, PerfTargets, TrainConfig};
use h2o_space::{DlrmSpace, DlrmSpaceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// All the NRMSE numbers Table 1 reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Result {
    /// log10 of the search-space size.
    pub log10_space: f64,
    /// Pretraining sample count.
    pub pretrain_samples: usize,
    /// NRMSE of the pretrained model on held-out *simulator* data (training
    /// head).
    pub pretrain_nrmse: f64,
    /// NRMSE of the pretrained model on *production* measurements.
    pub pretrained_on_prod_nrmse: f64,
    /// NRMSE of the finetuned model on *production* measurements.
    pub finetuned_on_prod_nrmse: f64,
    /// Serving-head NRMSE of the finetuned model on production (the model
    /// is dual-headed, §6.2.1).
    pub finetuned_serving_nrmse: f64,
}

/// Runs the two-phase training pipeline end to end.
pub fn evaluate() -> Table1Result {
    let mut config = DlrmSpaceConfig::production();
    config.tables.truncate(env_usize("H2O_T1_TABLES", 20));
    let space = DlrmSpace::new(config);
    let featurizer = Featurizer::from_space(space.space());
    let n_pretrain = env_usize("H2O_T1_PRETRAIN", 8000);
    let n_holdout = env_usize("H2O_T1_HOLDOUT", 400);
    let hidden = env_usize("H2O_T1_HIDDEN", 128);
    let epochs = env_usize("H2O_T1_EPOCHS", 100);

    let sim = Simulator::new(HardwareConfig::tpu_v4());
    let serve_sim = Simulator::new(HardwareConfig::tpu_v4i());
    let pod = SystemConfig::training_pod();
    let prod = ProductionHardware::new(HardwareConfig::tpu_v4(), 777);
    let prod_serve = ProductionHardware::new(HardwareConfig::tpu_v4i(), 778);

    let mut rng = StdRng::seed_from_u64(9);
    // Features: the normalised categorical sample (§6.2.1: "the model
    // architecture hyper-parameters") plus three derived capacity terms
    // (log embedding params, log MLP params, log model size) — closed-form
    // functions of the same hyper-parameters that spare the MLP from
    // re-deriving products of decision variables.
    let featurize = |sample: &Vec<usize>| {
        let mut f = featurizer.featurize(sample);
        let arch = space.decode(sample);
        f.push((arch.embedding_params().max(1.0).log10() as f32 - 6.0) / 4.0);
        f.push((arch.mlp_params().max(1.0).log10() as f32 - 6.0) / 4.0);
        f.push((arch.model_size_bytes().max(1.0).log10() as f32 - 7.0) / 4.0);
        f
    };
    let input_dim = featurizer.dim() + 3;
    let simulate = |sample: &Vec<usize>| {
        let arch = space.decode(sample);
        let train = sim.simulate_training(&arch.build_graph(64, 128), &pod).time;
        let serve = serve_sim.simulate(&arch.build_graph(16, 1)).time;
        PerfTargets {
            training: train,
            serving: serve,
        }
    };
    let measure = |sample: &Vec<usize>| {
        let arch = space.decode(sample);
        let train = prod.measure_step_time(&arch.build_graph(64, 128), &pod);
        let serve = prod_serve.measure_serving_latency(&arch.build_graph(16, 1));
        PerfTargets {
            training: train,
            serving: serve,
        }
    };

    // Phase 1: pretrain on simulator data.
    let mut xs = Vec::with_capacity(n_pretrain);
    let mut ys = Vec::with_capacity(n_pretrain);
    let mut samples = Vec::with_capacity(n_pretrain);
    for _ in 0..n_pretrain + n_holdout {
        let sample = space.space().sample_uniform(&mut rng);
        xs.push(featurize(&sample));
        ys.push(simulate(&sample));
        samples.push(sample);
    }
    let (train_x, hold_x) = xs.split_at(n_pretrain);
    let (train_y, hold_y) = ys.split_at(n_pretrain);
    let mut model = PerfModel::new(input_dim, &[hidden, hidden], 4);
    model.pretrain(
        train_x,
        train_y,
        TrainConfig {
            epochs,
            batch_size: 64,
            lr: 1e-3,
        },
    );
    let pretrain_nrmse = model.evaluate_nrmse(hold_x, hold_y).training;

    // Production evaluation set (held-out archs measured on "hardware").
    let prod_x: Vec<Vec<f32>> = hold_x.to_vec();
    let prod_y: Vec<PerfTargets> = samples[n_pretrain..].iter().map(&measure).collect();
    let pretrained_on_prod = model.evaluate_nrmse(&prod_x, &prod_y).training;

    // Phase 2: fine-tune on O(20) production measurements drawn from the
    // pretraining pool (§6.2.2).
    let finetune_idx = PerfModel::choose_finetune_indices_seeded(n_pretrain, 20, 5);
    let ft_x: Vec<Vec<f32>> = finetune_idx.iter().map(|&i| train_x[i].clone()).collect();
    let ft_y: Vec<PerfTargets> = finetune_idx.iter().map(|&i| measure(&samples[i])).collect();
    model.finetune(
        &ft_x,
        &ft_y,
        TrainConfig {
            epochs: 100,
            batch_size: 8,
            lr: 5e-5,
        },
    );
    let finetuned = model.evaluate_nrmse(&prod_x, &prod_y);

    Table1Result {
        log10_space: space.space().log10_size(),
        pretrain_samples: n_pretrain,
        pretrain_nrmse,
        pretrained_on_prod_nrmse: pretrained_on_prod,
        finetuned_on_prod_nrmse: finetuned.training,
        finetuned_serving_nrmse: finetuned.serving,
    }
}

/// Runs the experiment and renders the report.
pub fn run() -> String {
    let r = evaluate();
    let mut table = Table::new(
        "Table 1: two-phase performance-model training",
        &["quantity", "this repro", "paper"],
    );
    table.row(&[
        "search space size".into(),
        format!("O(10^{:.0})", r.log10_space),
        "O(10^282)".into(),
    ]);
    table.row(&[
        "pretraining samples".into(),
        r.pretrain_samples.to_string(),
        "1,000,000".into(),
    ]);
    table.row(&[
        "NRMSE, pretrained on sim data".into(),
        format!("{:.2}%", r.pretrain_nrmse * 100.0),
        "0.31% ~ 0.47%".into(),
    ]);
    table.row(&["fine-tuning samples".into(), "20".into(), "20".into()]);
    table.row(&[
        "NRMSE, pretrained vs production".into(),
        format!("{:.1}%", r.pretrained_on_prod_nrmse * 100.0),
        "14.7% ~ 42.9%".into(),
    ]);
    table.row(&[
        "NRMSE, finetuned vs production".into(),
        format!("{:.2}%", r.finetuned_on_prod_nrmse * 100.0),
        "1.05% ~ 3.08%".into(),
    ]);
    table.row(&[
        "NRMSE, finetuned, serving head".into(),
        format!("{:.2}%", r.finetuned_serving_nrmse * 100.0),
        "(dual-head, §6.2.1)".into(),
    ]);
    let mut out = table.render();
    out.push_str(&format!(
        "\nFine-tuning reduced the production NRMSE by {:.1}x (paper: ~10x).\n",
        r.pretrained_on_prod_nrmse / r.finetuned_on_prod_nrmse.max(1e-9),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_phase_pipeline_matches_table1_shape() {
        // Smaller-than-default budget: shape must still hold.
        std::env::set_var("H2O_T1_TABLES", "10");
        std::env::set_var("H2O_T1_PRETRAIN", "3000");
        std::env::set_var("H2O_T1_HOLDOUT", "150");
        std::env::set_var("H2O_T1_HIDDEN", "128");
        std::env::set_var("H2O_T1_EPOCHS", "100");
        let r = evaluate();
        assert!(
            r.pretrain_nrmse < 0.15,
            "pretrain NRMSE {} (paper <0.5%)",
            r.pretrain_nrmse
        );
        assert!(
            r.pretrained_on_prod_nrmse > 0.20,
            "sim-to-prod gap should be large before finetune: {}",
            r.pretrained_on_prod_nrmse
        );
        assert!(
            r.finetuned_on_prod_nrmse < 0.5 * r.pretrained_on_prod_nrmse,
            "finetune must slash the gap: {} -> {}",
            r.pretrained_on_prod_nrmse,
            r.finetuned_on_prod_nrmse
        );
        assert!(
            r.finetuned_on_prod_nrmse < 0.15,
            "finetuned NRMSE {} (paper 1-3%; tracks pretrain quality at this budget)",
            r.finetuned_on_prod_nrmse
        );
    }
}
