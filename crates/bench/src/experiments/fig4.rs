//! Fig. 4b/4c — rooflines and latency of MBConv vs Fused-MBConv on TPUv4i.

use crate::report::{seconds, Table};
use h2o_graph::blocks::{fused_mbconv, mbconv, MbConvConfig};
use h2o_graph::{DType, Graph, OpKind};
use h2o_hwsim::{roofline_envelope, HardwareConfig, Simulator};

fn block_graph(fused: bool, depth: usize, batch: usize) -> Graph {
    let cfg = MbConvConfig::square(56, depth, batch);
    let mut g = Graph::new(
        format!("{}({depth})", if fused { "F-MBC" } else { "MBC" }),
        DType::Bf16,
    );
    let input = g.add(OpKind::Reshape { elems: 1 }, &[]);
    if fused {
        fused_mbconv(&mut g, &cfg, input);
    } else {
        mbconv(&mut g, &cfg, input);
    }
    g.fuse_elementwise();
    g
}

/// Runs the experiment and renders the report.
pub fn run() -> String {
    let hw = HardwareConfig::tpu_v4i();
    let sim = Simulator::new(hw.clone());
    let batch = 8;
    let mut out = String::new();
    out.push_str(&format!(
        "Fig. 4b/4c reproduction on {} (peak {:.0} TFLOPS, HBM {:.0} GB/s, ridge {:.0} FLOPs/B)\n",
        hw.name,
        hw.peak_flops / 1e12,
        hw.hbm_bw / 1e9,
        hw.ridge_intensity()
    ));

    let mut roof = Table::new(
        "Fig. 4b: roofline points (paper: fused MBConv always has higher intensity & FLOPS)",
        &[
            "block",
            "op intensity (FLOPs/B)",
            "achieved TFLOPS",
            "% of envelope",
        ],
    );
    let mut lat = Table::new(
        "Fig. 4c: latency (paper: F-MBC wins at depth 32, loses at depth 128)",
        &["depth", "MBC latency", "F-MBC latency", "faster"],
    );
    for depth in [16usize, 32, 64, 128, 256] {
        let mut lat_row: Vec<String> = vec![depth.to_string()];
        let mut times = [0.0f64; 2];
        for (i, fused) in [false, true].into_iter().enumerate() {
            let g = block_graph(fused, depth, batch);
            let report = sim.simulate(&g);
            let cost = g.total_cost();
            let intensity = cost.operational_intensity();
            let envelope = roofline_envelope(intensity, &hw);
            roof.row(&[
                g.name().to_string(),
                format!("{intensity:.1}"),
                format!("{:.1}", report.achieved_flops_rate / 1e12),
                format!("{:.0}%", 100.0 * report.achieved_flops_rate / envelope),
            ]);
            times[i] = report.time;
        }
        lat_row.push(seconds(times[0]));
        lat_row.push(seconds(times[1]));
        lat_row.push(if times[1] < times[0] {
            "F-MBC".into()
        } else {
            "MBC".into()
        });
        lat.row(&lat_row);
    }
    out.push_str(&roof.render());
    out.push_str(&lat.render());
    out.push_str(
        "\nExpected shape: fused blocks sit further right and higher on the roofline at\n\
         every depth; the latency winner crosses over from F-MBC (shallow) to MBC (deep).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_crossover() {
        let r = run();
        assert!(r.contains("Fig. 4b"));
        // Depth 32 row must declare F-MBC the winner, depth 128 must not.
        let winner = |depth: &str| -> String {
            r.lines()
                .find(|l| l.starts_with(&format!("| {depth} ")))
                .and_then(|l| l.split('|').rev().find(|c| !c.trim().is_empty()))
                .map(|c| c.trim().to_string())
                .expect("row present")
        };
        assert_eq!(winner("32"), "F-MBC");
        assert_eq!(winner("128"), "MBC");
    }
}
