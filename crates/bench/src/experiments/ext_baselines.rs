//! Extension: RL one-shot controller vs multi-trial baselines.
//!
//! §2.1 taxonomises search algorithms (RL / gradient / evolution) and §3
//! argues only one-shot RL performs at production scale. This bench
//! quantifies the claim on the CNN space: at an equal *candidate
//! evaluation* budget, the REINFORCE controller reaches a better reward
//! than uniform random search and competitive-or-better than regularized
//! evolution — and unlike the multi-trial baselines, its evaluations can
//! come from a shared-weight supernet rather than independent trainings
//! (a cost gap of orders of magnitude at paper scale).

use crate::report::{env_usize, Table};
use h2o_core::baselines::{evolution_search, random_search, EvolutionConfig};
use h2o_core::{parallel_search, EvalResult, PerfObjective, RewardFn, RewardKind, SearchConfig};
use h2o_hwsim::{HardwareConfig, Simulator, SystemConfig};
use h2o_models::quality::{DatasetScale, VisionQualityModel};
use h2o_space::{ArchSample, CnnSpace, CnnSpaceConfig};

fn evaluator() -> impl FnMut(&ArchSample) -> EvalResult {
    let space = CnnSpace::new(CnnSpaceConfig::default());
    let sim = Simulator::new(HardwareConfig::tpu_v4());
    let quality = VisionQualityModel::new(DatasetScale::Medium);
    move |sample: &ArchSample| {
        let arch = space.decode(sample);
        let graph = arch.build_graph(64);
        EvalResult {
            quality: quality.accuracy_of_cnn(&arch, graph.param_count() / 1e6),
            perf_values: vec![
                sim.simulate_training(&graph, &SystemConfig::training_pod())
                    .time,
            ],
        }
    }
}

fn reward() -> RewardFn {
    RewardFn::new(
        RewardKind::Relu,
        vec![PerfObjective::new("step", 0.10, -10.0)],
    )
}

/// `(rl, random, evolution)` best rewards at the given evaluation budget.
pub fn compare(budget: usize) -> (f64, f64, f64) {
    let space = CnnSpace::new(CnnSpaceConfig::default());
    let reward = reward();
    let shards = 8;
    let cfg = SearchConfig {
        steps: budget / shards,
        shards,
        policy_lr: 0.08,
        baseline_momentum: 0.9,
        seed: 5,
        workers: 0,
    };
    let rl = parallel_search(space.space(), &reward, |_| evaluator(), &cfg);
    let rl_best = rl
        .best_evaluated()
        .map(|c| c.reward)
        .unwrap_or(f64::NEG_INFINITY);

    let mut eval = evaluator();
    let random = random_search(space.space(), &reward, &mut eval, budget, 5);

    let mut eval = evaluator();
    let evo = evolution_search(
        space.space(),
        &reward,
        &mut eval,
        budget,
        &EvolutionConfig {
            seed: 5,
            ..Default::default()
        },
    );
    (rl_best, random.best.reward, evo.best.reward)
}

/// Runs the experiment and renders the report.
pub fn run() -> String {
    let mut table = Table::new(
        "Extension: search-algorithm sample efficiency (CNN space, best reward at budget)",
        &[
            "evaluations",
            "RL one-shot (H2O-NAS)",
            "random",
            "regularized evolution",
        ],
    );
    let budgets = [
        env_usize("H2O_EXT_BUDGET_SMALL", 240),
        env_usize("H2O_EXT_BUDGET_LARGE", 960),
    ];
    for budget in budgets {
        let (rl, random, evo) = compare(budget);
        table.row(&[
            budget.to_string(),
            format!("{rl:.2}"),
            format!("{random:.2}"),
            format!("{evo:.2}"),
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "\nNote: the multi-trial baselines additionally pay a full training per candidate\n\
         at production scale; the RL controller amortises training through weight sharing\n\
         (and §2.1: evolution cannot be combined with one-shot weight sharing at all).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rl_beats_random_at_equal_budget() {
        let (rl, random, _evo) = compare(240);
        assert!(rl >= random - 0.2, "rl {rl} vs random {random}");
    }

    #[test]
    fn report_renders() {
        std::env::set_var("H2O_EXT_BUDGET_SMALL", "80");
        std::env::set_var("H2O_EXT_BUDGET_LARGE", "160");
        assert!(run().contains("sample efficiency"));
    }
}
