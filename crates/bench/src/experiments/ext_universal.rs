//! Extension: a *universal* performance model across domains — the future
//! work §6.2.2 sketches ("construct a larger, universal model for all
//! domains, and then fine-tune for each domain").
//!
//! Setup: one MLP is pretrained on a **mixture** of CNN and DLRM
//! architectures (features padded to a common width plus a domain
//! indicator), then fine-tuned per domain on 20 measurements. Compared
//! against per-domain specialists of the same capacity, and against the
//! paper's warning that "reusing a single pre-trained model for all
//! domains ... leads to significant accuracy loss" without fine-tuning.

use crate::report::{env_usize, Table};
use h2o_hwsim::{HardwareConfig, ProductionHardware, Simulator, SystemConfig};
use h2o_perfmodel::{Featurizer, PerfModel, PerfTargets, TrainConfig};
use h2o_space::{ArchSample, CnnSpace, CnnSpaceConfig, DlrmSpace, DlrmSpaceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Domain {
    Cnn,
    Dlrm,
}

struct DomainData {
    xs: Vec<Vec<f32>>,
    sim_y: Vec<PerfTargets>,
    prod_y: Vec<PerfTargets>,
}

fn pad_features(mut f: Vec<f32>, width: usize, domain: Domain) -> Vec<f32> {
    f.resize(width, 0.0);
    // Domain one-hot.
    f.push(if domain == Domain::Cnn { 1.0 } else { 0.0 });
    f.push(if domain == Domain::Dlrm { 1.0 } else { 0.0 });
    f
}

fn gather(n: usize, domain: Domain, width: usize, seed: u64) -> DomainData {
    let sim = Simulator::new(HardwareConfig::tpu_v4());
    let pod = SystemConfig::training_pod();
    let prod = ProductionHardware::new(HardwareConfig::tpu_v4(), 500 + seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(n);
    let mut sim_y = Vec::with_capacity(n);
    let mut prod_y = Vec::with_capacity(n);
    match domain {
        Domain::Cnn => {
            let space = CnnSpace::new(CnnSpaceConfig::default());
            let featurizer = Featurizer::from_space(space.space());
            for _ in 0..n {
                let sample: ArchSample = space.space().sample_uniform(&mut rng);
                let graph = space.decode(&sample).build_graph(64);
                let mut f = featurizer.featurize(&sample);
                f.push((graph.param_count().max(1.0).log10() as f32 - 6.0) / 4.0);
                f.push((graph.total_flops().max(1.0).log10() as f32 - 10.0) / 4.0);
                xs.push(pad_features(f, width, domain));
                let t = sim.simulate_training(&graph, &pod).time;
                sim_y.push(PerfTargets {
                    training: t,
                    serving: t * 0.3,
                });
                let tp = prod.measure_step_time(&graph, &pod);
                prod_y.push(PerfTargets {
                    training: tp,
                    serving: tp * 0.3,
                });
            }
        }
        Domain::Dlrm => {
            let mut config = DlrmSpaceConfig::production();
            config.tables.truncate(12);
            let space = DlrmSpace::new(config);
            let featurizer = Featurizer::from_space(space.space());
            for _ in 0..n {
                let sample: ArchSample = space.space().sample_uniform(&mut rng);
                let arch = space.decode(&sample);
                let graph = arch.build_graph(64, 128);
                let mut f = featurizer.featurize(&sample);
                f.push((arch.mlp_params().max(1.0).log10() as f32 - 6.0) / 4.0);
                f.push((graph.total_flops().max(1.0).log10() as f32 - 10.0) / 4.0);
                xs.push(pad_features(f, width, domain));
                let t = sim.simulate_training(&graph, &pod).time;
                sim_y.push(PerfTargets {
                    training: t,
                    serving: t * 0.3,
                });
                let tp = prod.measure_step_time(&graph, &pod);
                prod_y.push(PerfTargets {
                    training: tp,
                    serving: tp * 0.3,
                });
            }
        }
    }
    DomainData { xs, sim_y, prod_y }
}

/// Measured NRMSEs: `(universal_pretrained, universal_finetuned,
/// specialist_finetuned)` per domain, training head, on held-out
/// production measurements.
pub fn evaluate() -> Vec<(String, f64, f64, f64)> {
    let n = env_usize("H2O_EXT_UNI_SAMPLES", 2500);
    let holdout = 250;
    // Common feature width: max of both featurizers + 1 derived + 2 one-hot.
    let cnn_dim = Featurizer::from_space(CnnSpace::new(CnnSpaceConfig::default()).space()).dim();
    let mut dlrm_cfg = DlrmSpaceConfig::production();
    dlrm_cfg.tables.truncate(12);
    let dlrm_dim = Featurizer::from_space(DlrmSpace::new(dlrm_cfg).space()).dim();
    let width = cnn_dim.max(dlrm_dim) + 2;
    let input_dim = width + 2;

    let cnn = gather(n + holdout, Domain::Cnn, width, 1);
    let dlrm = gather(n + holdout, Domain::Dlrm, width, 2);

    // Universal model: pretrained on the mixed pool.
    let mut mixed_x = cnn.xs[..n].to_vec();
    mixed_x.extend_from_slice(&dlrm.xs[..n]);
    let mut mixed_y = cnn.sim_y[..n].to_vec();
    mixed_y.extend_from_slice(&dlrm.sim_y[..n]);
    let mut universal = PerfModel::new(input_dim, &[192, 192], 3);
    universal.pretrain(
        &mixed_x,
        &mixed_y,
        TrainConfig {
            epochs: env_usize("H2O_EXT_UNI_EPOCHS", 60),
            batch_size: 64,
            lr: 1e-3,
        },
    );

    let mut results = Vec::new();
    for (name, data) in [("CNN", &cnn), ("DLRM", &dlrm)] {
        let hold_x = data.xs[n..].to_vec();
        let hold_prod = data.prod_y[n..].to_vec();
        let before = universal.evaluate_nrmse(&hold_x, &hold_prod).training;

        // Per-domain fine-tune of a *clone* of the universal model.
        let ft_idx = PerfModel::choose_finetune_indices_seeded(n, 20, 11);
        let ft_x: Vec<Vec<f32>> = ft_idx.iter().map(|&i| data.xs[i].clone()).collect();
        let ft_y: Vec<PerfTargets> = ft_idx.iter().map(|&i| data.prod_y[i]).collect();
        let mut tuned = universal.clone();
        tuned.finetune(
            &ft_x,
            &ft_y,
            TrainConfig {
                epochs: 100,
                batch_size: 8,
                lr: 5e-5,
            },
        );
        let after = tuned.evaluate_nrmse(&hold_x, &hold_prod).training;

        // Specialist: pretrained on this domain only, same finetune.
        let mut specialist = PerfModel::new(input_dim, &[192, 192], 4);
        specialist.pretrain(
            &data.xs[..n],
            &data.sim_y[..n],
            TrainConfig {
                epochs: env_usize("H2O_EXT_UNI_EPOCHS", 60),
                batch_size: 64,
                lr: 1e-3,
            },
        );
        specialist.finetune(
            &ft_x,
            &ft_y,
            TrainConfig {
                epochs: 100,
                batch_size: 8,
                lr: 5e-5,
            },
        );
        let spec = specialist.evaluate_nrmse(&hold_x, &hold_prod).training;

        results.push((name.to_string(), before, after, spec));
    }
    results
}

/// Runs the experiment and renders the report.
pub fn run() -> String {
    let mut table = Table::new(
        "Extension (paper future work §6.2.2): universal vs specialist performance model",
        &[
            "domain",
            "universal, no finetune (NRMSE)",
            "universal + domain finetune",
            "specialist + finetune",
        ],
    );
    for (name, before, after, spec) in evaluate() {
        table.row(&[
            name,
            format!("{:.1}%", before * 100.0),
            format!("{:.2}%", after * 100.0),
            format!("{:.2}%", spec * 100.0),
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "\nReading: one shared pretraining run serves both domains once fine-tuned per\n\
         domain (within ~2x of a dedicated specialist), while the un-finetuned universal\n\
         model is far off — matching §6.2.2's warning about reuse without fine-tuning.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universal_finetune_closes_most_of_the_gap() {
        std::env::set_var("H2O_EXT_UNI_SAMPLES", "900");
        std::env::set_var("H2O_EXT_UNI_EPOCHS", "40");
        for (name, before, after, spec) in evaluate() {
            assert!(
                after < before,
                "{name}: finetune must help ({before} -> {after})"
            );
            assert!(
                after < 3.5 * spec + 0.05,
                "{name}: universal+finetune should approach the specialist ({after} vs {spec})"
            );
        }
    }
}
