//! Table 3 — CoAtNet-H ablation: accuracy, params, FLOPs, training
//! throughput per architecture change.

use crate::report::Table;
use h2o_hwsim::{HardwareConfig, Simulator, SystemConfig};
use h2o_models::coatnet::{CoAtNet, FfnAct};
use h2o_models::quality::{ActFamily, DatasetScale, VisionModelDesc, VisionQualityModel};

/// Per-chip training throughput (images/s) at per-chip batch 64 on TPUv4,
/// matching the Table 3 footnote.
pub fn training_throughput(model: &CoAtNet) -> f64 {
    let batch = 64;
    let sim = Simulator::new(HardwareConfig::tpu_v4());
    let g = model.build_graph(batch);
    let report = sim.simulate_training(&g, &SystemConfig::training_pod());
    batch as f64 / report.time
}

/// Quality-surrogate descriptor of a CoAtNet variant.
pub fn desc_of(model: &CoAtNet) -> VisionModelDesc {
    VisionModelDesc {
        params_m: model.params_m(),
        resolution: model.resolution,
        conv_depth: model.conv_layers(),
        act: match model.ffn_act {
            FfnAct::Gelu => ActFamily::Gelu,
            FfnAct::Relu => ActFamily::Relu,
            FfnAct::SquaredRelu => ActFamily::SquaredRelu,
        },
        has_se: true,
        has_residuals: true,
    }
}

/// Runs the experiment and renders the report.
pub fn run() -> String {
    let quality = VisionQualityModel::new(DatasetScale::Small);
    let mut table = Table::new(
        "Table 3: CoAtNet-H ablation (paper: 89.7/688M/1012B/101 -> 90.3 -> 88.9/474B/186 -> 89.7)",
        &[
            "model",
            "top-1 acc",
            "params (M)",
            "FLOPs (B)",
            "train img/s/chip",
        ],
    );
    let paper = [
        ("paper CoAtNet-5", 89.7, 688.0, 1012.0, 101.0),
        ("paper +DeeperConv", 90.3, 697.0, 1060.0, 97.0),
        ("paper +ResShrink", 88.9, 697.0, 474.0, 186.0),
        ("paper +SquaredReLU", 89.7, 697.0, 476.0, 186.0),
    ];
    for model in CoAtNet::table3_ablation() {
        table.row(&[
            model.name.clone(),
            format!("{:.1}%", quality.accuracy(&desc_of(&model))),
            format!("{:.0}", model.params_m()),
            format!("{:.0}", model.flops_b()),
            format!("{:.0}", training_throughput(&model)),
        ]);
    }
    for (name, acc, p, f, t) in paper {
        table.row(&[
            name.to_string(),
            format!("{acc:.1}%"),
            format!("{p:.0}"),
            format!("{f:.0}"),
            format!("{t:.0}"),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_improves_down_the_ladder() {
        let ladder = CoAtNet::table3_ablation();
        let base = training_throughput(&ladder[0]);
        let deeper = training_throughput(&ladder[1]);
        let shrunk = training_throughput(&ladder[2]);
        assert!(deeper < base, "deeper conv must cost throughput");
        assert!(
            shrunk > 1.5 * base,
            "resolution shrink must roughly double throughput"
        );
    }

    #[test]
    fn report_renders() {
        assert!(run().contains("Table 3"));
    }
}
