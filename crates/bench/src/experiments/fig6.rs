//! Fig. 6 — CoAtNet-H vs CoAtNet Pareto fronts (accuracy × training
//! throughput) at three dataset scales; paper headline: 1.54× geomean
//! training throughput at neutral quality.

use super::table3::{desc_of, training_throughput};
use crate::report::{geomean, ratio, Table};
use h2o_core::pareto::{pareto_front, ParetoPoint};
use h2o_models::coatnet::CoAtNet;
use h2o_models::quality::{DatasetScale, VisionQualityModel};

/// Runs the experiment and renders the report.
pub fn run() -> String {
    let mut out = String::new();
    let baseline = CoAtNet::family();
    let h_family = CoAtNet::h_family();
    let throughput_base: Vec<f64> = baseline.iter().map(training_throughput).collect();
    let throughput_h: Vec<f64> = h_family.iter().map(training_throughput).collect();

    for dataset in DatasetScale::ALL {
        let quality = VisionQualityModel::new(dataset);
        let mut table = Table::new(
            format!("Fig. 6 ({dataset:?} data): accuracy vs training throughput"),
            &[
                "model",
                "top-1 acc",
                "img/s/chip",
                "Δacc vs base",
                "speedup",
            ],
        );
        for (i, (b, h)) in baseline.iter().zip(&h_family).enumerate() {
            let acc_b = quality.accuracy(&desc_of(b));
            let acc_h = quality.accuracy(&desc_of(h));
            table.row(&[
                b.name.clone(),
                format!("{acc_b:.1}%"),
                format!("{:.0}", throughput_base[i]),
                "-".into(),
                "-".into(),
            ]);
            table.row(&[
                h.name.clone(),
                format!("{acc_h:.1}%"),
                format!("{:.0}", throughput_h[i]),
                format!("{:+.2}", acc_h - acc_b),
                ratio(throughput_h[i] / throughput_base[i]),
            ]);
        }
        out.push_str(&table.render());

        // Pareto check: the H front must dominate or match the baseline.
        let mut points = Vec::new();
        for (i, m) in baseline.iter().enumerate() {
            points.push(ParetoPoint {
                quality: quality.accuracy(&desc_of(m)),
                cost: 1.0 / throughput_base[i],
                index: i,
            });
        }
        for (i, m) in h_family.iter().enumerate() {
            points.push(ParetoPoint {
                quality: quality.accuracy(&desc_of(m)),
                cost: 1.0 / throughput_h[i],
                index: baseline.len() + i,
            });
        }
        let front = pareto_front(&points);
        let h_on_front = front.iter().filter(|p| p.index >= baseline.len()).count();
        out.push_str(&format!(
            "Pareto front holds {} points, {} of them CoAtNet-H.\n",
            front.len(),
            h_on_front
        ));
    }

    let speedups: Vec<f64> = throughput_h
        .iter()
        .zip(&throughput_base)
        .map(|(h, b)| h / b)
        .collect();
    out.push_str(&format!(
        "\nGeomean training speedup CoAtNet-H vs CoAtNet: {} (paper: 1.54x; C5 pair: {} vs paper 1.84x)\n",
        ratio(geomean(&speedups)),
        ratio(speedups[speedups.len() - 1]),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h_family_dominates_throughput() {
        let base = CoAtNet::family();
        let h = CoAtNet::h_family();
        let speedups: Vec<f64> = h
            .iter()
            .zip(&base)
            .map(|(h, b)| training_throughput(h) / training_throughput(b))
            .collect();
        let gm = geomean(&speedups);
        assert!(gm > 1.3, "geomean speedup {gm} (paper 1.54)");
        assert!(
            gm < 3.0,
            "geomean speedup {gm} should stay in the paper's ballpark (1.54)"
        );
    }

    #[test]
    fn report_renders_three_scales() {
        let r = run();
        assert!(r.contains("Small"));
        assert!(r.contains("Medium"));
        assert!(r.contains("Large"));
    }
}
