//! Perf-trajectory observatory: the pinned benchmark scenario matrix, the
//! versioned `BENCH_<tag>.json` report it produces, and the regression
//! diff that gates CI on a committed baseline.
//!
//! The repository's performance story is only as durable as its memory of
//! past performance. This module gives every PR a cheap, committed record:
//! the `perf_baseline` binary runs a fixed matrix of scenarios (parallel
//! search across worker counts and cache states, one-shot unified search,
//! the TuNAS baseline, raw simulator throughput, a Zipf-replayed
//! cached-eval trace that pins the cache-hit path, a tensor matmul
//! microbench) under pinned seeds and writes the resulting metrics —
//! candidates/sec, step latency quantiles, per-phase time shares, cache
//! hit rate, simulator ops/sec — as dependency-free JSON. The companion
//! `bench_diff` binary re-runs the matrix and compares against the
//! committed baseline, failing CI (or warning, under `H2O_BENCH_STRICT=0`)
//! when a guarded metric regresses beyond a threshold.
//!
//! Counts and rates in the report (candidate totals, cache hit rate) are
//! deterministic under the pinned seeds; timing fields vary run to run,
//! which is exactly why comparisons are threshold-gated rather than exact.
//!
//! The JSON encoder/decoder here is deliberately hand-rolled (objects,
//! strings, numbers — the subset the schema needs): the report format must
//! not grow a serialization dependency just to be diffable.

use crate::report::{env_usize, seconds, Table};
use h2o_core::{
    parallel_search_with, tunas_search, unified_search, OneShotConfig, PerfObjective, RewardFn,
    RewardKind, SearchConfig, PHASES,
};
use h2o_data::{CtrTraffic, CtrTrafficConfig, InMemoryPipeline};
use h2o_eval::{BackendSpec, Domain, EvalBackend, EvalScenario, ModelSpec};
use h2o_hwsim::{arch_key, HardwareConfig, Simulator, SystemConfig};
use h2o_obs::HistogramSnapshot;
use h2o_space::{ArchSample, DlrmSpace, DlrmSpaceConfig, DlrmSupernet};
use h2o_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Version of the `BENCH_*.json` schema; bump on any breaking change to
/// the report shape so `bench_diff` refuses cross-version comparisons.
pub const SCHEMA_VERSION: u32 = 1;

/// Default relative-change threshold beyond which a guarded metric counts
/// as regressed (or improved). Overridden by `H2O_BENCH_THRESHOLD`.
pub const DEFAULT_THRESHOLD: f64 = 0.25;

// ---------------------------------------------------------------------------
// Report model
// ---------------------------------------------------------------------------

/// One benchmark run: environment block plus `scenario → metric → value`.
///
/// Both maps are ordered, so `to_json` output is byte-stable for a given
/// set of measurements — committed baselines diff cleanly.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`] at write time).
    pub schema_version: u32,
    /// Human-chosen tag naming the baseline (`pr6`, `local`, …).
    pub tag: String,
    /// Environment context: git revision, cpu count, scale knobs.
    pub env: BTreeMap<String, String>,
    /// Measured metrics per scenario.
    pub scenarios: BTreeMap<String, BTreeMap<String, f64>>,
}

impl BenchReport {
    /// An empty report with the current schema version.
    pub fn new(tag: impl Into<String>) -> Self {
        Self {
            schema_version: SCHEMA_VERSION,
            tag: tag.into(),
            env: BTreeMap::new(),
            scenarios: BTreeMap::new(),
        }
    }

    /// Serializes to the committed-baseline JSON format (stable key order,
    /// two-space indent, trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {},\n  \"tag\": \"{}\",\n",
            self.schema_version,
            escape(&self.tag)
        ));
        out.push_str("  \"env\": {\n");
        push_entries(&mut out, self.env.iter(), |v| format!("\"{}\"", escape(v)));
        out.push_str("  },\n  \"scenarios\": {\n");
        let n = self.scenarios.len();
        for (i, (name, metrics)) in self.scenarios.iter().enumerate() {
            out.push_str(&format!("    \"{}\": {{\n", escape(name)));
            let m = metrics.len();
            for (j, (metric, value)) in metrics.iter().enumerate() {
                out.push_str(&format!(
                    "      \"{}\": {}{}\n",
                    escape(metric),
                    number(*value),
                    if j + 1 < m { "," } else { "" }
                ));
            }
            out.push_str(&format!("    }}{}\n", if i + 1 < n { "," } else { "" }));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses a report previously written by [`BenchReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON, a missing/ill-typed field, or
    /// a schema version other than [`SCHEMA_VERSION`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = Parser::new(text).parse()?;
        let top = value.as_object("top level")?;
        let version = get(top, "schema_version")?.as_number("schema_version")?;
        if version != SCHEMA_VERSION as f64 {
            return Err(format!(
                "schema version {version} unsupported (this build reads {SCHEMA_VERSION})"
            ));
        }
        let tag = get(top, "tag")?.as_string("tag")?.to_string();
        let mut env = BTreeMap::new();
        for (k, v) in get(top, "env")?.as_object("env")? {
            env.insert(k.clone(), v.as_string(k)?.to_string());
        }
        let mut scenarios = BTreeMap::new();
        for (name, metrics) in get(top, "scenarios")?.as_object("scenarios")? {
            let mut parsed = BTreeMap::new();
            for (metric, value) in metrics.as_object(name)? {
                parsed.insert(metric.clone(), value.as_number(metric)?);
            }
            scenarios.insert(name.clone(), parsed);
        }
        Ok(Self {
            schema_version: SCHEMA_VERSION,
            tag,
            env,
            scenarios,
        })
    }
}

fn push_entries<'a>(
    out: &mut String,
    entries: impl ExactSizeIterator<Item = (&'a String, &'a String)>,
    render: impl Fn(&str) -> String,
) {
    let n = entries.len();
    for (i, (k, v)) in entries.enumerate() {
        out.push_str(&format!(
            "    \"{}\": {}{}\n",
            escape(k),
            render(v),
            if i + 1 < n { "," } else { "" }
        ));
    }
}

// JSON string escape (RFC 8259 rules for the characters the schema can
// contain).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an f64 as a JSON number: Rust's shortest round-trip form, with
/// non-finite values (which no metric should produce) clamped to 0.
fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (objects / strings / numbers — the report subset)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Num(f64),
    Str(String),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn as_object(&self, what: &str) -> Result<&BTreeMap<String, Json>, String> {
        match self {
            Json::Obj(map) => Ok(map),
            _ => Err(format!("{what}: expected an object")),
        }
    }

    fn as_number(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            _ => Err(format!("{what}: expected a number")),
        }
    }

    fn as_string(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(format!("{what}: expected a string")),
        }
    }
}

fn get<'a>(map: &'a BTreeMap<String, Json>, key: &str) -> Result<&'a Json, String> {
    map.get(key).ok_or_else(|| format!("missing key '{key}'"))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Result<Json, String> {
        let value = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing content at byte {}", self.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(c) if c.is_ascii_digit() || *c == b'-' || *c == b'+' => self.number(),
            Some(c) => Err(format!(
                "unexpected byte '{}' at {} (arrays/bools/null are outside the schema)",
                *c as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.pos += 1; // consume '{'
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(format!("expected ':' at byte {}", self.pos));
            }
            self.pos += 1;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(format!("expected '\"' at byte {}", self.pos));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unmodified.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    if let Ok(chunk) = std::str::from_utf8(&self.bytes[start..self.pos]) {
                        out.push_str(chunk);
                    } else {
                        return Err(format!("invalid UTF-8 at byte {start}"));
                    }
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

// ---------------------------------------------------------------------------
// Metric direction + regression diff
// ---------------------------------------------------------------------------

/// How a metric's value maps to "better".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-like: bigger is better (rates, hit rates, GFLOP/s).
    HigherIsBetter,
    /// Latency-like: smaller is better (millisecond quantiles).
    LowerIsBetter,
    /// Informational only (time shares, raw counts, total wall time):
    /// never gates the diff.
    Unguarded,
}

/// Classifies a metric by name. The mapping is deliberately explicit and
/// name-suffix based so a new metric is unguarded until someone decides
/// which way it points.
pub fn direction_of(metric: &str) -> Direction {
    if metric.ends_with("_share") || metric.ends_with("_count") || metric == "wall_seconds" {
        Direction::Unguarded
    } else if metric.ends_with("_per_sec")
        || metric.ends_with("gflops")
        || metric.ends_with("hit_rate")
    {
        Direction::HigherIsBetter
    } else if metric.ends_with("_ms") {
        Direction::LowerIsBetter
    } else {
        Direction::Unguarded
    }
}

/// Outcome of comparing one guarded metric against the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaStatus {
    /// Moved in the good direction by more than the threshold.
    Improved,
    /// Within the threshold either way.
    Within,
    /// Moved in the bad direction by more than the threshold.
    Regressed,
    /// Present in the baseline, absent from the current run — treated as
    /// a regression (a scenario or instrument silently disappeared).
    Missing,
}

/// One guarded metric's comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Scenario the metric belongs to.
    pub scenario: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value (`None` when [`DeltaStatus::Missing`]).
    pub current: Option<f64>,
    /// Signed relative change where positive means *better*, regardless
    /// of the metric's direction.
    pub goodness: f64,
    /// Classification under the diff threshold.
    pub status: DeltaStatus,
}

/// The full comparison of a current run against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Per-metric rows, in (scenario, metric) order.
    pub deltas: Vec<MetricDelta>,
    /// The relative threshold the rows were classified under.
    pub threshold: f64,
}

impl DiffReport {
    /// Number of gate-failing rows (regressed or missing).
    pub fn regressions(&self) -> usize {
        self.deltas
            .iter()
            .filter(|d| matches!(d.status, DeltaStatus::Regressed | DeltaStatus::Missing))
            .count()
    }

    /// Renders the delta table plus a one-line verdict.
    pub fn render(&self) -> String {
        let mut table = Table::new(
            format!(
                "bench_diff: current vs baseline (threshold {:.0}%)",
                self.threshold * 100.0
            ),
            &[
                "scenario", "metric", "baseline", "current", "change", "status",
            ],
        );
        for d in &self.deltas {
            table.row(&[
                d.scenario.clone(),
                d.metric.clone(),
                format!("{:.4}", d.baseline),
                d.current.map_or("-".to_string(), |c| format!("{c:.4}")),
                format!("{:+.1}%", d.goodness * 100.0),
                match d.status {
                    DeltaStatus::Improved => "improved".to_string(),
                    DeltaStatus::Within => "ok".to_string(),
                    DeltaStatus::Regressed => "REGRESSED".to_string(),
                    DeltaStatus::Missing => "MISSING".to_string(),
                },
            ]);
        }
        let mut out = table.render();
        let regressions = self.regressions();
        if regressions == 0 {
            out.push_str("\nbench_diff: no guarded metric regressed\n");
        } else {
            out.push_str(&format!(
                "\nbench_diff: {regressions} guarded metric(s) regressed or went missing\n"
            ));
        }
        out
    }
}

/// Compares every guarded baseline metric against the current run.
///
/// Metrics that exist only in the current run are ignored (nothing to
/// compare against); unguarded metrics never produce rows.
pub fn diff_reports(baseline: &BenchReport, current: &BenchReport, threshold: f64) -> DiffReport {
    let mut deltas = Vec::new();
    for (scenario, metrics) in &baseline.scenarios {
        for (metric, &base_value) in metrics {
            let direction = direction_of(metric);
            if direction == Direction::Unguarded {
                continue;
            }
            let current_value = current
                .scenarios
                .get(scenario)
                .and_then(|m| m.get(metric))
                .copied();
            let delta = match current_value {
                None => MetricDelta {
                    scenario: scenario.clone(),
                    metric: metric.clone(),
                    baseline: base_value,
                    current: None,
                    goodness: -1.0,
                    status: DeltaStatus::Missing,
                },
                Some(cur) => {
                    let goodness = goodness_of(base_value, cur, direction);
                    let status = if goodness < -threshold {
                        DeltaStatus::Regressed
                    } else if goodness > threshold {
                        DeltaStatus::Improved
                    } else {
                        DeltaStatus::Within
                    };
                    MetricDelta {
                        scenario: scenario.clone(),
                        metric: metric.clone(),
                        baseline: base_value,
                        current: Some(cur),
                        goodness,
                        status,
                    }
                }
            };
            deltas.push(delta);
        }
    }
    DiffReport { deltas, threshold }
}

/// Signed relative change with positive = better. A zero baseline with a
/// zero current value is "no change"; a zero baseline with a nonzero
/// current value counts as a full-scale move in the value's direction.
fn goodness_of(baseline: f64, current: f64, direction: Direction) -> f64 {
    let raw = if baseline.abs() > f64::EPSILON {
        (current - baseline) / baseline.abs()
    } else if current.abs() <= f64::EPSILON {
        0.0
    } else {
        current.signum()
    };
    match direction {
        Direction::LowerIsBetter => -raw,
        _ => raw,
    }
}

/// Exit-code policy shared by `bench_diff` and its tests: non-zero only
/// when the gate is strict **and** a guarded metric regressed.
pub fn diff_exit_code(regressions: usize, strict: bool) -> u8 {
    if strict && regressions > 0 {
        1
    } else {
        0
    }
}

// ---------------------------------------------------------------------------
// Scenario matrix
// ---------------------------------------------------------------------------

/// Scale knobs for the matrix, each overridable via environment so the CI
/// smoke stage can run a reduced matrix with the same code path.
#[derive(Debug, Clone, Copy)]
pub struct BenchScale {
    /// Steps per parallel/one-shot search scenario (`H2O_BENCH_STEPS`).
    pub search_steps: usize,
    /// Evaluations in the raw simulator scenario (`H2O_BENCH_SIM_EVALS`).
    pub sim_evals: usize,
    /// Iterations in the matmul microbench (`H2O_BENCH_MATMUL_ITERS`).
    pub matmul_iters: usize,
}

impl BenchScale {
    /// Reads the scale from the environment with laptop-friendly defaults.
    pub fn from_env() -> Self {
        Self {
            search_steps: env_usize("H2O_BENCH_STEPS", 40),
            sim_evals: env_usize("H2O_BENCH_SIM_EVALS", 150),
            matmul_iters: env_usize("H2O_BENCH_MATMUL_ITERS", 40),
        }
    }
}

const SHARDS: usize = 8;
const SEARCH_SEED: u64 = 0;

/// Runs the full scenario matrix and assembles the report. Each scenario
/// resets the global metrics registry first, so its snapshot reflects that
/// scenario alone.
pub fn run_matrix(tag: &str, scale: BenchScale) -> BenchReport {
    let mut report = BenchReport::new(tag);
    report.env = env_block(scale);
    for workers in [1usize, 4, 8] {
        for cached in [false, true] {
            let name = format!(
                "parallel_w{workers}_cache_{}",
                if cached { "on" } else { "off" }
            );
            let metrics = scenario_parallel(workers, cached, scale.search_steps);
            report.scenarios.insert(name, metrics);
        }
    }
    report.scenarios.insert(
        "unified_oneshot".to_string(),
        scenario_unified(scale.search_steps),
    );
    report
        .scenarios
        .insert("tunas".to_string(), scenario_tunas(scale.search_steps));
    report
        .scenarios
        .insert("hwsim_raw".to_string(), scenario_hwsim(scale.sim_evals));
    report.scenarios.insert(
        "hwsim_zipf_replay".to_string(),
        scenario_zipf_replay(scale.sim_evals),
    );
    report.scenarios.insert(
        "eval_backend_ab".to_string(),
        scenario_eval_backend_ab(scale.search_steps),
    );
    report.scenarios.insert(
        "convergence_cache_saturation".to_string(),
        scenario_convergence(scale.search_steps),
    );
    report.scenarios.insert(
        "tensor_matmul".to_string(),
        scenario_matmul(scale.matmul_iters),
    );
    report
}

fn env_block(scale: BenchScale) -> BTreeMap<String, String> {
    let mut env = BTreeMap::new();
    env.insert("git_rev".to_string(), git_rev());
    env.insert(
        "cpu_count".to_string(),
        std::thread::available_parallelism()
            .map(|n| n.get().to_string())
            .unwrap_or_else(|_| "unknown".to_string()),
    );
    env.insert("os".to_string(), std::env::consts::OS.to_string());
    env.insert("arch".to_string(), std::env::consts::ARCH.to_string());
    env.insert("search_steps".to_string(), scale.search_steps.to_string());
    env.insert("sim_evals".to_string(), scale.sim_evals.to_string());
    env.insert("matmul_iters".to_string(), scale.matmul_iters.to_string());
    env.insert("shards".to_string(), SHARDS.to_string());
    env
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The DLRM production space truncated to 40 tables — the same workload
/// `h2o search --domain dlrm` runs, so baseline numbers track the real
/// search path.
fn dlrm_space_config() -> DlrmSpaceConfig {
    let mut config = DlrmSpaceConfig::production();
    config.tables.truncate(40);
    config
}

fn scenario_parallel(workers: usize, cached: bool, steps: usize) -> BTreeMap<String, f64> {
    h2o_obs::reset();
    let watch = h2o_obs::Stopwatch::start();

    let spec = if cached {
        BackendSpec::Cached { capacity: 4096 }
    } else {
        BackendSpec::Simulator
    };
    // h2o-lint: allow(panic-hygiene) -- literal domain + validated spec, infallible by construction
    let scenario = EvalScenario::new("dlrm", spec).expect("dlrm scenario");
    let space = scenario.space();
    let reward = RewardFn::new(
        RewardKind::Relu,
        vec![PerfObjective::new("step_time", 0.1, -8.0)],
    );
    let cfg = SearchConfig {
        steps,
        shards: SHARDS,
        policy_lr: 0.06,
        baseline_momentum: 0.9,
        seed: SEARCH_SEED,
        workers,
    };

    // A real on-disk checkpoint sink (under target/) so the checkpoint
    // phase quantiles measure actual serialization + write latency.
    let ckpt_dir = std::path::Path::new("target")
        .join("perf_baseline_ckpt")
        .join(format!("w{workers}_{}", if cached { "on" } else { "off" }));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let mut sink = h2o_ckpt::CheckpointStore::new(&ckpt_dir, cfg.fingerprint(&space))
        .ok()
        .map(|store| h2o_ckpt::FileCheckpointSink::new(store, (steps / 4).max(1)));

    // h2o-lint: allow(panic-hygiene) -- sim/cached backends cannot fail to build
    let backend = scenario.backend().expect("backend");
    let outcome = parallel_search_with(
        &space,
        &reward,
        |_| scenario.shard_evaluator(&backend),
        &cfg,
        None,
        sink.as_mut()
            .map(|s| s as &mut dyn h2o_core::CheckpointSink),
    );

    let wall = watch.elapsed_secs();
    let mut metrics = search_metrics(outcome.evaluated.len(), wall);
    if cached {
        // Over the production-scale space the policy rarely re-samples an
        // exact architecture within the pinned step budget, so the hit
        // rate sits near zero and the cache-on scenarios chiefly track
        // memoization *overhead* — which must stay negligible. Hit-path
        // latency is pinned separately by the hwsim crate's own tests.
        let snap = h2o_obs::snapshot();
        let hits = *snap
            .counters
            .get("h2o_hwsim_cache_hits_total")
            .unwrap_or(&0);
        let misses = *snap
            .counters
            .get("h2o_hwsim_cache_misses_total")
            .unwrap_or(&0);
        if hits + misses > 0 {
            metrics.insert(
                "cache_hit_rate".to_string(),
                hits as f64 / (hits + misses) as f64,
            );
        }
    }
    metrics
}

fn scenario_unified(steps: usize) -> BTreeMap<String, f64> {
    h2o_obs::reset();
    let watch = h2o_obs::Stopwatch::start();

    let mut rng = StdRng::seed_from_u64(SEARCH_SEED);
    let mut supernet = DlrmSupernet::new(DlrmSpaceConfig::tiny(), 0.05, &mut rng);
    let space = supernet.space().clone();
    let pipeline = InMemoryPipeline::new(CtrTraffic::new(CtrTrafficConfig::tiny(), 1));
    let cfg = OneShotConfig {
        steps,
        shards: SHARDS,
        batch_size: 32,
        workers: 4,
        ..Default::default()
    };
    let reward = RewardFn::new(
        RewardKind::Relu,
        vec![PerfObjective::new("model_mb", 2.0, -8.0)],
    );
    let perf = |sample: &ArchSample| vec![space.decode(sample).model_size_bytes() / 1e6];
    let outcome = unified_search(&mut supernet, &pipeline, &reward, perf, &cfg);

    search_metrics(outcome.evaluated.len(), watch.elapsed_secs())
}

fn scenario_tunas(steps: usize) -> BTreeMap<String, f64> {
    h2o_obs::reset();
    let watch = h2o_obs::Stopwatch::start();

    let mut rng = StdRng::seed_from_u64(SEARCH_SEED);
    let mut supernet = DlrmSupernet::new(DlrmSpaceConfig::tiny(), 0.05, &mut rng);
    let space = supernet.space().clone();
    let mut train = CtrTraffic::new(CtrTrafficConfig::tiny(), 1);
    let mut valid = CtrTraffic::new(CtrTrafficConfig::tiny(), 2);
    let cfg = OneShotConfig {
        steps,
        shards: SHARDS,
        batch_size: 32,
        workers: 4,
        ..Default::default()
    };
    let reward = RewardFn::new(
        RewardKind::Absolute,
        vec![PerfObjective::new("model_mb", 2.0, -8.0)],
    );
    let perf = |sample: &ArchSample| vec![space.decode(sample).model_size_bytes() / 1e6];
    let outcome = tunas_search(&mut supernet, &mut train, &mut valid, &reward, perf, &cfg);

    search_metrics(outcome.evaluated.len(), watch.elapsed_secs())
}

fn scenario_hwsim(evals: usize) -> BTreeMap<String, f64> {
    h2o_obs::reset();
    let watch = h2o_obs::Stopwatch::start();

    let sim = Simulator::new(HardwareConfig::tpu_v4());
    let space = DlrmSpace::new(dlrm_space_config());
    let mut rng = StdRng::seed_from_u64(7);
    let hist = h2o_obs::histogram("bench_sim_eval_seconds");
    for _ in 0..evals {
        let sample = space.space().sample_uniform(&mut rng);
        let graph = space.decode(&sample).build_graph(64, 128);
        let _ = hist.time(|| sim.simulate_training(&graph, &SystemConfig::training_pod()));
    }
    let wall = watch.elapsed_secs();

    let mut metrics = BTreeMap::new();
    metrics.insert("wall_seconds".to_string(), wall);
    metrics.insert("evals_count".to_string(), evals as f64);
    metrics.insert("sim_ops_per_sec".to_string(), evals as f64 / wall.max(1e-9));
    let snap = h2o_obs::snapshot();
    if let Some(h) = snap.histograms.get("bench_sim_eval_seconds") {
        metrics.insert("sim_eval_p50_ms".to_string(), h.p50 * 1e3);
        metrics.insert("sim_eval_p99_ms".to_string(), h.p99 * 1e3);
    }
    metrics
}

/// Replays a Zipf-popularity eval trace through the shared eval cache.
///
/// Over the production-scale space the search policy almost never
/// re-samples an exact architecture, so the `parallel_*_cache_on`
/// scenarios report a near-zero hit rate and chiefly track memoization
/// *overhead*. Production eval traffic looks different: a few hot
/// architectures dominate (warm restarts, repeated promotion candidates,
/// shared subnets). This scenario models that with a fixed 64-candidate
/// pool drawn with Zipf(1.1) popularity, so the baseline pins the
/// cache-*hit* path: a high deterministic hit rate plus hit-dominated
/// latency quantiles.
fn scenario_zipf_replay(evals: usize) -> BTreeMap<String, f64> {
    zipf_replay_over(dlrm_space_config(), 64, evals)
}

/// The Zipf-replay measurement core, parameterized over space and pool
/// size so the unit tests can run it on the tiny space.
fn zipf_replay_over(
    config: DlrmSpaceConfig,
    pool_size: usize,
    evals: usize,
) -> BTreeMap<String, f64> {
    h2o_obs::reset();
    let watch = h2o_obs::Stopwatch::start();

    let space = DlrmSpace::new(config);
    let mut rng = StdRng::seed_from_u64(11);
    let pool: Vec<ArchSample> = (0..pool_size)
        .map(|_| space.space().sample_uniform(&mut rng))
        .collect();
    // Rank r is drawn with weight 1/r^1.1; selection walks the CDF.
    let weights: Vec<f64> = (1..=pool_size)
        .map(|r| 1.0 / (r as f64).powf(1.1))
        .collect();
    let total: f64 = weights.iter().sum();

    let backend = EvalBackend::build(
        &BackendSpec::Cached {
            capacity: pool_size * 2,
        },
        Domain::Dlrm,
    )
    // h2o-lint: allow(panic-hygiene) -- cached backend over a literal spec, infallible
    .expect("cached backend");
    let hist = h2o_obs::histogram("bench_zipf_eval_seconds");
    for _ in 0..evals {
        let mut point = rng.gen::<f64>() * total;
        let mut rank = pool_size - 1;
        for (i, w) in weights.iter().enumerate() {
            point -= w;
            if point <= 0.0 {
                rank = i;
                break;
            }
        }
        let sample = &pool[rank];
        let _ = hist.time(|| {
            backend.training_cost(
                sample,
                arch_key("dlrm", sample),
                &SystemConfig::training_pod(),
                || space.decode(sample).build_graph(64, 128),
            )
        });
    }
    let wall = watch.elapsed_secs();

    let mut metrics = BTreeMap::new();
    metrics.insert("wall_seconds".to_string(), wall);
    metrics.insert("evals_count".to_string(), evals as f64);
    metrics.insert("evals_per_sec".to_string(), evals as f64 / wall.max(1e-9));
    let snap = h2o_obs::snapshot();
    let hits = *snap
        .counters
        .get("h2o_hwsim_cache_hits_total")
        .unwrap_or(&0);
    let misses = *snap
        .counters
        .get("h2o_hwsim_cache_misses_total")
        .unwrap_or(&0);
    if hits + misses > 0 {
        metrics.insert(
            "cache_hit_rate".to_string(),
            hits as f64 / (hits + misses) as f64,
        );
    }
    if let Some(h) = snap.histograms.get("bench_zipf_eval_seconds") {
        metrics.insert("zipf_eval_p50_ms".to_string(), h.p50 * 1e3);
        metrics.insert("zipf_eval_p99_ms".to_string(), h.p99 * 1e3);
    }
    metrics
}

/// Runs one pinned DLRM search through the given backend spec and
/// returns `(candidates, wall_seconds, backend)` — the shared arm of the
/// A/B and convergence scenarios. The backend is built *before* the
/// stopwatch starts: model pretraining is a once-per-deployment cost the
/// paper amortizes across searches, so candidates/sec measures serving
/// throughput, not setup.
fn search_through(spec: BackendSpec, steps: usize, workers: usize) -> (usize, f64, EvalBackend) {
    // h2o-lint: allow(panic-hygiene) -- literal domain + validated spec, infallible by construction
    let scenario = EvalScenario::new("dlrm", spec).expect("dlrm scenario");
    let space = scenario.space();
    let reward = RewardFn::new(
        RewardKind::Relu,
        vec![PerfObjective::new("step_time", 0.1, -8.0)],
    );
    let cfg = SearchConfig {
        steps,
        shards: SHARDS,
        policy_lr: 0.06,
        baseline_momentum: 0.9,
        seed: SEARCH_SEED,
        workers,
    };
    // h2o-lint: allow(panic-hygiene) -- sim/cached backends cannot fail to build
    let backend = scenario.backend().expect("backend");
    let watch = h2o_obs::Stopwatch::start();
    let outcome = parallel_search_with(
        &space,
        &reward,
        |_| scenario.shard_evaluator(&backend),
        &cfg,
        None,
        None,
    );
    (outcome.evaluated.len(), watch.elapsed_secs(), backend)
}

/// The model-served A/B: the same pinned search at equal eval budget
/// (steps × shards), once through the plain simulator and once through
/// the model-served backend. The headline pair is
/// `sim_candidates_per_sec` vs `model_candidates_per_sec`; the served
/// share and fine-tune rounds are deterministic under the pinned seeds
/// and recorded as unguarded counts. `model_batch_infer_per_sec` pins
/// the vectorized `infer_batch` hot path itself.
fn scenario_eval_backend_ab(steps: usize) -> BTreeMap<String, f64> {
    h2o_obs::reset();
    let watch = h2o_obs::Stopwatch::start();

    let (sim_candidates, sim_wall, sim_backend) = search_through(BackendSpec::Simulator, steps, 4);
    let (model_candidates, model_wall, backend) = search_through(
        BackendSpec::ModelServed {
            fallback_capacity: Some(4096),
            model: ModelSpec::default(),
        },
        steps,
        4,
    );

    let mut metrics = BTreeMap::new();
    metrics.insert("wall_seconds".to_string(), watch.elapsed_secs());
    metrics.insert("sim_candidates_count".to_string(), sim_candidates as f64);
    metrics.insert(
        "sim_candidates_per_sec".to_string(),
        sim_candidates as f64 / sim_wall.max(1e-9),
    );
    metrics.insert(
        "model_candidates_count".to_string(),
        model_candidates as f64,
    );
    metrics.insert(
        "model_candidates_per_sec".to_string(),
        model_candidates as f64 / model_wall.max(1e-9),
    );
    // Search-arm stats, read before the eval-stream A/B below reuses the
    // backend (its counters keep accruing there).
    // h2o-lint: allow(panic-hygiene) -- this arm was built with the model spec two lines up
    let served = backend.model_served().expect("model backend");
    let stats = served.stats();
    metrics.insert("served_count".to_string(), stats.served as f64);
    metrics.insert("fallback_count".to_string(), stats.fallback as f64);
    metrics.insert("served_share".to_string(), stats.served_share());
    metrics.insert(
        "finetune_rounds_count".to_string(),
        stats.finetune_rounds as f64,
    );

    // Equal-eval-budget A/B: the same pinned candidate stream through each
    // backend's shard evaluator, no search machinery in the timed window.
    // This isolates the per-candidate eval cost (decode + quality + cost
    // backend) that the search-level candidates/sec above dilutes with
    // policy sampling and REINFORCE updates.
    // h2o-lint: allow(panic-hygiene) -- literal domain + simulator spec, infallible
    let eval_scenario = EvalScenario::new("dlrm", BackendSpec::Simulator).expect("dlrm scenario");
    let space = eval_scenario.space();
    let mut rng = StdRng::seed_from_u64(11);
    let stream: Vec<_> = (0..2000).map(|_| space.sample_uniform(&mut rng)).collect();
    let mut eval_rates = Vec::new();
    for arm in [&sim_backend, &backend] {
        let mut evaluate = eval_scenario.shard_evaluator(arm);
        let arm_watch = h2o_obs::Stopwatch::start();
        for sample in &stream {
            let _ = evaluate(sample);
        }
        eval_rates.push(stream.len() as f64 / arm_watch.elapsed_secs().max(1e-9));
    }
    metrics.insert("sim_eval_candidates_per_sec".to_string(), eval_rates[0]);
    metrics.insert("model_eval_candidates_per_sec".to_string(), eval_rates[1]);
    // The ratio is what the acceptance gate reads; it is informational
    // (no direction suffix) because both arms are timing-based.
    metrics.insert(
        "model_speedup_ratio".to_string(),
        eval_rates[1] / eval_rates[0].max(1e-9),
    );

    // Batched inference microbench: one multi-row forward over a fixed
    // candidate pool, the shape the serving hot path is vectorized for.
    // h2o-lint: allow(panic-hygiene) -- literal domain + simulator spec, infallible
    let scenario = EvalScenario::new("dlrm", BackendSpec::Simulator).expect("dlrm scenario");
    let space = scenario.space();
    let mut rng = StdRng::seed_from_u64(5);
    let rows: Vec<Vec<f32>> = (0..256)
        .map(|_| served.featurize(&space.sample_uniform(&mut rng)))
        .collect();
    let iters = 20;
    let batch_watch = h2o_obs::Stopwatch::start();
    for _ in 0..iters {
        let _ = served.frozen_model().infer_batch(&rows);
    }
    metrics.insert(
        "model_batch_infer_per_sec".to_string(),
        (rows.len() * iters) as f64 / batch_watch.elapsed_secs().max(1e-9),
    );
    metrics
}

/// The convergence-scale scenario: a 3×-longer pinned search against a
/// deliberately tiny eval cache, so the cache spends the whole late
/// phase saturated — entries pinned at capacity, every insert paying an
/// eviction. The baseline pins that eviction-path overhead (evictions ≈
/// candidates − capacity) alongside step latency at convergence scale.
/// Intra-run hit rate stays ~0 by construction: with ~330 decisions per
/// candidate the policy essentially never resamples an exact
/// architecture, so cache hits are a resume/replay phenomenon (see
/// `hwsim_zipf_replay`), not a search-loop one.
fn scenario_convergence(steps: usize) -> BTreeMap<String, f64> {
    h2o_obs::reset();
    let watch = h2o_obs::Stopwatch::start();

    let (candidates, _, backend) =
        search_through(BackendSpec::Cached { capacity: 64 }, steps * 3, 4);
    let wall = watch.elapsed_secs();

    let mut metrics = search_metrics(candidates, wall);
    // h2o-lint: allow(panic-hygiene) -- the spec above is Cached, so a cache exists
    let stats = backend.cache().expect("cached backend").stats();
    metrics.insert("cache_hit_rate".to_string(), stats.hit_rate());
    metrics.insert("cache_evictions_count".to_string(), stats.evictions as f64);
    metrics.insert("cache_entries_count".to_string(), stats.entries as f64);
    metrics
}

fn scenario_matmul(iters: usize) -> BTreeMap<String, f64> {
    h2o_obs::reset();
    let watch = h2o_obs::Stopwatch::start();

    const N: usize = 192;
    let a = Matrix::from_fn(N, N, |i, j| ((i * 31 + j * 17) % 97) as f32 * 0.01);
    let b = Matrix::from_fn(N, N, |i, j| ((i * 13 + j * 29) % 89) as f32 * 0.01);
    let hist = h2o_obs::histogram("bench_matmul_seconds");
    let mut checksum = 0.0f32;
    for _ in 0..iters {
        let c = hist.time(|| a.matmul(&b));
        checksum += c.get(0, 0);
    }
    let wall = watch.elapsed_secs();

    let mut metrics = BTreeMap::new();
    metrics.insert("wall_seconds".to_string(), wall);
    metrics.insert("iters_count".to_string(), iters as f64);
    metrics.insert("checksum_count".to_string(), checksum as f64);
    let flops = 2.0 * (N * N * N * iters) as f64;
    metrics.insert("matmul_gflops".to_string(), flops / wall.max(1e-9) / 1e9);
    let snap = h2o_obs::snapshot();
    if let Some(h) = snap.histograms.get("bench_matmul_seconds") {
        metrics.insert("matmul_p50_ms".to_string(), h.p50 * 1e3);
        metrics.insert("matmul_p99_ms".to_string(), h.p99 * 1e3);
    }
    metrics
}

/// Extracts the shared search-scenario metric set from the global
/// registry: throughput, step quantiles, per-phase quantiles and shares.
fn search_metrics(candidates: usize, wall: f64) -> BTreeMap<String, f64> {
    let snap = h2o_obs::snapshot();
    let mut metrics = BTreeMap::new();
    metrics.insert("wall_seconds".to_string(), wall);
    metrics.insert("candidates_count".to_string(), candidates as f64);
    metrics.insert(
        "candidates_per_sec".to_string(),
        candidates as f64 / wall.max(1e-9),
    );
    if let Some(h) = snap.histograms.get("h2o_core_step_seconds") {
        metrics.insert("step_p50_ms".to_string(), h.p50 * 1e3);
        metrics.insert("step_p95_ms".to_string(), h.p95 * 1e3);
        metrics.insert("step_p99_ms".to_string(), h.p99 * 1e3);
    }
    let phase_sums: Vec<(&str, Option<&HistogramSnapshot>)> = PHASES
        .iter()
        .map(|phase| {
            let key = format!("h2o_core_phase_seconds{{phase=\"{phase}\"}}");
            (*phase, snap.histograms.get(&key))
        })
        .collect();
    let total: f64 = phase_sums
        .iter()
        .filter_map(|(_, h)| h.map(|h| h.sum))
        .sum();
    for (phase, h) in phase_sums {
        let Some(h) = h else { continue };
        if h.count == 0 {
            continue;
        }
        metrics.insert(format!("phase_{phase}_p50_ms"), h.p50 * 1e3);
        metrics.insert(format!("phase_{phase}_p99_ms"), h.p99 * 1e3);
        if total > 0.0 {
            metrics.insert(format!("phase_{phase}_share"), h.sum / total);
        }
    }
    metrics
}

/// One-line human summary of a scenario's headline numbers, used by the
/// `perf_baseline` progress output.
pub fn scenario_summary(name: &str, metrics: &BTreeMap<String, f64>) -> String {
    let mut parts = vec![format!("{name}:")];
    if let Some(v) = metrics.get("candidates_per_sec") {
        parts.push(format!("{v:.1} cand/s"));
    }
    if let Some(v) = metrics.get("sim_ops_per_sec") {
        parts.push(format!("{v:.1} sims/s"));
    }
    if let Some(v) = metrics.get("evals_per_sec") {
        parts.push(format!("{v:.1} evals/s"));
    }
    if let Some(v) = metrics.get("matmul_gflops") {
        parts.push(format!("{v:.2} GFLOP/s"));
    }
    if let Some(v) = metrics.get("step_p50_ms") {
        parts.push(format!("step p50 {v:.2} ms"));
    }
    if let Some(v) = metrics.get("cache_hit_rate") {
        parts.push(format!("hit rate {:.1}%", v * 100.0));
    }
    if let Some(v) = metrics.get("wall_seconds") {
        parts.push(format!("({})", seconds(*v)));
    }
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        let mut report = BenchReport::new("test");
        report.env.insert("git_rev".into(), "abc123".into());
        report
            .env
            .insert("note".into(), "quote \" and \\ back".into());
        let mut metrics = BTreeMap::new();
        metrics.insert("candidates_per_sec".to_string(), 123.456);
        metrics.insert("step_p50_ms".to_string(), 0.875);
        metrics.insert("phase_collect_share".to_string(), 0.7);
        report
            .scenarios
            .insert("parallel_w4_cache_on".to_string(), metrics);
        report
    }

    #[test]
    fn json_round_trips() {
        let report = sample_report();
        let json = report.to_json();
        let parsed = match BenchReport::from_json(&json) {
            Ok(r) => r,
            Err(e) => panic!("round trip failed: {e}"),
        };
        assert_eq!(parsed, report);
    }

    #[test]
    fn json_is_byte_stable() {
        let report = sample_report();
        assert_eq!(report.to_json(), report.to_json());
    }

    #[test]
    fn from_json_rejects_garbage_and_wrong_version() {
        assert!(BenchReport::from_json("not json").is_err());
        assert!(BenchReport::from_json("{\"schema_version\": 999}").is_err());
        assert!(BenchReport::from_json("{}").is_err(), "missing keys");
        // Arrays are outside the schema.
        assert!(BenchReport::from_json("[1, 2]").is_err());
    }

    #[test]
    fn direction_mapping() {
        assert_eq!(
            direction_of("candidates_per_sec"),
            Direction::HigherIsBetter
        );
        assert_eq!(direction_of("cache_hit_rate"), Direction::HigherIsBetter);
        assert_eq!(direction_of("matmul_gflops"), Direction::HigherIsBetter);
        assert_eq!(direction_of("step_p99_ms"), Direction::LowerIsBetter);
        assert_eq!(
            direction_of("phase_collect_p50_ms"),
            Direction::LowerIsBetter
        );
        assert_eq!(direction_of("phase_collect_share"), Direction::Unguarded);
        assert_eq!(direction_of("wall_seconds"), Direction::Unguarded);
        assert_eq!(direction_of("candidates_count"), Direction::Unguarded);
        assert_eq!(direction_of("something_else"), Direction::Unguarded);
    }

    fn report_with(metric: &str, value: f64) -> BenchReport {
        let mut report = BenchReport::new("t");
        let mut metrics = BTreeMap::new();
        metrics.insert(metric.to_string(), value);
        report.scenarios.insert("s".to_string(), metrics);
        report
    }

    #[test]
    fn diff_classifies_improvement_within_and_regression() {
        let baseline = report_with("candidates_per_sec", 100.0);
        for (current, expected) in [
            (140.0, DeltaStatus::Improved),
            (110.0, DeltaStatus::Within),
            (90.0, DeltaStatus::Within),
            (60.0, DeltaStatus::Regressed),
        ] {
            let diff = diff_reports(&baseline, &report_with("candidates_per_sec", current), 0.25);
            assert_eq!(diff.deltas.len(), 1);
            assert_eq!(diff.deltas[0].status, expected, "current = {current}");
        }
    }

    #[test]
    fn lower_is_better_flips_the_sign() {
        let baseline = report_with("step_p50_ms", 10.0);
        let faster = diff_reports(&baseline, &report_with("step_p50_ms", 5.0), 0.25);
        assert_eq!(faster.deltas[0].status, DeltaStatus::Improved);
        let slower = diff_reports(&baseline, &report_with("step_p50_ms", 20.0), 0.25);
        assert_eq!(slower.deltas[0].status, DeltaStatus::Regressed);
        assert_eq!(slower.regressions(), 1);
    }

    #[test]
    fn missing_guarded_metric_is_a_regression() {
        let baseline = report_with("candidates_per_sec", 100.0);
        let current = report_with("unrelated_per_sec", 1.0);
        let diff = diff_reports(&baseline, &current, 0.25);
        assert_eq!(diff.deltas.len(), 1);
        assert_eq!(diff.deltas[0].status, DeltaStatus::Missing);
        assert_eq!(diff.regressions(), 1);
    }

    #[test]
    fn unguarded_metrics_never_gate() {
        let baseline = report_with("wall_seconds", 1.0);
        let diff = diff_reports(&baseline, &report_with("wall_seconds", 100.0), 0.25);
        assert!(diff.deltas.is_empty());
        assert_eq!(diff.regressions(), 0);
    }

    #[test]
    fn new_metrics_in_current_are_ignored() {
        let baseline = report_with("candidates_per_sec", 100.0);
        let mut current = report_with("candidates_per_sec", 100.0);
        if let Some(m) = current.scenarios.get_mut("s") {
            m.insert("brand_new_per_sec".to_string(), 5.0);
        }
        let diff = diff_reports(&baseline, &current, 0.25);
        assert_eq!(diff.deltas.len(), 1, "only the shared metric is compared");
    }

    #[test]
    fn zipf_replay_is_hit_dominated_and_deterministic() {
        // The whole point of the scenario: under Zipf(1.1) popularity the
        // cached simulator serves most evals from the cache, and the hit
        // rate is a pure function of the pinned seed — so the committed
        // baseline gates it exactly like any other guarded metric.
        // Tiny space + small pool keep this fast in debug builds; the
        // committed baseline runs the production-truncated space.
        let first = zipf_replay_over(DlrmSpaceConfig::tiny(), 8, 64);
        let hit_rate = *first
            .get("cache_hit_rate")
            .expect("zipf replay reports a hit rate");
        assert!(
            hit_rate > 0.5,
            "expected a hit-dominated trace, got hit rate {hit_rate}"
        );
        let second = zipf_replay_over(DlrmSpaceConfig::tiny(), 8, 64);
        assert_eq!(
            first.get("cache_hit_rate"),
            second.get("cache_hit_rate"),
            "hit rate must be deterministic under the pinned seed"
        );
        assert!(first.contains_key("zipf_eval_p50_ms"));
        assert!(first.contains_key("zipf_eval_p99_ms"));
    }

    #[test]
    fn injected_regression_fails_the_strict_gate() {
        // The acceptance scenario end to end: take a baseline, synthetically
        // regress one guarded metric, and check the gate's exit code.
        let baseline = sample_report();
        let mut current = baseline.clone();
        if let Some(m) = current.scenarios.get_mut("parallel_w4_cache_on") {
            m.insert("candidates_per_sec".to_string(), 123.456 * 0.5);
        }
        let diff = diff_reports(&baseline, &current, DEFAULT_THRESHOLD);
        assert_eq!(diff.regressions(), 1);
        assert_eq!(diff_exit_code(diff.regressions(), true), 1);
        assert_eq!(diff_exit_code(diff.regressions(), false), 0, "warn-only");
    }

    #[test]
    fn exit_code_semantics() {
        assert_eq!(diff_exit_code(0, true), 0);
        assert_eq!(diff_exit_code(0, false), 0);
        assert_eq!(diff_exit_code(3, true), 1, "strict gate fails");
        assert_eq!(diff_exit_code(3, false), 0, "warn-only never fails");
    }

    #[test]
    fn zero_baseline_edge_cases() {
        assert_eq!(goodness_of(0.0, 0.0, Direction::HigherIsBetter), 0.0);
        assert_eq!(goodness_of(0.0, 5.0, Direction::HigherIsBetter), 1.0);
        assert_eq!(goodness_of(0.0, 5.0, Direction::LowerIsBetter), -1.0);
    }

    #[test]
    fn diff_render_mentions_regressions() {
        let baseline = report_with("candidates_per_sec", 100.0);
        let diff = diff_reports(&baseline, &report_with("candidates_per_sec", 10.0), 0.25);
        let rendered = diff.render();
        assert!(rendered.contains("REGRESSED"));
        assert!(rendered.contains("1 guarded metric(s)"));
    }
}
