//! # h2o-bench — the experiment harness
//!
//! One experiment module per table and figure of the paper's evaluation
//! (§6–§7), each regenerating the corresponding rows/series from this
//! repository's implementation. Run individually via the `fig*`/`table*`
//! binaries, or all together with `repro_all` (which produces the content
//! of EXPERIMENTS.md).
//!
//! Experiment budgets default to minutes-scale on a laptop CPU and scale
//! up via `H2O_*` environment variables documented per module.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod perf;
pub mod report;
