//! Plain-text report formatting shared by every experiment binary.

use std::fmt::Write as _;

/// A fixed-width text table with a title, built row by row.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Convenience for string-literal rows.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut parts = Vec::with_capacity(cells.len());
            for (cell, w) in cells.iter().zip(&widths) {
                parts.push(format!("{cell:<w$}"));
            }
            let _ = writeln!(out, "| {} |", parts.join(" | "));
        };
        line(&mut out, &self.headers);
        let _ = writeln!(
            out,
            "|{}|",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Formats a ratio as `1.23x`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction as a signed percentage, e.g. `+12.3%`.
pub fn pct(x: f64) -> String {
    format!("{:+.2}%", x * 100.0)
}

/// Formats seconds with an adaptive unit.
pub fn seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

/// Geometric mean of positive values.
///
/// # Panics
///
/// Panics on an empty slice or non-positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    assert!(
        values.iter().all(|v| *v > 0.0),
        "geomean needs positive values"
    );
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Reads a `usize` experiment knob from the environment with a default —
/// used to scale experiments up toward paper-scale sample counts.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row_str(&["x", "y"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("| x | y"));
    }

    #[test]
    fn geomean_of_constant_is_constant() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_mixed() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(1.536), "1.54x");
        assert_eq!(pct(0.123), "+12.30%");
        assert_eq!(seconds(0.0021), "2.100 ms");
    }

    #[test]
    fn env_default_used_when_unset() {
        assert_eq!(env_usize("H2O_DOES_NOT_EXIST_XYZ", 7), 7);
    }
}
