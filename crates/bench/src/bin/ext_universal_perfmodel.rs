//! Extension experiment. See `h2o_bench::experiments::ext_universal` docs.
fn main() {
    print!("{}", h2o_bench::experiments::ext_universal::run());
}
