//! Regenerates the paper's ablations experiment. See the module docs in
//! `h2o_bench::experiments::ablations` for knobs and expected shapes.
fn main() {
    print!("{}", h2o_bench::experiments::ablations::run());
}
