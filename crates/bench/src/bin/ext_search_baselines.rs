//! Extension experiment. See `h2o_bench::experiments::ext_baselines` docs.
fn main() {
    print!("{}", h2o_bench::experiments::ext_baselines::run());
}
