//! Regenerates the paper's table5 experiment. See the module docs in
//! `h2o_bench::experiments::table5` for knobs and expected shapes.
fn main() {
    print!("{}", h2o_bench::experiments::table5::run());
}
