//! Regenerates the paper's fig10 experiment. See the module docs in
//! `h2o_bench::experiments::fig10` for knobs and expected shapes.
fn main() {
    print!("{}", h2o_bench::experiments::fig10::run());
}
