//! Runs the pinned benchmark scenario matrix and writes a versioned
//! `BENCH_<tag>.json` baseline (see `h2o_bench::perf` for the matrix and
//! the schema). Commit the output at the repo root to give `bench_diff`
//! something to gate against.
//!
//! Usage: `perf_baseline [--tag <tag>] [--out <path>]`
//!
//! Scale knobs: `H2O_BENCH_STEPS`, `H2O_BENCH_SIM_EVALS`,
//! `H2O_BENCH_MATMUL_ITERS`.

use h2o_bench::perf::{run_matrix, scenario_summary, BenchScale};

fn main() {
    let mut tag = "local".to_string();
    let mut out: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--tag" => tag = argv.next().unwrap_or(tag),
            "--out" => out = argv.next(),
            "--help" | "-h" => {
                println!("usage: perf_baseline [--tag <tag>] [--out <path>]");
                return;
            }
            other => {
                eprintln!("perf_baseline: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let out = out.unwrap_or_else(|| format!("BENCH_{tag}.json"));

    let scale = BenchScale::from_env();
    eprintln!(
        "perf_baseline: tag '{tag}', {} search steps, {} sim evals, {} matmul iters",
        scale.search_steps, scale.sim_evals, scale.matmul_iters
    );
    let report = run_matrix(&tag, scale);
    for (name, metrics) in &report.scenarios {
        eprintln!("  {}", scenario_summary(name, metrics));
    }

    if let Err(err) = std::fs::write(&out, report.to_json()) {
        eprintln!("perf_baseline: cannot write {out}: {err}");
        std::process::exit(2);
    }
    println!(
        "perf_baseline: wrote {out} ({} scenarios, git {})",
        report.scenarios.len(),
        report.env.get("git_rev").map_or("unknown", |s| s.as_str())
    );
}
