//! Extension experiment. See `h2o_bench::experiments::ext_serving` docs.
fn main() {
    print!("{}", h2o_bench::experiments::ext_serving::run());
}
