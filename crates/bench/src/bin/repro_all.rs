//! Runs every experiment and prints a combined report — the source of
//! EXPERIMENTS.md. Expect a few minutes in release mode.
use h2o_bench::experiments as ex;
use h2o_bench::report::Table;

type Experiment = (&'static str, fn() -> String);

/// Renders the global metrics accumulated during one experiment as a
/// compact summary table (top counters and busiest histograms).
fn metrics_summary() -> Option<String> {
    let snap = h2o_obs::snapshot();
    if snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty() {
        return None;
    }
    let mut table = Table::new("metrics", &["metric", "count/value", "mean", "p95"]);
    for (name, v) in &snap.counters {
        table.row(&[name.clone(), v.to_string(), String::new(), String::new()]);
    }
    for (name, v) in &snap.gauges {
        table.row(&[
            name.clone(),
            format!("{v:.4}"),
            String::new(),
            String::new(),
        ]);
    }
    // Histograms, busiest first; cap the list so span timings of deep
    // loops don't swamp the report.
    let mut hists: Vec<_> = snap.histograms.iter().collect();
    hists.sort_by(|a, b| b.1.count.cmp(&a.1.count).then(a.0.cmp(b.0)));
    for (name, h) in hists.into_iter().take(12) {
        let mean = if h.count == 0 {
            0.0
        } else {
            h.sum / h.count as f64
        };
        table.row(&[
            name.clone(),
            h.count.to_string(),
            format!("{mean:.3e}"),
            format!("{:.3e}", h.p95),
        ]);
    }
    Some(table.render())
}

fn main() {
    let experiments: Vec<Experiment> = vec![
        ("Table 5 (search spaces)", ex::table5::run),
        ("Table 2 (domains)", ex::table2::run),
        ("Fig. 4 (rooflines)", ex::fig4::run),
        ("Table 3 (CoAtNet ablation)", ex::table3::run),
        ("Fig. 6 (CoAtNet Pareto)", ex::fig6::run),
        ("Fig. 7 (hardware analysis)", ex::fig7::run),
        ("Fig. 8 (DLRM step time)", ex::fig8::run),
        ("Table 4 (EfficientNet)", ex::table4::run),
        ("Fig. 9 (energy)", ex::fig9::run),
        ("Table 1 (perf model)", ex::table1::run),
        ("Fig. 5 (reward functions)", ex::fig5::run),
        ("Fig. 10 (production fleet)", ex::fig10::run),
        ("Ablations", ex::ablations::run),
        ("Extension: search baselines", ex::ext_baselines::run),
        ("Extension: universal perf model", ex::ext_universal::run),
        ("Extension: transformer search", ex::ext_transformer::run),
        ("Extension: serving multi-objective", ex::ext_serving::run),
        ("Extension: hardware co-design", ex::ext_codesign::run),
        ("Extension: NAS cost accounting", ex::ext_cost::run),
        ("Extension: shard scaling", ex::ext_scaling::run),
        ("Fig. 1 end-to-end pipeline", ex::full_pipeline::run),
    ];
    // Every search in the experiments below requests `workers: 0` (auto),
    // so the whole report runs under whatever `H2O_WORKERS` resolves to —
    // make that visible up front since it shapes the eval-throughput rows.
    println!(
        "evaluation executor: {} worker(s){}",
        h2o_exec::resolve_workers(0, usize::MAX),
        if std::env::var_os("H2O_EXEC_SERIAL").is_some() {
            " [serialized schedule]"
        } else {
            ""
        }
    );
    // The report always runs end to end; crash-safe runs go through
    // `h2o search --checkpoint-dir ... --resume` (see DESIGN.md,
    // "Crash-safe checkpoint/resume").
    println!(
        "checkpointing: off for repro_all (checkpoint format v{} available via `h2o search`)",
        h2o_ckpt::FORMAT_VERSION
    );
    for (name, run) in experiments {
        println!("\n{}\n>>> {name}\n{}", "=".repeat(72), "=".repeat(72));
        // Fresh instruments per experiment, so the summary below reflects
        // this experiment alone.
        h2o_obs::reset();
        let start = std::time::Instant::now();
        print!("{}", run());
        if let Some(summary) = metrics_summary() {
            print!("\n{summary}");
        }
        println!("\n[{name} completed in {:.1?}]", start.elapsed());
    }
}
