//! Runs every experiment and prints a combined report — the source of
//! EXPERIMENTS.md. Expect a few minutes in release mode.
use h2o_bench::experiments as ex;

type Experiment = (&'static str, fn() -> String);

fn main() {
    let experiments: Vec<Experiment> = vec![
        ("Table 5 (search spaces)", ex::table5::run),
        ("Table 2 (domains)", ex::table2::run),
        ("Fig. 4 (rooflines)", ex::fig4::run),
        ("Table 3 (CoAtNet ablation)", ex::table3::run),
        ("Fig. 6 (CoAtNet Pareto)", ex::fig6::run),
        ("Fig. 7 (hardware analysis)", ex::fig7::run),
        ("Fig. 8 (DLRM step time)", ex::fig8::run),
        ("Table 4 (EfficientNet)", ex::table4::run),
        ("Fig. 9 (energy)", ex::fig9::run),
        ("Table 1 (perf model)", ex::table1::run),
        ("Fig. 5 (reward functions)", ex::fig5::run),
        ("Fig. 10 (production fleet)", ex::fig10::run),
        ("Ablations", ex::ablations::run),
        ("Extension: search baselines", ex::ext_baselines::run),
        ("Extension: universal perf model", ex::ext_universal::run),
        ("Extension: transformer search", ex::ext_transformer::run),
        ("Extension: serving multi-objective", ex::ext_serving::run),
        ("Extension: hardware co-design", ex::ext_codesign::run),
        ("Extension: NAS cost accounting", ex::ext_cost::run),
        ("Extension: shard scaling", ex::ext_scaling::run),
        ("Fig. 1 end-to-end pipeline", ex::full_pipeline::run),
    ];
    for (name, run) in experiments {
        println!("\n{}\n>>> {name}\n{}", "=".repeat(72), "=".repeat(72));
        let start = std::time::Instant::now();
        print!("{}", run());
        println!("\n[{name} completed in {:.1?}]", start.elapsed());
    }
}
