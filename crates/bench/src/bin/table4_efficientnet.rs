//! Regenerates the paper's table4 experiment. See the module docs in
//! `h2o_bench::experiments::table4` for knobs and expected shapes.
fn main() {
    print!("{}", h2o_bench::experiments::table4::run());
}
