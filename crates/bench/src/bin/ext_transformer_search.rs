//! Extension experiment. See `h2o_bench::experiments::ext_transformer` docs.
fn main() {
    print!("{}", h2o_bench::experiments::ext_transformer::run());
}
