//! Regenerates the paper's fig4 experiment. See the module docs in
//! `h2o_bench::experiments::fig4` for knobs and expected shapes.
fn main() {
    print!("{}", h2o_bench::experiments::fig4::run());
}
