//! Extension experiment. See `h2o_bench::experiments::ext_codesign` docs.
fn main() {
    print!("{}", h2o_bench::experiments::ext_codesign::run());
}
