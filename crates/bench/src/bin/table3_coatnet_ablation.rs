//! Regenerates the paper's table3 experiment. See the module docs in
//! `h2o_bench::experiments::table3` for knobs and expected shapes.
fn main() {
    print!("{}", h2o_bench::experiments::table3::run());
}
