//! Regenerates the paper's fig6 experiment. See the module docs in
//! `h2o_bench::experiments::fig6` for knobs and expected shapes.
fn main() {
    print!("{}", h2o_bench::experiments::fig6::run());
}
