//! Regenerates the paper's fig5 experiment. See the module docs in
//! `h2o_bench::experiments::fig5` for knobs and expected shapes.
fn main() {
    print!("{}", h2o_bench::experiments::fig5::run());
}
