//! Regression gate: re-runs the benchmark matrix and diffs it against a
//! committed `BENCH_*.json` baseline (see `h2o_bench::perf`).
//!
//! Usage: `bench_diff [--baseline <path>] [--threshold <frac>]`
//!
//! Exit codes: 0 — no guarded metric regressed (or warn-only mode);
//! 1 — a guarded metric regressed beyond the threshold (strict mode);
//! 2 — usage / I/O / parse error.
//!
//! `H2O_BENCH_STRICT=0` switches to warn-only (the delta table still
//! prints). `H2O_BENCH_THRESHOLD` overrides the relative threshold
//! (default 0.25 = 25%).

use h2o_bench::perf::{
    diff_exit_code, diff_reports, run_matrix, BenchReport, BenchScale, DEFAULT_THRESHOLD,
};

fn main() {
    let mut baseline_path = "BENCH_pr9.json".to_string();
    let mut threshold = std::env::var("H2O_BENCH_THRESHOLD")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_THRESHOLD);
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = argv.next().unwrap_or(baseline_path),
            "--threshold" => {
                threshold = argv
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .unwrap_or(threshold)
            }
            "--help" | "-h" => {
                println!("usage: bench_diff [--baseline <path>] [--threshold <frac>]");
                return;
            }
            other => {
                eprintln!("bench_diff: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let strict = std::env::var("H2O_BENCH_STRICT").map_or(true, |v| v != "0");

    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("bench_diff: cannot read baseline {baseline_path}: {err}");
            std::process::exit(2);
        }
    };
    let baseline = match BenchReport::from_json(&text) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("bench_diff: malformed baseline {baseline_path}: {err}");
            std::process::exit(2);
        }
    };

    eprintln!(
        "bench_diff: re-running the matrix against '{}' (tag '{}', git {})",
        baseline_path,
        baseline.tag,
        baseline
            .env
            .get("git_rev")
            .map_or("unknown", |s| s.as_str())
    );
    let current = run_matrix("current", BenchScale::from_env());
    let diff = diff_reports(&baseline, &current, threshold);
    print!("{}", diff.render());

    let regressions = diff.regressions();
    if regressions > 0 && !strict {
        eprintln!("bench_diff: H2O_BENCH_STRICT=0 — reporting only, not failing");
    }
    std::process::exit(i32::from(diff_exit_code(regressions, strict)));
}
