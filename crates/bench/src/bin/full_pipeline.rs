//! The complete Fig. 1 system end to end. See
//! `h2o_bench::experiments::full_pipeline` docs.
fn main() {
    print!("{}", h2o_bench::experiments::full_pipeline::run());
}
