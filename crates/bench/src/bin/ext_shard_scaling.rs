//! Extension experiment. See `h2o_bench::experiments::ext_scaling` docs.
fn main() {
    print!("{}", h2o_bench::experiments::ext_scaling::run());
}
