//! Regenerates the paper's table1 experiment. See the module docs in
//! `h2o_bench::experiments::table1` for knobs and expected shapes.
fn main() {
    print!("{}", h2o_bench::experiments::table1::run());
}
