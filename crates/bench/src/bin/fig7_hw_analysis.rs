//! Regenerates the paper's fig7 experiment. See the module docs in
//! `h2o_bench::experiments::fig7` for knobs and expected shapes.
fn main() {
    print!("{}", h2o_bench::experiments::fig7::run());
}
