//! Regenerates the paper's fig9 experiment. See the module docs in
//! `h2o_bench::experiments::fig9` for knobs and expected shapes.
fn main() {
    print!("{}", h2o_bench::experiments::fig9::run());
}
