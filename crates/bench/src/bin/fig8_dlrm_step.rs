//! Regenerates the paper's fig8 experiment. See the module docs in
//! `h2o_bench::experiments::fig8` for knobs and expected shapes.
fn main() {
    print!("{}", h2o_bench::experiments::fig8::run());
}
