//! Extension experiment. See `h2o_bench::experiments::ext_cost` docs.
fn main() {
    print!("{}", h2o_bench::experiments::ext_cost::run());
}
