//! Regenerates the paper's table2 experiment. See the module docs in
//! `h2o_bench::experiments::table2` for knobs and expected shapes.
fn main() {
    print!("{}", h2o_bench::experiments::table2::run());
}
