//! Property tests for the log-linear histogram: bucketing must be
//! monotone and quantile estimates must be exact to within one bucket.

use h2o_obs::Histogram;
use proptest::prelude::*;

/// True `q`-quantile of `values` by sorting (nearest-rank definition,
/// matching `Histogram::quantile`).
fn exact_quantile(values: &mut [f64], q: f64) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
    values[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    fn bucket_bounds_contain_the_value(v in 1e-6f64..1e9) {
        let idx = Histogram::bucket_index(v);
        let upper = Histogram::bucket_upper_bound(idx);
        prop_assert!(v <= upper, "{} above its bucket upper bound {}", v, upper);
        if idx > 0 {
            let lower = Histogram::bucket_upper_bound(idx - 1);
            prop_assert!(v >= lower, "{} below previous bound {}", v, lower);
        }
    }

    fn bucket_index_is_monotone(a in 1e-6f64..1e9, b in 1e-6f64..1e9) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Histogram::bucket_index(lo) <= Histogram::bucket_index(hi));
    }

    fn quantile_within_one_bucket_of_truth(
        values in prop::collection::vec(1e-3f64..1e6, 1..200),
        q in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        let truth = exact_quantile(&mut sorted, q);
        let est = h.quantile(q);
        // The estimate is the upper bound of the bucket holding the true
        // rank value, so it can only exceed truth by one bucket's width
        // (a factor of 1 + 1/SUBS) and never undershoot below the bucket's
        // lower edge.
        let width_factor = 1.0 + 1.0 / Histogram::SUBS as f64;
        prop_assert!(est >= truth, "estimate {} under truth {}", est, truth);
        prop_assert!(
            est <= truth * width_factor * (1.0 + 1e-9),
            "estimate {} more than one bucket above truth {}",
            est,
            truth
        );
    }

    fn count_and_sum_match_inputs(values in prop::collection::vec(0.0f64..1e6, 0..100)) {
        let h = Histogram::new();
        let mut sum = 0.0;
        for &v in &values {
            h.record(v);
            sum += v;
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert!((h.sum() - sum).abs() <= 1e-6 * sum.abs() + 1e-12);
    }
}
