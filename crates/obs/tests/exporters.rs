//! Exporter golden tests: exact output for a fixed registry state, plus
//! shape checks for the Chrome trace (whose timings are nondeterministic).

use h2o_obs::export::{to_chrome_trace, to_json, to_prometheus};
use h2o_obs::{Registry, SpanEvent};

/// A registry with one of each instrument and deterministic values.
fn golden_registry() -> Registry {
    let r = Registry::new();
    r.counter("requests_total").add(7);
    r.gauge("queue_depth").set(3.5);
    // 4.0 and 8.0 are exact powers of two: they land in the first
    // sub-bucket of their octaves, so bucket bounds are deterministic.
    r.histogram("latency_seconds").record(4.0);
    r.histogram("latency_seconds").record(8.0);
    r
}

#[test]
fn prometheus_golden() {
    let text = to_prometheus(&golden_registry().snapshot());
    let expected = "\
# TYPE requests_total counter
requests_total 7
# TYPE queue_depth gauge
queue_depth 3.5
# TYPE latency_seconds histogram
latency_seconds_bucket{le=\"4.125\"} 1
latency_seconds_bucket{le=\"8.25\"} 2
latency_seconds_bucket{le=\"+Inf\"} 2
latency_seconds_sum 12
latency_seconds_count 2
";
    assert_eq!(text, expected);
}

#[test]
fn json_golden() {
    let json = to_json(&golden_registry().snapshot());
    let expected = "\
{
  \"counters\": {
    \"requests_total\": 7
  },
  \"gauges\": {
    \"queue_depth\": 3.5
  },
  \"histograms\": {
    \"latency_seconds\": {\"count\": 2, \"sum\": 12, \"mean\": 6, \"p50\": 4.125, \"p95\": 8.25, \"p99\": 8.25}
  }
}
";
    assert_eq!(json, expected);
}

#[test]
fn chrome_trace_golden_for_fixed_events() {
    let events = vec![
        SpanEvent {
            path: "step".into(),
            start_us: 10,
            dur_us: 100,
            tid: 1,
        },
        SpanEvent {
            path: "step/sample".into(),
            start_us: 20,
            dur_us: 30,
            tid: 1,
        },
    ];
    let trace = to_chrome_trace(&events);
    let expected = "\
{\"traceEvents\":[
{\"name\":\"step\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":10,\"dur\":100,\"pid\":1,\"tid\":1,\"args\":{\"path\":\"step\"}},
{\"name\":\"sample\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":20,\"dur\":30,\"pid\":1,\"tid\":1,\"args\":{\"path\":\"step/sample\"}}
],\"displayTimeUnit\":\"ms\"}
";
    assert_eq!(trace, expected);
}

#[test]
fn empty_snapshot_exports_cleanly() {
    let r = Registry::new();
    assert_eq!(to_prometheus(&r.snapshot()), "");
    let json = to_json(&r.snapshot());
    assert!(json.contains("\"counters\": {"));
    assert_eq!(
        to_chrome_trace(&[]),
        "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\"}\n"
    );
}

#[test]
fn labelled_names_survive_the_prometheus_round() {
    let r = Registry::new();
    r.counter("shard_steps{shard=\"3\"}").add(2);
    let text = to_prometheus(&r.snapshot());
    assert!(
        text.contains("shard_steps_total{shard=\"3\"} 2"),
        "got:\n{text}"
    );
}
