//! Concurrency tests: instruments must report exact totals under
//! multi-threaded recording.

use h2o_obs::{Registry, Tracer};

const THREADS: usize = 8;
const PER_THREAD: u64 = 10_000;

#[test]
fn counter_total_is_exact_across_threads() {
    let r = Registry::new();
    let c = r.counter("hits");
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let c = c.clone();
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(c.value(), THREADS as u64 * PER_THREAD);
}

#[test]
fn histogram_count_and_sum_are_exact_across_threads() {
    let r = Registry::new();
    let h = r.histogram("obs");
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let h = h.clone();
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    h.record(2.0);
                }
            });
        }
    });
    let expected = THREADS as u64 * PER_THREAD;
    assert_eq!(h.count(), expected);
    // Every value identical, so the CAS-accumulated f64 sum is exact.
    assert_eq!(h.sum(), expected as f64 * 2.0);
    assert_eq!(h.mean(), 2.0);
}

#[test]
fn registry_lookup_races_resolve_to_one_instrument() {
    let r = Registry::new();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let r = r.clone();
            s.spawn(move || {
                // Fetch by name each iteration: exercises the read/write
                // lock upgrade race in `Registry::counter`.
                for _ in 0..1_000 {
                    r.counter("contended").inc();
                }
            });
        }
    });
    assert_eq!(r.snapshot().counters["contended"], THREADS as u64 * 1_000);
}

#[test]
fn spans_from_many_threads_all_buffer() {
    let r = Registry::new();
    let t = Tracer::new(r.clone());
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let t = t.clone();
            s.spawn(move || {
                for _ in 0..100 {
                    t.time("worker_step", || std::hint::black_box(1 + 1));
                }
            });
        }
    });
    let events = t.drain_events();
    assert_eq!(events.len(), THREADS * 100);
    assert!(events.iter().all(|e| e.path == "worker_step"));
    // Thread ids are stable per thread and distinct across threads.
    let tids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
    assert_eq!(tids.len(), THREADS);
    let snap = r.snapshot();
    assert_eq!(
        snap.histograms["span_seconds{path=\"worker_step\"}"].count,
        (THREADS * 100) as u64
    );
}
