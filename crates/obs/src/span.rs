//! RAII span timers with hierarchical paths and a trace-event buffer.
//!
//! A [`SpanGuard`] measures wall-clock time from construction to drop. The
//! enclosing span names are tracked per thread, so a guard knows its full
//! path (e.g. `search_step/policy_sample`) and both the per-path duration
//! histogram and the Chrome-trace buffer see properly nested events.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

use crate::registry::Registry;

/// One completed span, in microseconds relative to the tracer epoch.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Full `/`-joined span path.
    pub path: String,
    /// Start offset from the tracer epoch, µs.
    pub start_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// Stable id of the recording thread.
    pub tid: u64,
}

struct TracerCore {
    epoch: Instant,
    events: Mutex<Vec<SpanEvent>>,
    /// Spans beyond this are counted but dropped, bounding memory on long
    /// runs.
    capacity: usize,
    dropped: AtomicU64,
}

/// Collects completed spans for Chrome-trace export and mirrors their
/// durations into a [`Registry`] histogram per path
/// (`span_seconds{path=...}` — see the exporters).
#[derive(Clone)]
pub struct Tracer {
    core: Arc<TracerCore>,
    registry: Registry,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tracer(events={})", self.core.events.lock().len())
    }
}

thread_local! {
    /// Stack of span names currently open on this thread.
    static PATH_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// A small, stable per-thread id for trace events (std ThreadId is opaque).
fn thread_id() -> u64 {
    use std::cell::Cell;
    thread_local! {
        static TID: Cell<u64> = const { Cell::new(u64::MAX) };
    }
    TID.with(|t| {
        let mut id = t.get();
        if id == u64::MAX {
            static NEXT: AtomicU64 = AtomicU64::new(1);
            id = NEXT.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

impl Tracer {
    /// Default cap on buffered span events.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// A tracer that mirrors span durations into `registry`.
    pub fn new(registry: Registry) -> Self {
        Self::with_capacity(registry, Self::DEFAULT_CAPACITY)
    }

    /// Like [`Tracer::new`] with an explicit event-buffer cap.
    pub fn with_capacity(registry: Registry, capacity: usize) -> Self {
        Self {
            core: Arc::new(TracerCore {
                epoch: Instant::now(),
                events: Mutex::new(Vec::new()),
                capacity,
                dropped: AtomicU64::new(0),
            }),
            registry,
        }
    }

    /// Opens a span named `name`, nested under any span already open on
    /// this thread. Close it by dropping the guard.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        PATH_STACK.with(|s| s.borrow_mut().push(name));
        SpanGuard {
            tracer: self.clone(),
            start: Instant::now(),
            closed: false,
        }
    }

    /// Times `f`, recording it as a span named `name`.
    pub fn time<T>(&self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let _g = self.span(name);
        f()
    }

    /// Number of spans dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.core.dropped.load(Ordering::Relaxed)
    }

    /// Drains and returns all buffered span events, oldest first.
    pub fn drain_events(&self) -> Vec<SpanEvent> {
        std::mem::take(&mut *self.core.events.lock())
    }

    /// Copies the buffered span events without draining them.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.core.events.lock().clone()
    }

    fn finish(&self, start: Instant) {
        let end = Instant::now();
        let dur = end.duration_since(start);
        let path = PATH_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        self.registry.record(
            &format!("span_seconds{{path=\"{path}\"}}"),
            dur.as_secs_f64(),
        );
        let mut events = self.core.events.lock();
        if events.len() >= self.core.capacity {
            self.core.dropped.fetch_add(1, Ordering::Relaxed);
            // Also surfaced as a registry counter so silent trace loss is
            // visible in Prometheus/JSON exports. Looked up per drop (not
            // cached) so the series re-registers after a registry reset.
            self.registry.inc("h2o_obs_spans_dropped_total");
            return;
        }
        let start_us = start.saturating_duration_since(self.core.epoch).as_micros() as u64;
        events.push(SpanEvent {
            path,
            start_us,
            dur_us: dur.as_micros() as u64,
            tid: thread_id(),
        });
    }
}

/// Closes its span when dropped.
#[must_use = "a span measures until the guard drops; binding to `_` closes it immediately"]
pub struct SpanGuard {
    tracer: Tracer,
    start: Instant,
    closed: bool,
}

impl SpanGuard {
    /// Elapsed time since the span opened.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }

    /// Closes the span now and returns its duration in seconds.
    pub fn finish(mut self) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        self.closed = true;
        self.tracer.finish(self.start);
        secs
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.closed {
            self.tracer.finish(self.start);
        }
    }
}

/// The process-global tracer, mirroring into the global registry.
pub fn global() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(|| Tracer::new(crate::registry::global().clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_into_paths() {
        let r = Registry::new();
        let t = Tracer::new(r.clone());
        {
            let _outer = t.span("outer");
            let _inner = t.span("inner");
        }
        let mut events = t.drain_events();
        events.sort_by_key(|e| e.path.clone());
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].path, "outer");
        assert_eq!(events[1].path, "outer/inner");
        // Inner closed first, so it nests inside the outer interval.
        let outer = &events[0];
        let inner = &events[1];
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us + 1);
    }

    #[test]
    fn span_durations_land_in_registry() {
        let r = Registry::new();
        let t = Tracer::new(r.clone());
        t.time("work", || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        let snap = r.snapshot();
        let h = &snap.histograms["span_seconds{path=\"work\"}"];
        assert_eq!(h.count, 1);
        assert!(h.sum >= 0.002, "recorded {}", h.sum);
    }

    #[test]
    fn capacity_bounds_the_buffer() {
        let r = Registry::new();
        let t = Tracer::with_capacity(r.clone(), 2);
        for _ in 0..5 {
            t.time("x", || {});
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(
            r.snapshot().counters["h2o_obs_spans_dropped_total"],
            3,
            "drops are visible in exports, not just the accessor"
        );
    }

    #[test]
    fn dropped_counter_reregisters_after_reset() {
        let r = Registry::new();
        let t = Tracer::with_capacity(r.clone(), 1);
        t.time("x", || {});
        t.time("x", || {});
        r.reset();
        t.time("x", || {});
        assert_eq!(
            r.snapshot().counters["h2o_obs_spans_dropped_total"],
            1,
            "post-reset drops appear in fresh snapshots"
        );
    }

    #[test]
    fn explicit_finish_returns_duration() {
        let r = Registry::new();
        let t = Tracer::new(r);
        let g = t.span("timed");
        std::thread::sleep(std::time::Duration::from_millis(1));
        let secs = g.finish();
        assert!(secs >= 0.001);
        assert_eq!(t.events().len(), 1);
    }
}
