//! Named metric registry with a process-global default instance.
//!
//! Instruments are created on first use and cached by name; lookups take a
//! short `RwLock` read, while the returned handles record via atomics only.
//! Hot paths should fetch a handle once (e.g. into a struct field) and
//! reuse it.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

use crate::metrics::{Counter, Gauge, Histogram};

/// An immutable snapshot of one histogram's state.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// `(upper_bound, count)` for each non-empty bucket, ascending.
    pub buckets: Vec<(f64, u64)>,
    /// Estimated quantiles: (p50, p95, p99).
    pub p50: f64,
    /// 95th percentile estimate.
    pub p95: f64,
    /// 99th percentile estimate.
    pub p99: f64,
}

/// An immutable snapshot of a whole registry, ready for export.
///
/// Maps are `BTreeMap` so exports are deterministically ordered.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

#[derive(Default)]
struct Instruments {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A collection of named instruments.
///
/// Cloning is cheap and shares the underlying instruments.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RwLock<Instruments>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.read();
        f.debug_struct("Registry")
            .field("counters", &g.counters.len())
            .field("gauges", &g.gauges.len())
            .field("histograms", &g.histograms.len())
            .finish()
    }
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.inner.read().counters.get(name) {
            return c.clone();
        }
        self.inner
            .write()
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.inner.read().gauges.get(name) {
            return g.clone();
        }
        self.inner
            .write()
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.inner.read().histograms.get(name) {
            return h.clone();
        }
        self.inner
            .write()
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Convenience: `counter(name).add(n)`.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Convenience: `counter(name).inc()`.
    pub fn inc(&self, name: &str) {
        self.counter(name).inc();
    }

    /// Convenience: `gauge(name).set(v)`.
    pub fn set(&self, name: &str, v: f64) {
        self.gauge(name).set(v);
    }

    /// Convenience: `histogram(name).record(v)`.
    pub fn record(&self, name: &str, v: f64) {
        self.histogram(name).record(v);
    }

    /// A consistent-enough point-in-time copy of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        let g = self.inner.read();
        Snapshot {
            counters: g
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.value()))
                .collect(),
            gauges: g
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.value()))
                .collect(),
            histograms: g
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistogramSnapshot {
                            count: h.count(),
                            sum: h.sum(),
                            buckets: h.nonzero_buckets(),
                            p50: h.quantile(0.50),
                            p95: h.quantile(0.95),
                            p99: h.quantile(0.99),
                        },
                    )
                })
                .collect(),
        }
    }

    /// Zeroes every instrument and forgets names.
    ///
    /// Handles fetched earlier keep working but are orphaned (their values
    /// no longer appear in snapshots), so callers should re-fetch after a
    /// reset. Used between `repro_all` experiments.
    pub fn reset(&self) {
        let mut g = self.inner.write();
        g.counters.clear();
        g.gauges.clear();
        g.histograms.clear();
    }
}

/// The process-global registry used by the instrumented H2O crates.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_are_cached_by_name() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.counter("a").add(3);
        assert_eq!(r.counter("a").value(), 5);
    }

    #[test]
    fn snapshot_reflects_all_kinds() {
        let r = Registry::new();
        r.inc("c1");
        r.set("g1", 2.5);
        r.record("h1", 1.0);
        let s = r.snapshot();
        assert_eq!(s.counters["c1"], 1);
        assert_eq!(s.gauges["g1"], 2.5);
        assert_eq!(s.histograms["h1"].count, 1);
    }

    #[test]
    fn reset_forgets_instruments() {
        let r = Registry::new();
        r.inc("c1");
        r.reset();
        assert!(r.snapshot().counters.is_empty());
    }

    #[test]
    fn global_is_a_singleton() {
        let a = global();
        let b = global();
        a.counter("global_test_counter").inc();
        assert!(b.snapshot().counters.contains_key("global_test_counter"));
    }
}
