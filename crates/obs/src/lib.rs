//! # h2o-obs — metrics and span tracing for the H2O-NAS stack
//!
//! A zero-external-dependency observability layer (only `parking_lot`
//! from the workspace). Three pieces:
//!
//! - **Metrics** ([`metrics`], [`registry`]): named counters, gauges, and
//!   log-linear histograms with p50/p95/p99 estimation. Recording is
//!   atomics-only; counters are cache-line-striped so concurrent search
//!   shards don't contend.
//! - **Spans** ([`mod@span`]): RAII wall-clock timers with hierarchical
//!   per-thread paths (`search_step/policy_sample`). Durations mirror into
//!   the registry as histograms; completed spans buffer for trace export.
//! - **Exporters** ([`export`]): Prometheus text exposition, JSON
//!   snapshot, and Chrome trace-event JSON (loadable in Perfetto).
//!
//! Instrumented crates use the process-global instances via the free
//! functions here:
//!
//! ```
//! let _step = h2o_obs::span("search_step");
//! h2o_obs::counter("h2o_core_steps_total").inc();
//! h2o_obs::gauge("h2o_core_mean_reward").set(0.42);
//! h2o_obs::histogram("h2o_hwsim_walk_seconds").record(1.3e-5);
//! let prom = h2o_obs::export::to_prometheus(&h2o_obs::snapshot());
//! assert!(prom.contains("h2o_core_steps_total 1"));
//! ```
//!
//! Hot loops should hoist the instrument handle out of the loop — handles
//! are `Clone` and record lock-free:
//!
//! ```
//! let walks = h2o_obs::counter("walks_total");
//! for _ in 0..1_000 {
//!     walks.inc();
//! }
//! assert_eq!(walks.value(), 1_000);
//! ```

pub mod export;
pub mod metrics;
pub mod registry;
pub mod span;

pub use metrics::{Counter, Gauge, Histogram, Stopwatch};
pub use registry::{HistogramSnapshot, Registry, Snapshot};
pub use span::{SpanEvent, SpanGuard, Tracer};

/// The counter `name` in the global registry.
pub fn counter(name: &str) -> Counter {
    registry::global().counter(name)
}

/// The gauge `name` in the global registry.
pub fn gauge(name: &str) -> Gauge {
    registry::global().gauge(name)
}

/// The histogram `name` in the global registry.
pub fn histogram(name: &str) -> Histogram {
    registry::global().histogram(name)
}

/// Opens a span on the global tracer; close it by dropping the guard.
pub fn span(name: &'static str) -> SpanGuard {
    span::global().span(name)
}

/// Times `f` as a span on the global tracer.
pub fn time<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    span::global().time(name, f)
}

/// Snapshot of the global registry.
pub fn snapshot() -> Snapshot {
    registry::global().snapshot()
}

/// Drains the global tracer's buffered span events.
pub fn drain_spans() -> Vec<SpanEvent> {
    span::global().drain_events()
}

/// Resets the global registry (between experiments). Span-event buffers
/// are drained as a side effect so traces don't leak across runs.
pub fn reset() {
    registry::global().reset();
    span::global().drain_events();
}
