//! Metric instruments: counters, gauges, and log-linear histograms.
//!
//! All instruments are lock-free on the record path (atomics only) and
//! shared via `Arc` handles, so call sites cache a handle once and record
//! at nanosecond-scale cost from any thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of stripes in a [`Counter`]; increments from concurrent threads
/// land on different cache lines with high probability.
const COUNTER_STRIPES: usize = 16;

/// A cache-line-padded atomic cell (avoids false sharing between
/// stripes).
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A monotonically increasing counter, striped across cache lines.
///
/// `value()` sums the stripes, so totals are exact regardless of how many
/// threads incremented concurrently.
#[derive(Clone)]
pub struct Counter {
    stripes: Arc<[PaddedU64; COUNTER_STRIPES]>,
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.value())
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A cheap per-thread stripe index: consecutive threads hash to different
/// stripes, so concurrent increments rarely contend.
fn stripe_index() -> usize {
    use std::cell::Cell;
    thread_local! {
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    STRIPE.with(|s| {
        let mut idx = s.get();
        if idx == usize::MAX {
            static NEXT: AtomicU64 = AtomicU64::new(0);
            idx = NEXT.fetch_add(1, Ordering::Relaxed) as usize % COUNTER_STRIPES;
            s.set(idx);
        }
        idx
    })
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self {
            stripes: Arc::new(std::array::from_fn(|_| PaddedU64::default())),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.stripes[stripe_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// The exact current total.
    pub fn value(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Resets to zero (not atomic across stripes; callers quiesce first).
    pub fn reset(&self) {
        for s in self.stripes.iter() {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A last-write-wins floating-point gauge.
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.value())
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self {
            bits: Arc::new(AtomicU64::new(0.0f64.to_bits())),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.set(0.0);
    }
}

/// Histogram bucket layout: log-linear, base 2, with [`Histogram::SUBS`]
/// linear sub-buckets per octave.
///
/// Covers `2^MIN_EXP ..= 2^MAX_EXP` (~6e-8 .. ~7e13 at the defaults —
/// nanoseconds to days when recording seconds, and fine for raw counts),
/// with explicit underflow and overflow buckets at the ends.
const MIN_EXP: i32 = -24;
const MAX_EXP: i32 = 46;
const OCTAVES: usize = (MAX_EXP - MIN_EXP) as usize;

/// A thread-safe log-linear histogram with quantile estimation.
///
/// Recording is two relaxed atomic RMWs (bucket count + running sum);
/// quantiles are estimated at read time by walking the cumulative
/// distribution and are exact to within one bucket (≤ ~3% relative error
/// at 32 sub-buckets per octave).
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramCore>,
}

struct HistogramCore {
    /// `[underflow, octave buckets..., overflow]`.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of recorded values, as f64 bits updated via CAS.
    sum_bits: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(count={}, sum={})", self.count(), self.sum())
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Linear sub-buckets per power-of-two octave.
    pub const SUBS: usize = 32;

    /// A fresh, empty histogram.
    pub fn new() -> Self {
        let n = OCTAVES * Self::SUBS + 2;
        let buckets = (0..n).map(|_| AtomicU64::new(0)).collect();
        Self {
            inner: Arc::new(HistogramCore {
                buckets,
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0.0f64.to_bits()),
            }),
        }
    }

    /// Total number of buckets (including underflow/overflow).
    pub fn num_buckets() -> usize {
        OCTAVES * Self::SUBS + 2
    }

    /// Maps a value to its bucket index.
    pub fn bucket_index(value: f64) -> usize {
        if value.is_nan() || value < 2f64.powi(MIN_EXP) {
            return 0; // underflow (and NaN / negatives)
        }
        let exp = value.log2().floor() as i32;
        if exp >= MAX_EXP {
            return OCTAVES * Self::SUBS + 1; // overflow
        }
        let octave = (exp - MIN_EXP) as usize;
        let frac = value / 2f64.powi(exp); // in [1, 2)
        let sub = (((frac - 1.0) * Self::SUBS as f64) as usize).min(Self::SUBS - 1);
        1 + octave * Self::SUBS + sub
    }

    /// Upper bound of a bucket (inclusive representative for quantiles).
    pub fn bucket_upper_bound(index: usize) -> f64 {
        if index == 0 {
            return 2f64.powi(MIN_EXP);
        }
        let i = index - 1;
        if i >= OCTAVES * Self::SUBS {
            return f64::INFINITY;
        }
        let octave = i / Self::SUBS;
        let sub = i % Self::SUBS;
        2f64.powi(MIN_EXP + octave as i32) * (1.0 + (sub + 1) as f64 / Self::SUBS as f64)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: f64) {
        let idx = Self::bucket_index(value);
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        if value.is_finite() {
            // f64 add via CAS; contention is rare (histograms are
            // typically recorded from few threads at ns intervals).
            let mut cur = self.inner.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + value).to_bits();
                match self.inner.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    /// Times `f` and records its wall-clock duration in seconds.
    ///
    /// This is the sanctioned way for other crates to measure durations:
    /// the workspace bans `Instant::now` outside `h2o-obs` (h2o-lint's
    /// `no-wallclock` rule), so the clock read lives here, where resume
    /// determinism is already out of scope.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = f();
        self.record(start.elapsed().as_secs_f64());
        out
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean of recorded observations (0 when empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() / c as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket containing the rank, exact to within one bucket.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.inner.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper_bound(i);
            }
        }
        f64::INFINITY
    }

    /// Snapshot of non-empty buckets as `(upper_bound, count)` pairs, in
    /// ascending bound order.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.inner
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then(|| (Self::bucket_upper_bound(i), c))
            })
            .collect()
    }

    /// Resets all buckets (not atomic; callers quiesce first).
    pub fn reset(&self) {
        for b in self.inner.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.inner.count.store(0, Ordering::Relaxed);
        self.inner
            .sum_bits
            .store(0.0f64.to_bits(), Ordering::Relaxed);
    }
}

/// A started wall-clock timer whose readings feed observability
/// instruments.
///
/// This is the second sanctioned clock access next to
/// [`Histogram::time`]: the workspace bans `Instant::now` outside
/// `h2o-obs` (h2o-lint's `no-wallclock` rule), but utilization metrics —
/// a worker's busy vs idle split, a cache lookup's hit vs miss latency —
/// need a reading *before* the destination instrument is known.
/// `Stopwatch` keeps the clock read inside this crate; by contract its
/// readings go into counters/gauges/histograms only, never into search
/// state, so resume determinism is unaffected.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: std::time::Instant,
}

impl Stopwatch {
    /// Starts the timer now.
    pub fn start() -> Self {
        Self {
            start: std::time::Instant::now(),
        }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_exactly() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.value(), 42);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let g = Gauge::new();
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.value(), -2.25);
    }

    #[test]
    fn histogram_mean_and_count() {
        let h = Histogram::new();
        for v in [1.0, 2.0, 3.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 6.0).abs() < 1e-12);
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_index_roundtrips_with_bounds() {
        for v in [1e-7, 1e-3, 0.5, 1.0, 1.5, 7.3, 1e4, 1e12] {
            let idx = Histogram::bucket_index(v);
            let upper = Histogram::bucket_upper_bound(idx);
            assert!(v <= upper, "{v} > upper {upper}");
            if idx > 0 {
                let lower = Histogram::bucket_upper_bound(idx - 1);
                assert!(v >= lower, "{v} < lower {lower} (idx {idx})");
            }
        }
    }

    #[test]
    fn quantile_of_uniform_values() {
        let h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 / 1000.0);
        }
        let p50 = h.quantile(0.5);
        assert!(
            (p50 - 0.5).abs() < 0.5 / Histogram::SUBS as f64 * 2.0,
            "p50 {p50}"
        );
        let p99 = h.quantile(0.99);
        assert!((0.98..=1.05).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn stopwatch_measures_forward_time() {
        let sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let secs = sw.elapsed_secs();
        assert!(secs >= 0.001, "read {secs}");
        assert!(sw.elapsed_secs() >= secs, "monotonically increasing");
    }

    #[test]
    fn extreme_values_fall_in_edge_buckets() {
        let h = Histogram::new();
        h.record(0.0);
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(1e300);
        assert_eq!(h.count(), 4);
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(1e300), Histogram::num_buckets() - 1);
        assert_eq!(h.quantile(1.0), f64::INFINITY);
    }
}
