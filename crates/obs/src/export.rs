//! Exporters: Prometheus text exposition, JSON snapshot, and Chrome
//! trace-event JSON (loadable in Perfetto / `chrome://tracing`).
//!
//! All output is hand-rolled text — no serialization dependency.

use crate::registry::Snapshot;
use crate::span::SpanEvent;

/// Splits `span_seconds{path="x"}` into (`span_seconds`, `path="x"`);
/// plain names return an empty label part.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) if name.ends_with('}') => (&name[..i], &name[i + 1..name.len() - 1]),
        _ => (name, ""),
    }
}

/// Makes a name safe for Prometheus (`[a-zA-Z0-9_:]`).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Formats an f64 the way Prometheus expects (`+Inf` for infinity).
fn prom_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders a snapshot in Prometheus text exposition format.
///
/// Counters become `<name>_total`, histograms expand to cumulative
/// `_bucket{le=...}` series plus `_sum` and `_count`. Label sets embedded
/// in instrument names (`name{k="v"}`) are preserved and merged with `le`.
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    // `# TYPE` must appear once per metric family: labelled series that
    // share a base name (e.g. `op_visits{op=...}`) get a single header.
    let mut typed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for (name, value) in &snapshot.counters {
        let (base, labels) = split_labels(name);
        let mut base = sanitize(base);
        if !base.ends_with("_total") {
            base.push_str("_total");
        }
        if typed.insert(base.clone()) {
            out.push_str(&format!("# TYPE {base} counter\n"));
        }
        if labels.is_empty() {
            out.push_str(&format!("{base} {value}\n"));
        } else {
            out.push_str(&format!("{base}{{{labels}}} {value}\n"));
        }
    }
    for (name, value) in &snapshot.gauges {
        let (base, labels) = split_labels(name);
        let base = sanitize(base);
        if typed.insert(base.clone()) {
            out.push_str(&format!("# TYPE {base} gauge\n"));
        }
        if labels.is_empty() {
            out.push_str(&format!("{base} {}\n", prom_f64(*value)));
        } else {
            out.push_str(&format!("{base}{{{labels}}} {}\n", prom_f64(*value)));
        }
    }
    for (name, h) in &snapshot.histograms {
        let (base, labels) = split_labels(name);
        let base = sanitize(base);
        if typed.insert(base.clone()) {
            out.push_str(&format!("# TYPE {base} histogram\n"));
        }
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cumulative = 0u64;
        for (bound, count) in &h.buckets {
            cumulative += count;
            out.push_str(&format!(
                "{base}_bucket{{{labels}{sep}le=\"{}\"}} {cumulative}\n",
                prom_f64(*bound)
            ));
        }
        out.push_str(&format!(
            "{base}_bucket{{{labels}{sep}le=\"+Inf\"}} {}\n",
            h.count
        ));
        if labels.is_empty() {
            out.push_str(&format!("{base}_sum {}\n", prom_f64(h.sum)));
            out.push_str(&format!("{base}_count {}\n", h.count));
        } else {
            out.push_str(&format!("{base}_sum{{{labels}}} {}\n", prom_f64(h.sum)));
            out.push_str(&format!("{base}_count{{{labels}}} {}\n", h.count));
        }
    }
    out
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON-safe f64 (JSON has no Infinity/NaN; clamp to null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders a snapshot as a JSON object:
/// `{"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
/// mean, p50, p95, p99}}}`.
pub fn to_json(snapshot: &Snapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    let mut first = true;
    for (name, v) in &snapshot.counters {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{}\": {v}", json_escape(name)));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    first = true;
    for (name, v) in &snapshot.gauges {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    \"{}\": {}",
            json_escape(name),
            json_f64(*v)
        ));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    first = true;
    for (name, h) in &snapshot.histograms {
        if !first {
            out.push(',');
        }
        first = false;
        let mean = if h.count == 0 {
            0.0
        } else {
            h.sum / h.count as f64
        };
        out.push_str(&format!(
            "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
            json_escape(name),
            h.count,
            json_f64(h.sum),
            json_f64(mean),
            json_f64(h.p50),
            json_f64(h.p95),
            json_f64(h.p99),
        ));
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Renders span events as Chrome trace-event JSON ("X" complete events),
/// loadable in Perfetto or `chrome://tracing`.
///
/// The event `name` is the span's leaf name; the full hierarchical path is
/// attached under `args.path`. Nesting is reconstructed by the viewer from
/// the time intervals per thread.
pub fn to_chrome_trace(events: &[SpanEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let leaf = e.path.rsplit('/').next().unwrap_or(&e.path);
        out.push_str(&format!(
            "\n{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"path\":\"{}\"}}}}",
            json_escape(leaf),
            e.start_us,
            e.dur_us,
            e.tid,
            json_escape(&e.path),
        ));
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::span::Tracer;

    #[test]
    fn prometheus_exposes_all_instrument_kinds() {
        let r = Registry::new();
        r.add("steps", 3);
        r.set("reward", 0.75);
        r.record("latency_seconds", 0.010);
        r.record("latency_seconds", 0.020);
        let text = to_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE steps_total counter"));
        assert!(text.contains("steps_total 3"));
        assert!(text.contains("# TYPE reward gauge"));
        assert!(text.contains("reward 0.75"));
        assert!(text.contains("# TYPE latency_seconds histogram"));
        assert!(text.contains("latency_seconds_count 2"));
        assert!(text.contains("le=\"+Inf\"}} 2") || text.contains("le=\"+Inf\"} 2"));
    }

    #[test]
    fn prometheus_merges_embedded_labels() {
        let r = Registry::new();
        r.record("span_seconds{path=\"a/b\"}", 0.5);
        let text = to_prometheus(&r.snapshot());
        assert!(
            text.contains("span_seconds_bucket{path=\"a/b\",le="),
            "labels not merged:\n{text}"
        );
        assert!(text.contains("span_seconds_sum{path=\"a/b\"}"));
    }

    #[test]
    fn prometheus_emits_one_type_line_per_family() {
        let r = Registry::new();
        r.inc("visits{op=\"a\"}");
        r.inc("visits{op=\"b\"}");
        r.inc("visits{op=\"c\"}");
        let text = to_prometheus(&r.snapshot());
        let headers = text.matches("# TYPE visits_total counter").count();
        assert_eq!(headers, 1, "one TYPE header per family:\n{text}");
        assert!(text.contains("visits_total{op=\"a\"} 1"));
        assert!(text.contains("visits_total{op=\"c\"} 1"));
    }

    #[test]
    fn json_snapshot_has_quantiles() {
        let r = Registry::new();
        for i in 1..=100 {
            r.record("h", i as f64);
        }
        let json = to_json(&r.snapshot());
        assert!(json.contains("\"p99\""));
        assert!(json.contains("\"count\": 100"));
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let r = Registry::new();
        let t = Tracer::new(r);
        {
            let _a = t.span("outer");
            let _b = t.span("inner");
        }
        let trace = to_chrome_trace(&t.events());
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"args\":{\"path\":\"outer/inner\"}"));
        assert!(trace.trim_end().ends_with('}'));
    }
}
