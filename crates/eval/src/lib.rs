//! # h2o-eval — the unified evaluation-backend layer
//!
//! Every candidate evaluation in the workspace — in-process search
//! shards, distributed `node-worker` processes, the bench harness, and
//! the integration tests — builds its evaluator through this crate's
//! single `BackendSpec → EvalBackend` factory, so all execution paths
//! produce bit-identical costs for the same candidate.
//!
//! Three backends implement the contract (see `DESIGN.md`,
//! "evaluation-backend contract"):
//!
//! * [`BackendSpec::Simulator`] — every candidate walks the roofline
//!   simulator.
//! * [`BackendSpec::Cached`] — the same walk, memoized by canonical
//!   architecture key through a shared [`h2o_hwsim::EvalCache`].
//! * [`BackendSpec::ModelServed`] — the paper's §6.2.3 hot path: a
//!   pretrained MLP performance model answers in-distribution candidates
//!   from a batched forward pass, a deterministic novelty gate routes
//!   out-of-distribution candidates to the cached simulator, and the
//!   resulting ground truth fine-tunes a refined model generation on a
//!   fixed cadence.
//!
//! An [`EvalScenario`] pairs a search [`Domain`] with a backend spec and
//! derives everything a process needs to participate in a run: the
//! decision space, the handshake fingerprint, worker CLI arguments, and
//! per-shard evaluator closures.

#![warn(missing_docs)]

mod backend;
mod scenario;

pub use backend::{
    BackendKind, BackendSpec, EvalBackend, ModelServeStats, ModelServedBackend, ModelSpec,
};
pub use scenario::{Domain, EvalScenario};

#[cfg(test)]
mod tests {
    use super::*;
    use h2o_hwsim::arch_key;
    use h2o_space::SearchSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dlrm_scenario(backend: BackendSpec) -> EvalScenario {
        EvalScenario::new("dlrm", backend).expect("dlrm scenario")
    }

    fn samples(space: &SearchSpace, n: usize, seed: u64) -> Vec<h2o_space::ArchSample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| space.sample_uniform(&mut rng)).collect()
    }

    #[test]
    fn factory_builds_every_kind() {
        let scenario = dlrm_scenario(BackendSpec::Simulator);
        assert!(matches!(
            scenario.backend().expect("sim"),
            EvalBackend::Simulator(_)
        ));
        let scenario = dlrm_scenario(BackendSpec::Cached { capacity: 64 });
        assert!(matches!(
            scenario.backend().expect("cached"),
            EvalBackend::Cached(_)
        ));
        let scenario = dlrm_scenario(BackendSpec::ModelServed {
            fallback_capacity: Some(64),
            model: ModelSpec {
                pretrain_pool: 8,
                ..ModelSpec::default()
            },
        });
        assert!(matches!(
            scenario.backend().expect("model"),
            EvalBackend::ModelServed(_)
        ));
    }

    #[test]
    fn model_backend_rejects_vision_domains() {
        for domain in ["cnn", "vit"] {
            let err = EvalScenario::new(
                domain,
                BackendSpec::ModelServed {
                    fallback_capacity: None,
                    model: ModelSpec::default(),
                },
            )
            .expect_err("vision domains have no model backend");
            assert!(err.contains("does not support"), "unexpected error: {err}");
        }
    }

    #[test]
    fn spec_validation_rejects_degenerate_parameters() {
        let err = BackendSpec::ModelServed {
            fallback_capacity: None,
            model: ModelSpec {
                finetune_cadence: 1,
                ..ModelSpec::default()
            },
        }
        .validate()
        .expect_err("cadence 1");
        assert!(err.contains("finetune-cadence"));
        assert!(BackendSpec::Cached { capacity: 1 }.validate().is_ok());
    }

    #[test]
    fn sim_and_cached_agree_candidate_by_candidate() {
        let scenario = dlrm_scenario(BackendSpec::Simulator);
        let space = scenario.space();
        let sim = scenario.backend().expect("sim");
        let cached = dlrm_scenario(BackendSpec::Cached { capacity: 32 })
            .backend()
            .expect("cached");
        let mut eval_sim = scenario.shard_evaluator(&sim);
        let mut eval_cached = scenario.shard_evaluator(&cached);
        for sample in samples(&space, 6, 7) {
            let a = eval_sim(&sample);
            let b = eval_cached(&sample);
            assert_eq!(a.quality.to_bits(), b.quality.to_bits());
            assert_eq!(a.perf_values[0].to_bits(), b.perf_values[0].to_bits());
            // Re-evaluating through the cache must replay the exact value.
            let c = eval_cached(&sample);
            assert_eq!(b.perf_values[0].to_bits(), c.perf_values[0].to_bits());
        }
    }

    #[test]
    fn negative_gate_threshold_matches_cached_backend_exactly() {
        // novelty >= 0 always, so a negative threshold forces every
        // candidate through the fallback — the model backend degenerates
        // to the cached backend bit-for-bit.
        let scenario = dlrm_scenario(BackendSpec::ModelServed {
            fallback_capacity: Some(32),
            model: ModelSpec {
                gate_threshold: -1.0,
                pretrain_pool: 8,
                ..ModelSpec::default()
            },
        });
        let space = scenario.space();
        let model = scenario.backend().expect("model");
        let cached = dlrm_scenario(BackendSpec::Cached { capacity: 32 })
            .backend()
            .expect("cached");
        let mut eval_model = scenario.shard_evaluator(&model);
        let mut eval_cached = scenario.shard_evaluator(&cached);
        for sample in samples(&space, 5, 11) {
            let a = eval_model(&sample);
            let b = eval_cached(&sample);
            assert_eq!(a.perf_values[0].to_bits(), b.perf_values[0].to_bits());
        }
        let stats = model.model_served().expect("model backend").stats();
        assert_eq!(stats.served, 0);
        assert_eq!(stats.fallback, 5);
    }

    #[test]
    fn served_values_are_topology_independent() {
        // Two independent clones evaluating disjoint interleavings of the
        // same samples must agree on every value — the frozen-generation
        // rule in action.
        let spec = BackendSpec::ModelServed {
            fallback_capacity: Some(32),
            model: ModelSpec {
                gate_threshold: 2.5,
                finetune_cadence: 2,
                pretrain_pool: 8,
                seed: 3,
            },
        };
        let scenario = dlrm_scenario(spec);
        let space = scenario.space();
        let pool = samples(&space, 8, 13);

        let backend_a = scenario.backend().expect("a");
        let mut eval_a = scenario.shard_evaluator(&backend_a);
        let forward: Vec<u64> = pool
            .iter()
            .map(|s| eval_a(s).perf_values[0].to_bits())
            .collect();

        let backend_b = scenario.backend().expect("b");
        let mut eval_b0 = scenario.shard_evaluator(&backend_b);
        let mut eval_b1 = scenario.shard_evaluator(&backend_b);
        let mut reverse: Vec<u64> = pool
            .iter()
            .rev()
            .enumerate()
            .map(|(i, s)| {
                if i % 2 == 0 {
                    eval_b0(s).perf_values[0].to_bits()
                } else {
                    eval_b1(s).perf_values[0].to_bits()
                }
            })
            .collect();
        reverse.reverse();
        assert_eq!(forward, reverse);
    }

    #[test]
    fn finetune_cadence_accrues_rounds_without_changing_served_values() {
        let scenario = dlrm_scenario(BackendSpec::ModelServed {
            fallback_capacity: Some(32),
            model: ModelSpec {
                gate_threshold: -1.0, // everything falls back → buffer fills
                finetune_cadence: 2,
                pretrain_pool: 8,
                seed: 0,
            },
        });
        let space = scenario.space();
        let backend = scenario.backend().expect("model");
        let mut eval = scenario.shard_evaluator(&backend);
        let pool = samples(&space, 6, 17);
        for sample in &pool {
            eval(sample);
        }
        let served = backend.model_served().expect("model backend");
        let stats = served.stats();
        assert_eq!(stats.buffered, 6);
        assert_eq!(stats.finetune_rounds, 3, "cadence 2 over 6 distinct keys");
        // Duplicate keys neither re-buffer nor re-trigger a round.
        eval(&pool[0]);
        assert_eq!(served.stats().buffered, 6);
        assert_eq!(served.stats().finetune_rounds, 3);
        assert!(served.buffer_nrmse().is_some());
    }

    #[test]
    fn fingerprints_isolate_value_affecting_parameters() {
        let sim = dlrm_scenario(BackendSpec::Simulator);
        let cached = dlrm_scenario(BackendSpec::Cached { capacity: 999 });
        // Memoization is value-invisible: sim and cached interoperate.
        assert_eq!(sim.fingerprint(), cached.fingerprint());
        assert_eq!(sim.value_fingerprint(), 0);
        assert_eq!(cached.value_fingerprint(), 0);

        let model = dlrm_scenario(BackendSpec::ModelServed {
            fallback_capacity: Some(999),
            model: ModelSpec::default(),
        });
        assert_ne!(model.fingerprint(), sim.fingerprint());
        assert_ne!(model.value_fingerprint(), 0);
        // Every model parameter is value-affecting.
        let other = dlrm_scenario(BackendSpec::ModelServed {
            fallback_capacity: Some(999),
            model: ModelSpec {
                seed: 1,
                ..ModelSpec::default()
            },
        });
        assert_ne!(model.fingerprint(), other.fingerprint());
        // Fallback cache capacity is not.
        let resized = dlrm_scenario(BackendSpec::ModelServed {
            fallback_capacity: None,
            model: ModelSpec::default(),
        });
        assert_eq!(model.fingerprint(), resized.fingerprint());
    }

    #[test]
    fn worker_args_round_trip_the_backend() {
        let scenario = dlrm_scenario(BackendSpec::ModelServed {
            fallback_capacity: Some(128),
            model: ModelSpec::default(),
        });
        let args = scenario.worker_args();
        assert!(args.contains(&"--eval-backend".to_string()));
        assert!(args.contains(&"model".to_string()));
        assert!(args.contains(&"--gate-threshold".to_string()));
        assert!(args.contains(&"--finetune-cadence".to_string()));
        let cached = dlrm_scenario(BackendSpec::Cached { capacity: 64 });
        assert!(cached.worker_args().contains(&"cached".to_string()));
    }

    #[test]
    fn arch_key_is_stable_under_shard_evaluator() {
        // The model backend's dedup store keys on the same canonical
        // arch_key the cache uses — spot-check the key is deterministic.
        let scenario = dlrm_scenario(BackendSpec::Simulator);
        let space = scenario.space();
        let sample = samples(&space, 1, 23).remove(0);
        assert_eq!(arch_key("dlrm", &sample), arch_key("dlrm", &sample));
    }
}
