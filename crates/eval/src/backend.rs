//! The evaluation backend layer: one [`EvalBackend`] abstraction behind
//! every candidate evaluation in the workspace, with three
//! implementations — [`EvalBackend::Simulator`] (a plain roofline walk
//! per candidate), [`EvalBackend::Cached`] (the memoizing
//! `CachedSimulator` wiring), and [`EvalBackend::ModelServed`] (the
//! paper's §6.2.3 serving mode: a pretrained MLP performance model
//! answers the hot path, a novelty gate routes out-of-distribution
//! candidates to the simulator, and the resulting ground truth feeds an
//! online fine-tuning buffer).
//!
//! # Determinism contract
//!
//! Every backend must be **value-invisible to process topology**: the
//! cost returned for a sample is a pure function of `(sample, spec)`,
//! never of which shard, worker thread, or node process evaluated it, or
//! in what order. For the simulator and cache that is free (memoization
//! returns the exact simulated triple). For the model-served backend it
//! is enforced by the *frozen-generation rule*:
//!
//! * The **gate** decision (serve vs fall back) is a pure function of the
//!   candidate's feature vector and the generation-0 model — a model
//!   every process reconstructs identically from the spec's seed, because
//!   pretraining draws its pool from a seeded RNG and labels it with the
//!   deterministic simulator.
//! * The **served value** always comes from that same frozen generation-0
//!   model.
//! * The **online fine-tune loop** accrues fallback ground truth into a
//!   buffer (deduplicated by canonical architecture key) and retrains a
//!   *refined* copy of the model every `finetune_cadence` distinct
//!   fallback keys. The refined generation never serves inside the run —
//!   its training data depends on which process saw which candidate, so
//!   serving it would make CSV bytes depend on topology. It is the
//!   artifact a *subsequent* search warms up from
//!   ([`ModelServedBackend::refined_model`]).
//!
//! The seen-key store therefore drives buffer dedup and cadence, not
//! routing: two processes that disagree on "have I seen this key" still
//! return bit-identical costs.

use crate::scenario::Domain;
use h2o_hwsim::{CachedSimulator, EvalCache, EvalCost, HardwareConfig, Simulator, SystemConfig};
use h2o_perfmodel::{Featurizer, PerfModel, PerfTargets, TrainConfig};
use h2o_space::{ArchSample, SearchSpace};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which evaluation backend a search runs on (`--eval-backend`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Every candidate walks the roofline simulator.
    Simulator,
    /// Simulator walks memoized by canonical architecture key.
    Cached,
    /// MLP performance model serves; a novelty gate falls back to the
    /// cached simulator and feeds the online fine-tuning buffer.
    ModelServed,
}

impl BackendKind {
    /// Parses a `--eval-backend` value.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "sim" => Some(BackendKind::Simulator),
            "cached" => Some(BackendKind::Cached),
            "model" => Some(BackendKind::ModelServed),
            _ => None,
        }
    }

    /// The CLI name of the backend.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Simulator => "sim",
            BackendKind::Cached => "cached",
            BackendKind::ModelServed => "model",
        }
    }
}

/// Model-served backend parameters. All of them change served values, so
/// all of them are part of the scenario handshake fingerprint — unlike
/// cache capacity, which is value-invisible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSpec {
    /// Novelty gate threshold in z-units: a candidate whose predicted
    /// log-time sits more than this many target standard deviations from
    /// the pretraining distribution falls back to the simulator. Negative
    /// values force every candidate through the fallback path.
    pub gate_threshold: f64,
    /// Fine-tune the refined model after every this-many *distinct*
    /// fallback keys (must be at least 2 — a least-squares calibration
    /// needs two points).
    pub finetune_cadence: usize,
    /// Simulator-labelled samples in the pretraining pool.
    pub pretrain_pool: usize,
    /// Seed for the pretraining pool sampler and the model's weight init.
    pub seed: u64,
}

impl Default for ModelSpec {
    fn default() -> Self {
        Self {
            gate_threshold: 2.5,
            finetune_cadence: 16,
            pretrain_pool: 96,
            seed: 0,
        }
    }
}

/// The full recipe for constructing an [`EvalBackend`] — the one value
/// every construction site (facade scenario, CLI, bench harness, tests)
/// hands to the factory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BackendSpec {
    /// Plain simulator, no memoization.
    Simulator,
    /// Memoizing simulator with this cache capacity.
    Cached {
        /// Maximum entries in the shared eval cache.
        // h2o-lint: allow(fingerprint-completeness) -- cache capacity is
        // value-invisible memoization: results are bit-identical across cache
        // states (cache_transparency tier-1 tests), so it stays out of the
        // scenario handshake descriptor by design.
        capacity: usize,
    },
    /// Model-served hot path with a simulator fallback.
    ModelServed {
        /// Cache capacity of the fallback simulator, or `None` to
        /// simulate every fallback candidate uncached.
        // h2o-lint: allow(fingerprint-completeness) -- value-invisible memoization,
        // same argument as `capacity` above.
        fallback_capacity: Option<usize>,
        /// Gate / fine-tuning parameters.
        model: ModelSpec,
    },
}

impl BackendSpec {
    /// The kind this spec builds.
    pub fn kind(&self) -> BackendKind {
        match self {
            BackendSpec::Simulator => BackendKind::Simulator,
            BackendSpec::Cached { .. } => BackendKind::Cached,
            BackendSpec::ModelServed { .. } => BackendKind::ModelServed,
        }
    }

    /// The legacy `--eval-cache` mapping: `Some(capacity)` is the cached
    /// backend, `None` the plain simulator.
    pub fn from_cache_capacity(capacity: Option<usize>) -> Self {
        match capacity {
            Some(capacity) => BackendSpec::Cached { capacity },
            None => BackendSpec::Simulator,
        }
    }

    /// The cache capacity this spec uses, if any (the cached backend's
    /// memo table, or the model backend's fallback cache).
    pub fn cache_capacity(&self) -> Option<usize> {
        match self {
            BackendSpec::Simulator => None,
            BackendSpec::Cached { capacity } => Some(*capacity),
            BackendSpec::ModelServed {
                fallback_capacity, ..
            } => *fallback_capacity,
        }
    }

    /// Validates spec invariants the factory relies on.
    ///
    /// # Errors
    ///
    /// A fine-tune cadence below 2 (calibration needs two points) or an
    /// empty pretraining pool.
    pub fn validate(&self) -> Result<(), String> {
        if let BackendSpec::ModelServed { model, .. } = self {
            if model.finetune_cadence < 2 {
                return Err("--finetune-cadence must be at least 2".into());
            }
            if model.pretrain_pool < 2 {
                return Err("the model backend needs a pretraining pool of at least 2".into());
            }
        }
        Ok(())
    }

    /// The part of the spec that changes evaluation *values*, rendered
    /// into the scenario handshake descriptor. Cache capacities are
    /// value-invisible memoization and stay out; every model parameter is
    /// value-visible and goes in.
    pub fn value_descriptor(&self) -> String {
        match self {
            BackendSpec::Simulator | BackendSpec::Cached { .. } => String::new(),
            BackendSpec::ModelServed { model, .. } => format!(
                "|model|g{}|c{}|p{}|s{}",
                model.gate_threshold, model.finetune_cadence, model.pretrain_pool, model.seed
            ),
        }
    }
}

/// Counters shared with the observability export: served, fallback, and
/// fine-tune-round totals for the model backend.
const SERVED_TOTAL: &str = "h2o_eval_served_total";
const FALLBACK_TOTAL: &str = "h2o_eval_fallback_total";
const FINETUNE_ROUNDS_TOTAL: &str = "h2o_eval_finetune_rounds_total";

/// One evaluation backend, cheap to clone: clones share the cache and the
/// fine-tuning state, exactly like [`EvalCache`] handles. Build one per
/// process through [`EvalBackend::build`] and clone it into each shard's
/// evaluator.
#[derive(Debug, Clone)]
pub enum EvalBackend {
    /// Plain roofline simulation per candidate.
    Simulator(Simulator),
    /// Memoized simulation.
    Cached(CachedSimulator),
    /// Model-served hot path with gated simulator fallback.
    ModelServed(ModelServedBackend),
}

impl EvalBackend {
    /// The `BackendSpec → EvalBackend` factory: the single construction
    /// path every evaluator in the workspace goes through.
    ///
    /// For the model backend this pretrains the generation-0 performance
    /// model on `spec.pretrain_pool` simulator-labelled samples of the
    /// domain's space — a deterministic function of the spec, so every
    /// process of a distributed run reconstructs the identical model.
    ///
    /// # Errors
    ///
    /// Invalid spec parameters, or a domain the model backend cannot
    /// serve: the vision quality surrogates consume simulated parameter
    /// counts, which a time-only performance model does not produce, so
    /// `ModelServed` currently supports the DLRM domain alone.
    pub fn build(spec: &BackendSpec, domain: Domain) -> Result<EvalBackend, String> {
        spec.validate()?;
        let sim = Simulator::new(HardwareConfig::tpu_v4());
        match spec {
            BackendSpec::Simulator => Ok(EvalBackend::Simulator(sim)),
            BackendSpec::Cached { capacity } => Ok(EvalBackend::Cached(CachedSimulator::new(
                sim,
                EvalCache::new(*capacity),
            ))),
            BackendSpec::ModelServed {
                fallback_capacity,
                model,
            } => {
                if domain != Domain::Dlrm {
                    return Err(format!(
                        "--eval-backend model does not support the {} domain: its quality \
                         surrogate consumes simulated parameter counts, which the \
                         performance model does not predict (use dlrm, or sim|cached)",
                        domain.name()
                    ));
                }
                Ok(EvalBackend::ModelServed(ModelServedBackend::pretrain(
                    &sim,
                    *fallback_capacity,
                    *model,
                )))
            }
        }
    }

    /// Memoized/served training-step cost of the architecture identified
    /// by `key`. `build` runs only when the backend actually simulates
    /// (always for `Simulator`, on cache misses for `Cached`, on gate
    /// fallback for `ModelServed`).
    pub fn training_cost(
        &self,
        sample: &ArchSample,
        key: u64,
        system: &SystemConfig,
        build: impl FnOnce() -> h2o_graph::Graph,
    ) -> EvalCost {
        match self {
            EvalBackend::Simulator(sim) => {
                EvalCost::from_report(&sim.simulate_training(&build(), system))
            }
            EvalBackend::Cached(cached) => cached.training_cost(key, system, build),
            EvalBackend::ModelServed(served) => served.training_cost(sample, key, system, build),
        }
    }

    /// The model-served state, when this backend has one (for end-of-run
    /// reporting).
    pub fn model_served(&self) -> Option<&ModelServedBackend> {
        match self {
            EvalBackend::ModelServed(served) => Some(served),
            _ => None,
        }
    }

    /// The eval cache this backend memoizes through, if any (the cached
    /// backend's table, or the model backend's fallback cache).
    pub fn cache(&self) -> Option<&EvalCache> {
        match self {
            EvalBackend::Simulator(_) => None,
            EvalBackend::Cached(cached) => Some(cached.cache()),
            EvalBackend::ModelServed(served) => served.fallback_cache(),
        }
    }
}

/// Mutable fine-tuning state shared by all clones of one model backend.
#[derive(Debug)]
struct Learner {
    /// Canonical keys of every fallback candidate whose ground truth is
    /// already buffered (dedup + cadence; never routing).
    seen: BTreeSet<u64>,
    /// Fine-tuning buffer: features and ground-truth targets.
    xs: Vec<Vec<f32>>,
    ys: Vec<PerfTargets>,
    /// The refined generation: starts as a copy of the frozen model and
    /// absorbs one fine-tune round per cadence tick.
    refined: PerfModel,
    rounds: u64,
    fallback: u64,
}

/// The model-served evaluation hot path (§6.2.3): batched MLP inference
/// answers in-distribution candidates, the novelty gate routes the rest
/// to the (cached) simulator, and fallback ground truth fine-tunes a
/// refined model generation on a fixed cadence.
#[derive(Clone)]
pub struct ModelServedBackend {
    /// Generation 0: serves and gates for the whole run (see the module
    /// docs' frozen-generation rule).
    frozen: Arc<PerfModel>,
    featurizer: Arc<Featurizer>,
    spec: ModelSpec,
    /// Ground-truth path for gated-out candidates.
    fallback: FallbackSim,
    learner: Arc<Mutex<Learner>>,
    served: Arc<AtomicU64>,
}

impl std::fmt::Debug for ModelServedBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelServedBackend")
            .field("spec", &self.spec)
            .field("stats", &self.stats())
            .finish()
    }
}

/// The fallback simulator front-end: cached or plain, mirroring the
/// standalone backends.
#[derive(Debug, Clone)]
enum FallbackSim {
    Plain(Simulator),
    Cached(CachedSimulator),
}

/// Serving statistics of one model backend (aggregated over all clones).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModelServeStats {
    /// Candidates answered by the frozen model.
    pub served: u64,
    /// Candidates routed to the simulator by the novelty gate.
    pub fallback: u64,
    /// Fine-tune rounds the refined generation absorbed.
    pub finetune_rounds: u64,
    /// Distinct ground-truth measurements in the fine-tuning buffer.
    pub buffered: usize,
}

impl ModelServeStats {
    /// Fraction of evaluations served by the model, in `[0, 1]`.
    pub fn served_share(&self) -> f64 {
        let total = self.served + self.fallback;
        if total == 0 {
            0.0
        } else {
            self.served as f64 / total as f64
        }
    }
}

/// Pretraining hyper-parameters for the generation-0 model: a small MLP
/// fitted well enough that in-distribution candidates predict inside the
/// target spread (the novelty gate's operating assumption). The hidden
/// width is a serving-latency knob: the first-layer matvec
/// (`featurizer.dim() × width`) dominates the per-candidate forward, so
/// the width is kept at the smallest size whose pretrain loss still
/// separates the target spread.
const PRETRAIN_HIDDEN: &[usize] = &[16, 16];
const PRETRAIN_EPOCHS: usize = 12;
const PRETRAIN_BATCH: usize = 32;

impl ModelServedBackend {
    /// Builds and pretrains the backend: samples `spec.pretrain_pool`
    /// architectures from the DLRM space with a seeded RNG, labels them
    /// with the simulator (training-step and serving latency), and fits
    /// the dual-head model. Deterministic for a fixed spec.
    fn pretrain(sim: &Simulator, fallback_capacity: Option<usize>, spec: ModelSpec) -> Self {
        let space = crate::scenario::dlrm_space();
        let featurizer = Featurizer::from_space(space.space());
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut xs = Vec::with_capacity(spec.pretrain_pool);
        let mut ys = Vec::with_capacity(spec.pretrain_pool);
        let system = SystemConfig::training_pod();
        for _ in 0..spec.pretrain_pool {
            let sample = space.space().sample_uniform(&mut rng);
            let graph = space.decode(&sample).build_graph(64, 128);
            let training = sim.simulate_training(&graph, &system).time;
            let serving = sim.simulate(&graph).time;
            xs.push(featurizer.featurize(&sample));
            ys.push(PerfTargets { training, serving });
        }
        let mut model = PerfModel::new(featurizer.dim(), PRETRAIN_HIDDEN, spec.seed);
        model.pretrain(
            &xs,
            &ys,
            TrainConfig {
                epochs: PRETRAIN_EPOCHS,
                batch_size: PRETRAIN_BATCH,
                lr: 1e-3,
            },
        );
        let refined = model.clone();
        let fallback = match fallback_capacity {
            Some(capacity) => {
                FallbackSim::Cached(CachedSimulator::new(sim.clone(), EvalCache::new(capacity)))
            }
            None => FallbackSim::Plain(sim.clone()),
        };
        Self {
            frozen: Arc::new(model),
            featurizer: Arc::new(featurizer),
            spec,
            fallback,
            learner: Arc::new(Mutex::new(Learner {
                seen: BTreeSet::new(),
                xs: Vec::new(),
                ys: Vec::new(),
                refined,
                rounds: 0,
                fallback: 0,
            })),
            served: Arc::new(AtomicU64::new(0)),
        }
    }

    /// One gated evaluation. The served path is lock-free (the frozen
    /// model is immutable and shared); only the fallback path — already
    /// paying for a simulator walk — takes the learner lock.
    fn training_cost(
        &self,
        sample: &ArchSample,
        key: u64,
        system: &SystemConfig,
        build: impl FnOnce() -> h2o_graph::Graph,
    ) -> EvalCost {
        let features = self.featurizer.featurize(sample);
        let row = self.frozen.infer_one(&features);
        if row.novelty <= self.spec.gate_threshold {
            self.served.fetch_add(1, Ordering::Relaxed);
            h2o_obs::counter(SERVED_TOTAL).inc();
            return EvalCost {
                latency: row.prediction.training,
                energy: 0.0,
                memory_bytes: 0.0,
                params: 0.0,
            };
        }
        h2o_obs::counter(FALLBACK_TOTAL).inc();
        let truth = match &self.fallback {
            FallbackSim::Plain(sim) => {
                EvalCost::from_report(&sim.simulate_training(&build(), system))
            }
            FallbackSim::Cached(cached) => cached.training_cost(key, system, build),
        };
        let mut learner = self.learner.lock();
        learner.fallback += 1;
        if learner.seen.insert(key) {
            learner.xs.push(features);
            // The training head gets measured ground truth; the serving
            // head is anchored to its own prediction — a search produces
            // no serving-path measurements, and a drifting anchor would
            // corrupt the head.
            learner.ys.push(PerfTargets {
                training: truth.latency,
                serving: row.prediction.serving,
            });
            if learner
                .seen
                .len()
                .is_multiple_of(self.spec.finetune_cadence)
            {
                let Learner {
                    xs, ys, refined, ..
                } = &mut *learner;
                refined.finetune(
                    xs,
                    ys,
                    TrainConfig {
                        epochs: 30,
                        batch_size: 8,
                        lr: 1e-4,
                    },
                );
                learner.rounds += 1;
                h2o_obs::counter(FINETUNE_ROUNDS_TOTAL).inc();
            }
        }
        truth
    }

    /// Aggregated serving statistics across all clones.
    pub fn stats(&self) -> ModelServeStats {
        let learner = self.learner.lock();
        ModelServeStats {
            served: self.served.load(Ordering::Relaxed),
            fallback: learner.fallback,
            finetune_rounds: learner.rounds,
            buffered: learner.xs.len(),
        }
    }

    /// The frozen generation-0 model that serves and gates.
    pub fn frozen_model(&self) -> &PerfModel {
        &self.frozen
    }

    /// A snapshot of the refined generation — the online fine-tuning
    /// product a subsequent search warms up from.
    pub fn refined_model(&self) -> PerfModel {
        self.learner.lock().refined.clone()
    }

    /// Featurizes a sample with the backend's own featurizer (for batched
    /// offline inference over candidate sets).
    pub fn featurize(&self, sample: &ArchSample) -> Vec<f32> {
        self.featurizer.featurize(sample)
    }

    /// NRMSE of the frozen vs the refined generation against the
    /// fine-tuning buffer's ground truth (training head), or `None` when
    /// fewer than two measurements are buffered. Shows what the online
    /// loop learned.
    pub fn buffer_nrmse(&self) -> Option<(f64, f64)> {
        let learner = self.learner.lock();
        if learner.xs.len() < 2 {
            return None;
        }
        let frozen = self.frozen.evaluate_nrmse(&learner.xs, &learner.ys);
        let refined = learner.refined.evaluate_nrmse(&learner.xs, &learner.ys);
        Some((frozen.training, refined.training))
    }

    /// The fallback path's eval cache, when it memoizes.
    pub fn fallback_cache(&self) -> Option<&EvalCache> {
        match &self.fallback {
            FallbackSim::Plain(_) => None,
            FallbackSim::Cached(cached) => Some(cached.cache()),
        }
    }

    /// The search space the pretraining pool was drawn from (the DLRM
    /// production space, truncated like the CLI's).
    pub fn space(&self) -> SearchSpace {
        crate::scenario::dlrm_space().space().clone()
    }
}
