//! Evaluation scenarios: the domain + backend recipe both sides of a
//! search agree on.
//!
//! A *scenario* ([`EvalScenario`]) is everything a process needs to
//! evaluate candidates exactly like every other process of the same run:
//! the search domain, its decode/quality/simulation stack, and the
//! [`BackendSpec`] that selects how candidate costs are produced
//! (simulated, memoized, or model-served). Both sides of a multi-process
//! run construct the scenario from the same CLI flags, so the
//! controller's [`EvalScenario::fingerprint`] and a worker's agree — and
//! a worker launched against the wrong domain *or a different
//! value-affecting backend* fails the transport handshake with a typed
//! `ScenarioMismatch` instead of silently returning numbers from a
//! different search.

use crate::backend::{BackendKind, BackendSpec, EvalBackend};
use h2o_core::EvalResult;
use h2o_hwsim::{arch_key, SystemConfig};
use h2o_models::quality::{DatasetScale, DlrmQualityModel, VisionQualityModel};
use h2o_space::{
    ArchSample, CnnSpace, CnnSpaceConfig, DlrmSpace, DlrmSpaceConfig, SearchSpace, VitSpace,
    VitSpaceConfig,
};

/// The search domains with a stateless per-candidate evaluator (the
/// domains of `h2o search`; `dlrm-oneshot` trains a shared supernet and
/// cannot be sharded across processes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// EfficientNet-style CNN space, vision quality surrogate.
    Cnn,
    /// Production DLRM space (truncated to 40 tables), DLRM quality model.
    Dlrm,
    /// Pure ViT space, vision quality surrogate.
    Vit,
}

impl Domain {
    /// Parses a `--domain` value; `None` for domains without a stateless
    /// evaluator.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "cnn" => Some(Domain::Cnn),
            "dlrm" => Some(Domain::Dlrm),
            "vit" => Some(Domain::Vit),
            _ => None,
        }
    }

    /// The CLI name of the domain.
    pub fn name(&self) -> &'static str {
        match self {
            Domain::Cnn => "cnn",
            Domain::Dlrm => "dlrm",
            Domain::Vit => "vit",
        }
    }
}

/// The production DLRM space the CLI searches (truncated to 40 tables,
/// matching the single-process arm).
pub(crate) fn dlrm_space() -> DlrmSpace {
    let mut config = DlrmSpaceConfig::production();
    config.tables.truncate(40);
    DlrmSpace::new(config)
}

/// The evaluation recipe both sides of a multi-process run agree on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalScenario {
    /// The search domain.
    pub domain: Domain,
    /// How candidate costs are produced. Cache capacities inside the spec
    /// are value-invisible memoization and *excluded* from the handshake
    /// fingerprint — cache-on and cache-off processes may legally
    /// interoperate. Model parameters change served values and are
    /// included.
    pub backend: BackendSpec,
}

impl EvalScenario {
    /// Builds the scenario from CLI flag values.
    ///
    /// # Errors
    ///
    /// Rejects domains that have no stateless per-candidate evaluator,
    /// invalid backend parameters, and domain/backend combinations the
    /// factory does not support (the model backend serves DLRM only).
    pub fn new(domain: &str, backend: BackendSpec) -> Result<Self, String> {
        let domain = Domain::parse(domain).ok_or_else(|| {
            format!("domain '{domain}' cannot run multi-process (needs a stateless evaluator)")
        })?;
        backend.validate()?;
        if backend.kind() == BackendKind::ModelServed && domain != Domain::Dlrm {
            return Err(format!(
                "--eval-backend model does not support the {} domain: its quality \
                 surrogate consumes simulated parameter counts, which the \
                 performance model does not predict (use dlrm, or sim|cached)",
                domain.name()
            ));
        }
        Ok(Self { domain, backend })
    }

    /// Legacy constructor from the `--eval-cache` flag pair: `Some`
    /// capacity is the cached backend, `None` the plain simulator.
    ///
    /// # Errors
    ///
    /// Same domain validation as [`EvalScenario::new`].
    pub fn with_cache(domain: &str, cache_capacity: Option<usize>) -> Result<Self, String> {
        Self::new(domain, BackendSpec::from_cache_capacity(cache_capacity))
    }

    /// The decision space this scenario searches — identical to the space
    /// the single-process `h2o search` arm builds for the same domain.
    pub fn space(&self) -> SearchSpace {
        match self.domain {
            Domain::Cnn => CnnSpace::new(CnnSpaceConfig::default()).space().clone(),
            Domain::Dlrm => dlrm_space().space().clone(),
            Domain::Vit => VitSpace::new(VitSpaceConfig::pure()).space().clone(),
        }
    }

    /// The handshake fingerprint: domain identity, the shape of its
    /// decision space, and the backend's value-affecting parameters, so a
    /// controller never exchanges jobs with a worker returning different
    /// numbers. Sim and cached backends share a fingerprint (memoization
    /// is value-invisible); every model parameter changes it.
    pub fn fingerprint(&self) -> u64 {
        let space = self.space();
        let descriptor = format!(
            "h2o-eval-scenario|{}|{}|{:.3}{}",
            self.domain.name(),
            space.num_decisions(),
            space.log10_size(),
            self.backend.value_descriptor()
        );
        h2o_exec::wire::fnv1a(descriptor.as_bytes())
    }

    /// The backend's contribution to *checkpoint* identity: zero for the
    /// value-equivalent sim/cached backends (their checkpoints stay
    /// mutually resumable, as before this layer existed), a nonzero hash
    /// of the model parameters otherwise. XOR into the search-config
    /// fingerprint.
    pub fn value_fingerprint(&self) -> u64 {
        let descriptor = self.backend.value_descriptor();
        if descriptor.is_empty() {
            0
        } else {
            h2o_exec::wire::fnv1a(descriptor.as_bytes())
        }
    }

    /// Builds this scenario's backend through the single
    /// `BackendSpec → EvalBackend` factory. Build once per process and
    /// clone into each shard (clones share cache and fine-tuning state).
    ///
    /// # Errors
    ///
    /// See [`EvalBackend::build`].
    pub fn backend(&self) -> Result<EvalBackend, String> {
        EvalBackend::build(&self.backend, self.domain)
    }

    /// The `node-worker` CLI arguments that reconstruct this scenario in a
    /// spawned subprocess.
    pub fn worker_args(&self) -> Vec<String> {
        let mut args = vec![
            "--domain".to_string(),
            self.domain.name().to_string(),
            "--eval-backend".to_string(),
            self.backend.kind().name().to_string(),
        ];
        match self.backend {
            BackendSpec::Simulator => {}
            BackendSpec::Cached { capacity } => {
                args.push("--eval-cache-capacity".to_string());
                args.push(capacity.to_string());
            }
            BackendSpec::ModelServed {
                fallback_capacity,
                model,
            } => {
                if let Some(capacity) = fallback_capacity {
                    args.push("--eval-cache-capacity".to_string());
                    args.push(capacity.to_string());
                } else {
                    args.push("--eval-cache".to_string());
                    args.push("off".to_string());
                }
                args.push("--gate-threshold".to_string());
                args.push(model.gate_threshold.to_string());
                args.push("--finetune-cadence".to_string());
                args.push(model.finetune_cadence.to_string());
            }
        }
        args
    }

    /// Builds one shard's evaluator: the pure
    /// `sample → (quality, perf_values)` function both the in-process
    /// `ParallelStage` and a worker's serve loop run. `backend` is a
    /// handle built by [`EvalScenario::backend`]; clones share memoization
    /// and fine-tuning state.
    pub fn shard_evaluator(
        &self,
        backend: &EvalBackend,
    ) -> Box<dyn FnMut(&ArchSample) -> EvalResult + Send> {
        let backend = backend.clone();
        match self.domain {
            Domain::Cnn => {
                let space = CnnSpace::new(CnnSpaceConfig::default());
                let quality = VisionQualityModel::new(DatasetScale::Medium);
                Box::new(move |sample: &ArchSample| {
                    let arch = space.decode(sample);
                    let cost = backend.training_cost(
                        sample,
                        arch_key("cnn", sample),
                        &SystemConfig::training_pod(),
                        || arch.build_graph(64),
                    );
                    EvalResult {
                        quality: quality.accuracy_of_cnn(&arch, cost.params / 1e6),
                        perf_values: vec![cost.latency],
                    }
                })
            }
            Domain::Dlrm => {
                let space = dlrm_space();
                let base = space.decode(&space.baseline());
                let quality = DlrmQualityModel::new(&base, 85.0);
                Box::new(move |sample: &ArchSample| {
                    let arch = space.decode(sample);
                    let cost = backend.training_cost(
                        sample,
                        arch_key("dlrm", sample),
                        &SystemConfig::training_pod(),
                        || arch.build_graph(64, 128),
                    );
                    EvalResult {
                        quality: quality.quality(&arch),
                        perf_values: vec![cost.latency],
                    }
                })
            }
            Domain::Vit => {
                let space = VitSpace::new(VitSpaceConfig::pure());
                let quality = VisionQualityModel::new(DatasetScale::Medium);
                Box::new(move |sample: &ArchSample| {
                    let arch = space.decode(sample);
                    let cost = backend.training_cost(
                        sample,
                        arch_key("vit", sample),
                        &SystemConfig::training_pod(),
                        || arch.build_graph(32, 512),
                    );
                    EvalResult {
                        quality: quality.accuracy_of_vit(&arch, cost.params / 1e6),
                        perf_values: vec![cost.latency],
                    }
                })
            }
        }
    }

    /// Renders the decoded best architecture the way the single-process
    /// search arm prints it.
    pub fn describe_best(&self, best: &ArchSample) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        match self.domain {
            Domain::Cnn => {
                let space = CnnSpace::new(CnnSpaceConfig::default());
                let arch = space.decode(best);
                let _ = writeln!(out, "best: resolution {}, blocks:", arch.resolution);
                for (i, b) in arch.blocks.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "  {i}: {:?} k{} e{} d{} w{}",
                        b.block_type, b.kernel, b.expansion, b.depth, b.width
                    );
                }
            }
            Domain::Dlrm => {
                let space = dlrm_space();
                let arch = space.decode(best);
                let _ = writeln!(
                    out,
                    "best: {} tables totalling {:.0}M embedding params, {} MLP groups, size {:.1} MB",
                    arch.tables.len(),
                    arch.embedding_params() / 1e6,
                    arch.mlp_groups.len(),
                    arch.model_size_bytes() / 1e6
                );
            }
            Domain::Vit => {
                let space = VitSpace::new(VitSpaceConfig::pure());
                let arch = space.decode(best);
                for (i, b) in arch.tfm_blocks.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "  block {i}: hidden {} x{} layers, {:?}, rank {:.1}, pool={}, primer={}",
                        b.hidden, b.layers, b.act, b.low_rank, b.seq_pool, b.primer
                    );
                }
            }
        }
        // The arms above end with writeln!, so trim the trailing newline
        // for println!-style use.
        out.truncate(out.trim_end().len());
        out
    }
}
