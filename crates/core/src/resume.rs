//! Checkpoint/resume hooks for the search loops.
//!
//! The determinism contract (same seed ⇒ bit-identical outcomes for any
//! worker count) makes resume *verifiable*: a search interrupted at a
//! completed step `k` and restarted from a snapshot must reproduce the
//! uninterrupted run byte-for-byte. This module defines what a snapshot
//! contains ([`SearchSnapshot`] / [`ResumeState`]) and how the loops hand
//! one out ([`CheckpointSink`]); the durable, crash-safe file encoding
//! lives in the `h2o-ckpt` crate, keeping `h2o-core` storage-agnostic.
//!
//! Because per-step sample streams are derived from `(seed, step, shard)`
//! (see [`crate::search::shard_seed`]), no run-long RNG state exists to
//! save: controller state (policy logits + reward baseline), accumulated
//! telemetry, and — for one-shot loops — the supernet's shared weights are
//! the complete resumable state.

use crate::policy::{Policy, RewardBaseline};
use crate::search::{EvaluatedCandidate, SearchConfig, StepRecord};
use h2o_space::SearchSpace;

/// Borrowed view of everything needed to resume a search after a completed
/// step, handed to [`CheckpointSink::on_checkpoint`].
#[derive(Debug)]
pub struct SearchSnapshot<'a> {
    /// Number of fully completed steps; the resumed run starts here.
    pub steps_done: usize,
    /// Policy after `steps_done` REINFORCE updates.
    pub policy: &'a Policy,
    /// EMA reward baseline state.
    pub baseline: &'a RewardBaseline,
    /// Per-step telemetry accumulated so far.
    pub history: &'a [StepRecord],
    /// Every candidate evaluated so far.
    pub evaluated: &'a [EvaluatedCandidate],
    /// Serialised supernet shared weights (one-shot loops only).
    pub supernet_state: Option<&'a [u8]>,
}

/// Owned counterpart of [`SearchSnapshot`]: what a restore hands back to
/// the search loops.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumeState {
    /// Number of fully completed steps; the resumed run starts here.
    pub steps_done: usize,
    /// Policy after `steps_done` REINFORCE updates.
    pub policy: Policy,
    /// EMA reward baseline state.
    pub baseline: RewardBaseline,
    /// Per-step telemetry accumulated so far.
    pub history: Vec<StepRecord>,
    /// Every candidate evaluated so far.
    pub evaluated: Vec<EvaluatedCandidate>,
    /// Serialised supernet shared weights (one-shot loops only).
    pub supernet_state: Option<Vec<u8>>,
}

impl ResumeState {
    /// Clones a borrowed snapshot into owned resume state.
    pub fn from_snapshot(snapshot: &SearchSnapshot<'_>) -> Self {
        Self {
            steps_done: snapshot.steps_done,
            policy: snapshot.policy.clone(),
            baseline: *snapshot.baseline,
            history: snapshot.history.to_vec(),
            evaluated: snapshot.evaluated.to_vec(),
            supernet_state: snapshot.supernet_state.map(|s| s.to_vec()),
        }
    }

    /// Borrows this state back as a [`SearchSnapshot`] (for re-encoding).
    pub fn as_snapshot(&self) -> SearchSnapshot<'_> {
        SearchSnapshot {
            steps_done: self.steps_done,
            policy: &self.policy,
            baseline: &self.baseline,
            history: &self.history,
            evaluated: &self.evaluated,
            supernet_state: self.supernet_state.as_deref(),
        }
    }
}

/// A hook the search loops consult after every completed step.
///
/// [`CheckpointSink::should_checkpoint`] gates the (possibly expensive)
/// snapshot construction — one-shot loops only serialise the supernet when
/// the sink says yes. A sink error aborts the search (see
/// `parallel_search_with`): silently continuing would let a run believe it
/// is durable when it is not.
pub trait CheckpointSink {
    /// Whether a snapshot should be taken after `steps_done` completed
    /// steps.
    fn should_checkpoint(&self, steps_done: usize) -> bool;

    /// Persists (or captures) the snapshot.
    ///
    /// # Errors
    ///
    /// Any error string; the search loop treats it as fatal.
    fn on_checkpoint(&mut self, snapshot: &SearchSnapshot<'_>) -> Result<(), String>;
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// FNV-1a over the 8 bytes of `value`, folded into `hash`.
fn fnv1a_u64(mut hash: u64, value: u64) -> u64 {
    for byte in value.to_le_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn fnv1a_str(mut hash: u64, value: &str) -> u64 {
    for byte in value.as_bytes() {
        hash ^= *byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Hashes the space's identity: its name plus every decision's name and
/// cardinality, in order.
fn space_fingerprint(mut hash: u64, space: &SearchSpace) -> u64 {
    hash = fnv1a_str(hash, space.name());
    hash = fnv1a_u64(hash, space.num_decisions() as u64);
    for decision in space.decisions() {
        hash = fnv1a_str(hash, &decision.name);
        hash = fnv1a_u64(hash, decision.choices as u64);
    }
    hash
}

impl SearchConfig {
    /// A fingerprint of everything that must match for a checkpoint to be
    /// resumable under this config: the search space's shape plus the
    /// trajectory-determining hyper-parameters (`shards`, `policy_lr`,
    /// `baseline_momentum`, `seed`). `steps` and `workers` are deliberately
    /// *excluded* — a resumed run may extend the horizon or change the
    /// worker count without perturbing the outcome.
    pub fn fingerprint(&self, space: &SearchSpace) -> u64 {
        let mut hash = fnv1a_str(FNV_OFFSET, "parallel_search");
        hash = space_fingerprint(hash, space);
        hash = fnv1a_u64(hash, self.shards as u64);
        hash = fnv1a_u64(hash, self.policy_lr.to_bits());
        hash = fnv1a_u64(hash, self.baseline_momentum.to_bits());
        fnv1a_u64(hash, self.seed)
    }
}

impl crate::oneshot::OneShotConfig {
    /// A fingerprint of everything that must match for a checkpoint to be
    /// resumable under this config (see [`SearchConfig::fingerprint`]);
    /// additionally covers `batch_size` and `quality_scale`, which shape
    /// the supernet training trajectory. `steps` and `workers` are
    /// excluded.
    pub fn fingerprint(&self, space: &SearchSpace) -> u64 {
        let mut hash = fnv1a_str(FNV_OFFSET, "unified_search");
        hash = space_fingerprint(hash, space);
        hash = fnv1a_u64(hash, self.shards as u64);
        hash = fnv1a_u64(hash, self.batch_size as u64);
        hash = fnv1a_u64(hash, self.policy_lr.to_bits());
        hash = fnv1a_u64(hash, self.baseline_momentum.to_bits());
        hash = fnv1a_u64(hash, self.quality_scale.to_bits());
        fnv1a_u64(hash, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2o_space::Decision;

    fn space() -> SearchSpace {
        let mut s = SearchSpace::new("fp");
        s.push(Decision::new("a", 3));
        s.push(Decision::new("b", 4));
        s
    }

    #[test]
    fn fingerprint_ignores_steps_and_workers() {
        let base = SearchConfig {
            steps: 100,
            workers: 1,
            ..Default::default()
        };
        let more = SearchConfig {
            steps: 500,
            workers: 8,
            ..base
        };
        assert_eq!(base.fingerprint(&space()), more.fingerprint(&space()));
    }

    #[test]
    fn fingerprint_covers_seed_shards_and_lr() {
        let base = SearchConfig::default();
        let s = space();
        let fp = base.fingerprint(&s);
        assert_ne!(fp, SearchConfig { seed: 1, ..base }.fingerprint(&s));
        assert_ne!(fp, SearchConfig { shards: 9, ..base }.fingerprint(&s));
        assert_ne!(
            fp,
            SearchConfig {
                policy_lr: 0.051,
                ..base
            }
            .fingerprint(&s)
        );
    }

    #[test]
    fn fingerprint_covers_the_space_shape() {
        let cfg = SearchConfig::default();
        let mut other = SearchSpace::new("fp");
        other.push(Decision::new("a", 3));
        other.push(Decision::new("b", 5));
        assert_ne!(cfg.fingerprint(&space()), cfg.fingerprint(&other));
    }

    #[test]
    fn round_trip_through_owned_state() {
        let policy = Policy::from_logits(vec![vec![0.5, -0.25], vec![1.0, 2.0, 3.0]]);
        let baseline = RewardBaseline::from_parts(0.75, 0.9, true);
        let snapshot = SearchSnapshot {
            steps_done: 7,
            policy: &policy,
            baseline: &baseline,
            history: &[],
            evaluated: &[],
            supernet_state: Some(&[1, 2, 3]),
        };
        let state = ResumeState::from_snapshot(&snapshot);
        assert_eq!(state.steps_done, 7);
        assert_eq!(state.policy, policy);
        assert_eq!(state.supernet_state.as_deref(), Some(&[1u8, 2, 3][..]));
        let again = ResumeState::from_snapshot(&state.as_snapshot());
        assert_eq!(again, state);
    }
}
