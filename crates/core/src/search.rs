//! The massively parallel single-step search loop (§4.2, Fig. 2 right).
//!
//! Each step, every virtual accelerator shard (1) samples its own
//! architecture `αᵢ` from the shared policy `π` and evaluates its quality
//! and performance, (2) all shards' rewards drive one **cross-shard
//! REINFORCE update** of `π`, and (3) shared weights `W` are updated on the
//! same batches (for evaluators that train — see `crate::oneshot`).
//! Shards run on a work-stealing [`h2o_exec::Executor`] pool standing in
//! for the paper's hundreds of TPU cores. Each shard's job owns its RNG
//! (seeded from `seed`, `step`, `shard`) and results reduce in submission
//! order, so the outcome is bit-identical for any worker count.

use crate::policy::{Policy, RewardBaseline};
use crate::resume::{CheckpointSink, ResumeState, SearchSnapshot};
use crate::reward::RewardFn;
use h2o_space::{ArchSample, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// SplitMix64 finalizer: a full-avalanche bijection on `u64` (Steele et
/// al.), the same mixer `h2o_hwsim`'s cache uses for shard routing.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derives the RNG seed that owns the `(seed, step, shard)` sample stream.
///
/// Each coordinate passes through a SplitMix64 finalizer before the next is
/// folded in, so distinct tuples get statistically independent streams.
/// The previous XOR mix (`seed ^ (step << 20) ^ shard`) made whole streams
/// collide across `(seed, shard)` pairs — e.g. `seed=3, shard=0` and
/// `seed=2, shard=1` drew identical architectures every step.
pub fn shard_seed(seed: u64, step: u64, shard: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(seed).wrapping_add(step)).wrapping_add(shard))
}

/// Quality and measured performance of one evaluated candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalResult {
    /// Quality `Q(α)` (accuracy / AUC / −logloss, higher better).
    pub quality: f64,
    /// One measured value per reward objective, `Tᵢ(α)`.
    pub perf_values: Vec<f64>,
}

/// Evaluates candidates on one shard. Implementations may be stateful
/// (e.g. hold a simulator, a performance model, or a trainable supernet
/// shard).
pub trait ArchEvaluator {
    /// Produces the quality and performance signals for a sampled
    /// architecture.
    fn evaluate(&mut self, sample: &ArchSample) -> EvalResult;
}

impl<F> ArchEvaluator for F
where
    F: FnMut(&ArchSample) -> EvalResult,
{
    fn evaluate(&mut self, sample: &ArchSample) -> EvalResult {
        self(sample)
    }
}

/// Configuration of the parallel search loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Search steps (policy updates).
    pub steps: usize,
    /// Virtual accelerator shards per step (parallel candidate samples).
    pub shards: usize,
    /// REINFORCE learning rate on the policy logits.
    pub policy_lr: f64,
    /// EMA momentum of the reward baseline.
    pub baseline_momentum: f64,
    /// RNG seed.
    pub seed: u64,
    /// Evaluation worker threads. `0` means auto: the `H2O_WORKERS`
    /// environment variable if set, else available parallelism. The
    /// search outcome is bit-identical for every worker count.
    #[serde(default)]
    pub workers: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            steps: 200,
            shards: 8,
            policy_lr: 0.05,
            baseline_momentum: 0.9,
            seed: 0,
            workers: 0,
        }
    }
}

/// Per-step telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Step index.
    pub step: usize,
    /// Mean shard reward.
    pub mean_reward: f64,
    /// Best shard reward.
    pub best_reward: f64,
    /// Mean per-decision policy entropy (nats).
    pub entropy: f64,
    /// Wall-clock duration of the step, milliseconds.
    pub step_time_ms: f64,
}

/// One evaluated candidate with its reward.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluatedCandidate {
    /// The sampled architecture.
    pub sample: ArchSample,
    /// Its evaluation.
    pub result: EvalResult,
    /// The combined reward.
    pub reward: f64,
}

/// The result of a search run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The final architecture: per-decision argmax of the policy (§4.2).
    pub best: ArchSample,
    /// The trained policy.
    pub policy: Policy,
    /// Step telemetry.
    pub history: Vec<StepRecord>,
    /// Every candidate evaluated during the search.
    pub evaluated: Vec<EvaluatedCandidate>,
}

impl SearchOutcome {
    /// The evaluated candidate with the highest reward.
    pub fn best_evaluated(&self) -> Option<&EvaluatedCandidate> {
        self.evaluated
            .iter()
            .max_by(|a, b| a.reward.partial_cmp(&b.reward).expect("no NaN rewards"))
    }
}

/// Runs the massively parallel single-step search with per-shard
/// evaluators built by `make_evaluator(shard_index)`.
///
/// Evaluator construction happens once per shard; evaluators persist
/// across steps (so stateful evaluators amortise setup and can train
/// shard-local state).
///
/// # Panics
///
/// Panics if `config.shards == 0` or `config.steps == 0`.
pub fn parallel_search<E, F>(
    space: &SearchSpace,
    reward_fn: &RewardFn,
    make_evaluator: F,
    config: &SearchConfig,
) -> SearchOutcome
where
    E: ArchEvaluator + Send,
    F: FnMut(usize) -> E,
{
    parallel_search_with(space, reward_fn, make_evaluator, config, None, None)
}

/// [`parallel_search`] with checkpoint/resume hooks.
///
/// `resume` restores controller state captured by a [`CheckpointSink`] at a
/// completed step `k`; the loop then runs steps `k..config.steps` and the
/// outcome is byte-identical to an uninterrupted run (per-step sample
/// streams are derived from `(seed, step, shard)` via [`shard_seed`], so no
/// run-long RNG state needs saving). Stateless evaluators (simulators, cost
/// models) resume exactly; evaluators with their own mutable state are the
/// caller's responsibility to reconstruct — for trainable supernets use
/// `unified_search_with`, which snapshots the shared weights.
///
/// `sink` is consulted after every completed step; when
/// [`CheckpointSink::should_checkpoint`] returns true it receives a
/// borrowed [`SearchSnapshot`].
///
/// # Panics
///
/// Panics if `config.shards == 0`, `config.steps == 0`, if the resume state
/// was captured past `config.steps` or does not match the search space, or
/// if the sink returns an error (a checkpoint that cannot be written is a
/// lost durability guarantee, not a condition to search through).
pub fn parallel_search_with<E, F>(
    space: &SearchSpace,
    reward_fn: &RewardFn,
    mut make_evaluator: F,
    config: &SearchConfig,
    resume: Option<ResumeState>,
    mut sink: Option<&mut dyn CheckpointSink>,
) -> SearchOutcome
where
    E: ArchEvaluator + Send,
    F: FnMut(usize) -> E,
{
    assert!(config.shards > 0, "need at least one shard");
    assert!(config.steps > 0, "need at least one step");
    let (start_step, mut policy, mut baseline, mut history, mut evaluated) = match resume {
        Some(state) => {
            assert!(
                state.steps_done <= config.steps,
                "resume state is from step {} but the search only runs {} steps",
                state.steps_done,
                config.steps
            );
            assert_eq!(
                state.policy.num_decisions(),
                space.num_decisions(),
                "resume state does not match the search space"
            );
            (
                state.steps_done,
                state.policy,
                state.baseline,
                state.history,
                state.evaluated,
            )
        }
        None => (
            0,
            Policy::uniform(space),
            RewardBaseline::new(config.baseline_momentum),
            Vec::with_capacity(config.steps),
            Vec::with_capacity(config.steps * config.shards),
        ),
    };
    let mut evaluators: Vec<E> = (0..config.shards).map(&mut make_evaluator).collect();
    let executor = h2o_exec::Executor::from_env(config.workers, config.shards);
    let steps_total = h2o_obs::counter("h2o_core_search_steps_total");
    let candidates_total = h2o_obs::counter("h2o_core_candidates_evaluated_total");
    // Per-shard counters, resolved once: the registry lookup (and its
    // format!-ed label) has no business inside the per-evaluation hot path.
    let shard_evals: Vec<h2o_obs::Counter> = (0..config.shards)
        .map(|shard| h2o_obs::counter(&format!("h2o_core_shard_evals{{shard=\"{shard}\"}}")))
        .collect();

    for step in start_step..config.steps {
        let step_span = h2o_obs::span("search_step");
        // Stage 1: every shard samples and evaluates its own candidate on
        // the work-stealing pool (Fig. 2's per-core sample + forward pass).
        // Shard `i` always runs job `i` with its own seeded RNG and the
        // executor reduces in submission order, so the stealing schedule
        // cannot leak into the outcome.
        let policy_ref = &policy;
        let jobs: Vec<_> = evaluators
            .iter_mut()
            .zip(&shard_evals)
            .enumerate()
            .map(|(shard, (evaluator, evals_counter))| {
                move || {
                    // Per-shard counters: each worker records under the
                    // shard's label; exporters aggregate the set.
                    let _eval_span = h2o_obs::span("shard_evaluate");
                    evals_counter.inc();
                    let mut rng =
                        StdRng::seed_from_u64(shard_seed(config.seed, step as u64, shard as u64));
                    let sample = policy_ref.sample(&mut rng);
                    let result = evaluator.evaluate(&sample);
                    (sample, result)
                }
            })
            .collect();
        let results: Vec<(ArchSample, EvalResult)> = executor.execute(jobs);

        // Stage 2: cross-shard reward + policy update (REINFORCE).
        let rewards: Vec<f64> = results
            .iter()
            .map(|(_, r)| reward_fn.reward(r.quality, &r.perf_values))
            .collect();
        let mean = rewards.iter().sum::<f64>() / rewards.len() as f64;
        let best = rewards.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let b = baseline.update(mean);
        let batch: Vec<(ArchSample, f64)> = results
            .iter()
            .zip(&rewards)
            .map(|((sample, _), &r)| (sample.clone(), r - b))
            .collect();
        h2o_obs::time("policy_update", || {
            policy.reinforce_update(&batch, config.policy_lr)
        });

        let entropy = policy.mean_entropy();
        steps_total.inc();
        candidates_total.add(results.len() as u64);
        h2o_obs::gauge("h2o_core_mean_reward").set(mean);
        h2o_obs::gauge("h2o_core_best_reward").set(best);
        h2o_obs::gauge("h2o_core_entropy").set(entropy);
        h2o_obs::gauge("h2o_core_baseline").set(b);
        let step_time_ms = step_span.finish() * 1e3;
        history.push(StepRecord {
            step,
            mean_reward: mean,
            best_reward: best,
            entropy,
            step_time_ms,
        });
        for ((sample, result), reward) in results.into_iter().zip(rewards) {
            evaluated.push(EvaluatedCandidate {
                sample,
                result,
                reward,
            });
        }

        let steps_done = step + 1;
        if let Some(sink) = sink.as_deref_mut() {
            if sink.should_checkpoint(steps_done) {
                let snapshot = SearchSnapshot {
                    steps_done,
                    policy: &policy,
                    baseline: &baseline,
                    history: &history,
                    evaluated: &evaluated,
                    supernet_state: None,
                };
                sink.on_checkpoint(&snapshot)
                    .expect("checkpoint sink failed");
            }
        }
    }

    SearchOutcome {
        best: policy.argmax(),
        policy,
        history,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::{PerfObjective, RewardKind};
    use h2o_space::Decision;

    fn space() -> SearchSpace {
        let mut s = SearchSpace::new("t");
        s.push(Decision::new("width", 8));
        s.push(Decision::new("depth", 4));
        s
    }

    /// Quality grows with width; cost grows faster beyond width 5.
    fn toy_evaluator(_shard: usize) -> impl ArchEvaluator + Send {
        |sample: &ArchSample| {
            let width = sample[0] as f64;
            let depth = sample[1] as f64;
            EvalResult {
                quality: 10.0 * (1.0 - (-0.5 * (width + depth)).exp()),
                perf_values: vec![0.5 + 0.25 * width],
            }
        }
    }

    fn reward() -> RewardFn {
        RewardFn::new(
            RewardKind::Relu,
            vec![PerfObjective::new("time", 1.5, -8.0)],
        )
    }

    #[test]
    fn search_finds_pareto_sweet_spot() {
        let cfg = SearchConfig {
            steps: 300,
            shards: 8,
            policy_lr: 0.08,
            ..Default::default()
        };
        let outcome = parallel_search(&space(), &reward(), toy_evaluator, &cfg);
        // Width 4 hits the time target exactly (0.5 + 0.25*4 = 1.5); higher
        // widths get penalised at β = −8 per unit deviation. Depth is free,
        // so it should max out.
        assert!(
            outcome.best[0] >= 3 && outcome.best[0] <= 5,
            "width {:?}",
            outcome.best
        );
        assert_eq!(outcome.best[1], 3, "free quality dimension must max out");
    }

    #[test]
    fn entropy_decreases_over_search() {
        let cfg = SearchConfig {
            steps: 150,
            shards: 4,
            ..Default::default()
        };
        let outcome = parallel_search(&space(), &reward(), toy_evaluator, &cfg);
        let first = outcome.history.first().unwrap().entropy;
        let last = outcome.history.last().unwrap().entropy;
        assert!(last < first, "entropy {first} -> {last}");
    }

    #[test]
    fn all_candidates_recorded() {
        let cfg = SearchConfig {
            steps: 10,
            shards: 3,
            ..Default::default()
        };
        let outcome = parallel_search(&space(), &reward(), toy_evaluator, &cfg);
        assert_eq!(outcome.evaluated.len(), 30);
        assert!(outcome.best_evaluated().is_some());
    }

    #[test]
    fn search_is_deterministic_for_fixed_seed() {
        let cfg = SearchConfig {
            steps: 20,
            shards: 4,
            seed: 42,
            ..Default::default()
        };
        let a = parallel_search(&space(), &reward(), toy_evaluator, &cfg);
        let b = parallel_search(&space(), &reward(), toy_evaluator, &cfg);
        assert_eq!(a.best, b.best);
        assert_eq!(
            a.history.last().unwrap().mean_reward,
            b.history.last().unwrap().mean_reward
        );
    }

    #[test]
    fn different_seeds_explore_differently() {
        let cfg = SearchConfig {
            steps: 5,
            shards: 2,
            seed: 1,
            ..Default::default()
        };
        let a = parallel_search(&space(), &reward(), toy_evaluator, &cfg);
        let cfg2 = SearchConfig { seed: 2, ..cfg };
        let b = parallel_search(&space(), &reward(), toy_evaluator, &cfg2);
        assert_ne!(
            a.evaluated.iter().map(|e| &e.sample).collect::<Vec<_>>(),
            b.evaluated.iter().map(|e| &e.sample).collect::<Vec<_>>()
        );
    }

    #[test]
    fn worker_count_does_not_change_the_outcome() {
        let base = SearchConfig {
            steps: 25,
            shards: 6,
            seed: 9,
            ..Default::default()
        };
        let serial = SearchConfig { workers: 1, ..base };
        let wide = SearchConfig { workers: 4, ..base };
        let a = parallel_search(&space(), &reward(), toy_evaluator, &serial);
        let b = parallel_search(&space(), &reward(), toy_evaluator, &wide);
        assert_eq!(a.best, b.best);
        // Everything except wall-clock timing must be bit-identical.
        assert_eq!(a.evaluated, b.evaluated);
        for (ha, hb) in a.history.iter().zip(&b.history) {
            assert_eq!(ha.mean_reward, hb.mean_reward);
            assert_eq!(ha.best_reward, hb.best_reward);
            assert_eq!(ha.entropy, hb.entropy);
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let cfg = SearchConfig {
            shards: 0,
            ..Default::default()
        };
        parallel_search(&space(), &reward(), toy_evaluator, &cfg);
    }

    #[test]
    fn more_shards_same_steps_converges_at_least_as_well() {
        let narrow = SearchConfig {
            steps: 120,
            shards: 2,
            seed: 7,
            ..Default::default()
        };
        let wide = SearchConfig {
            steps: 120,
            shards: 16,
            seed: 7,
            ..Default::default()
        };
        let a = parallel_search(&space(), &reward(), toy_evaluator, &narrow);
        let b = parallel_search(&space(), &reward(), toy_evaluator, &wide);
        let final_of = |o: &SearchOutcome| o.history.last().unwrap().mean_reward;
        assert!(
            final_of(&b) >= final_of(&a) - 0.5,
            "{} vs {}",
            final_of(&a),
            final_of(&b)
        );
    }
}
