//! The massively parallel single-step search (§4.2, Fig. 2 right) as a
//! [`CandidateStage`] over the unified [`SearchDriver`] engine.
//!
//! Each step, every virtual accelerator shard (1) samples its own
//! architecture `αᵢ` from the shared policy `π` and evaluates its quality
//! and performance, (2) all shards' rewards drive one **cross-shard
//! REINFORCE update** of `π` (the driver's invariant loop), and (3) shared
//! weights `W` are updated on the same batches (for evaluators that train —
//! see `crate::oneshot`). Shards run on a work-stealing
//! [`h2o_exec::Executor`] pool standing in for the paper's hundreds of TPU
//! cores. Each shard's job owns its RNG (seeded from `seed`, `step`,
//! `shard`) and results reduce in submission order, so the outcome is
//! bit-identical for any worker count.

use crate::driver::{CandidateStage, ControllerConfig, SearchDriver};
use crate::policy::Policy;
use crate::resume::{CheckpointSink, ResumeState};
use crate::reward::RewardFn;
use h2o_space::{ArchSample, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// SplitMix64 finalizer: a full-avalanche bijection on `u64` (Steele et
/// al.), the same mixer `h2o_hwsim`'s cache uses for shard routing.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derives the RNG seed that owns the `(seed, step, shard)` sample stream.
///
/// Each coordinate passes through a SplitMix64 finalizer before the next is
/// folded in, so distinct tuples get statistically independent streams.
/// The previous XOR mix (`seed ^ (step << 20) ^ shard`) made whole streams
/// collide across `(seed, shard)` pairs — e.g. `seed=3, shard=0` and
/// `seed=2, shard=1` drew identical architectures every step.
pub fn shard_seed(seed: u64, step: u64, shard: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(seed).wrapping_add(step)).wrapping_add(shard))
}

/// Quality and measured performance of one evaluated candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalResult {
    /// Quality `Q(α)` (accuracy / AUC / −logloss, higher better).
    pub quality: f64,
    /// One measured value per reward objective, `Tᵢ(α)`.
    pub perf_values: Vec<f64>,
}

/// Evaluates candidates on one shard. Implementations may be stateful
/// (e.g. hold a simulator, a performance model, or a trainable supernet
/// shard).
pub trait ArchEvaluator {
    /// Produces the quality and performance signals for a sampled
    /// architecture.
    fn evaluate(&mut self, sample: &ArchSample) -> EvalResult;
}

impl<F> ArchEvaluator for F
where
    F: FnMut(&ArchSample) -> EvalResult,
{
    fn evaluate(&mut self, sample: &ArchSample) -> EvalResult {
        self(sample)
    }
}

/// Configuration of the parallel search loop.
///
/// The parallel loop needs exactly the shared controller knobs, so this is
/// [`ControllerConfig`] itself (struct literals, serde encodings, and the
/// `h2o-ckpt` fingerprint are all unchanged by the aliasing).
pub type SearchConfig = ControllerConfig;

/// Per-step telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Step index.
    pub step: usize,
    /// Mean shard reward.
    pub mean_reward: f64,
    /// Best shard reward.
    pub best_reward: f64,
    /// Mean per-decision policy entropy (nats).
    pub entropy: f64,
    /// Wall-clock duration of the step, milliseconds.
    pub step_time_ms: f64,
}

/// One evaluated candidate with its reward.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluatedCandidate {
    /// The sampled architecture.
    pub sample: ArchSample,
    /// Its evaluation.
    pub result: EvalResult,
    /// The combined reward.
    pub reward: f64,
}

/// The result of a search run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The final architecture: per-decision argmax of the policy (§4.2).
    pub best: ArchSample,
    /// The trained policy.
    pub policy: Policy,
    /// Step telemetry.
    pub history: Vec<StepRecord>,
    /// Every candidate evaluated during the search.
    pub evaluated: Vec<EvaluatedCandidate>,
}

impl SearchOutcome {
    /// The evaluated candidate with the highest reward.
    ///
    /// Uses [`f64::total_cmp`], so a NaN reward (impossible through the
    /// driver, which clamps non-finite rewards, but reachable in
    /// hand-constructed outcomes) can never panic the comparison — NaN
    /// sorts above every finite reward under the IEEE total order and
    /// would surface as the maximum rather than abort the caller.
    pub fn best_evaluated(&self) -> Option<&EvaluatedCandidate> {
        self.evaluated
            .iter()
            .max_by(|a, b| a.reward.total_cmp(&b.reward))
    }
}

/// The [`CandidateStage`] of the massively parallel search: one stateless
/// (from the driver's point of view) evaluator per shard, fanned out on a
/// work-stealing executor pool.
///
/// Evaluator construction happens once per shard; evaluators persist
/// across steps (so stateful evaluators amortise setup and can train
/// shard-local state). Shard `i` always runs job `i` with its own RNG
/// seeded from [`shard_seed`]`(seed, step, i)` and the executor reduces in
/// submission order, so the stealing schedule cannot leak into the
/// outcome.
pub struct ParallelStage<E> {
    evaluators: Vec<E>,
    shard_evals: Vec<h2o_obs::Counter>,
    executor: h2o_exec::Executor,
    seed: u64,
}

impl<E> fmt::Debug for ParallelStage<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParallelStage")
            .field("shards", &self.evaluators.len())
            .field("workers", &self.executor.workers())
            .field("seed", &self.seed)
            .finish()
    }
}

impl<E> ParallelStage<E>
where
    E: ArchEvaluator + Send,
{
    /// Builds the stage: one evaluator per shard from
    /// `make_evaluator(shard_index)`, plus the executor pool sized from
    /// `config.workers`.
    pub fn new<F>(mut make_evaluator: F, config: &SearchConfig) -> Self
    where
        F: FnMut(usize) -> E,
    {
        let evaluators: Vec<E> = (0..config.shards).map(&mut make_evaluator).collect();
        let executor = h2o_exec::Executor::from_env(config.workers, config.shards);
        // Per-shard counters, resolved once: the registry lookup (and its
        // format!-ed label) has no business inside the per-evaluation hot
        // path.
        let shard_evals: Vec<h2o_obs::Counter> = (0..config.shards)
            .map(|shard| h2o_obs::counter(&format!("h2o_core_shard_evals{{shard=\"{shard}\"}}")))
            .collect();
        Self {
            evaluators,
            shard_evals,
            executor,
            seed: config.seed,
        }
    }
}

impl<E> CandidateStage for ParallelStage<E>
where
    E: ArchEvaluator + Send,
{
    fn steps_counter_name(&self) -> &'static str {
        "h2o_core_search_steps_total"
    }

    fn collect(
        &mut self,
        step: usize,
        policy: &Policy,
    ) -> Result<Vec<(ArchSample, EvalResult)>, String> {
        // Every shard samples and evaluates its own candidate on the
        // work-stealing pool (Fig. 2's per-core sample + forward pass).
        let seed = self.seed;
        let jobs: Vec<_> = self
            .evaluators
            .iter_mut()
            .zip(&self.shard_evals)
            .enumerate()
            .map(|(shard, (evaluator, evals_counter))| {
                move || {
                    // Per-shard counters: each worker records under the
                    // shard's label; exporters aggregate the set.
                    let _eval_span = h2o_obs::span("shard_evaluate");
                    evals_counter.inc();
                    let mut rng =
                        StdRng::seed_from_u64(shard_seed(seed, step as u64, shard as u64));
                    let sample = policy.sample(&mut rng);
                    let result = evaluator.evaluate(&sample);
                    (sample, result)
                }
            })
            .collect();
        Ok(self.executor.execute(jobs))
    }
}

/// Runs the massively parallel single-step search with per-shard
/// evaluators built by `make_evaluator(shard_index)`.
///
/// Evaluator construction happens once per shard; evaluators persist
/// across steps (so stateful evaluators amortise setup and can train
/// shard-local state).
///
/// # Panics
///
/// Panics if `config.shards == 0` or `config.steps == 0`.
pub fn parallel_search<E, F>(
    space: &SearchSpace,
    reward_fn: &RewardFn,
    make_evaluator: F,
    config: &SearchConfig,
) -> SearchOutcome
where
    E: ArchEvaluator + Send,
    F: FnMut(usize) -> E,
{
    parallel_search_with(space, reward_fn, make_evaluator, config, None, None)
}

/// [`parallel_search`] with checkpoint/resume hooks.
///
/// `resume` restores controller state captured by a [`CheckpointSink`] at a
/// completed step `k`; the loop then runs steps `k..config.steps` and the
/// outcome is byte-identical to an uninterrupted run (per-step sample
/// streams are derived from `(seed, step, shard)` via [`shard_seed`], so no
/// run-long RNG state needs saving). Stateless evaluators (simulators, cost
/// models) resume exactly; evaluators with their own mutable state are the
/// caller's responsibility to reconstruct — for trainable supernets use
/// `unified_search_with`, which snapshots the shared weights.
///
/// `sink` is consulted after every completed step; when
/// [`CheckpointSink::should_checkpoint`] returns true it receives a
/// borrowed [`crate::SearchSnapshot`].
///
/// # Panics
///
/// Panics if `config.shards == 0`, `config.steps == 0`, if the resume state
/// was captured past `config.steps` or does not match the search space, or
/// if the sink returns an error (a checkpoint that cannot be written is a
/// lost durability guarantee, not a condition to search through).
pub fn parallel_search_with<E, F>(
    space: &SearchSpace,
    reward_fn: &RewardFn,
    make_evaluator: F,
    config: &SearchConfig,
    resume: Option<ResumeState>,
    sink: Option<&mut dyn CheckpointSink>,
) -> SearchOutcome
where
    E: ArchEvaluator + Send,
    F: FnMut(usize) -> E,
{
    let mut stage = ParallelStage::new(make_evaluator, config);
    match SearchDriver::new(space, reward_fn, *config).run(&mut stage, resume, sink) {
        Ok(outcome) => outcome,
        // h2o-lint: allow(panic-hygiene) -- documented wrapper contract: the convenience
        // entry points abort on a failed checkpoint write; SearchDriver::run returns the
        // typed DriverError for callers that need to handle it
        Err(err) => panic!("{err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::{PerfObjective, RewardKind};
    use h2o_space::Decision;

    fn space() -> SearchSpace {
        let mut s = SearchSpace::new("t");
        s.push(Decision::new("width", 8));
        s.push(Decision::new("depth", 4));
        s
    }

    /// Quality grows with width; cost grows faster beyond width 5.
    fn toy_evaluator(_shard: usize) -> impl ArchEvaluator + Send {
        |sample: &ArchSample| {
            let width = sample[0] as f64;
            let depth = sample[1] as f64;
            EvalResult {
                quality: 10.0 * (1.0 - (-0.5 * (width + depth)).exp()),
                perf_values: vec![0.5 + 0.25 * width],
            }
        }
    }

    fn reward() -> RewardFn {
        RewardFn::new(
            RewardKind::Relu,
            vec![PerfObjective::new("time", 1.5, -8.0)],
        )
    }

    #[test]
    fn search_finds_pareto_sweet_spot() {
        let cfg = SearchConfig {
            steps: 300,
            shards: 8,
            policy_lr: 0.08,
            ..Default::default()
        };
        let outcome = parallel_search(&space(), &reward(), toy_evaluator, &cfg);
        // Width 4 hits the time target exactly (0.5 + 0.25*4 = 1.5); higher
        // widths get penalised at β = −8 per unit deviation. Depth is free,
        // so it should max out.
        assert!(
            outcome.best[0] >= 3 && outcome.best[0] <= 5,
            "width {:?}",
            outcome.best
        );
        assert_eq!(outcome.best[1], 3, "free quality dimension must max out");
    }

    #[test]
    fn entropy_decreases_over_search() {
        let cfg = SearchConfig {
            steps: 150,
            shards: 4,
            ..Default::default()
        };
        let outcome = parallel_search(&space(), &reward(), toy_evaluator, &cfg);
        let first = outcome.history.first().unwrap().entropy;
        let last = outcome.history.last().unwrap().entropy;
        assert!(last < first, "entropy {first} -> {last}");
    }

    #[test]
    fn all_candidates_recorded() {
        let cfg = SearchConfig {
            steps: 10,
            shards: 3,
            ..Default::default()
        };
        let outcome = parallel_search(&space(), &reward(), toy_evaluator, &cfg);
        assert_eq!(outcome.evaluated.len(), 30);
        assert!(outcome.best_evaluated().is_some());
    }

    #[test]
    fn search_is_deterministic_for_fixed_seed() {
        let cfg = SearchConfig {
            steps: 20,
            shards: 4,
            seed: 42,
            ..Default::default()
        };
        let a = parallel_search(&space(), &reward(), toy_evaluator, &cfg);
        let b = parallel_search(&space(), &reward(), toy_evaluator, &cfg);
        assert_eq!(a.best, b.best);
        assert_eq!(
            a.history.last().unwrap().mean_reward,
            b.history.last().unwrap().mean_reward
        );
    }

    #[test]
    fn different_seeds_explore_differently() {
        let cfg = SearchConfig {
            steps: 5,
            shards: 2,
            seed: 1,
            ..Default::default()
        };
        let a = parallel_search(&space(), &reward(), toy_evaluator, &cfg);
        let cfg2 = SearchConfig { seed: 2, ..cfg };
        let b = parallel_search(&space(), &reward(), toy_evaluator, &cfg2);
        assert_ne!(
            a.evaluated.iter().map(|e| &e.sample).collect::<Vec<_>>(),
            b.evaluated.iter().map(|e| &e.sample).collect::<Vec<_>>()
        );
    }

    #[test]
    fn worker_count_does_not_change_the_outcome() {
        let base = SearchConfig {
            steps: 25,
            shards: 6,
            seed: 9,
            ..Default::default()
        };
        let serial = SearchConfig { workers: 1, ..base };
        let wide = SearchConfig { workers: 4, ..base };
        let a = parallel_search(&space(), &reward(), toy_evaluator, &serial);
        let b = parallel_search(&space(), &reward(), toy_evaluator, &wide);
        assert_eq!(a.best, b.best);
        // Everything except wall-clock timing must be bit-identical.
        assert_eq!(a.evaluated, b.evaluated);
        for (ha, hb) in a.history.iter().zip(&b.history) {
            assert_eq!(ha.mean_reward, hb.mean_reward);
            assert_eq!(ha.best_reward, hb.best_reward);
            assert_eq!(ha.entropy, hb.entropy);
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let cfg = SearchConfig {
            shards: 0,
            ..Default::default()
        };
        parallel_search(&space(), &reward(), toy_evaluator, &cfg);
    }

    #[test]
    fn more_shards_same_steps_converges_at_least_as_well() {
        let narrow = SearchConfig {
            steps: 120,
            shards: 2,
            seed: 7,
            ..Default::default()
        };
        let wide = SearchConfig {
            steps: 120,
            shards: 16,
            seed: 7,
            ..Default::default()
        };
        let a = parallel_search(&space(), &reward(), toy_evaluator, &narrow);
        let b = parallel_search(&space(), &reward(), toy_evaluator, &wide);
        let final_of = |o: &SearchOutcome| o.history.last().unwrap().mean_reward;
        assert!(
            final_of(&b) >= final_of(&a) - 0.5,
            "{} vs {}",
            final_of(&a),
            final_of(&b)
        );
    }

    #[test]
    fn nan_evaluator_rewards_are_clamped_not_propagated() {
        // Regression: a NaN from a custom evaluator used to flow straight
        // into the baseline EMA and poison every later advantage, and
        // `best_evaluated` would then panic in `partial_cmp`.
        let nan_evaluator = |_shard: usize| {
            |sample: &ArchSample| EvalResult {
                quality: if sample[0].is_multiple_of(2) {
                    f64::NAN
                } else {
                    sample[0] as f64
                },
                perf_values: vec![],
            }
        };
        let cfg = SearchConfig {
            steps: 15,
            shards: 4,
            seed: 3,
            ..Default::default()
        };
        let reward = RewardFn::new(RewardKind::Relu, vec![]);
        let outcome = parallel_search(&space(), &reward, nan_evaluator, &cfg);
        assert!(outcome.history.iter().all(|h| h.mean_reward.is_finite()));
        assert!(outcome.evaluated.iter().all(|c| c.reward.is_finite()));
        let best = outcome.best_evaluated().expect("candidates recorded");
        assert!(best.reward.is_finite());
    }

    #[test]
    fn best_evaluated_tolerates_nan_rewards_in_hand_built_outcomes() {
        let candidate = |reward: f64| EvaluatedCandidate {
            sample: vec![0],
            result: EvalResult {
                quality: 0.0,
                perf_values: vec![],
            },
            reward,
        };
        let outcome = SearchOutcome {
            best: vec![0],
            policy: Policy::from_logits(vec![vec![0.0]]),
            history: vec![],
            evaluated: vec![candidate(1.0), candidate(f64::NAN), candidate(2.0)],
        };
        // total_cmp sorts NaN above every finite value; the call must not
        // panic (it used to, via partial_cmp().expect()).
        let best = outcome.best_evaluated().expect("non-empty");
        assert!(best.reward.is_nan());
    }
}
