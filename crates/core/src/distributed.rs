//! The process-per-node candidate stage: [`ParallelStage`]'s fan-out,
//! stretched across a [`h2o_exec::DistributedPool`] of worker processes.
//!
//! The determinism contract survives the process boundary because the
//! *controller side* keeps everything that orders the search:
//!
//! * **Per-shard seed ownership** — the stage samples the policy locally,
//!   one RNG per `(seed, step, shard)` via [`shard_seed`], exactly as
//!   [`ParallelStage`](crate::ParallelStage) does. Workers never touch an
//!   RNG; they receive fully-sampled architectures.
//! * **Submission-order reduction** — job `i` carries index `i` on the
//!   wire and [`DistributedPool::execute`] merges replies by index, so the
//!   reward reduction sees shard order no matter which node answered
//!   first.
//! * **Stateless evaluation** — a worker maps `(step, shard, sample)` to
//!   an [`EvalResult`] as a pure function (caches on the worker are
//!   value-invisible memoisation), so node count, node placement, and
//!   reply timing cannot reach the outcome.
//!
//! `tests/distributed_determinism.rs` holds the proof: byte-identical
//! history/candidates/best CSVs at 1, 2, and 4 node processes, cache on
//! and off, including a resume from a mid-run checkpoint — and including
//! chaos runs where a node is killed mid-search. Node death is absorbed
//! below this layer: [`DistributedPool::execute`] redispatches a dead
//! node's unfinished jobs to survivors (optionally respawning the
//! worker), and because evaluation is a pure function of the job payload
//! the stage cannot observe where a job ran. Only pool exhaustion
//! (fewer live nodes than its configured floor) or a non-I/O protocol
//! error surfaces as the stage error.
//!
//! The wire payloads (inside [`h2o_exec`] Job/Result frames) use the same
//! `Enc`/`Dec` codec as the checkpoint file format:
//!
//! ```text
//! job    := u64 step | u64 shard | u64 n | n × u64 choice
//! result := f64 quality | u64 n | n × f64 perf_value
//! ```

use crate::driver::CandidateStage;
use crate::policy::Policy;
use crate::search::{shard_seed, EvalResult, SearchConfig};
use h2o_exec::wire::{Dec, Enc, WireError};
use h2o_exec::DistributedPool;
use h2o_space::ArchSample;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Encodes one shard's evaluation job payload (`step`, `shard`, and the
/// locally-sampled architecture) for a Job frame.
pub fn encode_eval_job(step: u64, shard: u64, sample: &ArchSample) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(step);
    e.u64(shard);
    e.u64(sample.len() as u64);
    for &choice in sample {
        e.u64(choice as u64);
    }
    e.into_vec()
}

/// Decodes an evaluation job payload back into `(step, shard, sample)`.
pub fn decode_eval_job(bytes: &[u8]) -> Result<(u64, u64, ArchSample), WireError> {
    let mut d = Dec::new(bytes);
    let step = d.u64()?;
    let shard = d.u64()?;
    let n = d.len("eval job choices")?;
    let mut sample = Vec::with_capacity(n);
    for _ in 0..n {
        sample.push(d.u64()? as usize);
    }
    d.finish()?;
    Ok((step, shard, sample))
}

/// Encodes one shard's [`EvalResult`] for a Result frame.
pub fn encode_eval_result(result: &EvalResult) -> Vec<u8> {
    let mut e = Enc::new();
    e.f64(result.quality);
    e.u64(result.perf_values.len() as u64);
    for &value in &result.perf_values {
        e.f64(value);
    }
    e.into_vec()
}

/// Decodes an evaluation result payload back into an [`EvalResult`].
pub fn decode_eval_result(bytes: &[u8]) -> Result<EvalResult, WireError> {
    let mut d = Dec::new(bytes);
    let quality = d.f64()?;
    let n = d.len("eval result perf values")?;
    let mut perf_values = Vec::with_capacity(n);
    for _ in 0..n {
        perf_values.push(d.f64()?);
    }
    d.finish()?;
    Ok(EvalResult {
        quality,
        perf_values,
    })
}

/// The [`CandidateStage`] of the multi-process search: policy sampling
/// stays local (per-shard seed ownership), evaluation fans out over worker
/// processes through a [`DistributedPool`], and replies merge in
/// submission order.
///
/// Node churn is handled inside the pool (redispatch + bounded respawn);
/// what reaches the stage error — and surfaces from the driver as
/// [`DriverError::Eval`](crate::DriverError::Eval) — is pool exhaustion
/// (live nodes below `PoolOptions::min_live_nodes`) or a fatal protocol
/// error (checksum mismatch, scenario skew, worker-reported failure).
/// The last on-disk checkpoint remains valid to resume from.
#[derive(Debug)]
pub struct DistributedStage {
    pool: DistributedPool,
    shards: usize,
    seed: u64,
}

impl DistributedStage {
    /// Builds the stage over an already-connected pool, taking `shards`
    /// and `seed` from the controller config.
    pub fn new(pool: DistributedPool, config: &SearchConfig) -> Self {
        Self {
            pool,
            shards: config.shards,
            seed: config.seed,
        }
    }

    /// Number of connected worker nodes.
    pub fn nodes(&self) -> usize {
        self.pool.nodes()
    }

    /// Sends every node a Shutdown frame, consuming the stage.
    pub fn shutdown(self) {
        self.pool.shutdown();
    }
}

impl CandidateStage for DistributedStage {
    fn step_span_name(&self) -> &'static str {
        "distributed_step"
    }

    fn steps_counter_name(&self) -> &'static str {
        "h2o_core_distributed_steps_total"
    }

    fn collect(
        &mut self,
        step: usize,
        policy: &Policy,
    ) -> Result<Vec<(ArchSample, EvalResult)>, String> {
        // Sampling happens here, on the controller, from the same
        // (seed, step, shard) streams ParallelStage uses — so the sample
        // sequence is identical to a single-process run by construction.
        let mut samples = Vec::with_capacity(self.shards);
        let mut jobs = Vec::with_capacity(self.shards);
        for shard in 0..self.shards {
            let mut rng = StdRng::seed_from_u64(shard_seed(self.seed, step as u64, shard as u64));
            let sample = policy.sample(&mut rng);
            jobs.push(encode_eval_job(step as u64, shard as u64, &sample));
            samples.push(sample);
        }
        let replies = self.pool.execute(jobs).map_err(|e| e.to_string())?;
        let mut results = Vec::with_capacity(self.shards);
        for (sample, reply) in samples.into_iter().zip(replies) {
            let result = decode_eval_result(&reply).map_err(|e| e.to_string())?;
            results.push((sample, result));
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::{PerfObjective, RewardFn, RewardKind};
    use crate::search::parallel_search;
    use crate::SearchDriver;
    use h2o_exec::{serve, NodeAddr, NodeListener, PoolOptions};
    use h2o_space::{Decision, SearchSpace};
    use std::path::PathBuf;
    use std::time::Duration;

    fn space() -> SearchSpace {
        let mut s = SearchSpace::new("dist");
        s.push(Decision::new("a", 4));
        s.push(Decision::new("b", 3));
        s
    }

    /// The pure per-shard evaluation both sides of the comparison use.
    fn evaluate(sample: &ArchSample) -> EvalResult {
        EvalResult {
            quality: sample[0] as f64 + 0.1 * sample[1] as f64,
            perf_values: vec![(sample[0] * sample[1]) as f64],
        }
    }

    fn temp_sock(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("h2o-core-dist-tests");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join(format!("{tag}-{}.sock", std::process::id()))
    }

    fn spawn_worker(addr: NodeAddr, fingerprint: u64) -> std::thread::JoinHandle<()> {
        let listener = NodeListener::bind(&addr).expect("bind");
        std::thread::spawn(move || {
            let mut transport = listener.accept(Duration::from_secs(5)).expect("accept");
            serve(&mut transport, fingerprint, |payload| {
                let (_step, _shard, sample) =
                    decode_eval_job(payload).map_err(|e| e.to_string())?;
                Ok(encode_eval_result(&evaluate(&sample)))
            })
            .expect("serve");
        })
    }

    #[test]
    fn job_and_result_payloads_round_trip() {
        let sample: ArchSample = vec![3, 0, 7];
        let job = encode_eval_job(12, 5, &sample);
        assert_eq!(decode_eval_job(&job).unwrap(), (12, 5, sample.clone()));
        let result = EvalResult {
            quality: -0.25,
            perf_values: vec![1.5, 0.0, f64::MAX],
        };
        let encoded = encode_eval_result(&result);
        assert_eq!(decode_eval_result(&encoded).unwrap(), result);
    }

    #[test]
    fn truncated_payloads_decode_to_typed_errors() {
        let job = encode_eval_job(1, 2, &vec![3usize]);
        for cut in 0..job.len() {
            assert!(
                decode_eval_job(&job[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
        // Trailing garbage is rejected too.
        let mut padded = job.clone();
        padded.push(0);
        assert!(decode_eval_job(&padded).is_err());
    }

    #[test]
    fn distributed_outcome_matches_in_process_outcome() {
        let space = space();
        let reward = RewardFn::new(
            RewardKind::Relu,
            vec![PerfObjective::new("cost", 6.0, -2.0)],
        );
        let config = SearchConfig {
            steps: 25,
            shards: 4,
            seed: 9,
            ..Default::default()
        };
        let golden = parallel_search(&space, &reward, |_shard| evaluate, &config);

        for nodes in [1usize, 3] {
            let fingerprint = 0xD15C0;
            let addrs: Vec<NodeAddr> = (0..nodes)
                .map(|i| NodeAddr::Unix(temp_sock(&format!("match-{nodes}-{i}"))))
                .collect();
            let handles: Vec<_> = addrs
                .iter()
                .map(|a| spawn_worker(a.clone(), fingerprint))
                .collect();
            let pool = DistributedPool::connect(&addrs, fingerprint, PoolOptions::default())
                .expect("connect");
            let mut stage = DistributedStage::new(pool, &config);
            let outcome = SearchDriver::new(&space, &reward, config)
                .run(&mut stage, None, None)
                .expect("distributed run");
            stage.shutdown();
            for handle in handles {
                handle.join().expect("worker thread");
            }
            assert_eq!(outcome.best, golden.best, "{nodes} nodes: best diverged");
            assert_eq!(
                outcome.evaluated, golden.evaluated,
                "{nodes} nodes: candidates diverged"
            );
            for (a, b) in outcome.history.iter().zip(&golden.history) {
                assert_eq!(a.step, b.step);
                assert_eq!(a.mean_reward, b.mean_reward, "step {}", a.step);
                assert_eq!(a.best_reward, b.best_reward, "step {}", a.step);
                assert_eq!(a.entropy, b.entropy, "step {}", a.step);
            }
        }
    }

    #[test]
    fn dead_node_surfaces_as_driver_eval_error() {
        let space = space();
        let reward = RewardFn::new(
            RewardKind::Relu,
            vec![PerfObjective::new("cost", 6.0, -2.0)],
        );
        let config = SearchConfig {
            steps: 10,
            shards: 2,
            seed: 3,
            ..Default::default()
        };
        let fingerprint = 0xDEAD;
        let addr = NodeAddr::Unix(temp_sock("dying"));
        let listener = NodeListener::bind(&addr).expect("bind");
        // A worker that answers a few jobs, then hangs up mid-run.
        let handle = std::thread::spawn(move || {
            let mut transport = listener.accept(Duration::from_secs(5)).expect("accept");
            let mut served = 0;
            let _ = serve(&mut transport, fingerprint, move |payload| {
                served += 1;
                if served > 5 {
                    return Err("simulated node death".to_string());
                }
                let (_, _, sample) = decode_eval_job(payload).map_err(|e| e.to_string())?;
                Ok(encode_eval_result(&evaluate(&sample)))
            });
        });
        let pool = DistributedPool::connect(
            std::slice::from_ref(&addr),
            fingerprint,
            PoolOptions::default(),
        )
        .expect("connect");
        let mut stage = DistributedStage::new(pool, &config);
        let err = SearchDriver::new(&space, &reward, config)
            .run(&mut stage, None, None)
            .expect_err("the worker dies mid-run");
        match err {
            crate::DriverError::Eval { message, .. } => {
                assert!(message.contains("simulated node death"), "{message}");
            }
            other => panic!("expected Eval error, got {other:?}"),
        }
        drop(stage);
        handle.join().expect("worker thread");
    }
}
