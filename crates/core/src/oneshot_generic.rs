//! Domain-generic one-shot search: the unified single-step algorithm over
//! *any* weight-sharing super-network.
//!
//! §4.2's algorithm does not care what the super-network computes — it
//! needs (a) a categorical space, (b) candidate masking, (c) a quality
//! signal from a fresh batch and (d) a shared-weight training step.
//! [`OneShotSupernet`] captures exactly that contract, and
//! [`unified_search_over`] runs Fig. 2's right-hand side over it. The DLRM
//! super-network (the paper's novel case) and the vision classifier
//! super-network both implement it, demonstrating that the machinery is
//! domain-independent.

use crate::policy::{Policy, RewardBaseline};
use crate::resume::{CheckpointSink, ResumeState, SearchSnapshot};
use crate::reward::RewardFn;
use crate::search::{shard_seed, EvalResult, EvaluatedCandidate, SearchOutcome, StepRecord};
use crate::OneShotConfig;
use h2o_data::{InMemoryPipeline, TrafficSource};
use h2o_space::{ArchSample, DlrmSupernet, SearchSpace, VisionSupernet};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The contract a weight-sharing super-network must satisfy to be searched
/// by the unified single-step algorithm.
pub trait OneShotSupernet {
    /// The mini-batch type the super-network consumes.
    type Batch;

    /// The categorical search space this super-network covers.
    fn search_space(&self) -> &SearchSpace;

    /// Masks the network down to one candidate.
    fn apply_sample(&mut self, sample: &ArchSample);

    /// Quality signal `Q(α)` of the *active* candidate on a batch
    /// (higher is better; e.g. −logloss or −cross-entropy).
    fn quality(&mut self, batch: &Self::Batch) -> f64;

    /// One shared-weight training step of the active candidate.
    fn train_step_on(&mut self, batch: &Self::Batch);

    /// Serialises the shared trainable state (weights + optimizer moments)
    /// as an opaque, bit-exact blob for checkpointing.
    fn save_state(&self) -> Vec<u8>;

    /// Restores a blob produced by [`OneShotSupernet::save_state`] on a
    /// super-network of the same shape.
    ///
    /// # Errors
    ///
    /// Fails if the blob does not match this super-network's shape.
    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String>;
}

impl OneShotSupernet for DlrmSupernet {
    type Batch = h2o_space::DlrmBatch;

    fn search_space(&self) -> &SearchSpace {
        self.space().space()
    }

    fn apply_sample(&mut self, sample: &ArchSample) {
        DlrmSupernet::apply_sample(self, sample);
    }

    fn quality(&mut self, batch: &Self::Batch) -> f64 {
        let (logloss, _) = self.evaluate(batch);
        -(logloss as f64)
    }

    fn train_step_on(&mut self, batch: &Self::Batch) {
        self.train_step(batch);
    }

    fn save_state(&self) -> Vec<u8> {
        DlrmSupernet::save_state(self)
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        DlrmSupernet::load_state(self, bytes).map_err(|e| e.to_string())
    }
}

impl OneShotSupernet for VisionSupernet {
    type Batch = h2o_data::VisionBatch;

    fn search_space(&self) -> &SearchSpace {
        self.space()
    }

    fn apply_sample(&mut self, sample: &ArchSample) {
        VisionSupernet::apply_sample(self, sample);
    }

    fn quality(&mut self, batch: &Self::Batch) -> f64 {
        let (ce, _) = self.evaluate(&batch.features, &batch.labels);
        -(ce as f64)
    }

    fn train_step_on(&mut self, batch: &Self::Batch) {
        self.train_step(&batch.features, &batch.labels);
    }

    fn save_state(&self) -> Vec<u8> {
        VisionSupernet::save_state(self)
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        VisionSupernet::load_state(self, bytes).map_err(|e| e.to_string())
    }
}

/// The unified single-step search (Fig. 2 right) over any
/// [`OneShotSupernet`]: per shard, a fresh batch feeds policy learning
/// first and weight training second, with the pipeline enforcing the
/// ordering.
pub fn unified_search_over<S, Src>(
    supernet: &mut S,
    pipeline: &InMemoryPipeline<Src>,
    reward_fn: &RewardFn,
    perf_of: impl Fn(&ArchSample) -> Vec<f64> + Sync,
    config: &OneShotConfig,
) -> SearchOutcome
where
    S: OneShotSupernet,
    Src: TrafficSource<Batch = S::Batch>,
{
    unified_search_over_with(supernet, pipeline, reward_fn, perf_of, config, None, None)
}

/// [`unified_search_over`] with checkpoint/resume hooks.
///
/// `resume` restores a snapshot captured at a completed step `k` by a
/// [`CheckpointSink`]: controller state is handed back to the loop, the
/// supernet's shared weights are restored via
/// [`OneShotSupernet::load_state`], and the pipeline is fast-forwarded past
/// the `k × shards` batches the original run consumed — so the caller must
/// pass a **freshly constructed** supernet and pipeline built with the same
/// seeds/configs as the original run. Policy sampling draws from a
/// per-step RNG seeded by [`shard_seed`]`(seed, step, u64::MAX)` (the
/// `u64::MAX` tag keeps the stream disjoint from per-shard eval streams),
/// so the resumed run is byte-identical to an uninterrupted one.
///
/// # Panics
///
/// Panics if the resume state was captured past `config.steps`, lacks
/// supernet state, does not match the supernet's shape, or if the sink
/// returns an error.
pub fn unified_search_over_with<S, Src>(
    supernet: &mut S,
    pipeline: &InMemoryPipeline<Src>,
    reward_fn: &RewardFn,
    perf_of: impl Fn(&ArchSample) -> Vec<f64> + Sync,
    config: &OneShotConfig,
    resume: Option<ResumeState>,
    mut sink: Option<&mut dyn CheckpointSink>,
) -> SearchOutcome
where
    S: OneShotSupernet,
    Src: TrafficSource<Batch = S::Batch>,
{
    let space = supernet.search_space().clone();
    let (start_step, mut policy, mut baseline, mut history, mut evaluated) = match resume {
        Some(state) => {
            assert!(
                state.steps_done <= config.steps,
                "resume state is from step {} but the search only runs {} steps",
                state.steps_done,
                config.steps
            );
            let weights = state
                .supernet_state
                .as_deref()
                .expect("one-shot resume requires snapshotted supernet state");
            supernet
                .load_state(weights)
                .expect("supernet state does not match this super-network");
            pipeline.fast_forward(state.steps_done * config.shards, config.batch_size);
            (
                state.steps_done,
                state.policy,
                state.baseline,
                state.history,
                state.evaluated,
            )
        }
        None => (
            0,
            Policy::uniform(&space),
            RewardBaseline::new(config.baseline_momentum),
            Vec::with_capacity(config.steps),
            Vec::with_capacity(config.steps * config.shards),
        ),
    };
    let executor = h2o_exec::Executor::from_env(config.workers, config.shards);

    let steps_total = h2o_obs::counter("h2o_core_oneshot_steps_total");
    let candidates_total = h2o_obs::counter("h2o_core_candidates_evaluated_total");

    for step in start_step..config.steps {
        let step_span = h2o_obs::span("search_step");
        // Per-step policy-sampling RNG: derived from (seed, step) so a
        // resumed run rejoins the exact sample stream without any run-long
        // RNG state to save. The u64::MAX shard tag keeps this stream
        // disjoint from parallel_search's per-shard eval streams.
        let mut rng = StdRng::seed_from_u64(shard_seed(config.seed, step as u64, u64::MAX));
        // Quality stage stays serial: it trains/masks the single shared
        // supernet and consumes pipeline batches in order.
        let mut quality_data = Vec::with_capacity(config.shards);
        for _ in 0..config.shards {
            let batch = h2o_obs::time("pipeline_next_batch", || {
                pipeline.next_batch(config.batch_size)
            });
            let sample = h2o_obs::time("policy_sample", || policy.sample(&mut rng));
            supernet.apply_sample(&sample);
            let raw_quality = h2o_obs::time("supernet_forward", || supernet.quality(&batch.data));
            // A diverged candidate (non-finite loss) gets a hard penalty
            // instead of poisoning the policy update with NaN.
            let quality = if raw_quality.is_finite() {
                config.quality_scale * raw_quality
            } else {
                -10.0 * config.quality_scale.abs().max(1.0)
            };
            pipeline.mark_policy_use(batch.seq).expect("fresh batch");
            quality_data.push((batch, sample, quality));
        }
        // Performance stage fans out over the executor: `perf_of` is pure
        // per sample, and results come back in submission order, so the
        // worker count never changes the outcome.
        let samples: Vec<&ArchSample> = quality_data.iter().map(|(_, s, _)| s).collect();
        let perf_values = executor.map(samples, |_, sample| {
            h2o_obs::time("reward_eval", || perf_of(sample))
        });
        let shard_data: Vec<_> = quality_data
            .into_iter()
            .zip(perf_values)
            .map(|((batch, sample, quality), perf)| (batch, sample, quality, perf))
            .collect();
        let rewards: Vec<f64> = shard_data
            .iter()
            .map(|(_, _, q, p)| reward_fn.reward(*q, p))
            .collect();
        let mean = rewards.iter().sum::<f64>() / rewards.len() as f64;
        let best = rewards.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let b = baseline.update(mean);
        let update: Vec<(ArchSample, f64)> = shard_data
            .iter()
            .zip(&rewards)
            .map(|((_, sample, _, _), &r)| (sample.clone(), r - b))
            .collect();
        h2o_obs::time("policy_update", || {
            policy.reinforce_update(&update, config.policy_lr)
        });
        {
            let _weights = h2o_obs::span("weight_update");
            for ((batch, sample, quality, perf_values), reward) in
                shard_data.into_iter().zip(rewards)
            {
                supernet.apply_sample(&sample);
                supernet.train_step_on(&batch.data);
                pipeline
                    .mark_weights_use(batch.seq)
                    .expect("policy-seen batch");
                evaluated.push(EvaluatedCandidate {
                    sample,
                    result: EvalResult {
                        quality,
                        perf_values,
                    },
                    reward,
                });
            }
        }
        let entropy = policy.mean_entropy();
        steps_total.inc();
        candidates_total.add(config.shards as u64);
        h2o_obs::gauge("h2o_core_mean_reward").set(mean);
        h2o_obs::gauge("h2o_core_best_reward").set(best);
        h2o_obs::gauge("h2o_core_entropy").set(entropy);
        h2o_obs::gauge("h2o_core_baseline").set(b);
        let step_time_ms = step_span.finish() * 1e3;
        history.push(StepRecord {
            step,
            mean_reward: mean,
            best_reward: best,
            entropy,
            step_time_ms,
        });

        let steps_done = step + 1;
        if let Some(sink) = sink.as_deref_mut() {
            if sink.should_checkpoint(steps_done) {
                // Supernet serialisation is the expensive part, so it only
                // happens once the sink has said yes.
                let weights = h2o_obs::time("supernet_save_state", || supernet.save_state());
                let snapshot = SearchSnapshot {
                    steps_done,
                    policy: &policy,
                    baseline: &baseline,
                    history: &history,
                    evaluated: &evaluated,
                    supernet_state: Some(&weights),
                };
                sink.on_checkpoint(&snapshot)
                    .expect("checkpoint sink failed");
            }
        }
    }
    SearchOutcome {
        best: policy.argmax(),
        policy,
        history,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::{PerfObjective, RewardKind};
    use h2o_data::VisionTraffic;
    use h2o_space::VisionSupernetConfig;
    use rand::SeedableRng;

    #[test]
    fn vision_supernet_searches_through_the_generic_path() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut net = VisionSupernet::new(VisionSupernetConfig::tiny(), &mut rng);
        let pipeline = InMemoryPipeline::new(VisionTraffic::new(4, 16, 0.2, 8));
        // Objective: stay under a parameter budget while classifying well.
        let budget = 1500.0;
        let reward = RewardFn::new(
            RewardKind::Relu,
            vec![PerfObjective::new("params", budget, -2.0)],
        );
        // Decode param counts analytically via a probe network. The probe
        // mutates on each call, so it lives behind a Mutex to satisfy the
        // executor's `Fn + Sync` bound.
        let probe =
            std::sync::Mutex::new(VisionSupernet::new(VisionSupernetConfig::tiny(), &mut rng));
        let perf = move |sample: &ArchSample| {
            let mut probe = probe.lock().expect("probe poisoned");
            probe.apply_sample(sample);
            vec![probe.active_param_count() as f64]
        };
        let cfg = OneShotConfig {
            steps: 60,
            shards: 4,
            batch_size: 64,
            quality_scale: 5.0,
            ..Default::default()
        };
        let outcome = unified_search_over(&mut net, &pipeline, &reward, perf, &cfg);
        // Pipeline ordering held throughout.
        let stats = pipeline.stats();
        assert_eq!(stats.policy_used, stats.weights_used);
        assert_eq!(pipeline.in_flight(), 0);
        // The final candidate classifies above chance after the search's
        // own training (4 classes -> chance 0.25).
        net.apply_sample(&outcome.best);
        let mut eval_traffic = VisionTraffic::with_truth_seed(4, 16, 0.2, 8, 99);
        let eval = h2o_data::TrafficSource::next_batch(&mut eval_traffic, 512);
        let (_, acc) = net.evaluate(&eval.features, &eval.labels);
        assert!(acc > 0.6, "accuracy {acc}");
        // And respects the parameter budget (within ReLU slack).
        let mut probe = VisionSupernet::new(VisionSupernetConfig::tiny(), &mut rng);
        probe.apply_sample(&outcome.best);
        assert!(
            (probe.active_param_count() as f64) < budget * 1.4,
            "params {}",
            probe.active_param_count()
        );
    }

    #[test]
    fn dlrm_supernet_also_satisfies_the_trait() {
        use h2o_data::{CtrTraffic, CtrTrafficConfig};
        use h2o_space::DlrmSpaceConfig;
        let mut rng = StdRng::seed_from_u64(14);
        let mut net = DlrmSupernet::new(DlrmSpaceConfig::tiny(), 0.05, &mut rng);
        let pipeline = InMemoryPipeline::new(CtrTraffic::new(CtrTrafficConfig::tiny(), 9));
        let reward = RewardFn::new(RewardKind::Relu, vec![]);
        let cfg = OneShotConfig {
            steps: 5,
            shards: 2,
            batch_size: 32,
            ..Default::default()
        };
        let outcome = unified_search_over(&mut net, &pipeline, &reward, |_| vec![], &cfg);
        assert_eq!(outcome.evaluated.len(), 10);
    }
}
