//! Domain-generic one-shot search: the unified single-step algorithm over
//! *any* weight-sharing super-network, as a [`CandidateStage`] over the
//! [`SearchDriver`] engine.
//!
//! §4.2's algorithm does not care what the super-network computes — it
//! needs (a) a categorical space, (b) candidate masking, (c) a quality
//! signal from a fresh batch and (d) a shared-weight training step.
//! [`OneShotSupernet`] captures exactly that contract, and
//! [`unified_search_over`] runs Fig. 2's right-hand side over it. The DLRM
//! super-network (the paper's novel case) and the vision classifier
//! super-network both implement it, demonstrating that the machinery is
//! domain-independent.

use crate::driver::{CandidateStage, SearchDriver};
use crate::policy::Policy;
use crate::resume::{CheckpointSink, ResumeState};
use crate::reward::RewardFn;
use crate::search::{shard_seed, EvalResult};
use crate::{OneShotConfig, SearchOutcome};
use h2o_data::{InMemoryPipeline, StampedBatch, TrafficSource};
use h2o_space::{ArchSample, DlrmSupernet, SearchSpace, VisionSupernet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// The contract a weight-sharing super-network must satisfy to be searched
/// by the unified single-step algorithm.
pub trait OneShotSupernet {
    /// The mini-batch type the super-network consumes.
    type Batch;

    /// The categorical search space this super-network covers.
    fn search_space(&self) -> &SearchSpace;

    /// Masks the network down to one candidate.
    fn apply_sample(&mut self, sample: &ArchSample);

    /// Quality signal `Q(α)` of the *active* candidate on a batch
    /// (higher is better; e.g. −logloss or −cross-entropy).
    fn quality(&mut self, batch: &Self::Batch) -> f64;

    /// One shared-weight training step of the active candidate.
    fn train_step_on(&mut self, batch: &Self::Batch);

    /// Serialises the shared trainable state (weights + optimizer moments)
    /// as an opaque, bit-exact blob for checkpointing.
    fn save_state(&self) -> Vec<u8>;

    /// Restores a blob produced by [`OneShotSupernet::save_state`] on a
    /// super-network of the same shape.
    ///
    /// # Errors
    ///
    /// Fails if the blob does not match this super-network's shape.
    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String>;
}

impl OneShotSupernet for DlrmSupernet {
    type Batch = h2o_space::DlrmBatch;

    fn search_space(&self) -> &SearchSpace {
        self.space().space()
    }

    fn apply_sample(&mut self, sample: &ArchSample) {
        DlrmSupernet::apply_sample(self, sample);
    }

    fn quality(&mut self, batch: &Self::Batch) -> f64 {
        let (logloss, _) = self.evaluate(batch);
        -(logloss as f64)
    }

    fn train_step_on(&mut self, batch: &Self::Batch) {
        self.train_step(batch);
    }

    fn save_state(&self) -> Vec<u8> {
        DlrmSupernet::save_state(self)
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        DlrmSupernet::load_state(self, bytes).map_err(|e| e.to_string())
    }
}

impl OneShotSupernet for VisionSupernet {
    type Batch = h2o_data::VisionBatch;

    fn search_space(&self) -> &SearchSpace {
        self.space()
    }

    fn apply_sample(&mut self, sample: &ArchSample) {
        VisionSupernet::apply_sample(self, sample);
    }

    fn quality(&mut self, batch: &Self::Batch) -> f64 {
        let (ce, _) = self.evaluate(&batch.features, &batch.labels);
        -(ce as f64)
    }

    fn train_step_on(&mut self, batch: &Self::Batch) {
        self.train_step(&batch.features, &batch.labels);
    }

    fn save_state(&self) -> Vec<u8> {
        VisionSupernet::save_state(self)
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        VisionSupernet::load_state(self, bytes).map_err(|e| e.to_string())
    }
}

/// The [`CandidateStage`] of the unified one-shot search (Fig. 2 right):
/// serial supernet quality on fresh batches, executor-fanned performance
/// evaluation, and shared-weight training on the very batches the policy
/// just learned from.
///
/// Per step the stage samples from a *per-step* RNG seeded by
/// [`shard_seed`]`(seed, step, u64::MAX)` — the `u64::MAX` tag keeps the
/// stream disjoint from per-shard eval streams, and deriving it from
/// `(seed, step)` means a resumed run rejoins the exact sample stream with
/// no run-long RNG state to save. The step's batches are carried from
/// [`collect`](CandidateStage::collect) to
/// [`after_policy_update`](CandidateStage::after_policy_update) so the
/// pipeline's α-before-W ordering is exercised on every batch.
pub struct UnifiedStage<'a, S, Src, P>
where
    S: OneShotSupernet,
    Src: TrafficSource<Batch = S::Batch>,
{
    supernet: &'a mut S,
    pipeline: &'a InMemoryPipeline<Src>,
    perf_of: P,
    executor: h2o_exec::Executor,
    config: OneShotConfig,
    /// This step's batches, in shard order, between collect and the
    /// post-update weight training.
    step_batches: Vec<StampedBatch<S::Batch>>,
}

impl<'a, S, Src, P> fmt::Debug for UnifiedStage<'a, S, Src, P>
where
    S: OneShotSupernet,
    Src: TrafficSource<Batch = S::Batch>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UnifiedStage")
            .field("space", &self.supernet.search_space().name())
            .field("config", &self.config)
            .finish()
    }
}

impl<'a, S, Src, P> UnifiedStage<'a, S, Src, P>
where
    S: OneShotSupernet,
    Src: TrafficSource<Batch = S::Batch>,
    P: Fn(&ArchSample) -> Vec<f64> + Sync,
{
    /// Builds the stage over a super-network, its data pipeline, and a
    /// pure performance oracle `perf_of`.
    pub fn new(
        supernet: &'a mut S,
        pipeline: &'a InMemoryPipeline<Src>,
        perf_of: P,
        config: &OneShotConfig,
    ) -> Self {
        let executor = h2o_exec::Executor::from_env(config.workers, config.shards);
        Self {
            supernet,
            pipeline,
            perf_of,
            executor,
            config: *config,
            step_batches: Vec::with_capacity(config.shards),
        }
    }
}

impl<'a, S, Src, P> CandidateStage for UnifiedStage<'a, S, Src, P>
where
    S: OneShotSupernet,
    Src: TrafficSource<Batch = S::Batch>,
    P: Fn(&ArchSample) -> Vec<f64> + Sync,
{
    fn steps_counter_name(&self) -> &'static str {
        "h2o_core_oneshot_steps_total"
    }

    fn collect(
        &mut self,
        step: usize,
        policy: &Policy,
    ) -> Result<Vec<(ArchSample, EvalResult)>, String> {
        let config = &self.config;
        let mut rng = StdRng::seed_from_u64(shard_seed(config.seed, step as u64, u64::MAX));
        // Quality stage stays serial: it trains/masks the single shared
        // supernet and consumes pipeline batches in order.
        let mut quality_data = Vec::with_capacity(config.shards);
        for _ in 0..config.shards {
            let batch = h2o_obs::time("pipeline_next_batch", || {
                self.pipeline.next_batch(config.batch_size)
            });
            let sample = h2o_obs::time("policy_sample", || policy.sample(&mut rng));
            self.supernet.apply_sample(&sample);
            let raw_quality =
                h2o_obs::time("supernet_forward", || self.supernet.quality(&batch.data));
            // A diverged candidate (non-finite loss) gets a hard penalty
            // instead of poisoning the policy update with NaN.
            let quality = if raw_quality.is_finite() {
                config.quality_scale * raw_quality
            } else {
                -10.0 * config.quality_scale.abs().max(1.0)
            };
            self.pipeline
                .mark_policy_use(batch.seq)
                // h2o-lint: allow(panic-hygiene) -- seq came from next_batch() two lines up; a
                // stale-sequence error here means pipeline-internal corruption, not bad input
                .expect("fresh batch");
            quality_data.push((batch, sample, quality));
        }
        // Performance stage fans out over the executor: `perf_of` is pure
        // per sample, and results come back in submission order, so the
        // worker count never changes the outcome.
        let samples: Vec<&ArchSample> = quality_data.iter().map(|(_, s, _)| s).collect();
        let perf_of = &self.perf_of;
        let perf_values = self.executor.map(samples, |_, sample| {
            h2o_obs::time("reward_eval", || perf_of(sample))
        });
        self.step_batches.clear();
        Ok(quality_data
            .into_iter()
            .zip(perf_values)
            .map(|((batch, sample, quality), perf_values)| {
                self.step_batches.push(batch);
                (
                    sample,
                    EvalResult {
                        quality,
                        perf_values,
                    },
                )
            })
            .collect())
    }

    fn after_policy_update(&mut self, candidates: &[(ArchSample, EvalResult)], _rewards: &[f64]) {
        // The batches that just informed the policy now train the shared
        // weights (policy use strictly before weights use — the pipeline
        // enforces the ordering).
        let _weights = h2o_obs::span("weight_update");
        for ((sample, _), batch) in candidates.iter().zip(self.step_batches.drain(..)) {
            self.supernet.apply_sample(sample);
            self.supernet.train_step_on(&batch.data);
            self.pipeline
                .mark_weights_use(batch.seq)
                // h2o-lint: allow(panic-hygiene) -- every batch in step_batches was marked
                // policy-used in produce_candidates; the pipeline enforces exactly that ordering
                .expect("policy-seen batch");
        }
    }

    fn restore(&mut self, state: &ResumeState) {
        let weights = state
            .supernet_state
            .as_deref()
            // h2o-lint: allow(panic-hygiene) -- this stage's checkpoint_state() always embeds
            // supernet state; the ckpt layer validated checksum+fingerprint before we got here
            .expect("one-shot resume requires snapshotted supernet state");
        self.supernet
            .load_state(weights)
            // h2o-lint: allow(panic-hygiene) -- state shape is covered by the config fingerprint
            // the ckpt layer validated before handing us the payload
            .expect("supernet state does not match this super-network");
        self.pipeline.fast_forward(
            state.steps_done * self.config.shards,
            self.config.batch_size,
        );
    }

    fn checkpoint_state(&mut self) -> Option<Vec<u8>> {
        Some(h2o_obs::time("supernet_save_state", || {
            self.supernet.save_state()
        }))
    }
}

/// The unified single-step search (Fig. 2 right) over any
/// [`OneShotSupernet`]: per shard, a fresh batch feeds policy learning
/// first and weight training second, with the pipeline enforcing the
/// ordering.
///
/// # Panics
///
/// Panics if `config.shards == 0` or `config.steps == 0`.
pub fn unified_search_over<S, Src>(
    supernet: &mut S,
    pipeline: &InMemoryPipeline<Src>,
    reward_fn: &RewardFn,
    perf_of: impl Fn(&ArchSample) -> Vec<f64> + Sync,
    config: &OneShotConfig,
) -> SearchOutcome
where
    S: OneShotSupernet,
    Src: TrafficSource<Batch = S::Batch>,
{
    unified_search_over_with(supernet, pipeline, reward_fn, perf_of, config, None, None)
}

/// [`unified_search_over`] with checkpoint/resume hooks.
///
/// `resume` restores a snapshot captured at a completed step `k` by a
/// [`CheckpointSink`]: controller state is handed back to the driver, the
/// supernet's shared weights are restored via
/// [`OneShotSupernet::load_state`], and the pipeline is fast-forwarded past
/// the `k × shards` batches the original run consumed — so the caller must
/// pass a **freshly constructed** supernet and pipeline built with the same
/// seeds/configs as the original run. Policy sampling draws from a
/// per-step RNG seeded by [`shard_seed`]`(seed, step, u64::MAX)` (the
/// `u64::MAX` tag keeps the stream disjoint from per-shard eval streams),
/// so the resumed run is byte-identical to an uninterrupted one.
///
/// # Panics
///
/// Panics if `config.shards == 0`, `config.steps == 0`, if the resume state
/// was captured past `config.steps`, lacks supernet state, does not match
/// the supernet's shape, or if the sink returns an error.
pub fn unified_search_over_with<S, Src>(
    supernet: &mut S,
    pipeline: &InMemoryPipeline<Src>,
    reward_fn: &RewardFn,
    perf_of: impl Fn(&ArchSample) -> Vec<f64> + Sync,
    config: &OneShotConfig,
    resume: Option<ResumeState>,
    sink: Option<&mut dyn CheckpointSink>,
) -> SearchOutcome
where
    S: OneShotSupernet,
    Src: TrafficSource<Batch = S::Batch>,
{
    let space = supernet.search_space().clone();
    let mut stage = UnifiedStage::new(supernet, pipeline, perf_of, config);
    match SearchDriver::new(&space, reward_fn, config.controller()).run(&mut stage, resume, sink) {
        Ok(outcome) => outcome,
        // h2o-lint: allow(panic-hygiene) -- documented wrapper contract: the convenience
        // entry points abort on a failed checkpoint write; SearchDriver::run returns the
        // typed DriverError for callers that need to handle it
        Err(err) => panic!("{err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::{PerfObjective, RewardKind};
    use h2o_data::VisionTraffic;
    use h2o_space::VisionSupernetConfig;
    use rand::SeedableRng;

    #[test]
    fn vision_supernet_searches_through_the_generic_path() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut net = VisionSupernet::new(VisionSupernetConfig::tiny(), &mut rng);
        let pipeline = InMemoryPipeline::new(VisionTraffic::new(4, 16, 0.2, 8));
        // Objective: stay under a parameter budget while classifying well.
        let budget = 1500.0;
        let reward = RewardFn::new(
            RewardKind::Relu,
            vec![PerfObjective::new("params", budget, -2.0)],
        );
        // Decode param counts analytically via a probe network. The probe
        // mutates on each call, so it lives behind a Mutex to satisfy the
        // executor's `Fn + Sync` bound.
        let probe =
            std::sync::Mutex::new(VisionSupernet::new(VisionSupernetConfig::tiny(), &mut rng));
        let perf = move |sample: &ArchSample| {
            let mut probe = probe.lock().expect("probe poisoned");
            probe.apply_sample(sample);
            vec![probe.active_param_count() as f64]
        };
        let cfg = OneShotConfig {
            steps: 60,
            shards: 4,
            batch_size: 64,
            quality_scale: 5.0,
            ..Default::default()
        };
        let outcome = unified_search_over(&mut net, &pipeline, &reward, perf, &cfg);
        // Pipeline ordering held throughout.
        let stats = pipeline.stats();
        assert_eq!(stats.policy_used, stats.weights_used);
        assert_eq!(pipeline.in_flight(), 0);
        // The final candidate classifies above chance after the search's
        // own training (4 classes -> chance 0.25).
        net.apply_sample(&outcome.best);
        let mut eval_traffic = VisionTraffic::with_truth_seed(4, 16, 0.2, 8, 99);
        let eval = h2o_data::TrafficSource::next_batch(&mut eval_traffic, 512);
        let (_, acc) = net.evaluate(&eval.features, &eval.labels);
        assert!(acc > 0.6, "accuracy {acc}");
        // And respects the parameter budget (within ReLU slack).
        let mut probe = VisionSupernet::new(VisionSupernetConfig::tiny(), &mut rng);
        probe.apply_sample(&outcome.best);
        assert!(
            (probe.active_param_count() as f64) < budget * 1.4,
            "params {}",
            probe.active_param_count()
        );
    }

    #[test]
    fn dlrm_supernet_also_satisfies_the_trait() {
        use h2o_data::{CtrTraffic, CtrTrafficConfig};
        use h2o_space::DlrmSpaceConfig;
        let mut rng = StdRng::seed_from_u64(14);
        let mut net = DlrmSupernet::new(DlrmSpaceConfig::tiny(), 0.05, &mut rng);
        let pipeline = InMemoryPipeline::new(CtrTraffic::new(CtrTrafficConfig::tiny(), 9));
        let reward = RewardFn::new(RewardKind::Relu, vec![]);
        let cfg = OneShotConfig {
            steps: 5,
            shards: 2,
            batch_size: 32,
            ..Default::default()
        };
        let outcome = unified_search_over(&mut net, &pipeline, &reward, |_| vec![], &cfg);
        assert_eq!(outcome.evaluated.len(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics_in_unified_search() {
        // Regression: the one-shot path used to accept shards == 0 and
        // divide by zero computing the mean reward.
        use h2o_data::{CtrTraffic, CtrTrafficConfig};
        use h2o_space::DlrmSpaceConfig;
        let mut rng = StdRng::seed_from_u64(15);
        let mut net = DlrmSupernet::new(DlrmSpaceConfig::tiny(), 0.05, &mut rng);
        let pipeline = InMemoryPipeline::new(CtrTraffic::new(CtrTrafficConfig::tiny(), 9));
        let reward = RewardFn::new(RewardKind::Relu, vec![]);
        let cfg = OneShotConfig {
            shards: 0,
            ..Default::default()
        };
        unified_search_over(&mut net, &pipeline, &reward, |_| vec![], &cfg);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_panics_in_unified_search() {
        use h2o_data::{CtrTraffic, CtrTrafficConfig};
        use h2o_space::DlrmSpaceConfig;
        let mut rng = StdRng::seed_from_u64(16);
        let mut net = DlrmSupernet::new(DlrmSpaceConfig::tiny(), 0.05, &mut rng);
        let pipeline = InMemoryPipeline::new(CtrTraffic::new(CtrTrafficConfig::tiny(), 9));
        let reward = RewardFn::new(RewardKind::Relu, vec![]);
        let cfg = OneShotConfig {
            steps: 0,
            ..Default::default()
        };
        unified_search_over(&mut net, &pipeline, &reward, |_| vec![], &cfg);
    }
}
