//! Pareto-front utilities for quality/performance trade-off analysis
//! (Figs. 5 and 6 of the paper).

use serde::{Deserialize, Serialize};

/// One evaluated candidate: quality (higher better) and a primary cost
/// (lower better), with an arbitrary payload index into the caller's data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Quality, higher is better (accuracy, AUC, ...).
    pub quality: f64,
    /// Cost, lower is better (step time, latency, ...).
    pub cost: f64,
    /// Caller-side identifier.
    pub index: usize,
}

/// Extracts the non-dominated set: a point survives iff no other point has
/// `quality ≥` *and* `cost ≤` with at least one strict. Returned sorted by
/// increasing cost.
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    let mut front: Vec<ParetoPoint> = points
        .iter()
        .filter(|p| {
            !points.iter().any(|q| {
                q.quality >= p.quality
                    && q.cost <= p.cost
                    && (q.quality > p.quality || q.cost < p.cost)
            })
        })
        .cloned()
        .collect();
    front.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    front.dedup_by(|a, b| a.quality == b.quality && a.cost == b.cost);
    front
}

/// Buckets points by quality and averages the cost within each bucket —
/// the Fig. 5b presentation ("bucketized by quality and then averaged").
/// Returns `(bucket_midpoint_quality, mean_cost, count)` for non-empty
/// buckets, in ascending quality order.
pub fn bucketize_by_quality(points: &[ParetoPoint], num_buckets: usize) -> Vec<(f64, f64, usize)> {
    bucketize(points, num_buckets, |p| p.quality, |p| p.cost)
}

/// Buckets points by cost and averages the quality within each bucket —
/// the Fig. 5c presentation. Returns `(bucket_midpoint_cost, mean_quality,
/// count)` in ascending cost order.
pub fn bucketize_by_cost(points: &[ParetoPoint], num_buckets: usize) -> Vec<(f64, f64, usize)> {
    bucketize(points, num_buckets, |p| p.cost, |p| p.quality)
}

fn bucketize(
    points: &[ParetoPoint],
    num_buckets: usize,
    key: impl Fn(&ParetoPoint) -> f64,
    value: impl Fn(&ParetoPoint) -> f64,
) -> Vec<(f64, f64, usize)> {
    if points.is_empty() || num_buckets == 0 {
        return vec![];
    }
    let lo = points.iter().map(&key).fold(f64::INFINITY, f64::min);
    let hi = points.iter().map(&key).fold(f64::NEG_INFINITY, f64::max);
    let width = ((hi - lo) / num_buckets as f64).max(1e-12);
    let mut sums = vec![(0.0f64, 0usize); num_buckets];
    for p in points {
        let b = (((key(p) - lo) / width) as usize).min(num_buckets - 1);
        sums[b].0 += value(p);
        sums[b].1 += 1;
    }
    sums.into_iter()
        .enumerate()
        .filter(|(_, (_, n))| *n > 0)
        .map(|(b, (sum, n))| (lo + (b as f64 + 0.5) * width, sum / n as f64, n))
        .collect()
}

/// A scalar "how good is this front" measure: the area dominated by the
/// front relative to a reference point `(ref_cost, ref_quality_floor)`.
/// Larger is better. Used to compare ReLU vs absolute rewards (Fig. 5a).
pub fn dominated_area(front: &[ParetoPoint], ref_cost: f64, quality_floor: f64) -> f64 {
    let mut front = front.to_vec();
    front.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    let mut area = 0.0;
    let mut prev_cost: f64 = 0.0;
    let mut best_quality = quality_floor;
    for p in &front {
        if p.cost > ref_cost {
            break;
        }
        // Area accumulated at the best quality seen so far.
        area += (p.cost - prev_cost).max(0.0) * (best_quality - quality_floor).max(0.0);
        best_quality = best_quality.max(p.quality);
        prev_cost = p.cost.max(prev_cost);
    }
    area += (ref_cost - prev_cost).max(0.0) * (best_quality - quality_floor).max(0.0);
    area
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(quality: f64, cost: f64, index: usize) -> ParetoPoint {
        ParetoPoint {
            quality,
            cost,
            index,
        }
    }

    #[test]
    fn front_removes_dominated_points() {
        let points = vec![p(1.0, 1.0, 0), p(2.0, 2.0, 1), p(0.5, 3.0, 2)];
        let front = pareto_front(&points);
        let indices: Vec<usize> = front.iter().map(|x| x.index).collect();
        assert_eq!(indices, vec![0, 1], "point 2 is dominated by both");
    }

    #[test]
    fn front_keeps_all_nondominated() {
        let points = vec![p(1.0, 1.0, 0), p(2.0, 2.0, 1), p(3.0, 3.0, 2)];
        assert_eq!(pareto_front(&points).len(), 3);
    }

    #[test]
    fn front_single_point() {
        let points = vec![p(1.0, 1.0, 0)];
        assert_eq!(pareto_front(&points).len(), 1);
    }

    #[test]
    fn duplicate_points_deduplicated() {
        let points = vec![p(1.0, 1.0, 0), p(1.0, 1.0, 1)];
        assert_eq!(pareto_front(&points).len(), 1);
    }

    #[test]
    fn bucketize_by_quality_orders_and_averages() {
        let points = vec![
            p(1.0, 10.0, 0),
            p(1.1, 20.0, 1),
            p(9.0, 5.0, 2),
            p(9.2, 7.0, 3),
        ];
        let buckets = bucketize_by_quality(&points, 2);
        assert_eq!(buckets.len(), 2);
        assert!((buckets[0].1 - 15.0).abs() < 1e-9);
        assert!((buckets[1].1 - 6.0).abs() < 1e-9);
        assert_eq!(buckets[0].2, 2);
    }

    #[test]
    fn bucketize_empty_is_empty() {
        assert!(bucketize_by_cost(&[], 4).is_empty());
    }

    #[test]
    fn dominated_area_prefers_better_fronts() {
        // Front A strictly dominates front B.
        let a = vec![p(2.0, 1.0, 0), p(3.0, 2.0, 1)];
        let b = vec![p(1.5, 1.5, 0), p(2.5, 2.5, 1)];
        assert!(dominated_area(&a, 4.0, 0.0) > dominated_area(&b, 4.0, 0.0));
    }

    #[test]
    fn dominated_area_zero_for_floor_quality() {
        let f = vec![p(0.0, 1.0, 0)];
        assert_eq!(dominated_area(&f, 2.0, 0.0), 0.0);
    }
}
