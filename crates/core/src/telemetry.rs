//! Search telemetry export.
//!
//! Production NAS runs are monitored: reward curves, entropy decay and the
//! evaluated-candidate cloud (Fig. 5a's scatter) all come from step
//! telemetry. This module renders a [`SearchOutcome`] into CSV, ready for
//! any plotting tool, and writes it to disk — the only on-disk artefact the
//! system produces (architectures and telemetry only; never training data,
//! per the §3 privacy posture).

use crate::search::SearchOutcome;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Renders per-step telemetry
/// (`step, mean_reward, best_reward, entropy, step_time_ms`) as CSV. The
/// timing column is fed by the span timers around each search step.
pub fn history_csv(outcome: &SearchOutcome) -> String {
    let mut out = String::from("step,mean_reward,best_reward,entropy,step_time_ms\n");
    for record in &outcome.history {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            record.step,
            record.mean_reward,
            record.best_reward,
            record.entropy,
            record.step_time_ms
        );
    }
    out
}

/// Renders the evaluated-candidate cloud
/// (`reward, quality, perf_0..perf_{n-1}, sample`) as CSV. The sample is
/// encoded as `/`-joined choice indices so it stays a single CSV field.
pub fn candidates_csv(outcome: &SearchOutcome) -> String {
    let n_perf = outcome
        .evaluated
        .first()
        .map(|c| c.result.perf_values.len())
        .unwrap_or(0);
    let mut out = String::from("reward,quality");
    for i in 0..n_perf {
        let _ = write!(out, ",perf_{i}");
    }
    out.push_str(",sample\n");
    for c in &outcome.evaluated {
        let _ = write!(out, "{},{}", c.reward, c.result.quality);
        for v in &c.result.perf_values {
            let _ = write!(out, ",{v}");
        }
        let sample: Vec<String> = c.sample.iter().map(|x| x.to_string()).collect();
        let _ = writeln!(out, ",{}", sample.join("/"));
    }
    out
}

/// Writes both CSVs next to each other: `<stem>_history.csv` and
/// `<stem>_candidates.csv`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csvs(outcome: &SearchOutcome, stem: &Path) -> io::Result<()> {
    let with_suffix = |suffix: &str| {
        let mut name = stem.file_name().unwrap_or_default().to_os_string();
        name.push(suffix);
        stem.with_file_name(name)
    };
    std::fs::write(with_suffix("_history.csv"), history_csv(outcome))?;
    std::fs::write(with_suffix("_candidates.csv"), candidates_csv(outcome))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{EvalResult, EvaluatedCandidate, StepRecord};
    use crate::Policy;
    use h2o_space::{Decision, SearchSpace};

    /// A per-test temp dir: process id + test name, so parallel test
    /// binaries and in-process test threads never collide.
    fn unique_temp_dir(test_name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "h2o_telemetry_{}_{}",
            std::process::id(),
            test_name
        ))
    }

    fn outcome() -> SearchOutcome {
        let mut space = SearchSpace::new("t");
        space.push(Decision::new("a", 3));
        SearchOutcome {
            best: vec![1],
            policy: Policy::uniform(&space),
            history: vec![
                StepRecord {
                    step: 0,
                    mean_reward: 1.0,
                    best_reward: 2.0,
                    entropy: 1.1,
                    step_time_ms: 12.5,
                },
                StepRecord {
                    step: 1,
                    mean_reward: 1.5,
                    best_reward: 2.5,
                    entropy: 0.9,
                    step_time_ms: 11.0,
                },
            ],
            evaluated: vec![EvaluatedCandidate {
                sample: vec![2],
                result: EvalResult {
                    quality: 9.0,
                    perf_values: vec![0.5, 100.0],
                },
                reward: 8.5,
            }],
        }
    }

    #[test]
    fn history_csv_has_header_and_rows() {
        let csv = history_csv(&outcome());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "step,mean_reward,best_reward,entropy,step_time_ms"
        );
        assert!(lines[1].starts_with("0,1,2,"));
        assert!(lines[1].ends_with(",12.5"));
    }

    #[test]
    fn candidates_csv_encodes_perf_columns_and_sample() {
        let csv = candidates_csv(&outcome());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "reward,quality,perf_0,perf_1,sample");
        assert_eq!(lines[1], "8.5,9,0.5,100,2");
    }

    #[test]
    fn write_csvs_creates_both_files() {
        let dir = unique_temp_dir("write_csvs_creates_both_files");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("run1");
        write_csvs(&outcome(), &stem).unwrap();
        assert!(dir.join("run1_history.csv").exists());
        assert!(dir.join("run1_candidates.csv").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn written_history_round_trips_the_timing_column() {
        let dir = unique_temp_dir("written_history_round_trips_the_timing_column");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("run2");
        write_csvs(&outcome(), &stem).unwrap();
        let text = std::fs::read_to_string(dir.join("run2_history.csv")).unwrap();
        assert!(text.starts_with("step,mean_reward,best_reward,entropy,step_time_ms\n"));
        assert!(text.contains(",12.5\n"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_outcome_yields_headers_only() {
        let mut o = outcome();
        o.history.clear();
        o.evaluated.clear();
        assert_eq!(history_csv(&o).lines().count(), 1);
        assert_eq!(candidates_csv(&o).lines().count(), 1);
    }
}
