//! The unified search-controller engine (§4.2, Fig. 2).
//!
//! The paper's central claim is that *one* single-step RL controller drives
//! every domain — DLRM, CNN, ViT. [`SearchDriver`] is that controller
//! extracted as a reusable engine: it owns the per-step invariant loop
//! (reward computation → baseline EMA → cross-shard REINFORCE update →
//! telemetry → checkpointing) and delegates only *candidate production* to
//! a pluggable [`CandidateStage`]. The three search flavors the crate
//! exposes are stages over this one engine:
//!
//! * [`ParallelStage`](crate::ParallelStage) — executor-fanned stateless
//!   evaluation (the `parallel_search` entry points);
//! * [`UnifiedStage`](crate::UnifiedStage) — serial supernet quality +
//!   executor-fanned performance (the `unified_search*` entry points);
//! * [`TunasStage`](crate::TunasStage) — the alternating train/valid
//!   two-stream baseline (the `tunas_search*` entry points).
//!
//! The engine upholds the determinism contract: stages derive every sample
//! stream from `(seed, step, shard)` via
//! [`shard_seed`](crate::shard_seed), so the driver itself holds no
//! run-long RNG state and a run resumed from a [`ResumeState`] captured at
//! a completed step is byte-identical to an uninterrupted one
//! (`tests/driver_equivalence.rs` pins all three stages to goldens
//! recorded from the pre-refactor hand-rolled loops).

use crate::policy::{Policy, RewardBaseline};
use crate::resume::{CheckpointSink, ResumeState, SearchSnapshot};
use crate::reward::RewardFn;
use crate::search::{EvalResult, EvaluatedCandidate, SearchOutcome, StepRecord};
use h2o_space::{ArchSample, SearchSpace};
use serde::{Deserialize, Serialize};

/// Reward assigned to a candidate whose combined reward is not finite
/// (NaN/±∞ from a diverged evaluator or a pathological objective value).
///
/// Without this guard a single NaN reward poisons the baseline EMA — and
/// through it every subsequent policy update — silently. The penalty is
/// far below any reward the repo's objectives produce, so non-finite
/// candidates are strongly discouraged while the controller state stays
/// finite. Finite rewards pass through bit-unchanged.
pub const NON_FINITE_REWARD_PENALTY: f64 = -1.0e4;

/// A typed failure from the [`SearchDriver`] controller loop.
///
/// The engine distinguishes *contract violations* (zero shards, a resume
/// snapshot from the wrong space — programmer errors that stay panics)
/// from *environmental failures* it can report to the caller: a failed
/// checkpoint write (a lost durability guarantee) and a failed candidate
/// collection (a dead evaluator node, a broken transport). Both stop the
/// loop and hand the error up instead of searching on with the contract
/// silently gone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverError {
    /// The [`CheckpointSink`] failed to persist a snapshot after the step
    /// counted in `steps_done`. The search state up to that step is lost
    /// to the caller (the outcome is not returned), but every prior
    /// on-disk checkpoint remains valid to resume from.
    Checkpoint {
        /// Completed steps at the moment the write failed.
        steps_done: usize,
        /// The sink's error message.
        message: String,
    },
    /// The [`CandidateStage`] failed to produce this step's candidates.
    /// On the distributed stage individual node deaths are absorbed by
    /// redispatch/respawn, so this means the node pool was exhausted
    /// (fewer live nodes than its configured floor) or a fatal protocol
    /// error occurred. Every step before `step` completed normally, so
    /// the last on-disk checkpoint (if any) remains valid to resume from.
    Eval {
        /// The step whose collection failed (zero-based; this step did
        /// *not* complete).
        step: usize,
        /// The stage's error message.
        message: String,
    },
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Checkpoint {
                steps_done,
                message,
            } => write!(
                f,
                "checkpoint sink failed after step {steps_done}: {message}"
            ),
            DriverError::Eval { step, message } => {
                write!(f, "candidate collection failed at step {step}: {message}")
            }
        }
    }
}

impl std::error::Error for DriverError {}

/// Phase labels of the `h2o_core_phase_seconds{phase=...}` histograms the
/// driver records per step, in loop order. `perf_baseline` and the
/// exporters read time shares per phase from these.
pub const PHASES: [&str; 6] = [
    "collect",
    "reward",
    "policy_update",
    "stage_update",
    "telemetry",
    "checkpoint",
];

/// The shared controller knobs: everything the [`SearchDriver`] engine
/// needs, independent of how candidates are produced.
///
/// This is the merge of the fields `SearchConfig` and `OneShotConfig`
/// historically duplicated. [`SearchConfig`](crate::SearchConfig) *is*
/// this type (the parallel loop has no extra knobs), and
/// [`OneShotConfig`](crate::OneShotConfig) projects onto it via
/// [`OneShotConfig::controller`](crate::OneShotConfig::controller).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Search steps (policy updates).
    // h2o-lint: allow(fingerprint-completeness) -- deliberately excluded from the
    // resume fingerprint: a resumed run may extend the horizon without perturbing
    // the trajectory (resume.rs::fingerprint_ignores_steps_and_workers).
    pub steps: usize,
    /// Virtual accelerator shards per step (parallel candidate samples).
    pub shards: usize,
    /// REINFORCE learning rate on the policy logits.
    pub policy_lr: f64,
    /// EMA momentum of the reward baseline.
    pub baseline_momentum: f64,
    /// RNG seed.
    pub seed: u64,
    /// Evaluation worker threads. `0` means auto: the `H2O_WORKERS`
    /// environment variable if set, else available parallelism. The
    /// search outcome is bit-identical for every worker count.
    #[serde(default)]
    pub workers: usize,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            steps: 200,
            shards: 8,
            policy_lr: 0.05,
            baseline_momentum: 0.9,
            seed: 0,
            workers: 0,
        }
    }
}

/// Produces one step's worth of candidates for the [`SearchDriver`].
///
/// A stage owns everything flavor-specific: evaluators, super-networks,
/// data streams, executors, and any per-step state carried between
/// [`collect`](CandidateStage::collect) and
/// [`after_policy_update`](CandidateStage::after_policy_update) (the
/// one-shot stage keeps the step's batches so shared weights can train on
/// them *after* the policy has learned from them). The driver owns the
/// invariant controller loop and never samples the policy itself —
/// stages do, from RNG streams derived via
/// [`shard_seed`](crate::shard_seed) so resume needs no RNG state.
pub trait CandidateStage {
    /// Observability span name wrapping one controller step.
    fn step_span_name(&self) -> &'static str {
        "search_step"
    }

    /// Observability counter name for completed controller steps.
    fn steps_counter_name(&self) -> &'static str;

    /// Samples and evaluates this step's candidates, one per shard, in
    /// shard order. Implementations must be deterministic in
    /// `(step, policy)` and their own construction-time seed.
    ///
    /// In-process stages are infallible and simply wrap their candidates
    /// in `Ok`. Stages that cross a process boundary (the distributed
    /// stage fanning out over worker nodes) return `Err` when evaluation
    /// can no longer proceed — the node pool dropped below its live
    /// floor, or a fatal protocol error occurred; the driver surfaces it
    /// as [`DriverError::Eval`].
    fn collect(
        &mut self,
        step: usize,
        policy: &Policy,
    ) -> Result<Vec<(ArchSample, EvalResult)>, String>;

    /// Hook invoked after the REINFORCE update, before telemetry is
    /// recorded. The one-shot stage trains the shared weights here, on the
    /// very batches that just informed the policy (Fig. 2 right). The
    /// default does nothing.
    fn after_policy_update(&mut self, _candidates: &[(ArchSample, EvalResult)], _rewards: &[f64]) {}

    /// Restores stage-owned state (super-network weights, stream
    /// positions) from a snapshot captured at `state.steps_done` completed
    /// steps. The driver has already validated the controller-level
    /// invariants. The default does nothing — correct for stateless
    /// stages.
    fn restore(&mut self, _state: &ResumeState) {}

    /// Serialises stage-owned trainable state for a checkpoint, or `None`
    /// for stateless stages. Only called once a [`CheckpointSink`] has
    /// asked for a snapshot, so expensive serialisation is never wasted.
    fn checkpoint_state(&mut self) -> Option<Vec<u8>> {
        None
    }
}

/// The unified single-step search controller: one engine for every
/// [`CandidateStage`].
///
/// Per step the driver (1) asks the stage for one candidate per shard,
/// (2) combines each candidate's quality and performance signals through
/// the [`RewardFn`], guarding non-finite rewards with
/// [`NON_FINITE_REWARD_PENALTY`], (3) updates the reward-baseline EMA and
/// applies one cross-shard REINFORCE update, (4) lets the stage react
/// (weight training), and (5) records telemetry and consults the
/// [`CheckpointSink`]. The final architecture is the per-decision argmax
/// of the trained policy (§4.2).
///
/// # Examples
///
/// The public entry points (`parallel_search`, `unified_search_over`,
/// `tunas_search`, …) are thin wrappers that build the matching stage and
/// call [`SearchDriver::run`]; use them unless you are bringing your own
/// stage. A custom stage needs only candidate production:
///
/// ```
/// use h2o_core::{
///     CandidateStage, ControllerConfig, EvalResult, Policy, RewardFn, RewardKind,
///     SearchDriver, shard_seed,
/// };
/// use h2o_space::{ArchSample, Decision, SearchSpace};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// /// Evaluates every candidate analytically, serially.
/// struct AnalyticStage {
///     shards: usize,
///     seed: u64,
/// }
///
/// impl CandidateStage for AnalyticStage {
///     fn steps_counter_name(&self) -> &'static str {
///         "demo_steps_total"
///     }
///     fn collect(
///         &mut self,
///         step: usize,
///         policy: &Policy,
///     ) -> Result<Vec<(ArchSample, EvalResult)>, String> {
///         Ok((0..self.shards)
///             .map(|shard| {
///                 let mut rng =
///                     StdRng::seed_from_u64(shard_seed(self.seed, step as u64, shard as u64));
///                 let sample = policy.sample(&mut rng);
///                 let quality = sample[0] as f64;
///                 (sample, EvalResult { quality, perf_values: vec![] })
///             })
///             .collect())
///     }
/// }
///
/// let mut space = SearchSpace::new("demo");
/// space.push(Decision::new("width", 5));
/// let reward = RewardFn::new(RewardKind::Relu, vec![]);
/// let config = ControllerConfig { steps: 60, shards: 4, ..Default::default() };
/// let mut stage = AnalyticStage { shards: config.shards, seed: config.seed };
/// let outcome = SearchDriver::new(&space, &reward, config)
///     .run(&mut stage, None, None)
///     .expect("no checkpoint sink, so the run cannot fail");
/// assert_eq!(outcome.best[0], 4, "quality is maximised by the widest choice");
/// ```
#[derive(Debug)]
pub struct SearchDriver<'a> {
    space: &'a SearchSpace,
    reward_fn: &'a RewardFn,
    config: ControllerConfig,
}

impl<'a> SearchDriver<'a> {
    /// Builds a driver over `space` with the given reward and controller
    /// knobs.
    pub fn new(space: &'a SearchSpace, reward_fn: &'a RewardFn, config: ControllerConfig) -> Self {
        Self {
            space,
            reward_fn,
            config,
        }
    }

    /// Runs the controller loop over `stage`, optionally resuming from a
    /// snapshot and reporting to a checkpoint sink after each completed
    /// step.
    ///
    /// `resume` restores controller state captured by a [`CheckpointSink`]
    /// at a completed step `k`; the loop then runs steps
    /// `k..config.steps` and the outcome is byte-identical to an
    /// uninterrupted run. Stage-owned state is restored through
    /// [`CandidateStage::restore`].
    ///
    /// Each step records its per-phase wall time into the
    /// `h2o_core_phase_seconds{phase=...}` histograms (see [`PHASES`]) and
    /// its total into `h2o_core_step_seconds`, alongside the step span.
    /// All instrumentation is observation-only: the recorded values never
    /// feed back into controller state, so runs with a warm or a freshly
    /// [`h2o_obs::reset`] registry produce bit-identical outcomes
    /// (asserted by `tests/perf_observatory.rs`).
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::Checkpoint`] when the sink fails to persist
    /// a snapshot: the loop stops immediately (searching on without the
    /// durability the caller asked for would be a silent contract break).
    /// Returns [`DriverError::Eval`] when the stage fails to produce a
    /// step's candidates (a remote evaluator node died mid-run). In both
    /// cases prior on-disk checkpoints remain valid to resume from.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0`, `config.steps == 0`, or if the
    /// resume state was captured past `config.steps` or does not match the
    /// search space.
    pub fn run<S: CandidateStage + ?Sized>(
        &self,
        stage: &mut S,
        resume: Option<ResumeState>,
        mut sink: Option<&mut dyn CheckpointSink>,
    ) -> Result<SearchOutcome, DriverError> {
        let config = &self.config;
        assert!(config.shards > 0, "need at least one shard");
        assert!(config.steps > 0, "need at least one step");
        let (start_step, mut policy, mut baseline, mut history, mut evaluated) = match resume {
            Some(state) => {
                assert!(
                    state.steps_done <= config.steps,
                    "resume state is from step {} but the search only runs {} steps",
                    state.steps_done,
                    config.steps
                );
                assert_eq!(
                    state.policy.num_decisions(),
                    self.space.num_decisions(),
                    "resume state does not match the search space"
                );
                stage.restore(&state);
                (
                    state.steps_done,
                    state.policy,
                    state.baseline,
                    state.history,
                    state.evaluated,
                )
            }
            None => (
                0,
                Policy::uniform(self.space),
                RewardBaseline::new(config.baseline_momentum),
                Vec::with_capacity(config.steps),
                Vec::with_capacity(config.steps * config.shards),
            ),
        };
        let steps_total = h2o_obs::counter(stage.steps_counter_name());
        let candidates_total = h2o_obs::counter("h2o_core_candidates_evaluated_total");
        // Phase histograms, hoisted out of the loop (registry lookups have
        // no business on the per-step path). Labels match [`PHASES`].
        let phase_hist =
            |name: &str| h2o_obs::histogram(&format!("h2o_core_phase_seconds{{phase=\"{name}\"}}"));
        let phase_collect = phase_hist("collect");
        let phase_reward = phase_hist("reward");
        let phase_policy = phase_hist("policy_update");
        let phase_stage = phase_hist("stage_update");
        let phase_telemetry = phase_hist("telemetry");
        let step_seconds = h2o_obs::histogram("h2o_core_step_seconds");

        for step in start_step..config.steps {
            let step_span = h2o_obs::span(stage.step_span_name());
            // Stage-specific: shard-seed derivation, candidate sampling and
            // the evaluation fan-out all live inside the stage's collect.
            let results = match phase_collect.time(|| stage.collect(step, &policy)) {
                Ok(results) => results,
                Err(message) => return Err(DriverError::Eval { step, message }),
            };

            // Invariant controller sequence: reward → baseline → REINFORCE.
            // The reward phase covers the submission-order reduction of the
            // shard results into rewards, the baseline EMA, and the
            // advantage batch build.
            let (rewards, mean, best, b, batch) = phase_reward.time(|| {
                let rewards: Vec<f64> = results
                    .iter()
                    .map(|(_, r)| {
                        let reward = self.reward_fn.reward(r.quality, &r.perf_values);
                        if reward.is_finite() {
                            reward
                        } else {
                            NON_FINITE_REWARD_PENALTY
                        }
                    })
                    .collect();
                // h2o-lint: allow(float-cast-on-reward-path) -- shard counts are far
                // below 2^53, so this usize -> f64 conversion is exact.
                let mean = rewards.iter().sum::<f64>() / rewards.len() as f64;
                let best = rewards.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let b = baseline.update(mean);
                let batch: Vec<(ArchSample, f64)> = results
                    .iter()
                    .zip(&rewards)
                    .map(|((sample, _), &r)| (sample.clone(), r - b))
                    .collect();
                (rewards, mean, best, b, batch)
            });
            phase_policy.time(|| {
                h2o_obs::time("policy_update", || {
                    policy.reinforce_update(&batch, config.policy_lr)
                })
            });
            phase_stage.time(|| stage.after_policy_update(&results, &rewards));

            let entropy = policy.mean_entropy();
            steps_total.inc();
            candidates_total.add(results.len() as u64);
            h2o_obs::gauge("h2o_core_mean_reward").set(mean);
            h2o_obs::gauge("h2o_core_best_reward").set(best);
            h2o_obs::gauge("h2o_core_entropy").set(entropy);
            h2o_obs::gauge("h2o_core_baseline").set(b);
            let step_time_secs = step_span.finish();
            step_seconds.record(step_time_secs);
            let step_time_ms = step_time_secs * 1e3;
            phase_telemetry.time(|| {
                history.push(StepRecord {
                    step,
                    mean_reward: mean,
                    best_reward: best,
                    entropy,
                    step_time_ms,
                });
                for ((sample, result), reward) in results.into_iter().zip(rewards) {
                    evaluated.push(EvaluatedCandidate {
                        sample,
                        result,
                        reward,
                    });
                }
            });

            let steps_done = step + 1;
            if let Some(sink) = sink.as_deref_mut() {
                if sink.should_checkpoint(steps_done) {
                    // Stage serialisation is the expensive part, so it only
                    // happens once the sink has said yes. The phase timer
                    // covers serialisation plus the sink's write; looked up
                    // here (not hoisted) so sinkless runs never register an
                    // empty checkpoint histogram.
                    let written = phase_hist("checkpoint").time(|| {
                        let stage_state = stage.checkpoint_state();
                        let snapshot = SearchSnapshot {
                            steps_done,
                            policy: &policy,
                            baseline: &baseline,
                            history: &history,
                            evaluated: &evaluated,
                            supernet_state: stage_state.as_deref(),
                        };
                        sink.on_checkpoint(&snapshot)
                    });
                    if let Err(message) = written {
                        return Err(DriverError::Checkpoint {
                            steps_done,
                            message,
                        });
                    }
                }
            }
        }

        Ok(SearchOutcome {
            best: policy.argmax(),
            policy,
            history,
            evaluated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::RewardKind;
    use crate::search::shard_seed;
    use h2o_space::Decision;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        let mut s = SearchSpace::new("drv");
        s.push(Decision::new("a", 4));
        s.push(Decision::new("b", 3));
        s
    }

    /// A minimal deterministic stage whose quality is `sample[0]`, with a
    /// switch to emit NaN quality on even shards.
    struct ToyStage {
        shards: usize,
        seed: u64,
        nan_on_even_shards: bool,
    }

    impl CandidateStage for ToyStage {
        fn steps_counter_name(&self) -> &'static str {
            "h2o_core_driver_test_steps_total"
        }
        fn collect(
            &mut self,
            step: usize,
            policy: &Policy,
        ) -> Result<Vec<(ArchSample, EvalResult)>, String> {
            Ok((0..self.shards)
                .map(|shard| {
                    let mut rng =
                        StdRng::seed_from_u64(shard_seed(self.seed, step as u64, shard as u64));
                    let sample = policy.sample(&mut rng);
                    let quality = if self.nan_on_even_shards && shard.is_multiple_of(2) {
                        f64::NAN
                    } else {
                        sample[0] as f64
                    };
                    (
                        sample,
                        EvalResult {
                            quality,
                            perf_values: vec![],
                        },
                    )
                })
                .collect())
        }
    }

    fn run_toy(nan_on_even_shards: bool) -> SearchOutcome {
        let space = space();
        let reward = RewardFn::new(RewardKind::Relu, vec![]);
        let config = ControllerConfig {
            steps: 40,
            shards: 4,
            seed: 5,
            ..Default::default()
        };
        let mut stage = ToyStage {
            shards: config.shards,
            seed: config.seed,
            nan_on_even_shards,
        };
        SearchDriver::new(&space, &reward, config)
            .run(&mut stage, None, None)
            .expect("sinkless run cannot fail")
    }

    #[test]
    fn driver_learns_the_argmax() {
        let outcome = run_toy(false);
        assert_eq!(outcome.best[0], 3, "quality favours the widest choice");
        assert_eq!(outcome.history.len(), 40);
        assert_eq!(outcome.evaluated.len(), 160);
    }

    #[test]
    fn nan_rewards_do_not_poison_the_baseline() {
        // Regression for the satellite fix: a NaN from a custom evaluator
        // used to flow straight into the baseline EMA and every subsequent
        // advantage. Now it is clamped to the documented penalty.
        let outcome = run_toy(true);
        for record in &outcome.history {
            assert!(
                record.mean_reward.is_finite(),
                "step {} mean reward went non-finite",
                record.step
            );
        }
        assert!(
            outcome.evaluated.iter().all(|c| c.reward.is_finite()),
            "every reward is clamped finite"
        );
        assert!(
            outcome
                .evaluated
                .iter()
                .any(|c| c.reward == NON_FINITE_REWARD_PENALTY),
            "NaN candidates received the documented penalty"
        );
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_panics() {
        let space = space();
        let reward = RewardFn::new(RewardKind::Relu, vec![]);
        let config = ControllerConfig {
            steps: 0,
            ..Default::default()
        };
        let mut stage = ToyStage {
            shards: 4,
            seed: 0,
            nan_on_even_shards: false,
        };
        let _ = SearchDriver::new(&space, &reward, config).run(&mut stage, None, None);
    }

    /// A sink that accepts a configured number of snapshots, then fails.
    struct FlakySink {
        accepted: usize,
        budget: usize,
    }

    impl crate::resume::CheckpointSink for FlakySink {
        fn should_checkpoint(&self, _steps_done: usize) -> bool {
            true
        }
        fn on_checkpoint(&mut self, _snapshot: &SearchSnapshot<'_>) -> Result<(), String> {
            if self.accepted < self.budget {
                self.accepted += 1;
                Ok(())
            } else {
                Err("disk full".to_string())
            }
        }
    }

    #[test]
    fn failed_checkpoint_write_returns_a_typed_error() {
        let space = space();
        let reward = RewardFn::new(RewardKind::Relu, vec![]);
        let config = ControllerConfig {
            steps: 10,
            shards: 2,
            seed: 1,
            ..Default::default()
        };
        let mut stage = ToyStage {
            shards: config.shards,
            seed: config.seed,
            nan_on_even_shards: false,
        };
        let mut sink = FlakySink {
            accepted: 0,
            budget: 3,
        };
        let err = SearchDriver::new(&space, &reward, config)
            .run(&mut stage, None, Some(&mut sink))
            .expect_err("the fourth checkpoint write fails");
        assert_eq!(
            err,
            DriverError::Checkpoint {
                steps_done: 4,
                message: "disk full".to_string(),
            }
        );
        let shown = err.to_string();
        assert!(
            shown.contains("step 4") && shown.contains("disk full"),
            "{shown}"
        );
    }

    /// A stage that evaluates normally until a configured step, then fails
    /// like a dead remote node would.
    struct DyingStage {
        inner: ToyStage,
        dies_at: usize,
    }

    impl CandidateStage for DyingStage {
        fn steps_counter_name(&self) -> &'static str {
            "h2o_core_driver_test_steps_total"
        }
        fn collect(
            &mut self,
            step: usize,
            policy: &Policy,
        ) -> Result<Vec<(ArchSample, EvalResult)>, String> {
            if step >= self.dies_at {
                return Err("node 1 hung up".to_string());
            }
            self.inner.collect(step, policy)
        }
    }

    #[test]
    fn failed_collect_returns_a_typed_eval_error() {
        let space = space();
        let reward = RewardFn::new(RewardKind::Relu, vec![]);
        let config = ControllerConfig {
            steps: 10,
            shards: 2,
            seed: 1,
            ..Default::default()
        };
        let mut stage = DyingStage {
            inner: ToyStage {
                shards: config.shards,
                seed: config.seed,
                nan_on_even_shards: false,
            },
            dies_at: 3,
        };
        let err = SearchDriver::new(&space, &reward, config)
            .run(&mut stage, None, None)
            .expect_err("collection dies at step 3");
        assert_eq!(
            err,
            DriverError::Eval {
                step: 3,
                message: "node 1 hung up".to_string(),
            }
        );
        let shown = err.to_string();
        assert!(
            shown.contains("step 3") && shown.contains("hung up"),
            "{shown}"
        );
    }
}
