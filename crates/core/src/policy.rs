//! The RL controller's policy: independent multinomials over categorical
//! decisions, trained with REINFORCE.
//!
//! §4.1: "the RL algorithm learns a policy π, a probability distribution
//! over a collection of independent multinomial variables. Each variable
//! controls a decision of the search space." At the end of a search "the
//! final architecture is obtained by independently selecting the most
//! probable value for each categorical decision in π".

use h2o_space::{ArchSample, SearchSpace};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Softmax policy over a search space's decisions.
///
/// # Examples
///
/// ```
/// use h2o_core::Policy;
/// use h2o_space::{SearchSpace, Decision};
/// use rand::SeedableRng;
///
/// let mut space = SearchSpace::new("toy");
/// space.push(Decision::new("k", 3));
/// let policy = Policy::uniform(&space);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let sample = policy.sample(&mut rng);
/// assert!(sample[0] < 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Policy {
    logits: Vec<Vec<f64>>,
}

impl Policy {
    /// A uniform policy over the space (all logits zero).
    pub fn uniform(space: &SearchSpace) -> Self {
        Self {
            logits: space
                .decisions()
                .iter()
                .map(|d| vec![0.0; d.choices])
                .collect(),
        }
    }

    /// Number of decisions.
    pub fn num_decisions(&self) -> usize {
        self.logits.len()
    }

    /// The raw per-decision logits (checkpoint serialisation).
    pub fn logits(&self) -> &[Vec<f64>] {
        &self.logits
    }

    /// Rebuilds a policy from raw logits (checkpoint restore).
    ///
    /// # Panics
    ///
    /// Panics if `logits` is empty or any decision has no choices.
    pub fn from_logits(logits: Vec<Vec<f64>>) -> Self {
        assert!(!logits.is_empty(), "policy needs at least one decision");
        assert!(
            logits.iter().all(|l| !l.is_empty()),
            "every decision needs at least one choice"
        );
        Self { logits }
    }

    /// Softmax probabilities of one decision.
    ///
    /// # Panics
    ///
    /// Panics if `decision` is out of range.
    pub fn probs(&self, decision: usize) -> Vec<f64> {
        let logits = &self.logits[decision];
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }

    /// Samples one architecture from the product of multinomials.
    pub fn sample(&self, rng: &mut impl Rng) -> ArchSample {
        (0..self.logits.len())
            .map(|d| {
                let probs = self.probs(d);
                let u: f64 = rng.gen();
                let mut acc = 0.0;
                for (c, p) in probs.iter().enumerate() {
                    acc += p;
                    if u < acc {
                        return c;
                    }
                }
                probs.len() - 1
            })
            .collect()
    }

    /// The most probable architecture (the search's final answer).
    pub fn argmax(&self) -> ArchSample {
        self.logits
            .iter()
            .map(|logits| {
                logits
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(c, _)| c)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Log-probability of a sample under the policy.
    ///
    /// # Panics
    ///
    /// Panics if the sample shape mismatches the policy.
    pub fn log_prob(&self, sample: &ArchSample) -> f64 {
        assert_eq!(sample.len(), self.logits.len(), "sample length mismatch");
        sample
            .iter()
            .enumerate()
            .map(|(d, &c)| self.probs(d)[c].max(1e-300).ln())
            .sum()
    }

    /// Mean per-decision entropy in nats — a convergence diagnostic.
    pub fn mean_entropy(&self) -> f64 {
        let total: f64 = (0..self.logits.len())
            .map(|d| {
                -self
                    .probs(d)
                    .iter()
                    .map(|p| p * p.max(1e-300).ln())
                    .sum::<f64>()
            })
            .sum();
        total / self.logits.len().max(1) as f64
    }

    /// One cross-shard REINFORCE update (§4.2): for every (sample,
    /// advantage) pair, moves each chosen logit by
    /// `lr · advantage · (1 − p)` and the others by `−lr · advantage · p`.
    /// Advantages should already be baseline-subtracted.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch.
    pub fn reinforce_update(&mut self, batch: &[(ArchSample, f64)], lr: f64) {
        self.reinforce_update_regularized(batch, lr, 0.0);
    }

    /// REINFORCE with an entropy bonus: adds `entropy_weight · ∇H(π)` to
    /// each updated decision, counteracting premature convergence on large
    /// spaces (a standard RL-NAS stabiliser; weight 0 recovers plain
    /// REINFORCE).
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch or `entropy_weight < 0`.
    pub fn reinforce_update_regularized(
        &mut self,
        batch: &[(ArchSample, f64)],
        lr: f64,
        entropy_weight: f64,
    ) {
        assert!(entropy_weight >= 0.0, "entropy weight must be non-negative");
        for (sample, advantage) in batch {
            assert_eq!(sample.len(), self.logits.len(), "sample length mismatch");
            for (d, &chosen) in sample.iter().enumerate() {
                let probs = self.probs(d);
                // ∂H/∂logit_c = −p_c (log p_c + H)  for softmax policies.
                let entropy: f64 = -probs.iter().map(|p| p * p.max(1e-300).ln()).sum::<f64>();
                let logits = &mut self.logits[d];
                for (c, logit) in logits.iter_mut().enumerate() {
                    let indicator = if c == chosen { 1.0 } else { 0.0 };
                    let policy_grad = advantage * (indicator - probs[c]);
                    let entropy_grad = -probs[c] * (probs[c].max(1e-300).ln() + entropy);
                    *logit += lr * (policy_grad + entropy_weight * entropy_grad);
                }
            }
        }
    }

    /// Warm-starts the policy at a known architecture: adds `boost` to the
    /// given sample's logits so the search begins *near* a trusted baseline
    /// instead of uniform — how production re-optimisation runs seed from
    /// the incumbent model (§7.3's zero-touch re-optimisation setting).
    ///
    /// # Panics
    ///
    /// Panics if the sample shape mismatches or `boost` is not finite.
    pub fn bias_toward(&mut self, sample: &ArchSample, boost: f64) {
        assert!(boost.is_finite(), "boost must be finite");
        assert_eq!(sample.len(), self.logits.len(), "sample length mismatch");
        for (logits, &choice) in self.logits.iter_mut().zip(sample) {
            assert!(choice < logits.len(), "choice out of range");
            logits[choice] += boost;
        }
    }

    /// Samples with a softmax temperature: τ > 1 flattens the policy
    /// (exploration), τ < 1 sharpens it (exploitation).
    ///
    /// # Panics
    ///
    /// Panics unless `temperature > 0`.
    pub fn sample_with_temperature(&self, rng: &mut impl Rng, temperature: f64) -> ArchSample {
        assert!(temperature > 0.0, "temperature must be positive");
        (0..self.logits.len())
            .map(|d| {
                let logits = &self.logits[d];
                let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let exps: Vec<f64> = logits
                    .iter()
                    .map(|l| ((l - max) / temperature).exp())
                    .collect();
                let sum: f64 = exps.iter().sum();
                let u: f64 = rng.gen::<f64>() * sum;
                let mut acc = 0.0;
                for (c, e) in exps.iter().enumerate() {
                    acc += e;
                    if u < acc {
                        return c;
                    }
                }
                exps.len() - 1
            })
            .collect()
    }
}

/// Exponential-moving-average reward baseline, shared across shards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardBaseline {
    value: f64,
    momentum: f64,
    initialized: bool,
}

impl RewardBaseline {
    /// Creates a baseline with the given EMA momentum (e.g. 0.9).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ momentum < 1`.
    pub fn new(momentum: f64) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self {
            value: 0.0,
            momentum,
            initialized: false,
        }
    }

    /// Current baseline value (0 until the first update).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The EMA momentum.
    pub fn momentum(&self) -> f64 {
        self.momentum
    }

    /// Whether the first update has happened.
    pub fn initialized(&self) -> bool {
        self.initialized
    }

    /// Rebuilds a baseline from its parts (checkpoint restore).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ momentum < 1`.
    pub fn from_parts(value: f64, momentum: f64, initialized: bool) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self {
            value,
            momentum,
            initialized,
        }
    }

    /// Folds a new mean reward into the EMA and returns the *previous*
    /// baseline (the one advantages at this step should subtract).
    pub fn update(&mut self, mean_reward: f64) -> f64 {
        let prev = if self.initialized {
            self.value
        } else {
            mean_reward
        };
        self.value = if self.initialized {
            self.momentum * self.value + (1.0 - self.momentum) * mean_reward
        } else {
            mean_reward
        };
        self.initialized = true;
        prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2o_space::Decision;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        let mut s = SearchSpace::new("t");
        s.push(Decision::new("a", 3));
        s.push(Decision::new("b", 4));
        s
    }

    #[test]
    fn uniform_probs_sum_to_one() {
        let p = Policy::uniform(&space());
        for d in 0..2 {
            let sum: f64 = p.probs(d).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
        assert!((p.probs(0)[0] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn samples_are_in_range() {
        let p = Policy::uniform(&space());
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let s = p.sample(&mut rng);
            assert!(s[0] < 3 && s[1] < 4);
        }
    }

    #[test]
    fn reinforce_concentrates_on_rewarded_choice() {
        // Reward choice 2 of decision 0; the policy must converge there.
        let mut p = Policy::uniform(&space());
        let mut rng = StdRng::seed_from_u64(1);
        let mut baseline = RewardBaseline::new(0.9);
        for _ in 0..400 {
            let samples: Vec<ArchSample> = (0..8).map(|_| p.sample(&mut rng)).collect();
            let rewards: Vec<f64> = samples
                .iter()
                .map(|s| if s[0] == 2 { 1.0 } else { 0.0 })
                .collect();
            let mean = rewards.iter().sum::<f64>() / rewards.len() as f64;
            let b = baseline.update(mean);
            let batch: Vec<(ArchSample, f64)> = samples
                .into_iter()
                .zip(rewards.iter().map(|r| r - b))
                .collect();
            p.reinforce_update(&batch, 0.1);
        }
        assert_eq!(p.argmax()[0], 2);
        assert!(p.probs(0)[2] > 0.8, "probs {:?}", p.probs(0));
    }

    #[test]
    fn entropy_decreases_as_policy_concentrates() {
        let mut p = Policy::uniform(&space());
        let before = p.mean_entropy();
        p.reinforce_update(&[(vec![0, 0], 5.0)], 1.0);
        assert!(p.mean_entropy() < before);
    }

    #[test]
    fn log_prob_uniform() {
        let p = Policy::uniform(&space());
        let lp = p.log_prob(&vec![0, 0]);
        assert!((lp - ((1.0f64 / 3.0).ln() + 0.25f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn argmax_picks_highest_logit() {
        let mut p = Policy::uniform(&space());
        p.logits[1][3] = 2.0;
        assert_eq!(p.argmax()[1], 3);
    }

    #[test]
    fn bias_toward_concentrates_on_the_seed() {
        let mut p = Policy::uniform(&space());
        p.bias_toward(&vec![2, 3], 2.0);
        assert_eq!(p.argmax(), vec![2, 3]);
        // But not deterministically: other choices keep probability mass.
        assert!(p.probs(0)[0] > 0.01);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bias_toward_rejects_wrong_shape() {
        let mut p = Policy::uniform(&space());
        p.bias_toward(&vec![0], 1.0);
    }

    #[test]
    fn baseline_returns_previous_value() {
        let mut b = RewardBaseline::new(0.5);
        assert_eq!(b.update(10.0), 10.0); // first update: baseline = first mean
        assert_eq!(b.update(20.0), 10.0); // returns pre-update value
        assert_eq!(b.value(), 15.0);
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn bad_momentum_panics() {
        RewardBaseline::new(1.5);
    }

    #[test]
    fn entropy_regularization_slows_collapse() {
        // Same rewarded updates, with and without the entropy bonus: the
        // regularized policy must stay strictly more uniform.
        let run = |weight: f64| {
            let mut p = Policy::uniform(&space());
            let mut rng = StdRng::seed_from_u64(5);
            for _ in 0..100 {
                let s = p.sample(&mut rng);
                let r = if s[0] == 1 { 1.0 } else { 0.0 };
                p.reinforce_update_regularized(&[(s, r)], 0.2, weight);
            }
            p.mean_entropy()
        };
        assert!(run(0.5) > run(0.0));
    }

    #[test]
    fn entropy_gradient_restores_uniformity_without_rewards() {
        // Pure entropy ascent from a peaked policy must flatten it.
        let mut p = Policy::uniform(&space());
        p.logits[0][2] = 3.0;
        let before = p.mean_entropy();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..200 {
            let s = p.sample(&mut rng);
            p.reinforce_update_regularized(&[(s, 0.0)], 0.3, 1.0);
        }
        assert!(
            p.mean_entropy() > before,
            "{} -> {}",
            before,
            p.mean_entropy()
        );
    }

    #[test]
    fn high_temperature_flattens_sampling() {
        let mut p = Policy::uniform(&space());
        p.logits[0][0] = 4.0; // strongly peaked
        let mut rng = StdRng::seed_from_u64(7);
        let count_zero = |temp: f64, rng: &mut StdRng| {
            (0..500)
                .filter(|_| p.sample_with_temperature(rng, temp)[0] == 0)
                .count()
        };
        let sharp = count_zero(0.5, &mut rng);
        let flat = count_zero(8.0, &mut rng);
        assert!(sharp > 450, "sharp sampling should lock in: {sharp}");
        assert!(flat < 350, "hot sampling should explore: {flat}");
    }

    #[test]
    #[should_panic(expected = "temperature")]
    fn zero_temperature_rejected() {
        let p = Policy::uniform(&space());
        let mut rng = StdRng::seed_from_u64(8);
        p.sample_with_temperature(&mut rng, 0.0);
    }

    #[test]
    fn zero_advantage_leaves_policy_unchanged() {
        let mut p = Policy::uniform(&space());
        let before = p.clone();
        p.reinforce_update(&[(vec![1, 1], 0.0)], 0.5);
        assert_eq!(p, before);
    }
}
