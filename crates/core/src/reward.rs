//! Multi-objective reward functions (§6.1).
//!
//! The paper's **single-sided ReLU reward** (Eq. 1):
//!
//! ```text
//! R(α) = Q(α) + Σᵢ βᵢ · ReLU(Tᵢ(α)/Tᵢ₀ − 1),      βᵢ < 0
//! ```
//!
//! penalises candidates *over* a performance target linearly and leaves
//! candidates at-or-under the target unpenalised — so overachieving models
//! with equal quality are preferred, which matters when several objectives
//! make the feasible region sparse. The baseline is TuNAS's **absolute
//! value reward** (Eq. 2), which also penalises overachievers; Fig. 5 shows
//! the ReLU form dominating it under multiple objectives.

use serde::{Deserialize, Serialize};

/// One performance objective: a target and a penalty weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfObjective {
    /// Display name, e.g. `"train_step_time"` or `"model_size"`.
    pub name: String,
    /// The target `Tᵢ₀` (same unit as the measured value; must be > 0).
    pub target: f64,
    /// The weight `βᵢ` — a finite **negative** scalar.
    pub beta: f64,
}

impl PerfObjective {
    /// Creates an objective.
    ///
    /// # Panics
    ///
    /// Panics if `target <= 0` or `beta >= 0`.
    pub fn new(name: impl Into<String>, target: f64, beta: f64) -> Self {
        assert!(target > 0.0, "target must be positive");
        assert!(
            beta < 0.0 && beta.is_finite(),
            "beta must be a finite negative scalar"
        );
        Self {
            name: name.into(),
            target,
            beta,
        }
    }
}

/// The reward-combination rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RewardKind {
    /// The paper's single-sided ReLU reward (Eq. 1).
    Relu,
    /// TuNAS's absolute-value reward (Eq. 2) — the Fig. 5 baseline.
    Absolute,
}

/// A multi-objective reward function.
///
/// # Examples
///
/// ```
/// use h2o_core::{RewardFn, RewardKind, PerfObjective};
///
/// let reward = RewardFn::new(
///     RewardKind::Relu,
///     vec![PerfObjective::new("latency", 1.0e-3, -2.0)],
/// );
/// // Under target: no penalty. Over target: linear penalty.
/// assert_eq!(reward.reward(90.0, &[0.5e-3]), 90.0);
/// assert!(reward.reward(90.0, &[2.0e-3]) < 90.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RewardFn {
    kind: RewardKind,
    objectives: Vec<PerfObjective>,
}

impl RewardFn {
    /// Creates a reward function over the given objectives.
    pub fn new(kind: RewardKind, objectives: Vec<PerfObjective>) -> Self {
        Self { kind, objectives }
    }

    /// The combination rule in use.
    pub fn kind(&self) -> RewardKind {
        self.kind
    }

    /// The performance objectives.
    pub fn objectives(&self) -> &[PerfObjective] {
        &self.objectives
    }

    /// Combines quality and measured performance values into the scalar
    /// reward. `perf_values[i]` corresponds to `objectives[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the value count mismatches the objective count.
    pub fn reward(&self, quality: f64, perf_values: &[f64]) -> f64 {
        assert_eq!(
            perf_values.len(),
            self.objectives.len(),
            "one measured value per objective"
        );
        let mut r = quality;
        for (objective, &value) in self.objectives.iter().zip(perf_values) {
            let deviation = value / objective.target - 1.0;
            let signal = match self.kind {
                RewardKind::Relu => deviation.max(0.0),
                RewardKind::Absolute => deviation.abs(),
            };
            r += objective.beta * signal;
        }
        r
    }

    /// Whether a candidate meets every performance target.
    pub fn feasible(&self, perf_values: &[f64]) -> bool {
        assert_eq!(
            perf_values.len(),
            self.objectives.len(),
            "value count mismatch"
        );
        self.objectives
            .iter()
            .zip(perf_values)
            .all(|(o, &v)| v <= o.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_objective(kind: RewardKind) -> RewardFn {
        RewardFn::new(
            kind,
            vec![
                PerfObjective::new("step_time", 1.0, -1.0),
                PerfObjective::new("model_size", 100.0, -0.5),
            ],
        )
    }

    #[test]
    fn relu_no_penalty_at_or_under_target() {
        let r = two_objective(RewardKind::Relu);
        assert_eq!(r.reward(80.0, &[1.0, 100.0]), 80.0);
        assert_eq!(
            r.reward(80.0, &[0.2, 10.0]),
            80.0,
            "overachievers unpenalised"
        );
    }

    #[test]
    fn relu_linear_penalty_over_target() {
        let r = two_objective(RewardKind::Relu);
        // step_time 2x target: deviation 1.0 * beta -1.0 = -1.0
        assert!((r.reward(80.0, &[2.0, 100.0]) - 79.0).abs() < 1e-12);
    }

    #[test]
    fn absolute_penalises_overachievers() {
        let r = two_objective(RewardKind::Absolute);
        let over = r.reward(80.0, &[0.5, 100.0]); // 2x faster than target
        assert!(
            over < 80.0,
            "absolute reward penalises being better than target"
        );
        let relu = two_objective(RewardKind::Relu).reward(80.0, &[0.5, 100.0]);
        assert!(relu > over, "ReLU must dominate for overachievers");
    }

    #[test]
    fn rewards_agree_exactly_at_target() {
        let relu = two_objective(RewardKind::Relu).reward(80.0, &[1.0, 100.0]);
        let abs = two_objective(RewardKind::Absolute).reward(80.0, &[1.0, 100.0]);
        assert_eq!(relu, abs);
    }

    #[test]
    fn rewards_agree_above_target() {
        // The two forms only differ below target (§6.1).
        let relu = two_objective(RewardKind::Relu).reward(80.0, &[1.7, 250.0]);
        let abs = two_objective(RewardKind::Absolute).reward(80.0, &[1.7, 250.0]);
        assert!((relu - abs).abs() < 1e-12);
    }

    #[test]
    fn reward_is_scale_invariant_in_targets() {
        // Normalising by T0 means (value, target) scaling together is a no-op.
        let a = RewardFn::new(RewardKind::Relu, vec![PerfObjective::new("t", 1.0, -2.0)]);
        let b = RewardFn::new(RewardKind::Relu, vec![PerfObjective::new("t", 1e-3, -2.0)]);
        assert!((a.reward(50.0, &[1.5]) - b.reward(50.0, &[1.5e-3])).abs() < 1e-9);
    }

    #[test]
    fn feasibility_checks_all_objectives() {
        let r = two_objective(RewardKind::Relu);
        assert!(r.feasible(&[0.9, 99.0]));
        assert!(!r.feasible(&[0.9, 101.0]));
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn positive_beta_rejected() {
        PerfObjective::new("bad", 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "one measured value")]
    fn wrong_value_count_panics() {
        two_objective(RewardKind::Relu).reward(1.0, &[1.0]);
    }

    #[test]
    fn higher_quality_higher_reward() {
        let r = two_objective(RewardKind::Relu);
        assert!(r.reward(90.0, &[1.2, 100.0]) > r.reward(89.0, &[1.2, 100.0]));
    }

    // Golden values at the ReLU boundary. These pin the exact f64 results
    // the determinism suite depends on: a cached (memoized) perf value must
    // reproduce the reward bit-for-bit, so the reward itself must be exact
    // at and around the kink.

    #[test]
    fn golden_exactly_at_target_is_pure_quality() {
        // deviation = target/target - 1 = 0 exactly; ReLU(0) = 0.
        let r = RewardFn::new(RewardKind::Relu, vec![PerfObjective::new("t", 2.0, -4.0)]);
        assert_eq!(r.reward(3.25, &[2.0]), 3.25);
    }

    #[test]
    fn golden_one_ulp_side_of_the_kink() {
        // With target 1.0 the division is exact, so value 1 + 2^-20 gives
        // deviation exactly 2^-20 and the whole reward stays exact binary
        // arithmetic — assert with `==`, not a tolerance.
        let r = RewardFn::new(RewardKind::Relu, vec![PerfObjective::new("t", 1.0, -8.0)]);
        let eps = 2.0_f64.powi(-20);
        assert_eq!(r.reward(5.0, &[1.0 + eps]), 5.0 - 8.0 * eps);
        // Just *under* the kink clamps to zero penalty.
        assert_eq!(r.reward(5.0, &[1.0 - eps]), 5.0);
    }

    #[test]
    fn golden_multi_objective_all_over() {
        // Power-of-two targets keep every deviation exact:
        //   2/1−1 = 1, 3/2−1 = 0.5, 6/4−1 = 0.5
        //   R = 10 + (−1·1) + (−2·0.5) + (−4·0.5) = 6 exactly.
        let r = RewardFn::new(
            RewardKind::Relu,
            vec![
                PerfObjective::new("a", 1.0, -1.0),
                PerfObjective::new("b", 2.0, -2.0),
                PerfObjective::new("c", 4.0, -4.0),
            ],
        );
        assert_eq!(r.reward(10.0, &[2.0, 3.0, 6.0]), 6.0);
    }

    #[test]
    fn golden_mixed_over_and_under() {
        // Only the violated objective contributes: first is at 0.5× target
        // (clamped), second is at 1.5× target (penalty −2·0.5 = −1).
        let r = RewardFn::new(
            RewardKind::Relu,
            vec![
                PerfObjective::new("a", 2.0, -8.0),
                PerfObjective::new("b", 2.0, -2.0),
            ],
        );
        assert_eq!(r.reward(7.0, &[1.0, 3.0]), 6.0);
    }
}
