//! Multi-trial search baselines: random search and regularized evolution.
//!
//! §2.1 of the paper taxonomises search algorithms into RL, gradient and
//! evolution families and argues evolution **cannot** drive one-shot NAS
//! (its rewards must be comparable across steps, which weight-sharing
//! rewards are not). These baselines therefore run in the *multi-trial*
//! regime — each candidate is evaluated independently — and exist to
//! quantify the RL controller's sample efficiency (the
//! `ext_search_baselines` bench).

use crate::driver::NON_FINITE_REWARD_PENALTY;
use crate::reward::RewardFn;
use crate::search::{ArchEvaluator, EvalResult, EvaluatedCandidate};
use h2o_space::{ArchSample, SearchSpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Result of a multi-trial baseline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineOutcome {
    /// The highest-reward candidate found.
    pub best: EvaluatedCandidate,
    /// Reward of the best candidate after each evaluation (monotone
    /// non-decreasing) — the sample-efficiency curve.
    pub best_so_far: Vec<f64>,
    /// Every evaluated candidate.
    pub evaluated: Vec<EvaluatedCandidate>,
}

/// The same non-finite guard the [`crate::driver::SearchDriver`] applies:
/// a NaN/±∞ reward (diverged evaluator, pathological objective) becomes a
/// hard penalty instead of poisoning `best_so_far` and the tournament
/// comparisons. Finite rewards pass through bit-unchanged.
fn clamp_reward(reward: f64) -> f64 {
    if reward.is_finite() {
        reward
    } else {
        NON_FINITE_REWARD_PENALTY
    }
}

fn record(
    evaluated: &mut Vec<EvaluatedCandidate>,
    best_so_far: &mut Vec<f64>,
    sample: ArchSample,
    result: EvalResult,
    reward: f64,
) {
    let prev = best_so_far.last().copied().unwrap_or(f64::NEG_INFINITY);
    best_so_far.push(prev.max(reward));
    evaluated.push(EvaluatedCandidate {
        sample,
        result,
        reward,
    });
}

fn finish(evaluated: Vec<EvaluatedCandidate>, best_so_far: Vec<f64>) -> BaselineOutcome {
    let best = evaluated
        .iter()
        .max_by(|a, b| a.reward.total_cmp(&b.reward))
        // h2o-lint: allow(panic-hygiene) -- non-empty: both entry points assert a positive budget before recording
        .expect("at least one evaluation")
        .clone();
    BaselineOutcome {
        best,
        best_so_far,
        evaluated,
    }
}

/// Uniform random search: `budget` independent uniform samples.
///
/// # Panics
///
/// Panics if `budget == 0`.
pub fn random_search<E: ArchEvaluator>(
    space: &SearchSpace,
    reward_fn: &RewardFn,
    evaluator: &mut E,
    budget: usize,
    seed: u64,
) -> BaselineOutcome {
    assert!(budget > 0, "need a positive budget");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut evaluated = Vec::with_capacity(budget);
    let mut best_so_far = Vec::with_capacity(budget);
    for _ in 0..budget {
        let sample = space.sample_uniform(&mut rng);
        let result = evaluator.evaluate(&sample);
        let reward = clamp_reward(reward_fn.reward(result.quality, &result.perf_values));
        record(&mut evaluated, &mut best_so_far, sample, result, reward);
    }
    finish(evaluated, best_so_far)
}

/// Configuration of regularized evolution (Real et al., AAAI'19 — the
/// paper's reference evolution algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvolutionConfig {
    /// Population size (a FIFO queue; the oldest individual dies).
    pub population: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-decision mutation probability.
    pub mutation_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        Self {
            population: 32,
            tournament: 8,
            mutation_rate: 0.05,
            seed: 0,
        }
    }
}

/// Regularized (aging) evolution under a fixed evaluation budget.
///
/// # Panics
///
/// Panics if the budget is smaller than the population, or the population
/// is empty.
pub fn evolution_search<E: ArchEvaluator>(
    space: &SearchSpace,
    reward_fn: &RewardFn,
    evaluator: &mut E,
    budget: usize,
    config: &EvolutionConfig,
) -> BaselineOutcome {
    assert!(config.population > 0, "population must be positive");
    assert!(
        budget >= config.population,
        "budget must cover the initial population"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut evaluated = Vec::with_capacity(budget);
    let mut best_so_far = Vec::with_capacity(budget);
    let mut population: VecDeque<(ArchSample, f64)> = VecDeque::with_capacity(config.population);

    // Seed the population with uniform samples.
    for _ in 0..config.population {
        let sample = space.sample_uniform(&mut rng);
        let result = evaluator.evaluate(&sample);
        let reward = clamp_reward(reward_fn.reward(result.quality, &result.perf_values));
        population.push_back((sample.clone(), reward));
        record(&mut evaluated, &mut best_so_far, sample, result, reward);
    }
    // Tournament + mutate + age out.
    while evaluated.len() < budget {
        let parent = (0..config.tournament.max(1))
            .map(|_| &population[rng.gen_range(0..population.len())])
            .max_by(|a, b| a.1.total_cmp(&b.1))
            // h2o-lint: allow(panic-hygiene) -- non-empty: tournament draws at least one contestant
            .expect("population non-empty")
            .0
            .clone();
        let mut child = parent;
        for (d, decision) in space.decisions().iter().enumerate() {
            if rng.gen::<f64>() < config.mutation_rate {
                child[d] = rng.gen_range(0..decision.choices);
            }
        }
        let result = evaluator.evaluate(&child);
        let reward = clamp_reward(reward_fn.reward(result.quality, &result.perf_values));
        population.push_back((child.clone(), reward));
        population.pop_front(); // aging: the oldest dies, fit or not
        record(&mut evaluated, &mut best_so_far, child, result, reward);
    }
    finish(evaluated, best_so_far)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::{PerfObjective, RewardKind};
    use h2o_space::Decision;

    fn space() -> SearchSpace {
        let mut s = SearchSpace::new("t");
        for i in 0..6 {
            s.push(Decision::new(format!("d{i}"), 8));
        }
        s
    }

    /// Quality = sum of choices; cost = choice 0 (target 4).
    fn evaluator() -> impl ArchEvaluator {
        |sample: &ArchSample| EvalResult {
            quality: sample.iter().sum::<usize>() as f64,
            perf_values: vec![sample[0] as f64],
        }
    }

    fn reward() -> RewardFn {
        RewardFn::new(RewardKind::Relu, vec![PerfObjective::new("c", 4.0, -10.0)])
    }

    #[test]
    fn random_search_best_so_far_is_monotone() {
        let mut eval = evaluator();
        let outcome = random_search(&space(), &reward(), &mut eval, 100, 1);
        assert_eq!(outcome.best_so_far.len(), 100);
        assert!(outcome.best_so_far.windows(2).all(|w| w[1] >= w[0]));
        assert_eq!(
            outcome.best.reward,
            *outcome.best_so_far.last().unwrap(),
            "best matches the curve's end"
        );
    }

    #[test]
    fn evolution_beats_random_on_structured_problem() {
        let budget = 400;
        let mut e1 = evaluator();
        let random = random_search(&space(), &reward(), &mut e1, budget, 3);
        let mut e2 = evaluator();
        let evo = evolution_search(
            &space(),
            &reward(),
            &mut e2,
            budget,
            &EvolutionConfig {
                seed: 3,
                ..Default::default()
            },
        );
        assert!(
            evo.best.reward >= random.best.reward,
            "evolution {} vs random {}",
            evo.best.reward,
            random.best.reward
        );
    }

    #[test]
    fn evolution_respects_budget_exactly() {
        let mut eval = evaluator();
        let outcome = evolution_search(
            &space(),
            &reward(),
            &mut eval,
            97,
            &EvolutionConfig {
                population: 16,
                ..Default::default()
            },
        );
        assert_eq!(outcome.evaluated.len(), 97);
    }

    #[test]
    fn evolution_finds_near_optimum() {
        // Optimum: choice 0 = 4 (cost target), rest = 7. Reward = 4+35 = 39.
        let mut eval = evaluator();
        let outcome = evolution_search(
            &space(),
            &reward(),
            &mut eval,
            600,
            &EvolutionConfig {
                seed: 9,
                ..Default::default()
            },
        );
        assert!(
            outcome.best.reward >= 36.0,
            "reward {}",
            outcome.best.reward
        );
    }

    #[test]
    #[should_panic(expected = "budget must cover")]
    fn evolution_rejects_tiny_budget() {
        let mut eval = evaluator();
        evolution_search(
            &space(),
            &reward(),
            &mut eval,
            4,
            &EvolutionConfig::default(),
        );
    }

    #[test]
    fn nan_rewards_are_clamped_on_both_baseline_paths() {
        // Regression: same NaN-panic class PR 4 fixed in `best_evaluated`
        // — a NaN quality used to reach partial_cmp().expect() in the
        // tournament and in finish(), aborting the whole baseline run.
        let nan_evaluator = |sample: &ArchSample| EvalResult {
            quality: if sample[0].is_multiple_of(2) {
                f64::NAN
            } else {
                sample.iter().sum::<usize>() as f64
            },
            perf_values: vec![sample[0] as f64],
        };
        let mut e1 = nan_evaluator;
        let random = random_search(&space(), &reward(), &mut e1, 80, 5);
        let mut e2 = nan_evaluator;
        let evo = evolution_search(
            &space(),
            &reward(),
            &mut e2,
            80,
            &EvolutionConfig {
                population: 16,
                seed: 5,
                ..Default::default()
            },
        );
        for outcome in [&random, &evo] {
            assert!(
                outcome.evaluated.iter().all(|c| c.reward.is_finite()),
                "every recorded reward is clamped finite"
            );
            assert!(
                outcome.best_so_far.iter().all(|r| r.is_finite()),
                "the sample-efficiency curve stays finite"
            );
            assert!(outcome.best.reward.is_finite());
        }
    }

    #[test]
    fn random_search_deterministic_per_seed() {
        let mut e1 = evaluator();
        let mut e2 = evaluator();
        let a = random_search(&space(), &reward(), &mut e1, 50, 7);
        let b = random_search(&space(), &reward(), &mut e2, 50, 7);
        assert_eq!(a.best.sample, b.best.sample);
    }
}
