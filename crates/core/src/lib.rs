//! # h2o-core — the H2O-NAS search algorithm
//!
//! The paper's first pillar: a massively parallel one-shot RL search that
//! learns the architecture policy `π` and the shared weights `W` in a
//! **unified single step** per batch (§4, Fig. 2), plus the third pillar's
//! multi-objective rewards (§6.1):
//!
//! * [`Policy`] — independent multinomials over categorical decisions,
//!   trained with cross-shard REINFORCE; the final architecture is the
//!   per-decision argmax.
//! * [`RewardFn`] — the single-sided **ReLU reward** (Eq. 1) and the TuNAS
//!   absolute-value baseline (Eq. 2), over any number of performance
//!   objectives ([`PerfObjective`]).
//! * [`parallel_search`] — the sharded search loop: every virtual
//!   accelerator samples its own candidate, rewards drive one cross-shard
//!   policy update (threads stand in for TPU cores).
//! * [`unified_search`] / [`tunas_search`] — one-shot search over the
//!   *real trainable* DLRM super-network, with the in-memory pipeline's
//!   α-before-W ordering enforced per batch; the TuNAS variant is the
//!   alternating two-stream baseline the paper improves upon.
//! * [`pareto`] — Pareto fronts and the bucketised comparisons of Fig. 5.
//! * [`parallel_search_with`] / [`unified_search_with`] /
//!   [`tunas_search_with`] — the same loops with crash-safe
//!   checkpoint/resume hooks ([`CheckpointSink`]); the `h2o-ckpt` crate
//!   provides the durable on-disk sink.
//! * [`DistributedStage`] — the parallel fan-out stretched across worker
//!   *processes* over a [`h2o_exec::DistributedPool`]; sampling stays
//!   local and replies merge in submission order, so the outcome is
//!   byte-identical to the in-process loop for any node count.
//!
//! All three search flavors are thin wrappers over one controller engine:
//! [`SearchDriver`] owns the invariant per-step loop (reward → baseline
//! EMA → cross-shard REINFORCE → telemetry → checkpoint) and a
//! [`CandidateStage`] supplies the flavor-specific candidate production
//! ([`ParallelStage`], [`UnifiedStage`], [`TunasStage`]). Custom stages
//! plug into the same engine — see [`SearchDriver`] for an example.
//!
//! # Examples
//!
//! ```
//! use h2o_core::{parallel_search, RewardFn, RewardKind, PerfObjective, SearchConfig,
//!                EvalResult};
//! use h2o_space::{SearchSpace, Decision, ArchSample};
//!
//! let mut space = SearchSpace::new("toy");
//! space.push(Decision::new("width", 8));
//! let reward = RewardFn::new(RewardKind::Relu,
//!     vec![PerfObjective::new("cost", 4.0, -20.0)]);
//! let outcome = parallel_search(
//!     &space,
//!     &reward,
//!     |_shard| |s: &ArchSample| EvalResult {
//!         quality: s[0] as f64,           // bigger is more accurate...
//!         perf_values: vec![s[0] as f64], // ...and slower
//!     },
//!     &SearchConfig { steps: 100, shards: 4, ..Default::default() },
//! );
//! assert_eq!(outcome.best[0], 4, "the target-width candidate wins");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baselines;
mod distributed;
mod driver;
mod oneshot;
mod oneshot_generic;
pub mod pareto;
mod policy;
mod resume;
mod reward;
mod search;
pub mod telemetry;

pub use baselines::{evolution_search, random_search, BaselineOutcome, EvolutionConfig};
pub use distributed::{
    decode_eval_job, decode_eval_result, encode_eval_job, encode_eval_result, DistributedStage,
};
pub use driver::{
    CandidateStage, ControllerConfig, DriverError, SearchDriver, NON_FINITE_REWARD_PENALTY, PHASES,
};
pub use oneshot::{
    tunas_search, tunas_search_with, unified_search, unified_search_with, OneShotConfig, TunasStage,
};
pub use oneshot_generic::{
    unified_search_over, unified_search_over_with, OneShotSupernet, UnifiedStage,
};
pub use policy::{Policy, RewardBaseline};
pub use resume::{CheckpointSink, ResumeState, SearchSnapshot};
pub use reward::{PerfObjective, RewardFn, RewardKind};
pub use search::{
    parallel_search, parallel_search_with, shard_seed, ArchEvaluator, EvalResult,
    EvaluatedCandidate, ParallelStage, SearchConfig, SearchOutcome, StepRecord,
};
